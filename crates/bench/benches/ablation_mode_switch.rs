//! Ablation (beyond the paper): sensitivity to the RNG mode-switch cost.
//!
//! DESIGN.md §3 calibrates the timing-parameter reconfiguration cost to 40
//! cycles each way so the on-demand 64-bit latency lands near the paper's
//! 198 cycles. This ablation sweeps the cost and shows (a) baseline
//! interference grows with it and (b) DR-STRaNGe's buffer makes the system
//! largely insensitive to it — evidence the headline results do not hinge
//! on the calibrated constant.

use strange_bench::{banner, eval_pair_matrix_par, mean, Design, Harness, Mech};
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Ablation: RNG mode-switch cost sweep",
        "(beyond the paper) baseline slowdown grows with switch cost; \
         DR-STRANGE stays flat thanks to the buffer",
    );
    let h = Harness::new();
    let designs = [Design::Oblivious, Design::DrStrange];
    // A representative subset keeps the sweep affordable.
    let workloads: Vec<_> = eval_pairs(5120).into_iter().step_by(5).collect();
    println!(
        "{:<12} {:>18} {:>18}",
        "switch cost", "baseline nonRNG sd", "DR-STRANGE nonRNG sd"
    );
    for cycles in [10u64, 20, 40, 80, 160] {
        // The mechanism (and thus the alone-cache key) changes per sweep
        // point, so each point is its own parallel matrix.
        let matrix =
            eval_pair_matrix_par(&h, &designs, &workloads, Mech::DRangeSwitch(cycles));
        let avg = |d: usize| mean(&matrix[d].iter().map(|e| e.nonrng_slowdown).collect::<Vec<_>>());
        println!("{cycles:<12} {:>18.3} {:>18.3}", avg(0), avg(1));
    }
}
