//! Ablation (beyond the paper): sensitivity to the PeriodThreshold.
//!
//! The paper empirically sets the long/short idle-period boundary to 40
//! cycles — exactly one 8-bit generation round. This sweep shows why:
//! lower thresholds classify too many periods as long (more misprediction
//! stalls), higher thresholds waste fill opportunities.

use strange_bench::{banner, eval_pair_matrix_par, mean, Design, Harness, Mech};
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Ablation: PeriodThreshold sweep",
        "(beyond the paper) 40 cycles — one 8-bit round — balances \
         misprediction stalls against wasted fill opportunities",
    );
    let h = Harness::new();
    let workloads: Vec<_> = eval_pairs(5120).into_iter().step_by(5).collect();
    // The whole sweep is one (threshold × workload) parallel matrix.
    let designs: Vec<Design> = [10u64, 20, 40, 80, 160]
        .into_iter()
        .map(Design::PeriodThreshold)
        .collect();
    let matrix = eval_pair_matrix_par(&h, &designs, &workloads, Mech::DRange);
    println!(
        "{:<10} {:>16} {:>13} {:>12} {:>10}",
        "threshold", "nonRNG slowdown", "RNG slowdown", "serve rate", "accuracy"
    );
    for (d, design) in designs.iter().enumerate() {
        let evals = &matrix[d];
        let Design::PeriodThreshold(threshold) = design else {
            unreachable!("sweep designs are thresholds");
        };
        println!(
            "{threshold:<10} {:>16.3} {:>13.3} {:>12.2} {:>10.2}",
            mean(&evals.iter().map(|e| e.nonrng_slowdown).collect::<Vec<_>>()),
            mean(&evals.iter().map(|e| e.rng_slowdown).collect::<Vec<_>>()),
            mean(&evals.iter().map(|e| e.serve_rate).collect::<Vec<_>>()),
            mean(&evals.iter().map(|e| e.accuracy).collect::<Vec<_>>()),
        );
    }
}
