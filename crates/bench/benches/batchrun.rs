//! Batched-runner benchmark: wall-clock speedup of the parallel
//! (design × workload) matrix evaluation over the sequential reference,
//! plus the probe cache's contribution to busy-workload fast-forward.
//!
//! Emits `BENCH_batchrun.json` (in the working directory, or at
//! `$BENCH_BATCHRUN_OUT`) with:
//!
//! * sequential vs parallel wall time for a figure-style matrix (3 designs
//!   × `STRANGE_BATCH_WORKLOADS` dual-core workloads, default 12) and the
//!   resulting speedup — bit-identity between the two paths is asserted,
//!   not assumed;
//! * the busy-workload fast-forward speedup over the per-cycle reference
//!   with the O(1) next-event probe cache enabled and disabled.
//!
//! The parallel speedup scales with the host core count (`STRANGE_THREADS`
//! caps it); on a single-core host it is ~1x by construction.

use std::time::Instant;

use strange_bench::{
    eval_pair_matrix_with_threads, runner, Design, Harness, Mech, ScaleConfig,
};
use strange_core::{SimMode, System, SystemConfig};
use strange_trng::DRange;
use strange_workloads::{eval_pairs, Workload};

fn batch_workloads() -> usize {
    std::env::var("STRANGE_BATCH_WORKLOADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(12)
}

/// Wall time of one full run of `cfg` over `workload`.
fn run_wall_ms(cfg: &SystemConfig, workload: &Workload) -> f64 {
    let mut sys = System::new(cfg.clone(), workload.traces(), Box::new(DRange::new(1)))
        .expect("valid configuration");
    let start = Instant::now();
    sys.run();
    start.elapsed().as_secs_f64() * 1e3
}

/// Best-of-three wall time (one warm-up pass first).
fn best_of_three(cfg: &SystemConfig, workload: &Workload) -> f64 {
    run_wall_ms(cfg, workload);
    (0..3)
        .map(|_| run_wall_ms(cfg, workload))
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let scale = ScaleConfig::from_env();
    let threads = runner::worker_threads();
    let designs = [Design::Oblivious, Design::Greedy, Design::DrStrange];
    let workloads: Vec<Workload> = eval_pairs(5120)
        .into_iter()
        .take(batch_workloads())
        .collect();
    println!(
        "batched runner: {} designs x {} workloads, {} instructions/core, {} threads\n",
        designs.len(),
        workloads.len(),
        scale.instr,
        threads
    );

    // Sequential reference (one worker, fresh harness/alone cache).
    let seq_harness = Harness::with_scale(scale);
    let t0 = Instant::now();
    let seq = eval_pair_matrix_with_threads(&seq_harness, &designs, &workloads, Mech::DRange, 1);
    let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Parallel run (fresh harness so the alone runs are recomputed too).
    let par_harness = Harness::with_scale(scale);
    let t0 = Instant::now();
    let par =
        eval_pair_matrix_with_threads(&par_harness, &designs, &workloads, Mech::DRange, threads);
    let parallel_ms = t0.elapsed().as_secs_f64() * 1e3;

    assert_eq!(seq, par, "parallel matrix must be bit-identical");
    let parallel_speedup = sequential_ms / parallel_ms;
    println!(
        "matrix: sequential {sequential_ms:8.1} ms | parallel {parallel_ms:8.1} ms | speedup {parallel_speedup:5.2}x"
    );

    // Probe-cache contribution on a busy workload (the paper's most
    // memory-intensive pair at the highest RNG intensity): fast-forward
    // vs per-cycle reference, cache on and off.
    let busy = eval_pairs(5120).remove(0);
    let base = SystemConfig::dr_strange(2).with_instruction_target(scale.instr);
    let reference_ms = best_of_three(&base.clone().with_sim_mode(SimMode::Reference), &busy);
    let ff_cache_on_ms = best_of_three(&base.clone().with_probe_cache(true), &busy);
    let ff_cache_off_ms = best_of_three(&base.with_probe_cache(false), &busy);
    let busy_speedup_cache_on = reference_ms / ff_cache_on_ms;
    let busy_speedup_cache_off = reference_ms / ff_cache_off_ms;
    println!(
        "busy fast-forward: reference {reference_ms:7.1} ms | ff(cache on) {ff_cache_on_ms:7.1} ms \
         ({busy_speedup_cache_on:4.2}x) | ff(cache off) {ff_cache_off_ms:7.1} ms ({busy_speedup_cache_off:4.2}x)"
    );

    let json = format!(
        "{{\n  \"instr_target\": {},\n  \"threads\": {},\n  \"designs\": {},\n  \"workloads\": {},\n  \
         \"sequential_ms\": {:.3},\n  \"parallel_ms\": {:.3},\n  \"parallel_speedup\": {:.3},\n  \
         \"busy_reference_ms\": {:.3},\n  \"busy_ff_cache_on_ms\": {:.3},\n  \"busy_ff_cache_off_ms\": {:.3},\n  \
         \"busy_speedup_cache_on\": {:.3},\n  \"busy_speedup_cache_off\": {:.3}\n}}\n",
        scale.instr,
        threads,
        designs.len(),
        workloads.len(),
        sequential_ms,
        parallel_ms,
        parallel_speedup,
        reference_ms,
        ff_cache_on_ms,
        ff_cache_off_ms,
        busy_speedup_cache_on,
        busy_speedup_cache_off,
    );
    let out = std::env::var("BENCH_BATCHRUN_OUT")
        .unwrap_or_else(|_| "BENCH_batchrun.json".to_string());
    std::fs::write(&out, json).expect("write benchmark json");
    println!("\nwrote {out}");

    if threads > 1 && parallel_speedup < 1.5 {
        println!(
            "WARNING: parallel speedup {parallel_speedup:.2}x below expectation for {threads} threads"
        );
    }
}
