//! Busy-tick benchmark: wall-clock cost of *live* ticks under the
//! sublinear-tick features — dirty-tracked readiness and one-event RNG
//! bursts — on the two regimes where ticking dominates:
//!
//! * `busy_pair`: a memory-intensive eval pair at the paper's highest
//!   RNG intensity (the `busy_guard` regime from the fastforward bench) —
//!   little to skip, so fast-forward wall time is live-tick bound;
//! * `saturated_service`: the contended mixed-QoS closed-loop service
//!   mix with no trace cores — deep queues, frequent RNG mode switches.
//!
//! Each cell runs the per-cycle reference plus fast-forward under every
//! combination of `dirty_readiness` x `burst_events`, asserts that every
//! run is bit-identical (the features are pure memoizations), asserts
//! the busy-pair fast-forward speedup over the reference stays >= 1.3x,
//! and reports the feature on/off wall-time deltas.
//!
//! Emits `BENCH_busytick.json` (working directory, or at
//! `$BENCH_BUSYTICK_OUT`). Scale comes from the shared [`ScaleConfig`]
//! (`STRANGE_INSTR`) for the trace cell and `STRANGE_BUSYTICK_REQUESTS`
//! for the service cell.

use std::time::Instant;

use strange_bench::ScaleConfig;
use strange_core::{RunResult, SimMode, System, SystemConfig};
use strange_trng::DRange;
use strange_workloads::{contended_qos_service, eval_pairs, Workload};

/// (dirty_readiness, burst_events), all-on first (the shipped default).
const COMBOS: [(bool, bool); 4] = [(true, true), (false, true), (true, false), (false, false)];

fn service_requests() -> u64 {
    std::env::var("STRANGE_BUSYTICK_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

struct Cell {
    name: &'static str,
    cfg: SystemConfig,
    workload: Option<Workload>,
}

fn run_once(cell: &Cell, mode: SimMode, dirty: bool, burst: bool) -> (f64, u64, RunResult) {
    let cfg = cell
        .cfg
        .clone()
        .with_sim_mode(mode)
        .with_dirty_readiness(dirty)
        .with_burst_events(burst);
    let traces = cell.workload.as_ref().map(|w| w.traces()).unwrap_or_default();
    let mut sys =
        System::new(cfg, traces, Box::new(DRange::new(1))).expect("valid configuration");
    let start = Instant::now();
    let res = sys.run();
    (start.elapsed().as_secs_f64() * 1e3, sys.skipped_cycles(), res)
}

/// Timed configurations per cell: reference with features on and off,
/// then fast-forward under every combo.
fn configs() -> Vec<(SimMode, bool, bool)> {
    let mut v = vec![
        (SimMode::Reference, true, true),
        (SimMode::Reference, false, false),
    ];
    v.extend(COMBOS.iter().map(|&(d, b)| (SimMode::FastForward, d, b)));
    v
}

/// One warm-up pass per configuration, then `rounds` interleaved timing
/// rounds (config A, B, ... then A, B, ... again), keeping the per-config
/// minimum. Interleaving makes the mins comparable under slow load drift
/// on shared runners; the run results are identical across repeats
/// (full-stack determinism), so any repeat's result serves as the
/// fingerprint.
fn time_all(cell: &Cell, rounds: usize) -> (Vec<(f64, RunResult)>, u64) {
    let configs = configs();
    let mut best: Vec<(f64, Option<RunResult>)> = configs.iter().map(|_| (f64::INFINITY, None)).collect();
    let mut skipped = 0;
    for &(mode, dirty, burst) in &configs {
        run_once(cell, mode, dirty, burst);
    }
    for _ in 0..rounds {
        for (slot, &(mode, dirty, burst)) in best.iter_mut().zip(&configs) {
            let (ms, sk, res) = run_once(cell, mode, dirty, burst);
            if ms < slot.0 {
                slot.0 = ms;
            }
            if mode == SimMode::FastForward {
                skipped = sk;
            }
            slot.1 = Some(res);
        }
    }
    let timed = best
        .into_iter()
        .map(|(ms, res)| (ms, res.expect("rounds ran")))
        .collect();
    (timed, skipped)
}

/// The features must be invisible in every observable output.
fn assert_identical(cell: &str, label: &str, a: &RunResult, b: &RunResult) {
    assert_eq!(a.cpu_cycles, b.cpu_cycles, "{cell}/{label}: cpu cycles");
    assert_eq!(a.mem_cycles, b.mem_cycles, "{cell}/{label}: mem cycles");
    assert_eq!(a.stats, b.stats, "{cell}/{label}: engine stats");
    assert_eq!(a.channels, b.channels, "{cell}/{label}: channel stats");
    assert_eq!(a.service, b.service, "{cell}/{label}: service stats");
    for (i, (ca, cb)) in a.cores.iter().zip(&b.cores).enumerate() {
        assert_eq!(
            ca.finish.map(|f| f.at_cycle),
            cb.finish.map(|f| f.at_cycle),
            "{cell}/{label}: core {i} finish"
        );
        assert_eq!(ca.end_stats, cb.end_stats, "{cell}/{label}: core {i} stats");
    }
}

struct ComboRow {
    dirty: bool,
    burst: bool,
    ff_ms: f64,
    speedup_vs_reference: f64,
}

struct CellRow {
    name: &'static str,
    cycles: u64,
    /// Fraction of CPU cycles the fast-forward runs skipped — the upper
    /// bound on mode speedup is `1 / (1 - skipped_fraction)`.
    skipped_fraction: f64,
    reference_on_ms: f64,
    reference_off_ms: f64,
    combos: Vec<ComboRow>,
    /// All-off fast-forward wall time over all-on: the busy-tick win.
    feature_speedup: f64,
}

fn measure(cell: &Cell, rounds: usize) -> CellRow {
    // Reference with features on and off (the reference loop ticks every
    // cycle, so it benefits from sublinear ticks too — reporting both
    // keeps the speedup attribution honest).
    let (timed, skipped) = time_all(cell, rounds);
    let (ref_on_ms, ref_fp) = (timed[0].0, &timed[0].1);
    let (ref_off_ms, ref_off_fp) = (timed[1].0, &timed[1].1);
    assert_identical(cell.name, "reference on-vs-off", ref_fp, ref_off_fp);

    let mut combos = Vec::new();
    for (i, &(dirty, burst)) in COMBOS.iter().enumerate() {
        let (ff_ms, fp) = (timed[2 + i].0, &timed[2 + i].1);
        assert_identical(
            cell.name,
            &format!("ff dirty={dirty} burst={burst} vs reference"),
            fp,
            ref_fp,
        );
        combos.push(ComboRow {
            dirty,
            burst,
            ff_ms,
            speedup_vs_reference: ref_on_ms / ff_ms,
        });
    }
    let feature_speedup = combos[3].ff_ms / combos[0].ff_ms;
    CellRow {
        name: cell.name,
        cycles: ref_fp.cpu_cycles,
        skipped_fraction: skipped as f64 / ref_fp.cpu_cycles as f64,
        reference_on_ms: ref_on_ms,
        reference_off_ms: ref_off_ms,
        combos,
        feature_speedup,
    }
}

fn main() {
    let target = ScaleConfig::from_env().instr;
    let requests = service_requests();
    let pairs = eval_pairs(5120);
    let cells = vec![
        Cell {
            name: "busy_pair",
            cfg: SystemConfig::dr_strange(2).with_instruction_target(target),
            workload: Some(pairs[0].clone()),
        },
        Cell {
            name: "saturated_service",
            cfg: SystemConfig::dr_strange(0).with_service(contended_qos_service(64, requests)),
            workload: None,
        },
    ];

    println!(
        "busy-tick features: dirty readiness x burst events \
         ({target} instructions/core, {requests} service requests)\n"
    );
    let rounds = std::env::var("STRANGE_BUSYTICK_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let mut rows = Vec::new();
    for cell in &cells {
        let row = measure(cell, rounds);
        println!(
            "{:18} {:>10} cycles ({:.0}% skipped)  reference on {:8.1} ms / off {:8.1} ms",
            row.name,
            row.cycles,
            row.skipped_fraction * 100.0,
            row.reference_on_ms,
            row.reference_off_ms
        );
        for c in &row.combos {
            println!(
                "    dirty={:5} burst={:5}  ff {:8.1} ms  {:5.2}x vs reference",
                c.dirty, c.burst, c.ff_ms, c.speedup_vs_reference
            );
        }
        println!("    feature speedup (ff all-off / all-on): {:.2}x\n", row.feature_speedup);
        rows.push(row);
    }

    // Acceptance bound: on the busy pair, fast-forward with the features
    // on must beat the per-cycle reference by a comfortable margin even
    // on noisy CI runners (the tracked target is higher; see
    // EXPERIMENTS.md).
    let busy = &rows[0];
    let busy_speedup = busy.combos[0].speedup_vs_reference;
    assert!(
        busy_speedup >= 1.3,
        "busy-pair fast-forward speedup {busy_speedup:.2}x fell below the 1.3x bound"
    );
    for row in &rows {
        if row.feature_speedup < 1.0 {
            println!(
                "WARNING: {} feature speedup {:.2}x — features slower than full rescan",
                row.name, row.feature_speedup
            );
        }
    }

    let json = format!(
        "{{\n  \"instr_target\": {},\n  \"service_requests\": {},\n  \"cells\": [\n{}\n  ]\n}}\n",
        target,
        requests,
        rows.iter()
            .map(|r| {
                let combos = r
                    .combos
                    .iter()
                    .map(|c| {
                        format!(
                            "        {{\"dirty\": {}, \"burst\": {}, \"fastforward_ms\": {:.3}, \
                             \"speedup_vs_reference\": {:.3}}}",
                            c.dirty, c.burst, c.ff_ms, c.speedup_vs_reference
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!(
                    "    {{\"name\": \"{}\", \"cycles\": {}, \"skipped_fraction\": {:.4}, \
                     \"reference_on_ms\": {:.3}, \"reference_off_ms\": {:.3}, \
                     \"feature_speedup\": {:.3}, \"ff\": [\n{}\n    ]}}",
                    r.name, r.cycles, r.skipped_fraction, r.reference_on_ms,
                    r.reference_off_ms, r.feature_speedup, combos
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let out = std::env::var("BENCH_BUSYTICK_OUT")
        .unwrap_or_else(|_| "BENCH_busytick.json".to_string());
    std::fs::write(&out, json).expect("write benchmark json");
    println!("wrote {out}");
}
