//! Fairness-policy sweep: tenant tail latency and Jain's fairness index
//! across scheduling policy × offered load × TRNG mechanism.
//!
//! Two parts:
//!
//! 1. **Load sweep** — a 4-tenant mixed-QoS Poisson population (High,
//!    High, Normal, Low) at increasing aggregate offered load, for
//!    D-RaNGe and QUAC-TRNG, under `Strict`, `Aging`, and
//!    `WeightedFair`. Each cell reports per-tenant p50/p99 and served
//!    Mb/s, plus Jain's fairness index over the tenant throughputs.
//! 2. **Contended scenario** — the `examples/concurrent_server.rs`
//!    shape (two saturating High closed-loop aggressors + Normal + Low),
//!    recording the Low-tenant p99 delta each fair policy buys. The
//!    acceptance bounds are asserted in-bench: `Aging` and
//!    `WeightedFair` each cut the Low-tenant p99 ≥ 5× vs `Strict` while
//!    the High tenant's p99 regresses ≤ 2×.
//!
//! One small cell per policy additionally asserts the determinism
//! contract (`FastForward` ≡ `Reference`, stats and service latency log
//! included).
//!
//! Emits `BENCH_fairness.json` (working directory, or
//! `$BENCH_FAIRNESS_OUT`). Requests per tenant come from
//! `STRANGE_FAIRNESS_REQUESTS` (default 60).

use strange_core::{FairnessPolicy, RunResult, SimMode, System, SystemConfig};
use strange_metrics::jain_index;
use strange_trng::{DRange, QuacTrng, TrngMechanism};
use strange_workloads::{assign_qos, contended_qos_service, poisson_service};

const TRNG_SEED: u64 = 2022;
const BYTES: usize = 32;
const QOS: [strange_core::QosClass; 4] = [
    strange_core::QosClass::High,
    strange_core::QosClass::High,
    strange_core::QosClass::Normal,
    strange_core::QosClass::Low,
];

fn requests_per_tenant() -> u64 {
    std::env::var("STRANGE_FAIRNESS_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(60)
}

#[derive(Clone, Copy, PartialEq)]
enum Mechanism {
    DRange,
    Quac,
}

impl Mechanism {
    fn label(self) -> &'static str {
        match self {
            Mechanism::DRange => "D-RaNGe",
            Mechanism::Quac => "QUAC-TRNG",
        }
    }

    fn build(self) -> Box<dyn TrngMechanism> {
        match self {
            Mechanism::DRange => Box::new(DRange::new(TRNG_SEED)),
            Mechanism::Quac => Box::new(QuacTrng::new(TRNG_SEED)),
        }
    }

    /// Aggregate offered loads (Mb/s) bracketing the mechanism's
    /// sustained rate (D-RaNGe saturates ~620 Mb/s on four channels,
    /// QUAC ~2.7 Gb/s).
    fn loads(self) -> [u32; 3] {
        match self {
            Mechanism::DRange => [384, 768, 1536],
            Mechanism::Quac => [1536, 3072, 6144],
        }
    }
}

fn policies() -> [(&'static str, FairnessPolicy); 3] {
    [
        ("strict", FairnessPolicy::Strict),
        ("aging", FairnessPolicy::aging()),
        ("wfq", FairnessPolicy::weighted_fair()),
    ]
}

fn run(cfg: SystemConfig, mech: Mechanism) -> RunResult {
    let mut sys = System::new(cfg, Vec::new(), mech.build()).expect("valid configuration");
    let res = sys.run();
    assert!(!res.hit_cycle_limit, "fairness cells must drain");
    res
}

/// FastForward ≡ Reference for one small mixed-QoS cell per policy.
fn assert_modes_identical(policy: FairnessPolicy, requests: u64) {
    let cfg = |mode| {
        SystemConfig::dr_strange(0)
            .with_fairness(policy)
            .with_service(assign_qos(poisson_service(4, BYTES, 1024, requests, 9), &QOS))
            .with_sim_mode(mode)
    };
    let reference = run(cfg(SimMode::Reference), Mechanism::DRange);
    let fast = run(cfg(SimMode::FastForward), Mechanism::DRange);
    assert_eq!(fast.cpu_cycles, reference.cpu_cycles, "{policy:?}: cycles");
    assert_eq!(fast.stats, reference.stats, "{policy:?}: engine stats");
    assert_eq!(fast.service, reference.service, "{policy:?}: service stats");
}

struct Cell {
    mech: &'static str,
    policy: &'static str,
    offered_mbps: u32,
    served_mbps: f64,
    jain: f64,
    tenant_p50: Vec<u64>,
    tenant_p99: Vec<u64>,
    tenant_mbps: Vec<f64>,
}

fn sweep_cell(
    mech: Mechanism,
    policy_label: &'static str,
    policy: FairnessPolicy,
    mbps: u32,
    requests: u64,
) -> Cell {
    let cfg = SystemConfig::dr_strange(0)
        .with_fairness(policy)
        .with_service(assign_qos(poisson_service(4, BYTES, mbps, requests, 9), &QOS));
    let res = run(cfg, mech);
    let svc = res.service.as_ref().expect("service stats");
    let seconds = res.cpu_cycles as f64 / 4e9;
    let tenant_mbps: Vec<f64> = (0..4)
        .map(|i| svc.client_served_mbps(i).unwrap_or(0.0))
        .collect();
    Cell {
        mech: mech.label(),
        policy: policy_label,
        offered_mbps: mbps,
        served_mbps: svc.bytes_served as f64 * 8.0 / seconds / 1e6,
        jain: jain_index(&tenant_mbps).expect("tenants served"),
        tenant_p50: (0..4)
            .map(|i| svc.client_latency_percentile(i, 0.50).expect("completions"))
            .collect(),
        tenant_p99: (0..4)
            .map(|i| svc.client_latency_percentile(i, 0.99).expect("completions"))
            .collect(),
        tenant_mbps,
    }
}

/// The contended acceptance scenario: per-policy Low/High p99 on the
/// shared `contended_qos_service` shape, bounds asserted.
struct Contended {
    policy: &'static str,
    low_p99: u64,
    high_p99: u64,
}

fn contended_scenario(requests: u64) -> Vec<Contended> {
    let cells: Vec<Contended> = policies()
        .into_iter()
        .map(|(label, policy)| {
            let cfg = SystemConfig::dr_strange(0)
                .with_fairness(policy)
                .with_service(contended_qos_service(64, requests));
            let res = run(cfg, Mechanism::DRange);
            let svc = res.service.as_ref().expect("service stats");
            Contended {
                policy: label,
                low_p99: svc.client_latency_percentile(3, 0.99).expect("completions"),
                high_p99: svc.client_latency_percentile(0, 0.99).expect("completions"),
            }
        })
        .collect();
    let strict = &cells[0];
    for fair in &cells[1..] {
        assert!(
            fair.low_p99 * 5 <= strict.low_p99,
            "{} must cut the Low-tenant p99 >= 5x vs strict ({} vs {})",
            fair.policy,
            fair.low_p99,
            strict.low_p99
        );
        assert!(
            fair.high_p99 <= 2 * strict.high_p99,
            "{} may cost the High tenant at most 2x ({} vs {})",
            fair.policy,
            fair.high_p99,
            strict.high_p99
        );
    }
    cells
}

fn main() {
    let requests = requests_per_tenant();
    println!(
        "fairness sweep: 4 mixed-QoS tenants (High/High/Normal/Low), \
         {BYTES}-byte Poisson requests, {requests} requests/tenant\n"
    );
    for (label, policy) in policies() {
        assert_modes_identical(policy, requests.min(40));
        println!("determinism check: FastForward == Reference under {label}");
    }
    println!();

    let mut cells = Vec::new();
    println!(
        "{:10} {:>7} {:>8} {:>8} {:>6}  {:>28}  {:>28}",
        "mechanism", "policy", "offered", "served", "jain", "p99 (hi/hi/no/lo)", "Mb/s (hi/hi/no/lo)"
    );
    for mech in [Mechanism::DRange, Mechanism::Quac] {
        for &mbps in &mech.loads() {
            for (label, policy) in policies() {
                let cell = sweep_cell(mech, label, policy, mbps, requests);
                println!(
                    "{:10} {:>7} {:>7}M {:>7.0}M {:>6.3}  {:>28}  {:>28}",
                    cell.mech,
                    cell.policy,
                    cell.offered_mbps,
                    cell.served_mbps,
                    cell.jain,
                    cell.tenant_p99
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join("/"),
                    cell.tenant_mbps
                        .iter()
                        .map(|m| format!("{m:.0}"))
                        .collect::<Vec<_>>()
                        .join("/"),
                );
                cells.push(cell);
            }
        }
    }

    println!("\ncontended scenario (examples/concurrent_server.rs shape):");
    let contended = contended_scenario(requests.min(50));
    let strict_low = contended[0].low_p99;
    for c in &contended {
        println!(
            "  {:>7}: low p99 {:>8} ({:>5.1}x vs strict) high p99 {:>7}",
            c.policy,
            c.low_p99,
            strict_low as f64 / c.low_p99 as f64,
            c.high_p99
        );
    }

    let sweep_json = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"mechanism\": \"{}\", \"policy\": \"{}\", \"offered_mbps\": {}, \
                 \"served_mbps\": {:.1}, \"jain_index\": {:.4}, \"tenant_p50\": {:?}, \
                 \"tenant_p99\": {:?}, \"tenant_mbps\": [{}]}}",
                c.mech,
                c.policy,
                c.offered_mbps,
                c.served_mbps,
                c.jain,
                c.tenant_p50,
                c.tenant_p99,
                c.tenant_mbps
                    .iter()
                    .map(|m| format!("{m:.1}"))
                    .collect::<Vec<_>>()
                    .join(", "),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let contended_json = contended
        .iter()
        .map(|c| {
            format!(
                "    {{\"policy\": \"{}\", \"low_p99\": {}, \"high_p99\": {}, \
                 \"low_p99_cut_vs_strict\": {:.2}}}",
                c.policy,
                c.low_p99,
                c.high_p99,
                strict_low as f64 / c.low_p99 as f64,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bytes_per_request\": {BYTES},\n  \"requests_per_tenant\": {requests},\n  \
         \"qos_mix\": [\"high\", \"high\", \"normal\", \"low\"],\n  \
         \"latency_unit\": \"cpu_cycles_at_4ghz\",\n  \"sweep\": [\n{sweep_json}\n  ],\n  \
         \"contended\": [\n{contended_json}\n  ]\n}}\n"
    );
    let out =
        std::env::var("BENCH_FAIRNESS_OUT").unwrap_or_else(|_| "BENCH_fairness.json".to_string());
    std::fs::write(&out, json).expect("write benchmark json");
    println!("\nwrote {out}");
}
