//! Fast-forward engine benchmark: wall-clock speedup of the event-driven
//! simulation loop over the per-cycle reference on idle-dominated
//! workloads (the fig05/fig15 low-utilization regime), plus a busy
//! workload as a regression guard.
//!
//! Emits `BENCH_fastforward.json` (in the working directory, or at
//! `$BENCH_FASTFORWARD_OUT`) with wall times and simulated cycles/second
//! so CI can track the perf trajectory across PRs.
//!
//! Scale comes from the shared [`ScaleConfig`] (so `STRANGE_INSTR`
//! applies uniformly across every bench target). Note: the unset-env
//! default is therefore the harness default (200 000 instructions/core);
//! before PR 2 this bench privately defaulted to 120 000, so absolute
//! wall times are only comparable at a pinned `STRANGE_INSTR` (CI pins
//! 60 000).

use std::time::Instant;

use strange_bench::ScaleConfig;
use strange_core::{SimMode, System, SystemConfig};
use strange_trng::DRange;
use strange_workloads::{app_by_name, eval_pairs, Workload};

struct Case {
    name: &'static str,
    cfg: SystemConfig,
    workload: Workload,
}

struct Measurement {
    name: &'static str,
    reference_ms: f64,
    fastforward_ms: f64,
    cycles: u64,
    ref_cps: f64,
    ff_cps: f64,
    speedup: f64,
}

fn run_mode(case: &Case, mode: SimMode) -> (f64, u64) {
    let cfg = case.cfg.clone().with_sim_mode(mode);
    let mut sys = System::new(cfg, case.workload.traces(), Box::new(DRange::new(1)))
        .expect("valid configuration");
    let start = Instant::now();
    let res = sys.run();
    (start.elapsed().as_secs_f64() * 1e3, res.cpu_cycles)
}

fn measure(case: &Case) -> Measurement {
    // One warm-up pass per mode, then take the best of three.
    let best = |mode: SimMode| -> (f64, u64) {
        run_mode(case, mode);
        let mut best_ms = f64::INFINITY;
        let mut cycles = 0;
        for _ in 0..3 {
            let (ms, c) = run_mode(case, mode);
            if ms < best_ms {
                best_ms = ms;
            }
            cycles = c;
        }
        (best_ms, cycles)
    };
    let (reference_ms, ref_cycles) = best(SimMode::Reference);
    let (fastforward_ms, ff_cycles) = best(SimMode::FastForward);
    assert_eq!(
        ref_cycles, ff_cycles,
        "{}: modes must simulate identical cycle counts",
        case.name
    );
    Measurement {
        name: case.name,
        reference_ms,
        fastforward_ms,
        cycles: ref_cycles,
        ref_cps: ref_cycles as f64 / (reference_ms / 1e3),
        ff_cps: ff_cycles as f64 / (fastforward_ms / 1e3),
        speedup: reference_ms / fastforward_ms,
    }
}

fn main() {
    // Explicit scale-config injection (shared with the harness) instead of
    // a private environment read.
    let target = ScaleConfig::from_env().instr;
    let pairs = eval_pairs(5120);
    // Fig. 5/15 + Sec. 8.8 regime: a low-intensity application next to a
    // low-intensity (640 Mb/s) RNG benchmark — long idle periods, the
    // fast path's home turf.
    let idle_pair = Workload::pair(&app_by_name("povray").expect("catalog"), 640);
    let cases = vec![
        Case {
            name: "fig15_low_utilization",
            cfg: SystemConfig::dr_strange(2).with_instruction_target(target),
            workload: idle_pair.clone(),
        },
        Case {
            name: "fig05_idle_baseline",
            cfg: SystemConfig::rng_oblivious(2).with_instruction_target(target),
            workload: idle_pair,
        },
        Case {
            // Memory-intensive pair at the paper's highest RNG intensity:
            // little to skip; guards against the event probing regressing
            // the busy path.
            name: "busy_guard",
            cfg: SystemConfig::dr_strange(2).with_instruction_target(target),
            workload: pairs[0].clone(),
        },
    ];

    println!("fast-forward vs per-cycle reference ({target} instructions/core)\n");
    let mut rows = Vec::new();
    for case in &cases {
        let m = measure(case);
        println!(
            "{:24} {:10} cycles  ref {:8.1} ms ({:9.0} cyc/s)  ff {:8.1} ms ({:9.0} cyc/s)  speedup {:5.2}x",
            m.name, m.cycles, m.reference_ms, m.ref_cps, m.fastforward_ms, m.ff_cps, m.speedup
        );
        rows.push(m);
    }

    let json = format!(
        "{{\n  \"instr_target\": {},\n  \"cases\": [\n{}\n  ]\n}}\n",
        target,
        rows.iter()
            .map(|m| {
                format!(
                    "    {{\"name\": \"{}\", \"cycles\": {}, \"reference_ms\": {:.3}, \
                     \"fastforward_ms\": {:.3}, \"reference_cycles_per_sec\": {:.0}, \
                     \"fastforward_cycles_per_sec\": {:.0}, \"speedup\": {:.3}}}",
                    m.name,
                    m.cycles,
                    m.reference_ms,
                    m.fastforward_ms,
                    m.ref_cps,
                    m.ff_cps,
                    m.speedup
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let out = std::env::var("BENCH_FASTFORWARD_OUT")
        .unwrap_or_else(|_| "BENCH_fastforward.json".to_string());
    std::fs::write(&out, json).expect("write benchmark json");
    println!("\nwrote {out}");

    let idle = &rows[0];
    if idle.speedup < 3.0 {
        println!(
            "WARNING: idle-dominated speedup {:.2}x below the 3x acceptance bar",
            idle.speedup
        );
    }
}
