//! Figure 1: the motivation study — slowdown of non-RNG and RNG
//! applications and system unfairness on the RNG-oblivious baseline, as
//! the required RNG throughput grows from 640 to 5120 Mb/s.
//!
//! Paper anchors: at 5 Gb/s the non-RNG applications slow down by 93.1% on
//! average; the least/most RNG-intensive applications slow down 21.4%/6.2%;
//! unfairness grows from 1.32 (640 Mb/s) to 2.61 (5120 Mb/s).

use strange_bench::{banner, mean, Design, Harness, Mech};
use strange_workloads::{eval_pairs, RNG_THROUGHPUTS_MBPS};

fn main() {
    banner(
        "Figure 1: Motivation (RNG-oblivious baseline, 172 workloads)",
        "non-RNG slowdown grows with RNG intensity (avg 1.93x at 5 Gb/s); \
         RNG apps slow down 6-21%; unfairness 1.32 -> 2.61",
    );
    let h = Harness::new();
    let mech = Mech::DRange;

    println!(
        "{:<10} {:>16} {:>14} {:>12}",
        "intensity", "nonRNG slowdown", "RNG slowdown", "unfairness"
    );
    let mut per_app_at_top: Vec<(String, f64, f64)> = Vec::new();
    for mbps in RNG_THROUGHPUTS_MBPS {
        let workloads = eval_pairs(mbps);
        let evals: Vec<_> = workloads
            .iter()
            .map(|w| h.eval_pair(Design::Oblivious, w, mech))
            .collect();
        let sd_app: Vec<f64> = evals.iter().map(|e| e.nonrng_slowdown).collect();
        let sd_rng: Vec<f64> = evals.iter().map(|e| e.rng_slowdown).collect();
        let unfair: Vec<f64> = evals.iter().map(|e| e.unfairness).collect();
        println!(
            "{:<10} {:>16.3} {:>14.3} {:>12.3}",
            format!("{mbps} Mb/s"),
            mean(&sd_app),
            mean(&sd_rng),
            mean(&unfair)
        );
        if mbps == 5120 {
            per_app_at_top = workloads
                .iter()
                .zip(&evals)
                .map(|(w, e)| (w.apps[0].label(), e.nonrng_slowdown, e.rng_slowdown))
                .collect();
        }
    }

    println!("\n--- per-application panels at 5120 Mb/s (figure x-axis order) ---");
    println!("{:<10} {:>16} {:>14}", "app", "nonRNG slowdown", "RNG slowdown");
    for (name, sd_app, sd_rng) in per_app_at_top.iter().take(23) {
        println!("{name:<10} {sd_app:>16.2} {sd_rng:>14.2}");
    }
}
