//! Figure 2: the effect of the provided TRNG throughput (200 Mb/s to
//! 6.4 Gb/s) on baseline non-RNG slowdown and fairness, as box plots over
//! the 43 two-core workloads with the 5120 Mb/s RNG benchmark.
//!
//! Paper anchors: max slowdown falls 7.3 → 2.5 and max unfairness 8.5 →
//! 2.3 across the sweep, and both saturate beyond ≈3.2 Gb/s.

use strange_bench::{banner, Design, Harness, Mech};
use strange_metrics::BoxStats;
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Figure 2: Effect of TRNG throughput (baseline, 43 workloads)",
        "slowdown and unfairness shrink with TRNG throughput and saturate \
         beyond ~3.2 Gb/s (max slowdown 7.3 -> 2.5; max unfairness 8.5 -> 2.3)",
    );
    let h = Harness::new();
    let workloads = eval_pairs(5120);

    println!("--- non-RNG slowdown (left panel) ---");
    let mut slow_boxes = Vec::new();
    let mut fair_boxes = Vec::new();
    for mbps in [200u32, 400, 800, 1600, 3200, 6400] {
        let mech = Mech::Throughput(mbps);
        let evals: Vec<_> = workloads
            .iter()
            .map(|w| h.eval_pair(Design::Oblivious, w, mech))
            .collect();
        let slowdowns: Vec<f64> = evals.iter().map(|e| e.nonrng_slowdown).collect();
        let unfairness: Vec<f64> = evals.iter().map(|e| e.unfairness).collect();
        slow_boxes.push((mbps, BoxStats::from_samples(&slowdowns).expect("samples")));
        fair_boxes.push((mbps, BoxStats::from_samples(&unfairness).expect("samples")));
    }
    for (mbps, b) in &slow_boxes {
        println!("{:>4} Mb/s: {}", mbps, b.summary());
    }
    println!("\n--- unfairness (right panel) ---");
    for (mbps, b) in &fair_boxes {
        println!("{:>4} Mb/s: {}", mbps, b.summary());
    }

    let first = slow_boxes.first().expect("sweep ran").1.max();
    let last = slow_boxes.last().expect("sweep ran").1.max();
    println!(
        "\nshape check: max slowdown falls from {first:.2} (200 Mb/s) to {last:.2} (6.4 Gb/s)"
    );
}
