//! Figure 5: the distribution of DRAM idle-period lengths for the
//! medium/high-intensity applications running alone.
//!
//! Paper anchors: for many applications most idle periods are shorter than
//! the 198 cycles a 64-bit generation needs — which is why DR-STRaNGe
//! generates in 8-bit batches (40 cycles) instead.

use strange_bench::{banner, Design, Harness, Mech, RunJob};
use strange_metrics::BoxStats;
use strange_workloads::{figure_apps, AppRef, Workload};

/// Cycles to generate one 64-bit number on demand (the figure's
/// horizontal reference line).
const REF_64BIT_CYCLES: f64 = 198.0;
/// The PeriodThreshold (8-bit batch time).
const REF_8BIT_CYCLES: f64 = 40.0;

fn main() {
    banner(
        "Figure 5: Distribution of DRAM idle period lengths (apps alone)",
        "a significant fraction of idle periods sit below the 198-cycle \
         64-bit line, motivating 8-bit (40-cycle) generation batches",
    );
    let h = Harness::new();
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "app", "q1", "median", "q3", "max", "<198cyc(%)", ">=40cyc(%)"
    );
    let mut below_198_total = 0u64;
    let mut total = 0u64;
    // One independent alone-run per figure app: a single parallel batch.
    let apps = figure_apps();
    let jobs: Vec<RunJob> = apps
        .iter()
        .map(|app| {
            let wl = Workload {
                name: format!("{}-alone", app.name),
                apps: vec![AppRef::Named(app.name)],
            };
            RunJob::new(Design::Oblivious, wl, Mech::DRange)
        })
        .collect();
    let results = h.run_many(&jobs);
    for (app, res) in apps.iter().zip(&results) {
        let mut periods: Vec<f64> = Vec::new();
        for ch in &res.channels {
            periods.extend(ch.idle_periods.iter().map(|&p| p as f64));
        }
        if periods.is_empty() {
            println!("{:<10} (no idle periods)", app.name);
            continue;
        }
        let stats = BoxStats::from_samples(&periods).expect("non-empty");
        let below = periods.iter().filter(|&&p| p < REF_64BIT_CYCLES).count();
        let long = periods.iter().filter(|&&p| p >= REF_8BIT_CYCLES).count();
        below_198_total += below as u64;
        total += periods.len() as u64;
        println!(
            "{:<10} {:>8.0} {:>8.0} {:>8.0} {:>10.0} {:>12.1} {:>12.1}",
            app.name,
            stats.q1(),
            stats.median(),
            stats.q3(),
            stats.max(),
            below as f64 / periods.len() as f64 * 100.0,
            long as f64 / periods.len() as f64 * 100.0,
        );
    }
    println!(
        "\nshape check: {:.1}% of all idle periods are below the 198-cycle 64-bit line \
         (paper: the majority)",
        below_198_total as f64 / total.max(1) as f64 * 100.0
    );
}
