//! Figure 6: dual-core performance — slowdown of non-RNG (top) and RNG
//! (bottom) applications under the RNG-oblivious baseline, the Greedy Idle
//! design, and DR-STRaNGe.
//!
//! Paper anchors: DR-STRaNGe improves non-RNG applications by 17.9% and
//! RNG applications by 25.1% on average over the baseline (Greedy: 7.6%
//! and 10.7%); RNG applications run 20.6% *faster* than alone.

use strange_bench::{
    banner, eval_pair_matrix_par, improvement_pct, mean, print_pair_metric, Design, Harness, Mech,
};
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Figure 6: Dual-core slowdowns (43 workloads @ 5120 Mb/s)",
        "DR-STRANGE improves non-RNG by 17.9% and RNG by 25.1% on average \
         (Greedy: 7.6% / 10.7%); RNG apps beat their alone baseline by 20.6%",
    );
    let designs = [Design::Oblivious, Design::Greedy, Design::DrStrange];
    let workloads = eval_pairs(5120);
    let h = Harness::new();
    let matrix = eval_pair_matrix_par(&h, &designs, &workloads, Mech::DRange);

    print_pair_metric(
        "non-RNG application slowdown (top panel)",
        &designs,
        &workloads,
        &matrix,
        |e| e.nonrng_slowdown,
    );
    print_pair_metric(
        "RNG application slowdown (bottom panel)",
        &designs,
        &workloads,
        &matrix,
        |e| e.rng_slowdown,
    );

    let avg = |d: usize, f: fn(&strange_bench::PairEval) -> f64| {
        mean(&matrix[d].iter().map(f).collect::<Vec<_>>())
    };
    println!("--- paper-vs-measured ---");
    println!(
        "non-RNG improvement: paper 17.9% (greedy 7.6%) | measured {:.1}% (greedy {:.1}%)",
        improvement_pct(avg(0, |e| e.nonrng_slowdown), avg(2, |e| e.nonrng_slowdown)),
        improvement_pct(avg(0, |e| e.nonrng_slowdown), avg(1, |e| e.nonrng_slowdown)),
    );
    println!(
        "RNG improvement:     paper 25.1% (greedy 10.7%) | measured {:.1}% (greedy {:.1}%)",
        improvement_pct(avg(0, |e| e.rng_slowdown), avg(2, |e| e.rng_slowdown)),
        improvement_pct(avg(0, |e| e.rng_slowdown), avg(1, |e| e.rng_slowdown)),
    );
    println!(
        "RNG vs alone:        paper -20.6% | measured {:+.1}%",
        (avg(2, |e| e.rng_slowdown) - 1.0) * 100.0
    );
}
