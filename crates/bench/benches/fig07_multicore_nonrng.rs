//! Figure 7: normalized weighted speedup of non-RNG applications in
//! multicore workloads — (a) the four-core LLLS/LLHS/LHHS/HHHS groups and
//! (b) the 4/8/16-core L/M/H class groups — for Greedy and DR-STRaNGe
//! normalized to the RNG-oblivious baseline.
//!
//! Paper anchors: +7.6% average for four-core workloads (growing with
//! memory intensity); +12.1%/+8.2%/+6.1% for H/M/L class groups.

use strange_bench::{banner, eval_multi_matrix_par, gmean, Design, Harness, Mech, MIX_SEED};
use strange_workloads::{four_core_groups, multicore_class_groups, Workload};

const DESIGNS: [Design; 3] = [Design::Oblivious, Design::Greedy, Design::DrStrange];

fn group_speedups(h: &Harness, name: &str, workloads: &[Workload]) -> (f64, f64) {
    let matrix = eval_multi_matrix_par(h, &DESIGNS, workloads, Mech::DRange);
    let normalized = |d: usize| -> Vec<f64> {
        (0..workloads.len())
            .map(|w| matrix[d][w].weighted_speedup / matrix[0][w].weighted_speedup)
            .collect()
    };
    let (g, d) = (gmean(&normalized(1)), gmean(&normalized(2)));
    println!("{name:<10} {g:>10.3} {d:>12.3}");
    (g, d)
}

fn main() {
    banner(
        "Figure 7: Normalized weighted speedup of non-RNG apps (multicore)",
        "DR-STRANGE: +7.6% avg on 4-core groups; +12.1%/+8.2%/+6.1% on \
         H/M/L class groups; beats Greedy in nearly all groups",
    );
    let h = Harness::new();
    println!("{:<10} {:>10} {:>12}", "group", "Greedy", "DR-STRANGE");

    println!("--- (a) four-core groups ---");
    let mut all = Vec::new();
    for (name, ws) in four_core_groups(h.scale().per_group, MIX_SEED) {
        all.push(group_speedups(&h, &name, &ws));
    }
    let gm: Vec<f64> = all.iter().map(|x| x.1).collect();
    println!("GMEAN      {:>23.3}", gmean(&gm));

    println!("--- (b) 4/8/16-core class groups ---");
    for cores in [4usize, 8, 16] {
        for (name, ws) in multicore_class_groups(cores, h.scale().per_group, MIX_SEED) {
            group_speedups(&h, &name, &ws);
        }
    }
}
