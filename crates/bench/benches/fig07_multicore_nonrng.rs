//! Figure 7: normalized weighted speedup of non-RNG applications in
//! multicore workloads — (a) the four-core LLLS/LLHS/LHHS/HHHS groups and
//! (b) the 4/8/16-core L/M/H class groups — for Greedy and DR-STRaNGe
//! normalized to the RNG-oblivious baseline.
//!
//! Paper anchors: +7.6% average for four-core workloads (growing with
//! memory intensity); +12.1%/+8.2%/+6.1% for H/M/L class groups.

use strange_bench::{banner, gmean, per_group, Design, Harness, Mech, MIX_SEED};
use strange_workloads::{four_core_groups, multicore_class_groups, Workload};

fn group_speedups(
    h: &mut Harness,
    name: &str,
    workloads: &[Workload],
) -> (f64, f64) {
    let mut greedy = Vec::new();
    let mut drst = Vec::new();
    for wl in workloads {
        let base = h.eval_multi(Design::Oblivious, wl, Mech::DRange).weighted_speedup;
        let g = h.eval_multi(Design::Greedy, wl, Mech::DRange).weighted_speedup;
        let d = h.eval_multi(Design::DrStrange, wl, Mech::DRange).weighted_speedup;
        greedy.push(g / base);
        drst.push(d / base);
    }
    let (g, d) = (gmean(&greedy), gmean(&drst));
    println!("{name:<10} {g:>10.3} {d:>12.3}");
    (g, d)
}

fn main() {
    banner(
        "Figure 7: Normalized weighted speedup of non-RNG apps (multicore)",
        "DR-STRANGE: +7.6% avg on 4-core groups; +12.1%/+8.2%/+6.1% on \
         H/M/L class groups; beats Greedy in nearly all groups",
    );
    let mut h = Harness::new();
    println!("{:<10} {:>10} {:>12}", "group", "Greedy", "DR-STRANGE");

    println!("--- (a) four-core groups ---");
    let mut all = Vec::new();
    for (name, ws) in four_core_groups(per_group(), MIX_SEED) {
        all.push(group_speedups(&mut h, &name, &ws));
    }
    let gm: Vec<f64> = all.iter().map(|x| x.1).collect();
    println!("GMEAN      {:>23.3}", gmean(&gm));

    println!("--- (b) 4/8/16-core class groups ---");
    for cores in [4usize, 8, 16] {
        for (name, ws) in multicore_class_groups(cores, per_group(), MIX_SEED) {
            group_speedups(&mut h, &name, &ws);
        }
    }
}
