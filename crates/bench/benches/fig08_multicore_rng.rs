//! Figure 8: slowdown of the RNG application in multicore workloads under
//! the three designs, normalized to running alone.
//!
//! Paper anchors: DR-STRaNGe improves RNG applications by 17.8% on average
//! in the four-core groups, and by 4.5%/6.7%/16.9% in H/M/L class groups;
//! never worse than Greedy.

use strange_bench::{banner, eval_multi_matrix_par, mean, Design, Harness, Mech, MIX_SEED};
use strange_workloads::{four_core_groups, multicore_class_groups, Workload};

const DESIGNS: [Design; 3] = [Design::Oblivious, Design::Greedy, Design::DrStrange];

fn group_slowdowns(h: &Harness, name: &str, workloads: &[Workload]) {
    let matrix = eval_multi_matrix_par(h, &DESIGNS, workloads, Mech::DRange);
    let avg = |d: usize| mean(&matrix[d].iter().map(|e| e.rng_slowdown).collect::<Vec<_>>());
    println!(
        "{name:<10} {:>12.3} {:>10.3} {:>12.3}",
        avg(0),
        avg(1),
        avg(2)
    );
}

fn main() {
    banner(
        "Figure 8: RNG application slowdown (multicore workloads)",
        "DR-STRANGE improves RNG apps by 17.8% avg on 4-core groups and \
         4.5%/6.7%/16.9% on H/M/L groups; at least matches Greedy everywhere",
    );
    let h = Harness::new();
    println!(
        "{:<10} {:>12} {:>10} {:>12}",
        "group", "Oblivious", "Greedy", "DR-STRANGE"
    );
    println!("--- (a) four-core groups ---");
    for (name, ws) in four_core_groups(h.scale().per_group, MIX_SEED) {
        group_slowdowns(&h, &name, &ws);
    }
    println!("--- (b) 4/8/16-core class groups ---");
    for cores in [4usize, 8, 16] {
        for (name, ws) in multicore_class_groups(cores, h.scale().per_group, MIX_SEED) {
            group_slowdowns(&h, &name, &ws);
        }
    }
}
