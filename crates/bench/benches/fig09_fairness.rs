//! Figure 9: system fairness on the dual-core workloads under the three
//! designs.
//!
//! Paper anchors: DR-STRaNGe improves average fairness by 32.1% over the
//! baseline and by 15.2% over Greedy Idle; a few workloads (e.g. jp2d,
//! cactus) show *higher* unfairness under DR-STRaNGe because the RNG
//! application improves more than the non-RNG one.

use strange_bench::{
    banner, eval_pair_matrix_par, improvement_pct, mean, print_pair_metric, Design, Harness, Mech,
};
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Figure 9: System fairness (43 dual-core workloads)",
        "DR-STRANGE improves average fairness by 32.1% over the baseline \
         and 15.2% over Greedy",
    );
    let designs = [Design::Oblivious, Design::Greedy, Design::DrStrange];
    let workloads = eval_pairs(5120);
    let h = Harness::new();
    let matrix = eval_pair_matrix_par(&h, &designs, &workloads, Mech::DRange);

    print_pair_metric(
        "unfairness index (lower is better)",
        &designs,
        &workloads,
        &matrix,
        |e| e.unfairness,
    );

    let avg = |d: usize| mean(&matrix[d].iter().map(|e| e.unfairness).collect::<Vec<_>>());
    println!("--- paper-vs-measured ---");
    println!(
        "fairness improvement vs baseline: paper 32.1% | measured {:.1}%",
        improvement_pct(avg(0), avg(2))
    );
    println!(
        "fairness improvement vs greedy:   paper 15.2% | measured {:.1}%",
        improvement_pct(avg(1), avg(2))
    );
}
