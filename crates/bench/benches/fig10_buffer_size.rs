//! Figure 10: the impact of the random number buffer size (simple
//! buffering, no predictor) on slowdowns and the buffer serve rate.
//!
//! Paper anchors: a 16-entry buffer improves non-RNG/RNG performance by
//! 11.7%/13.8% and achieves an average serve rate of 0.55; growing the
//! buffer past 16 entries helps only a few workloads (jp2e, cactus, libq).

use strange_bench::{
    banner, eval_pair_matrix_par, mean, print_pair_metric, Design, Harness, Mech, PairEval,
};
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Figure 10: Impact of the buffer size (simple buffering, 43 workloads)",
        "gains grow up to a 16-entry buffer (avg serve rate 0.55; non-RNG \
         +11.7%, RNG +13.8%); 64 entries help only a few workloads",
    );
    let designs = [
        Design::Buffered(0),
        Design::Buffered(1),
        Design::Buffered(4),
        Design::Buffered(16),
        Design::Buffered(64),
    ];
    let workloads = eval_pairs(5120);
    let h = Harness::new();
    let matrix = eval_pair_matrix_par(&h, &designs, &workloads, Mech::DRange);

    print_pair_metric(
        "non-RNG slowdown (top)",
        &designs,
        &workloads,
        &matrix,
        |e| e.nonrng_slowdown,
    );
    print_pair_metric(
        "RNG slowdown (middle)",
        &designs,
        &workloads,
        &matrix,
        |e| e.rng_slowdown,
    );
    print_pair_metric(
        "buffer serve rate (bottom, higher is better)",
        &designs,
        &workloads,
        &matrix,
        |e| e.serve_rate,
    );

    let avg = |d: usize, f: fn(&PairEval) -> f64| {
        mean(&matrix[d].iter().map(f).collect::<Vec<_>>())
    };
    println!("--- paper-vs-measured ---");
    println!(
        "16-entry serve rate: paper 0.55 | measured {:.2}",
        avg(3, |e| e.serve_rate)
    );
    println!(
        "16-entry vs no-buffer non-RNG: paper +11.7% | measured {:+.1}%",
        (1.0 - avg(3, |e| e.nonrng_slowdown) / avg(0, |e| e.nonrng_slowdown)) * 100.0
    );
    println!(
        "16-entry vs no-buffer RNG:     paper +13.8% | measured {:+.1}%",
        (1.0 - avg(3, |e| e.rng_slowdown) / avg(0, |e| e.rng_slowdown)) * 100.0
    );
}
