//! Figure 11: impact of the memory request scheduler — FR-FCFS+Cap vs
//! BLISS vs the RNG-aware scheduler (all without a random number buffer).
//!
//! Paper anchors: the RNG-aware scheduler improves fairness by 16.1% and
//! non-RNG/RNG performance by 5.6%/1.6%; BLISS *degrades* fairness by 6.6%
//! and non-RNG performance by 8.9% on these RNG-heavy workloads.

use strange_bench::{
    banner, eval_pair_matrix_par, improvement_pct, mean, print_pair_metric, Design, Harness, Mech,
    PairEval,
};
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Figure 11: Scheduler comparison (no buffer, 43 workloads)",
        "RNG-Aware beats FR-FCFS+Cap and BLISS: fairness +16.1%, non-RNG \
         +5.6%, RNG +1.6%; BLISS hurts fairness (-6.6%) and non-RNG (-8.9%)",
    );
    let designs = [
        Design::Oblivious,
        Design::ObliviousBliss,
        Design::RngAwareNoBuffer,
    ];
    let workloads = eval_pairs(5120);
    let h = Harness::new();
    let matrix = eval_pair_matrix_par(&h, &designs, &workloads, Mech::DRange);

    print_pair_metric(
        "non-RNG slowdown (top)",
        &designs,
        &workloads,
        &matrix,
        |e| e.nonrng_slowdown,
    );
    print_pair_metric(
        "RNG slowdown (middle)",
        &designs,
        &workloads,
        &matrix,
        |e| e.rng_slowdown,
    );
    print_pair_metric(
        "unfairness (bottom)",
        &designs,
        &workloads,
        &matrix,
        |e| e.unfairness,
    );

    let avg = |d: usize, f: fn(&PairEval) -> f64| {
        mean(&matrix[d].iter().map(f).collect::<Vec<_>>())
    };
    println!("--- paper-vs-measured (vs FR-FCFS+Cap) ---");
    println!(
        "RNG-Aware fairness: paper +16.1% | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.unfairness), avg(2, |e| e.unfairness))
    );
    println!(
        "RNG-Aware non-RNG:  paper +5.6%  | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.nonrng_slowdown), avg(2, |e| e.nonrng_slowdown))
    );
    println!(
        "BLISS fairness:     paper -6.6%  | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.unfairness), avg(1, |e| e.unfairness))
    );
}
