//! Figure 12: priority-based RNG-aware scheduling — DR-STRaNGe with the
//! non-RNG applications prioritized vs with the RNG application
//! prioritized, on 4/8/16-core class workloads.
//!
//! Paper anchors: prioritizing non-RNG apps improves their weighted
//! speedup by 8.9% over the baseline; prioritizing the RNG app improves
//! RNG performance by 9.9%; prioritizing RNG helps both app types in
//! 4-core workloads.

use strange_bench::{
    banner, eval_multi_matrix_par, gmean, mean, Design, Harness, Mech, MIX_SEED,
};
use strange_workloads::multicore_class_groups;

fn main() {
    banner(
        "Figure 12: Priority-based scheduling (4/8/16-core class groups)",
        "non-RNG-prioritized: +8.9% weighted speedup; RNG-prioritized: \
         +9.9% RNG performance (both vs the RNG-oblivious baseline)",
    );
    let h = Harness::new();
    let designs = [
        Design::Oblivious,
        Design::Priority(false),
        Design::Priority(true),
    ];
    println!(
        "{:<8} {:>14} {:>14} {:>12} {:>12}",
        "cores", "WS(non-RNG hi)", "WS(RNG hi)", "sdRNG(nonhi)", "sdRNG(hi)"
    );
    let mut ws_nonrng_all = Vec::new();
    let mut sd_rng_all = Vec::new();
    for cores in [4usize, 8, 16] {
        let mut ws = [Vec::new(), Vec::new()];
        let mut sd = [Vec::new(), Vec::new()];
        let workloads: Vec<_> = multicore_class_groups(cores, h.scale().per_group, MIX_SEED)
            .into_iter()
            .flat_map(|(_, ws)| ws)
            .collect();
        let matrix = eval_multi_matrix_par(&h, &designs, &workloads, Mech::DRange);
        for (w, base) in matrix[0].iter().enumerate() {
            for i in 0..2 {
                let e = matrix[i + 1][w];
                ws[i].push(e.weighted_speedup / base.weighted_speedup);
                sd[i].push(e.rng_slowdown / base.rng_slowdown);
            }
        }
        println!(
            "{cores:<8} {:>14.3} {:>14.3} {:>12.3} {:>12.3}",
            gmean(&ws[0]),
            gmean(&ws[1]),
            mean(&sd[0]),
            mean(&sd[1]),
        );
        ws_nonrng_all.extend(ws[0].iter().copied());
        sd_rng_all.extend(sd[1].iter().copied());
    }
    println!("--- paper-vs-measured ---");
    println!(
        "non-RNG prioritized weighted speedup: paper +8.9% | measured {:+.1}%",
        (gmean(&ws_nonrng_all) - 1.0) * 100.0
    );
    println!(
        "RNG prioritized RNG performance:      paper +9.9% | measured {:+.1}%",
        (1.0 - mean(&sd_rng_all)) * 100.0
    );
}
