//! Figure 13: the impact of the DRAM idleness predictor — no predictor
//! (simple buffering), the simple table predictor, and the Q-learning
//! agent.
//!
//! Paper anchors: the simple predictor improves DR-STRaNGe by 12.4%
//! (non-RNG) / 13.8% (RNG) over no predictor, and performs on par with the
//! RL predictor at far lower hardware cost (RL: 19.3%/23.9% vs baseline,
//! simple: 17.9%/25.1%).

use strange_bench::{
    banner, eval_pair_matrix_par, improvement_pct, mean, print_pair_metric, Design, Harness, Mech,
    PairEval,
};
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Figure 13: DRAM idleness predictor ablation (43 workloads)",
        "simple predictor ~= RL predictor, both well ahead of no-predictor \
         buffering (non-RNG +12.4%, RNG +13.8% over No Pred.)",
    );
    let designs = [
        Design::Oblivious,
        Design::DrStrangeNoPred,
        Design::DrStrange,
        Design::DrStrangeRl,
    ];
    let workloads = eval_pairs(5120);
    let h = Harness::new();
    let matrix = eval_pair_matrix_par(&h, &designs, &workloads, Mech::DRange);

    print_pair_metric(
        "non-RNG slowdown (top)",
        &designs,
        &workloads,
        &matrix,
        |e| e.nonrng_slowdown,
    );
    print_pair_metric(
        "RNG slowdown (bottom)",
        &designs,
        &workloads,
        &matrix,
        |e| e.rng_slowdown,
    );

    let avg = |d: usize, f: fn(&PairEval) -> f64| {
        mean(&matrix[d].iter().map(f).collect::<Vec<_>>())
    };
    println!("--- paper-vs-measured ---");
    println!(
        "simple vs no predictor (non-RNG): paper +12.4% | measured {:+.1}%",
        improvement_pct(avg(1, |e| e.nonrng_slowdown), avg(2, |e| e.nonrng_slowdown))
    );
    println!(
        "simple vs no predictor (RNG):     paper +13.8% | measured {:+.1}%",
        improvement_pct(avg(1, |e| e.rng_slowdown), avg(2, |e| e.rng_slowdown))
    );
    println!(
        "RL vs baseline (non-RNG):         paper +19.3% | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.nonrng_slowdown), avg(3, |e| e.nonrng_slowdown))
    );
}
