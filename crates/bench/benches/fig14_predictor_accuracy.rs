//! Figure 14: DRAM idleness predictor accuracy — per-workload for the
//! two-core suite and aggregated for the 2/4/8/16-core groups, for the
//! simple and Q-learning predictors.
//!
//! Paper anchors: both predictors reach ≈80% accuracy on two-core
//! workloads; accuracy drops with core count as idleness shrinks and
//! interference patterns grow more complex.

use strange_bench::{
    banner, eval_multi_matrix_par, eval_pair_matrix_par, gmean, mean, Design, Harness, Mech,
    MIX_SEED,
};
use strange_workloads::{eval_pairs, multicore_class_groups};

fn main() {
    banner(
        "Figure 14: Predictor accuracy (2-core per workload; 2-16 core GMEAN)",
        "simple ~80.0% and RL ~80.3% on 2-core; both degrade with core count",
    );
    let h = Harness::new();
    let designs = [Design::DrStrange, Design::DrStrangeRl];
    let workloads = eval_pairs(5120);

    println!("--- 2-core per-workload accuracy (%) ---");
    println!("{:<10} {:>12} {:>14}", "app", "DR-STRANGE", "DR-STRANGE+RL");
    let matrix = eval_pair_matrix_par(&h, &designs, &workloads, Mech::DRange);
    let mut simple2 = Vec::new();
    let mut rl2 = Vec::new();
    for (w, wl) in workloads.iter().enumerate() {
        let s = matrix[0][w].accuracy * 100.0;
        let r = matrix[1][w].accuracy * 100.0;
        if simple2.len() < 23 {
            println!("{:<10} {s:>12.1} {r:>14.1}", wl.apps[0].label());
        }
        simple2.push(s);
        rl2.push(r);
    }
    println!("AVG        {:>12.1} {:>14.1}", mean(&simple2), mean(&rl2));

    println!("\n--- multicore accuracy (GMEAN over class groups, %) ---");
    println!("{:<8} {:>12} {:>14}", "cores", "DR-STRANGE", "DR-STRANGE+RL");
    println!(
        "{:<8} {:>12.1} {:>14.1}",
        2,
        gmean(&simple2.iter().map(|x| x.max(1e-9)).collect::<Vec<_>>()),
        gmean(&rl2.iter().map(|x| x.max(1e-9)).collect::<Vec<_>>())
    );
    for cores in [4usize, 8, 16] {
        let group_wls: Vec<_> = multicore_class_groups(cores, h.scale().per_group, MIX_SEED)
            .into_iter()
            .flat_map(|(_, ws)| ws)
            .collect();
        let m = eval_multi_matrix_par(&h, &designs, &group_wls, Mech::DRange);
        let acc = |d: usize| -> Vec<f64> {
            m[d].iter()
                .map(|e| (e.accuracy * 100.0).max(1e-9))
                .collect()
        };
        println!(
            "{cores:<8} {:>12.1} {:>14.1}",
            gmean(&acc(0)),
            gmean(&acc(1))
        );
    }
    println!(
        "\npaper-vs-measured: 2-core accuracy paper 80.0%/80.3% | measured {:.1}%/{:.1}%",
        mean(&simple2),
        mean(&rl2)
    );
}
