//! Figure 15: the impact of the low-utilization prediction mechanism —
//! DR-STRaNGe with the low-utilization threshold disabled (0) vs the
//! paper's value (4).
//!
//! Paper anchors: the threshold-4 low-utilization path improves non-RNG
//! applications by 5.5% and RNG applications by 11.7% over idle-only
//! prediction.

use strange_bench::{
    banner, eval_pair_matrix_par, improvement_pct, mean, print_pair_metric, Design, Harness, Mech,
    PairEval,
};
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Figure 15: Low-utilization prediction (43 workloads)",
        "threshold 4 improves non-RNG by 5.5% and RNG by 11.7% over \
         threshold 0 (idle-only prediction)",
    );
    let designs = [
        Design::Oblivious,
        Design::DrStrangeNoLowUtil,
        Design::DrStrange,
    ];
    let workloads = eval_pairs(5120);
    let h = Harness::new();
    let matrix = eval_pair_matrix_par(&h, &designs, &workloads, Mech::DRange);

    print_pair_metric(
        "non-RNG slowdown (top)",
        &designs,
        &workloads,
        &matrix,
        |e| e.nonrng_slowdown,
    );
    print_pair_metric(
        "RNG slowdown (bottom)",
        &designs,
        &workloads,
        &matrix,
        |e| e.rng_slowdown,
    );
    print_pair_metric(
        "buffer serve rate",
        &designs,
        &workloads,
        &matrix,
        |e| e.serve_rate,
    );

    let avg = |d: usize, f: fn(&PairEval) -> f64| {
        mean(&matrix[d].iter().map(f).collect::<Vec<_>>())
    };
    println!("--- paper-vs-measured (threshold 4 vs threshold 0) ---");
    println!(
        "non-RNG: paper +5.5%  | measured {:+.1}%",
        improvement_pct(avg(1, |e| e.nonrng_slowdown), avg(2, |e| e.nonrng_slowdown))
    );
    println!(
        "RNG:     paper +11.7% | measured {:+.1}%",
        improvement_pct(avg(1, |e| e.rng_slowdown), avg(2, |e| e.rng_slowdown))
    );
}
