//! Figure 16: DR-STRaNGe with QUAC-TRNG as the underlying mechanism —
//! demonstrating mechanism independence (Section 8.7).
//!
//! Paper anchors: with QUAC-TRNG, DR-STRaNGe improves non-RNG/RNG
//! performance by 18.2%/17.2% and fairness by 10.9%; some high-intensity
//! workloads (zeusmp, lbm, mcf, h264d) see higher unfairness because the
//! non-RNG app improves more than the RNG app.

use strange_bench::{
    banner, eval_pair_matrix_par, improvement_pct, mean, print_pair_metric, Design, Harness, Mech,
    PairEval,
};
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Figure 16: QUAC-TRNG results (43 workloads)",
        "DR-STRANGE with QUAC-TRNG: non-RNG +18.2%, RNG +17.2%, fairness \
         +10.9% over the QUAC-TRNG baseline",
    );
    let designs = [Design::Oblivious, Design::Greedy, Design::DrStrange];
    let workloads = eval_pairs(5120);
    let h = Harness::new();
    let matrix = eval_pair_matrix_par(&h, &designs, &workloads, Mech::Quac);

    print_pair_metric(
        "non-RNG slowdown (top)",
        &designs,
        &workloads,
        &matrix,
        |e| e.nonrng_slowdown,
    );
    print_pair_metric(
        "RNG slowdown (middle)",
        &designs,
        &workloads,
        &matrix,
        |e| e.rng_slowdown,
    );
    print_pair_metric(
        "unfairness (bottom)",
        &designs,
        &workloads,
        &matrix,
        |e| e.unfairness,
    );

    let avg = |d: usize, f: fn(&PairEval) -> f64| {
        mean(&matrix[d].iter().map(f).collect::<Vec<_>>())
    };
    println!("--- paper-vs-measured (DR-STRANGE vs QUAC baseline) ---");
    println!(
        "non-RNG:  paper +18.2% | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.nonrng_slowdown), avg(2, |e| e.nonrng_slowdown))
    );
    println!(
        "RNG:      paper +17.2% | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.rng_slowdown), avg(2, |e| e.rng_slowdown))
    );
    println!(
        "fairness: paper +10.9% | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.unfairness), avg(2, |e| e.unfairness))
    );
}
