//! Figure 17 (Appendix A.1): RNG applications requiring 10 Gb/s — the
//! benefits of DR-STRaNGe grow with RNG intensity.
//!
//! Paper anchors: at 10 Gb/s, DR-STRaNGe improves non-RNG/RNG performance
//! by 34.9%/24.5% and fairness by 56.9% over the baseline.

use strange_bench::{
    banner, eval_pair_matrix_par, improvement_pct, mean, print_pair_metric, Design, Harness, Mech,
    PairEval,
};
use strange_workloads::{eval_pairs, RNG_THROUGHPUT_HIGH_MBPS};

fn main() {
    banner(
        "Figure 17: 10 Gb/s RNG applications (43 workloads)",
        "DR-STRANGE: non-RNG +34.9%, RNG +24.5%, fairness +56.9% over the \
         baseline at the highest intensity",
    );
    let designs = [Design::Oblivious, Design::Greedy, Design::DrStrange];
    let workloads = eval_pairs(RNG_THROUGHPUT_HIGH_MBPS);
    let h = Harness::new();
    let matrix = eval_pair_matrix_par(&h, &designs, &workloads, Mech::DRange);

    print_pair_metric(
        "non-RNG slowdown (top)",
        &designs,
        &workloads,
        &matrix,
        |e| e.nonrng_slowdown,
    );
    print_pair_metric(
        "RNG slowdown (middle)",
        &designs,
        &workloads,
        &matrix,
        |e| e.rng_slowdown,
    );
    print_pair_metric(
        "unfairness (bottom)",
        &designs,
        &workloads,
        &matrix,
        |e| e.unfairness,
    );

    let avg = |d: usize, f: fn(&PairEval) -> f64| {
        mean(&matrix[d].iter().map(f).collect::<Vec<_>>())
    };
    println!("--- paper-vs-measured (DR-STRANGE vs baseline @10 Gb/s) ---");
    println!(
        "non-RNG:  paper +34.9% | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.nonrng_slowdown), avg(2, |e| e.nonrng_slowdown))
    );
    println!(
        "RNG:      paper +24.5% | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.rng_slowdown), avg(2, |e| e.rng_slowdown))
    );
    println!(
        "fairness: paper +56.9% | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.unfairness), avg(2, |e| e.unfairness))
    );
}
