//! Figure 18 (Appendix A.3): DRAM idle-period length distributions for
//! 4/8/16-core non-RNG workloads.
//!
//! Paper anchors: 84.3% of idle periods fall below the 198-cycle 64-bit
//! generation time; idle periods shrink with core count and memory
//! intensity.

use strange_bench::{banner, Design, Harness, Mech, RunJob, MIX_SEED};
use strange_metrics::BoxStats;
use strange_workloads::nonrng_class_groups;

const REF_64BIT_CYCLES: f64 = 198.0;

fn main() {
    banner(
        "Figure 18: Idle period lengths, multicore non-RNG workloads",
        "84.3% of idle periods are below the 198-cycle line; lengths shrink \
         with core count and intensity",
    );
    let h = Harness::new();
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "group", "q1", "median", "q3", "max", "<198cyc(%)"
    );
    let mut below = 0u64;
    let mut total = 0u64;
    for cores in [4usize, 8, 16] {
        for (name, workloads) in nonrng_class_groups(cores, h.scale().per_group, MIX_SEED) {
            // The group's runs are independent: one parallel batch each.
            let jobs: Vec<RunJob> = workloads
                .iter()
                .map(|wl| RunJob::new(Design::Oblivious, wl.clone(), Mech::DRange))
                .collect();
            let mut periods: Vec<f64> = Vec::new();
            for res in h.run_many(&jobs) {
                for ch in &res.channels {
                    periods.extend(ch.idle_periods.iter().map(|&p| p as f64));
                }
            }
            if periods.is_empty() {
                println!("{name:<8} (no idle periods)");
                continue;
            }
            let b = periods.iter().filter(|&&p| p < REF_64BIT_CYCLES).count();
            below += b as u64;
            total += periods.len() as u64;
            let stats = BoxStats::from_samples(&periods).expect("non-empty");
            println!(
                "{name:<8} {:>8.0} {:>8.0} {:>8.0} {:>10.0} {:>12.1}",
                stats.q1(),
                stats.median(),
                stats.q3(),
                stats.max(),
                b as f64 / periods.len() as f64 * 100.0
            );
        }
    }
    println!(
        "\npaper-vs-measured: short-period share paper 84.3% | measured {:.1}%",
        below as f64 / total.max(1) as f64 * 100.0
    );
}
