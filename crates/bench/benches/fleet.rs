//! Sharded fleet scale-out sweep: aggregate served throughput across
//! shard count × routing policy × offered load, with the fleet
//! determinism contract asserted in-bench:
//!
//! * fleet aggregate stats ≡ union of the shard-local stats;
//! * per-shard `Reference` ≡ `FastForward` bit-identity;
//! * full-scale record → replay reproducibility;
//! * 4-shard aggregate served Mb/s (host wall clock) ≥ 1.3× the
//!   single-shard run — **enforced only on hosts with ≥ 4 cores**
//!   (report-only on 1-CPU containers, where shard threads serialize).
//!
//! Emits `BENCH_fleet.json` (working directory, or `$BENCH_FLEET_OUT`).
//! Population size comes from `STRANGE_FLEET_SESSIONS` (default
//! 10 000); shard count from `STRANGE_SHARDS` (default 4).

use std::time::Instant;

use strange_core::{ClientSpec, RunResult, ServiceStats, SimMode, System, SystemConfig};
use strange_server::fleet::{
    partition_sessions, run_shards, shard_count, FleetStats, RoutePolicy, ShardRouter,
};
use strange_trng::DRange;
use strange_workloads::{
    fleet_flash_crowd, fleet_session_count, fleet_shard_seed, fleet_shard_service,
};

const FLEET_SEED: u64 = 2022;
const BYTES: usize = 32;
/// Offered-load dial: cycles between session arrivals in the ramp.
/// 50 drives D-RaNGe far past saturation (flash crowd); 2 000 stays
/// near capacity.
const STAGGERS: [u64; 2] = [50, 2_000];

fn policy_label(p: RoutePolicy) -> &'static str {
    match p {
        RoutePolicy::RoundRobin => "round-robin",
        RoutePolicy::SessionHash { .. } => "session-hash",
        RoutePolicy::LeastLoaded => "least-loaded",
    }
}

fn shard_system(specs: Vec<ClientSpec>, seed: u64, mode: SimMode) -> System {
    let mut svc = fleet_shard_service(specs);
    svc.capture_values = true;
    let cfg = SystemConfig::dr_strange(0)
        .with_sim_mode(mode)
        .with_service(svc);
    System::new(cfg, Vec::new(), Box::new(DRange::new(seed))).expect("valid configuration")
}

fn build_fleet(
    shards: usize,
    policy: RoutePolicy,
    specs: &[ClientSpec],
    mode: SimMode,
) -> Vec<System> {
    let mut router = ShardRouter::new(policy, shards);
    let (per_shard, _) = partition_sessions(&mut router, specs);
    per_shard
        .into_iter()
        .enumerate()
        .map(|(s, subset)| shard_system(subset, fleet_shard_seed(FLEET_SEED, s), mode))
        .collect()
}

/// Runs a fleet cell and returns the shard results plus host wall ms.
fn run_cell(
    shards: usize,
    policy: RoutePolicy,
    specs: &[ClientSpec],
    mode: SimMode,
) -> (Vec<(RunResult, System)>, f64) {
    let systems = build_fleet(shards, policy, specs, mode);
    let start = Instant::now();
    let results = run_shards(systems);
    (results, start.elapsed().as_secs_f64() * 1e3)
}

/// The union oracle: recompute every fleet aggregate directly from the
/// shard-local stats and assert [`FleetStats::aggregate`] matches.
fn assert_aggregate_equals_union(stats: &[ServiceStats]) -> FleetStats {
    let agg = FleetStats::aggregate(stats);
    assert_eq!(
        agg.requests_completed,
        stats.iter().map(|s| s.requests_completed).sum::<u64>(),
        "aggregate completed != union"
    );
    assert_eq!(
        agg.bytes_served,
        stats.iter().map(|s| s.bytes_served).sum::<u64>(),
        "aggregate bytes != union"
    );
    let mut union_log: Vec<u64> = stats
        .iter()
        .flat_map(|s| s.latency_log.iter().copied())
        .collect();
    union_log.sort_unstable();
    assert_eq!(agg.latency_log, union_log, "aggregate latency log != union");
    for (s, stat) in stats.iter().enumerate() {
        assert_eq!(agg.shard_bytes[s], stat.bytes_served, "shard {s} share");
    }
    agg
}

struct Cell {
    shards: usize,
    policy: &'static str,
    stagger: u64,
    served_mbps_wall: f64,
    served_mbps_sim: f64,
    p50: u64,
    p99: u64,
    jain: f64,
    completed: u64,
    wall_ms: f64,
}

fn main() {
    let sessions = fleet_session_count();
    let shards = shard_count();
    println!(
        "fleet scale-out sweep: {sessions} one-shot {BYTES}-byte sessions, \
         shard counts [1, {shards}], one driver thread per shard\n"
    );

    // --- Determinism gates (asserted before any timing) -------------
    let specs_tight = fleet_flash_crowd(sessions, BYTES, STAGGERS[0]);

    // Per-shard Reference ≡ FastForward on the tight-ramp population.
    let (ff, _) = run_cell(
        shards,
        RoutePolicy::SessionHash { salt: FLEET_SEED },
        &specs_tight,
        SimMode::FastForward,
    );
    let (reference, _) = run_cell(
        shards,
        RoutePolicy::SessionHash { salt: FLEET_SEED },
        &specs_tight,
        SimMode::Reference,
    );
    for (s, ((fr, fs), (rr, rs))) in ff.iter().zip(&reference).enumerate() {
        assert_eq!(
            fr.service, rr.service,
            "shard {s}: FastForward diverges from Reference"
        );
        assert_eq!(
            fs.service().expect("service").captured_words(),
            rs.service().expect("service").captured_words(),
            "shard {s}: served words diverge across sim modes"
        );
    }
    println!("determinism check: per-shard Reference == FastForward over {shards} shards");

    // Full-scale record → replay bit-identity.
    let mut router = ShardRouter::new(RoutePolicy::SessionHash { salt: FLEET_SEED }, shards);
    let (per_shard, _) = partition_sessions(&mut router, &specs_tight);
    let replay_systems: Vec<System> = ff
        .iter()
        .enumerate()
        .map(|(s, (_, sys))| {
            let svc = sys.service().expect("service");
            let specs: Vec<ClientSpec> = (0..svc.clients())
                .map(|c| {
                    ClientSpec::trace_replay(per_shard[s][c].bytes, svc.arrival_log(c).to_vec())
                })
                .collect();
            shard_system(specs, fleet_shard_seed(FLEET_SEED, s), SimMode::FastForward)
        })
        .collect();
    for (s, ((orig, _), (re, _))) in ff.iter().zip(run_shards(replay_systems)).enumerate() {
        assert_eq!(orig.service, re.service, "shard {s}: replay diverges");
    }
    println!("determinism check: {sessions}-session record -> replay is bit-identical\n");

    // --- Timed sweep ------------------------------------------------
    let policies = [
        RoutePolicy::SessionHash { salt: FLEET_SEED },
        RoutePolicy::RoundRobin,
        RoutePolicy::LeastLoaded,
    ];
    let mut cells: Vec<Cell> = Vec::new();
    println!(
        "{:>6} {:>13} {:>8} {:>10} {:>10} {:>9} {:>9} {:>6} {:>8}",
        "shards", "policy", "stagger", "wall Mb/s", "sim Mb/s", "p50", "p99", "jain", "wall ms"
    );
    for &stagger in &STAGGERS {
        let specs = fleet_flash_crowd(sessions, BYTES, stagger);
        for &n in &[1usize, shards] {
            for &policy in &policies {
                // A single shard routes identically under every policy;
                // run it once.
                if n == 1 && policy_label(policy) != "session-hash" {
                    continue;
                }
                let (results, wall_ms) = run_cell(n, policy, &specs, SimMode::FastForward);
                let stats: Vec<ServiceStats> = results
                    .iter()
                    .map(|(r, _)| r.service.clone().expect("service stats"))
                    .collect();
                let agg = assert_aggregate_equals_union(&stats);
                assert_eq!(
                    agg.requests_completed, sessions as u64,
                    "every session must complete"
                );
                let sim_cycles = results.iter().map(|(r, _)| r.cpu_cycles).max().unwrap_or(1);
                let cell = Cell {
                    shards: n,
                    policy: policy_label(policy),
                    stagger,
                    served_mbps_wall: agg.bytes_served as f64 * 8.0 / (wall_ms / 1e3) / 1e6,
                    served_mbps_sim: agg.bytes_served as f64 * 8.0
                        / (sim_cycles as f64 / 4e9)
                        / 1e6,
                    p50: agg.latency_percentile(0.50).expect("completions"),
                    p99: agg.latency_percentile(0.99).expect("completions"),
                    jain: agg.jain().expect("bytes served"),
                    completed: agg.requests_completed,
                    wall_ms,
                };
                println!(
                    "{:>6} {:>13} {:>8} {:>10.0} {:>10.0} {:>9} {:>9} {:>6.3} {:>8.1}",
                    cell.shards,
                    cell.policy,
                    cell.stagger,
                    cell.served_mbps_wall,
                    cell.served_mbps_sim,
                    cell.p50,
                    cell.p99,
                    cell.jain,
                    cell.wall_ms
                );
                cells.push(cell);
            }
        }
    }

    // --- Scale-out gate ---------------------------------------------
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let wall = |want_shards: usize, stagger: u64| {
        cells
            .iter()
            .find(|c| c.shards == want_shards && c.stagger == stagger && c.policy == "session-hash")
            .expect("cell present")
            .served_mbps_wall
    };
    let speedup = if shards > 1 {
        wall(shards, STAGGERS[0]) / wall(1, STAGGERS[0])
    } else {
        1.0
    };
    let enforce = host_cores >= 4 && shards >= 4;
    println!(
        "\n{shards}-shard aggregate wall throughput = {speedup:.2}x single-shard \
         ({host_cores} host cores; gate {})",
        if enforce { "enforced" } else { "report-only" }
    );
    if enforce {
        assert!(
            speedup >= 1.3,
            "{shards}-shard fleet must serve >= 1.3x single-shard wall throughput \
             on a {host_cores}-core host, got {speedup:.2}x"
        );
    }

    let json = format!(
        "{{\n  \"sessions\": {sessions},\n  \"bytes_per_request\": {BYTES},\n  \
         \"shard_counts\": [1, {shards}],\n  \"host_cores\": {host_cores},\n  \
         \"speedup_wall_{shards}shard\": {speedup:.3},\n  \"speedup_gate_enforced\": {enforce},\n  \
         \"latency_unit\": \"cpu_cycles_at_4ghz\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        cells
            .iter()
            .map(|c| {
                format!(
                    "    {{\"shards\": {}, \"policy\": \"{}\", \"stagger_cycles\": {}, \
                     \"served_mbps_wall\": {:.1}, \"served_mbps_sim\": {:.1}, \"p50\": {}, \
                     \"p99\": {}, \"jain\": {:.4}, \"completed\": {}, \"wall_ms\": {:.2}}}",
                    c.shards,
                    c.policy,
                    c.stagger,
                    c.served_mbps_wall,
                    c.served_mbps_sim,
                    c.p50,
                    c.p99,
                    c.jain,
                    c.completed,
                    c.wall_ms
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let out = std::env::var("BENCH_FLEET_OUT").unwrap_or_else(|_| "BENCH_fleet.json".to_string());
    std::fs::write(&out, json).expect("write benchmark json");
    println!("wrote {out}");
}
