//! Criterion microbenchmarks for the core data structures and the
//! simulator itself: cycles/second of full-system simulation, predictor
//! update rate, TRNG bit rate, buffer operations, and synthetic trace
//! generation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use strange_core::{
    IdlenessPredictor, QlearningPredictor, RandomNumberBuffer, SimplePredictor, System,
    SystemConfig,
};
use strange_cpu::TraceSource;
use strange_trng::{DRange, TrngMechanism};
use strange_workloads::{app_by_name, SyntheticTrace, Workload};

fn bench_system_ticks(c: &mut Criterion) {
    let mut g = c.benchmark_group("system");
    const CYCLES: u64 = 100_000;
    g.throughput(Throughput::Elements(CYCLES));
    g.sample_size(10);
    g.bench_function("dual_core_cpu_cycles", |b| {
        let workload = Workload::pair(&app_by_name("sphinx3").expect("catalog"), 5120);
        b.iter_batched(
            || {
                System::new(
                    SystemConfig::dr_strange(2).with_instruction_target(u64::MAX / 2),
                    workload.traces(),
                    Box::new(DRange::new(1)),
                )
                .expect("valid configuration")
            },
            |mut sys| sys.step_cpu_cycles(CYCLES),
            BatchSize::PerIteration,
        );
    });
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictor");
    g.throughput(Throughput::Elements(1));
    g.bench_function("simple_predict_update", |b| {
        let mut p = SimplePredictor::new();
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x9e37);
            let pred = p.predict(addr);
            p.update(addr, pred, addr & 1 == 0);
        });
    });
    g.bench_function("qlearning_predict_update", |b| {
        let mut p = QlearningPredictor::new();
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(0x9e37);
            let pred = p.predict(addr);
            p.update(addr, pred, addr & 1 == 0);
        });
    });
    g.finish();
}

fn bench_trng(c: &mut Criterion) {
    let mut g = c.benchmark_group("trng");
    g.throughput(Throughput::Elements(64));
    g.bench_function("drange_draw64", |b| {
        let mut d = DRange::new(1);
        b.iter(|| d.draw(64));
    });
    g.finish();
}

fn bench_buffer(c: &mut Criterion) {
    let mut g = c.benchmark_group("buffer");
    g.throughput(Throughput::Elements(8));
    g.bench_function("push8_pop64", |b| {
        let mut buf = RandomNumberBuffer::new(16);
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(0xAB);
            buf.push_bits(v, 8);
            if buf.available_words() > 0 {
                buf.pop_word();
            }
        });
    });
    g.finish();
}

fn bench_traces(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    g.throughput(Throughput::Elements(1));
    g.bench_function("synthetic_trace_op", |b| {
        let mut t = SyntheticTrace::new(app_by_name("mcf").expect("catalog"), 0);
        b.iter(|| t.next_op());
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_system_ticks,
    bench_predictors,
    bench_trng,
    bench_buffer,
    bench_traces
);
criterion_main!(benches);
