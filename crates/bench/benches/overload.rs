//! Overload-protection acceptance bench: flash-crowd storms against the
//! concurrent server facade with admission control on and off, plus
//! slow-drain and fault-under-load cells on the synchronous system.
//!
//! Four parts, with the acceptance bounds asserted in-bench:
//!
//! 1. **Uncontended baseline** — one tenant, widely spaced requests, no
//!    admission: the p99 every storm cell is compared against.
//! 2. **Flash-crowd storm, admission on** — three High-QoS sessions each
//!    releasing an open-loop burst far above the generation rate while a
//!    Low-QoS session trickles its own burst. Asserted: the *accepted*
//!    p99 stays within 10x the uncontended p99, the Low tenant's
//!    accepted p99 does not trend as the horizon doubles, and the shed
//!    fraction is bounded away from both 0 (the storm is real) and 1
//!    (the server still serves).
//! 3. **Flash-crowd storm, admission off** — the control: the same storm
//!    with every request accepted shows the queueing delay growing with
//!    the horizon (unbounded backlog), which is exactly what admission
//!    control buys protection from.
//! 4. **Slow-drain and fault-under-load cells** — synchronous `System`
//!    runs: weighted-fair episode caps deferring slow-drain batches, and
//!    a channel outage + entropy derate firing mid-storm with
//!    `FastForward` ≡ `Reference` asserted bit for bit.
//!
//! Emits `BENCH_overload.json` (working directory, or
//! `$BENCH_OVERLOAD_OUT`). Storm burst length comes from
//! `STRANGE_OVERLOAD_REQUESTS` (default 50 requests/session).

use strange_core::{
    ClientSpec, FairnessPolicy, FaultPlan, QosClass, RunResult, ServiceConfig, SimMode, System,
    SystemConfig,
};
use strange_server::{AdmissionConfig, Pacing, RngServer, ServerReport, SubmitOutcome};
use strange_trng::DRange;
use strange_workloads::{flash_crowd_with_victim, slow_drain_service};

const TRNG_SEED: u64 = 2022;
const BYTES: usize = 32;

fn requests_per_session() -> usize {
    std::env::var("STRANGE_OVERLOAD_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(50)
}

fn server_system() -> System {
    let cfg = SystemConfig::dr_strange(0)
        .with_fairness(FairnessPolicy::adaptive_aging())
        .with_service(ServiceConfig {
            sessions: true,
            ..ServiceConfig::default()
        });
    System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED))).expect("valid configuration")
}

/// The storm admission policy: soft-defer at queue depth 3 (the queue is
/// measured in words, so with 4-word requests this accepts only into an
/// empty queue), hard-shed at 16, 50k-cycle retry windows with a 2-defer
/// budget (sustained congestion exhausts it), tenant throttling off. The
/// wide retry window is what bounds the accepted tail: it spreads the
/// deferred-retry waves far enough apart that accepted requests drain
/// between waves instead of queueing behind a synchronized re-arrival
/// burst.
fn storm_admission() -> AdmissionConfig {
    AdmissionConfig {
        enabled: true,
        bucket_capacity: 0,
        cycles_per_token: 0,
        defer_queue_depth: 3,
        shed_queue_depth: 16,
        buffer_low_words: 16,
        max_defers: 2,
        defer_cycles: 50_000,
    }
}

fn pct(mut latencies: Vec<u64>, q: f64) -> u64 {
    assert!(!latencies.is_empty(), "percentile of an empty latency set");
    latencies.sort_unstable();
    let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
    latencies[idx]
}

/// One tenant issuing the Low session's exact trickle (2000-cycle gaps)
/// with nobody else on the machine: the uncontended latency the storm
/// bounds are anchored to. A single-word buffer keeps the predictive
/// filler from absorbing the trickle, so the baseline prices the real
/// demand-generation episode every storm-time request also pays (against
/// a full buffer every request is a ~50-cycle hit, which is not the
/// apples-to-apples anchor for a storm that runs the buffer dry).
fn uncontended_p99(requests: usize) -> u64 {
    let cfg = SystemConfig::dr_strange(0)
        .with_fairness(FairnessPolicy::adaptive_aging())
        .with_buffer_entries(1)
        .with_service(ServiceConfig {
            sessions: true,
            ..ServiceConfig::default()
        });
    let system =
        System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED))).expect("valid configuration");
    let server =
        RngServer::start_with_admission(system, Pacing::Virtual, AdmissionConfig::disabled());
    let mut h = server.open_session(ClientSpec::manual(BYTES));
    h.submit_burst(BYTES, 0, 2_000, requests, u64::MAX);
    let mut latencies = Vec::with_capacity(requests);
    for _ in 0..requests {
        match h.recv_outcome() {
            SubmitOutcome::Served(s) => latencies.push(s.latency_cycles),
            other => panic!("uncontended request not served: {other:?}"),
        }
    }
    h.close();
    server.shutdown();
    pct(latencies, 0.99)
}

struct Storm {
    scale: usize,
    accepted_p99: u64,
    low_p99: u64,
    shed_fraction: f64,
    report: ServerReport,
}

/// Releases the flash crowd (three High sessions bursting every 500
/// cycles) plus a Low-QoS session trickling its burst at 2000-cycle
/// gaps, and drains every outcome by polling — the only safe pattern
/// with several open interactive sessions gating virtual time.
fn storm(admission: AdmissionConfig, requests: usize) -> Storm {
    const CROWD: usize = 3;
    let server = RngServer::start_with_admission(server_system(), Pacing::Virtual, admission);
    let mut sessions: Vec<(Option<strange_server::SessionHandle>, usize, usize)> = Vec::new();
    for _ in 0..CROWD {
        let mut h = server.open_session(ClientSpec::manual(BYTES).with_qos(QosClass::High));
        h.submit_burst(BYTES, 0, 500, requests, u64::MAX);
        sessions.push((Some(h), requests, 0));
    }
    let low_requests = requests / 2;
    let mut low = server.open_session(ClientSpec::manual(BYTES).with_qos(QosClass::Low));
    low.submit_burst(BYTES, 0, 2_000, low_requests, u64::MAX);
    sessions.push((Some(low), low_requests, 0));

    let low_idx = sessions.len() - 1;
    let mut served: Vec<Vec<u64>> = vec![Vec::new(); sessions.len()];
    let mut open = sessions.len();
    // Drain by polling, and close each session the moment its burst is
    // fully resolved: a drained-but-open interactive session would gate
    // virtual time and freeze every other tenant.
    while open > 0 {
        for (i, (handle, target, done)) in sessions.iter_mut().enumerate() {
            let Some(h) = handle.as_mut() else { continue };
            while let Some(outcome) = h.try_recv_outcome() {
                if let SubmitOutcome::Served(s) = outcome {
                    served[i].push(s.latency_cycles);
                }
                *done += 1;
            }
            if *done == *target {
                handle.take().expect("present").close();
                open -= 1;
            }
        }
        std::thread::yield_now();
    }
    let report = server.shutdown();
    if std::env::var("STRANGE_OVERLOAD_DEBUG").is_ok() {
        for (i, lats) in served.iter().enumerate() {
            let mut v = lats.clone();
            v.sort_unstable();
            eprintln!("session {i}: {} served, latencies {v:?}", v.len());
        }
    }
    let low_p99 = pct(served[low_idx].clone(), 0.99);
    let all: Vec<u64> = served.into_iter().flatten().collect();
    Storm {
        scale: requests,
        accepted_p99: pct(all, 0.99),
        low_p99,
        shed_fraction: report.admission.shed_fraction(),
        report,
    }
}

struct SlowDrain {
    deferrals: u64,
    requests_completed: u64,
}

/// Weighted-fair episode caps under slow-drain tenants (48-word
/// requests): the cap must re-queue excess words so no tenant
/// monopolizes a generation episode — and the run must stay
/// FastForward ≡ Reference.
fn slow_drain_cell() -> SlowDrain {
    let run = |mode: SimMode| {
        let cfg = SystemConfig::dr_strange(0)
            .with_fairness(FairnessPolicy::weighted_fair())
            .with_service(slow_drain_service(3, 48, 2_000, 12))
            .with_sim_mode(mode);
        System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED)))
            .expect("valid configuration")
            .run()
    };
    let reference = run(SimMode::Reference);
    let fast = run(SimMode::FastForward);
    assert_eq!(fast.cpu_cycles, reference.cpu_cycles, "slow-drain: cycles");
    assert_eq!(fast.stats, reference.stats, "slow-drain: stats");
    assert_eq!(fast.service, reference.service, "slow-drain: service");
    assert!(
        fast.stats.demand_batch_deferrals > 0,
        "48-word requests must exceed the per-episode cap"
    );
    SlowDrain {
        deferrals: fast.stats.demand_batch_deferrals,
        requests_completed: fast
            .service
            .as_ref()
            .expect("service stats")
            .requests_completed,
    }
}

struct FaultCell {
    faults_injected: u64,
    degraded_generations: u64,
    victim_p99: u64,
}

/// A channel outage and an entropy derate firing while the flash crowd
/// slams the queue: the run must degrade gracefully (all targets met)
/// and replay bit for bit across simulation modes.
fn fault_under_load_cell() -> FaultCell {
    let plan = FaultPlan::new()
        .outage(5_000, 1, 25_000)
        .derate(8_000, 1, 2, 20_000);
    let run = |mode: SimMode| -> RunResult {
        let cfg = SystemConfig::dr_strange(0)
            .with_fairness(FairnessPolicy::weighted_fair())
            .with_fault_plan(plan.clone())
            .with_service(flash_crowd_with_victim(3, BYTES, 24, 5_000, 30, 2_000))
            .with_sim_mode(mode);
        System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED)))
            .expect("valid configuration")
            .run()
    };
    let reference = run(SimMode::Reference);
    let fast = run(SimMode::FastForward);
    assert!(!fast.hit_cycle_limit, "faulted storm must still drain");
    assert_eq!(fast.cpu_cycles, reference.cpu_cycles, "fault cell: cycles");
    assert_eq!(fast.stats, reference.stats, "fault cell: stats");
    assert_eq!(fast.service, reference.service, "fault cell: service");
    assert_eq!(fast.stats.faults_injected, 2, "both events fired");
    let svc = fast.service.as_ref().expect("service stats");
    FaultCell {
        faults_injected: fast.stats.faults_injected,
        degraded_generations: fast.stats.degraded_generations,
        victim_p99: svc
            .client_latency_percentile(3, 0.99)
            .expect("victim completions"),
    }
}

fn main() {
    let requests = requests_per_session();
    println!(
        "overload bench: 3-session flash crowd + Low trickle, {BYTES}-byte requests, \
         {requests} requests/session\n"
    );

    let baseline_p99 = uncontended_p99(requests.min(40));
    println!("uncontended p99: {baseline_p99} cycles");

    // Admission on, at the base horizon and doubled.
    let on = storm(storm_admission(), requests);
    let on2 = storm(storm_admission(), requests * 2);
    for s in [&on, &on2] {
        println!(
            "admission on  x{:>3}: accepted p99 {:>8} low p99 {:>8} shed {:>5.1}% ({:?})",
            s.scale,
            s.accepted_p99,
            s.low_p99,
            s.shed_fraction * 100.0,
            s.report.admission,
        );
    }
    // The headline acceptance bound: admission keeps the accepted tail
    // within an order of magnitude of the uncontended tail even under a
    // many-fold overload.
    for s in [&on, &on2] {
        assert!(
            s.accepted_p99 <= 10 * baseline_p99,
            "accepted p99 must stay within 10x uncontended ({} vs {baseline_p99})",
            s.accepted_p99
        );
        assert!(s.shed_fraction > 0.0, "the storm must actually overload");
        assert!(s.shed_fraction < 0.95, "the server must keep serving");
    }
    assert!(
        on2.low_p99 * 2 <= 3 * on.low_p99,
        "Low-tenant accepted p99 must not trend as the horizon doubles ({} -> {})",
        on.low_p99,
        on2.low_p99
    );

    // Control: the same storm with admission off sees its tail grow with
    // the horizon — the unbounded backlog the admission layer removes.
    let off = storm(AdmissionConfig::disabled(), requests);
    let off2 = storm(AdmissionConfig::disabled(), requests * 2);
    for s in [&off, &off2] {
        println!(
            "admission off x{:>3}: accepted p99 {:>8} low p99 {:>8}",
            s.scale, s.accepted_p99, s.low_p99
        );
    }
    assert_eq!(off.shed_fraction, 0.0, "nothing is shed without admission");
    assert!(
        off2.accepted_p99 * 2 >= off.accepted_p99 * 3,
        "without admission the p99 must keep growing with the backlog ({} -> {})",
        off.accepted_p99,
        off2.accepted_p99
    );
    assert!(
        off.accepted_p99 > on.accepted_p99,
        "admission control must beat the uncontrolled tail"
    );

    let slow = slow_drain_cell();
    println!(
        "\nslow-drain cell: {} episode-cap deferrals over {} requests (FastForward == Reference)",
        slow.deferrals, slow.requests_completed
    );
    let fault = fault_under_load_cell();
    println!(
        "fault-under-load cell: {} faults, {} degraded episodes, victim p99 {} \
         (FastForward == Reference)",
        fault.faults_injected, fault.degraded_generations, fault.victim_p99
    );

    let storm_json = [&on, &on2, &off, &off2]
        .iter()
        .zip(["on", "on", "off", "off"])
        .map(|(s, admission)| {
            format!(
                "    {{\"admission\": \"{admission}\", \"requests_per_session\": {}, \
                 \"accepted_p99\": {}, \"low_p99\": {}, \"shed_fraction\": {:.4}, \
                 \"accepted\": {}, \"deferred\": {}, \"shed\": {}, \"timed_out\": {}}}",
                s.scale,
                s.accepted_p99,
                s.low_p99,
                s.shed_fraction,
                s.report.admission.accepted,
                s.report.admission.deferred,
                s.report.admission.shed(),
                s.report.admission.timed_out,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"bytes_per_request\": {BYTES},\n  \"requests_per_session\": {requests},\n  \
         \"latency_unit\": \"cpu_cycles_at_4ghz\",\n  \"uncontended_p99\": {baseline_p99},\n  \
         \"bound_accepted_p99_vs_uncontended\": 10,\n  \"storm\": [\n{storm_json}\n  ],\n  \
         \"slow_drain\": {{\"episode_cap_deferrals\": {}, \"requests_completed\": {}}},\n  \
         \"fault_under_load\": {{\"faults_injected\": {}, \"degraded_generations\": {}, \
         \"victim_p99\": {}}}\n}}\n",
        slow.deferrals,
        slow.requests_completed,
        fault.faults_injected,
        fault.degraded_generations,
        fault.victim_p99,
    );
    let out =
        std::env::var("BENCH_OVERLOAD_OUT").unwrap_or_else(|_| "BENCH_overload.json".to_string());
    std::fs::write(&out, json).expect("write benchmark json");
    println!("\nwrote {out}");
}
