//! Entropy-health recovery bench: a stuck-at-one quality derate against
//! the watchdog, with the detection and recovery invariants asserted
//! in-bench and the measured latencies emitted as JSON.
//!
//! Two cells, each run under both simulation modes with bit-identity
//! asserted:
//!
//! 1. **Detection/recovery latency** — the synchronous system under the
//!    shared contended QoS load, driven incrementally so the exact
//!    quarantine and re-admission cycles are observable. Asserted: no
//!    false trip before the fault, quarantine within K = 16 global test
//!    windows (4 per channel) of the onset, re-admission after the
//!    derate lifts, and the probe-hygiene identity (every tainted probe
//!    word is discarded — none is ever buffered or served).
//! 2. **Server recovery tail** — one paced open-loop tenant against the
//!    concurrent server with admission control (whose watermarks derate
//!    by the quarantined-capacity fraction). The burst spans the whole
//!    fault window; the *accepted* p99 of the post-recovery phase must
//!    come back within 2x the pre-fault anchor p99.
//!
//! Emits `BENCH_recovery.json` (working directory, or
//! `$BENCH_RECOVERY_OUT`). Burst length comes from
//! `STRANGE_RECOVERY_REQUESTS` (default 240, floor 160 so every phase
//! holds enough arrivals to trip and re-admit the watchdog).

use strange_core::{
    ClientSpec, FairnessPolicy, FaultPlan, ServiceConfig, SimMode, System, SystemConfig,
    SystemStats, WatchdogConfig,
};
use strange_server::{AdmissionConfig, Pacing, RngServer, SubmitOutcome};
use strange_trng::DRange;
use strange_workloads::contended_qos_service;

const TRNG_SEED: u64 = 2022;
const BYTES: usize = 64;
/// CPU cycles between the server tenant's open-loop arrivals.
const GAP: u64 = 6_000;
/// 4 GHz CPU over an 800 MHz DRAM bus.
const CPU_PER_MEM: u64 = 5;
/// Detection bound: global quality windows tested between fault onset
/// and quarantine (4 channels x trip_failures, doubled for the window
/// straddling the onset).
const DETECT_WINDOW_BOUND: u64 = 16;
/// Recovery bound: post-recovery accepted p99 vs the pre-fault anchor.
const RECOVERY_P99_FACTOR: u64 = 2;

fn requests_total() -> usize {
    std::env::var("STRANGE_RECOVERY_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 160)
        .unwrap_or(240)
}

fn watchdog() -> WatchdogConfig {
    WatchdogConfig {
        probe_period: 4_000,
        ..WatchdogConfig::standard()
    }
}

fn pct(mut latencies: Vec<u64>, q: f64) -> u64 {
    assert!(!latencies.is_empty(), "percentile of an empty latency set");
    latencies.sort_unstable();
    let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
    latencies[idx]
}

struct Detection {
    /// CPU cycles from fault onset to the quarantine transition.
    detect_cycles: u64,
    /// Quality windows tested (all channels) across that span.
    windows_to_detect: u64,
    /// CPU cycles from the derate lifting to re-admission.
    recover_cycles: u64,
    stats: SystemStats,
    cpu_cycles: u64,
}

/// Cell 1: drive the synchronous system incrementally and read the
/// exact cycles at which the watchdog trips and re-admits.
fn detection_cell(mode: SimMode) -> Detection {
    const FAULT_AT_MEM: u64 = 20_000;
    const FAULT_DUR_MEM: u64 = 60_000;
    let fault_at_cpu = FAULT_AT_MEM * CPU_PER_MEM;
    let fault_end_cpu = (FAULT_AT_MEM + FAULT_DUR_MEM) * CPU_PER_MEM;
    let cap = fault_end_cpu + 600_000;
    let plan = FaultPlan::new().channel_derate(FAULT_AT_MEM, 0, 0, 1, FAULT_DUR_MEM);
    // Effectively endless contended load: the client targets are far
    // beyond the measurement horizon, so demand generation keeps the
    // sampler fed for the whole cell.
    let cfg = SystemConfig::dr_strange(0)
        .with_watchdog(watchdog())
        .with_fault_plan(plan)
        .with_service(contended_qos_service(BYTES, 100_000))
        .with_sim_mode(mode);
    let mut sys =
        System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED))).expect("valid configuration");

    sys.advance_until(fault_at_cpu, |_| false);
    let pre = sys.mem().stats().clone();
    assert_eq!(pre.quarantines, 0, "no false trip before the fault");

    sys.advance_until(cap, |s| s.mem().stats().quarantines >= 1);
    assert!(
        sys.mem().stats().quarantines >= 1,
        "the stuck channel must be quarantined within the cycle cap"
    );
    let detect_cycles = sys.cpu_cycles() - fault_at_cpu;
    let windows_to_detect = sys.mem().stats().windows_tested - pre.windows_tested;
    assert!(
        windows_to_detect <= DETECT_WINDOW_BOUND,
        "quarantine must land within {DETECT_WINDOW_BOUND} test windows of the onset \
         (took {windows_to_detect})"
    );

    sys.advance_until(cap, |s| s.mem().stats().readmissions >= 1);
    assert!(
        sys.mem().stats().readmissions >= 1,
        "the recovered channel must be re-admitted within the cycle cap"
    );
    let recover_cycles = sys.cpu_cycles().saturating_sub(fault_end_cpu);

    // Land both modes on the same final cycle so their stats compare.
    let remaining = (fault_at_cpu + cap).saturating_sub(sys.cpu_cycles());
    sys.advance_until(remaining, |_| false);
    let stats = sys.mem().stats().clone();
    assert_eq!(
        stats.tainted_words_discarded,
        stats.probe_rounds * u64::from(watchdog().probe_words),
        "probe hygiene: every tainted probe word is discarded, none served"
    );
    Detection {
        detect_cycles,
        windows_to_detect,
        recover_cycles,
        stats,
        cpu_cycles: sys.cpu_cycles(),
    }
}

struct ServerPhases {
    pre_p99: u64,
    during_p99: Option<u64>,
    post_p99: u64,
    refused: u64,
    latencies: Vec<Option<u64>>,
    system: SystemStats,
}

/// Cell 2: one open-loop tenant paced at `GAP` across the whole fault
/// window, against the concurrent server with admission derating. The
/// fault spans 20%..50% of the arrival horizon; the post-recovery phase
/// starts at 75%, leaving the watchdog a quarter of the horizon to
/// probe the channel back in.
fn server_cell(mode: SimMode, requests: usize) -> ServerPhases {
    let horizon = requests as u64 * GAP;
    let fault_at_mem = horizon / 5 / CPU_PER_MEM;
    let fault_dur_mem = (horizon * 3 / 10) / CPU_PER_MEM;
    let plan = FaultPlan::new().channel_derate(fault_at_mem, 0, 0, 1, fault_dur_mem);
    let cfg = SystemConfig::dr_strange(0)
        .with_fairness(FairnessPolicy::weighted_fair())
        .with_watchdog(watchdog())
        .with_fault_plan(plan)
        .with_sim_mode(mode)
        .with_service(ServiceConfig {
            sessions: true,
            ..ServiceConfig::default()
        });
    let system =
        System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED))).expect("valid configuration");
    // The queue is measured in words (8 per request here): defer at one
    // queued request with a low buffer, shed at four. Under quarantine
    // the derated watermarks tighten by the lost-capacity fraction.
    let admission = AdmissionConfig {
        enabled: true,
        bucket_capacity: 0,
        cycles_per_token: 0,
        defer_queue_depth: 8,
        shed_queue_depth: 32,
        buffer_low_words: 8,
        max_defers: 3,
        defer_cycles: 10_000,
    };
    let server = RngServer::start_with_admission(system, Pacing::Virtual, admission);
    let mut h = server.open_session(ClientSpec::manual(BYTES));
    h.submit_burst(BYTES, 0, GAP, requests, u64::MAX);
    // Outcomes arrive in arrival order on the single session, so index i
    // is the request that arrived at cycle i * GAP.
    let mut latencies: Vec<Option<u64>> = Vec::with_capacity(requests);
    let mut refused = 0;
    for _ in 0..requests {
        match h.recv_outcome() {
            SubmitOutcome::Served(s) => latencies.push(Some(s.latency_cycles)),
            _ => {
                refused += 1;
                latencies.push(None);
            }
        }
    }
    h.close();
    let report = server.shutdown();
    assert!(
        report.system.quarantines >= 1,
        "the server-side run must quarantine the stuck channel: {:?}",
        report.system
    );
    assert!(
        report.system.readmissions >= 1,
        "the channel must be re-admitted before the burst drains: {:?}",
        report.system
    );

    let phase = |range: std::ops::Range<usize>| -> Vec<u64> {
        latencies[range].iter().flatten().copied().collect()
    };
    let pre = phase(0..requests / 5);
    let during = phase(requests / 5..requests / 2);
    let post = phase(requests * 3 / 4..requests);
    assert!(!pre.is_empty() && !post.is_empty(), "phases must hold arrivals");
    ServerPhases {
        pre_p99: pct(pre, 0.99),
        during_p99: (!during.is_empty()).then(|| pct(during, 0.99)),
        post_p99: pct(post, 0.99),
        refused,
        latencies,
        system: report.system,
    }
}

fn main() {
    let requests = requests_total();
    println!(
        "recovery bench: stuck-at-one channel derate vs the entropy watchdog, \
         {BYTES}-byte requests, {requests} arrivals at {GAP}-cycle gaps\n"
    );

    // Cell 1 under both modes, bit-identical measurements.
    let reference = detection_cell(SimMode::Reference);
    let fast = detection_cell(SimMode::FastForward);
    assert_eq!(fast.cpu_cycles, reference.cpu_cycles, "detection cell: cycles");
    assert_eq!(fast.stats, reference.stats, "detection cell: stats");
    assert_eq!(
        (fast.detect_cycles, fast.windows_to_detect, fast.recover_cycles),
        (
            reference.detect_cycles,
            reference.windows_to_detect,
            reference.recover_cycles
        ),
        "detection cell: measured latencies must replay bit for bit"
    );
    println!(
        "detection: {} cpu cycles ({} test windows) from fault onset to quarantine",
        fast.detect_cycles, fast.windows_to_detect
    );
    println!(
        "recovery:  {} cpu cycles from derate end to re-admission \
         ({} probe rounds, {} tainted words discarded)",
        fast.recover_cycles, fast.stats.probe_rounds, fast.stats.tainted_words_discarded
    );

    // Cell 2 under both modes.
    let ref_srv = server_cell(SimMode::Reference, requests);
    let fast_srv = server_cell(SimMode::FastForward, requests);
    assert_eq!(
        fast_srv.latencies, ref_srv.latencies,
        "server cell: per-request outcomes must replay bit for bit"
    );
    assert_eq!(fast_srv.system, ref_srv.system, "server cell: engine stats");
    println!(
        "\nserver tail: pre-fault p99 {} | during-fault p99 {} | post-recovery p99 {} \
         ({} refused of {requests})",
        fast_srv.pre_p99,
        fast_srv
            .during_p99
            .map_or_else(|| "-".into(), |v| v.to_string()),
        fast_srv.post_p99,
        fast_srv.refused
    );
    assert!(
        fast_srv.post_p99 <= RECOVERY_P99_FACTOR * fast_srv.pre_p99,
        "post-recovery accepted p99 must come back within {RECOVERY_P99_FACTOR}x the \
         pre-fault anchor ({} vs {})",
        fast_srv.post_p99,
        fast_srv.pre_p99
    );

    let json = format!(
        "{{\n  \"bytes_per_request\": {BYTES},\n  \"requests\": {requests},\n  \
         \"arrival_gap_cycles\": {GAP},\n  \"latency_unit\": \"cpu_cycles_at_4ghz\",\n  \
         \"detect_window_bound\": {DETECT_WINDOW_BOUND},\n  \
         \"recovery_p99_factor\": {RECOVERY_P99_FACTOR},\n  \
         \"detection\": {{\"detect_cycles\": {}, \"windows_to_detect\": {}, \
         \"recover_cycles\": {}, \"quarantines\": {}, \"readmissions\": {}, \
         \"probe_rounds\": {}, \"tainted_words_discarded\": {}, \"windows_tested\": {}}},\n  \
         \"server\": {{\"pre_fault_p99\": {}, \"during_fault_p99\": {}, \
         \"post_recovery_p99\": {}, \"refused\": {}, \"quarantines\": {}, \
         \"readmissions\": {}}}\n}}\n",
        fast.detect_cycles,
        fast.windows_to_detect,
        fast.recover_cycles,
        fast.stats.quarantines,
        fast.stats.readmissions,
        fast.stats.probe_rounds,
        fast.stats.tainted_words_discarded,
        fast.stats.windows_tested,
        fast_srv.pre_p99,
        fast_srv.during_p99.map_or(-1i64, |v| v as i64),
        fast_srv.post_p99,
        fast_srv.refused,
        fast_srv.system.quarantines,
        fast_srv.system.readmissions,
    );
    let out =
        std::env::var("BENCH_RECOVERY_OUT").unwrap_or_else(|_| "BENCH_recovery.json".to_string());
    std::fs::write(&out, json).expect("write benchmark json");
    println!("\nwrote {out}");
}
