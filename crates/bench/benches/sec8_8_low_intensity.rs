//! Section 8.8: workloads with a low-intensity (640 Mb/s) RNG application.
//!
//! Paper anchors: DR-STRaNGe improves RNG/non-RNG applications by
//! 3.2%/4.6% — modest, because low RNG intensity causes little
//! interference to begin with — and fairness barely changes.

use strange_bench::{
    banner, eval_pair_matrix_par, improvement_pct, mean, Design, Harness, Mech, PairEval,
};
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Section 8.8: Low-intensity RNG applications (640 Mb/s)",
        "small improvements (RNG +3.2%, non-RNG +4.6%); fairness roughly flat",
    );
    let designs = [Design::Oblivious, Design::DrStrange];
    let workloads = eval_pairs(640);
    let h = Harness::new();
    let matrix = eval_pair_matrix_par(&h, &designs, &workloads, Mech::DRange);

    let avg = |d: usize, f: fn(&PairEval) -> f64| {
        mean(&matrix[d].iter().map(f).collect::<Vec<_>>())
    };
    println!(
        "{:<14} {:>16} {:>13} {:>12}",
        "design", "nonRNG slowdown", "RNG slowdown", "unfairness"
    );
    for (i, d) in designs.iter().enumerate() {
        println!(
            "{:<14} {:>16.3} {:>13.3} {:>12.3}",
            d.label(),
            avg(i, |e| e.nonrng_slowdown),
            avg(i, |e| e.rng_slowdown),
            avg(i, |e| e.unfairness)
        );
    }
    println!("--- paper-vs-measured ---");
    println!(
        "non-RNG: paper +4.6% | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.nonrng_slowdown), avg(1, |e| e.nonrng_slowdown))
    );
    println!(
        "RNG:     paper +3.2% | measured {:+.1}%",
        improvement_pct(avg(0, |e| e.rng_slowdown), avg(1, |e| e.rng_slowdown))
    );
}
