//! Section 8.9: energy consumption and area overhead.
//!
//! Paper anchors: DR-STRaNGe reduces memory energy by 21% and total memory
//! cycles by 15.8% versus the baseline; the structures cost 0.0022 mm²
//! with the simple predictor (0.00048% of a Cascade Lake core) and
//! 0.012 mm² with the RL predictor.

use strange_bench::{banner, improvement_pct, Design, Harness, Mech};
use strange_dram::TimingParams;
use strange_energy::{
    area_mm2, area_percent_of_core, system_energy, Ddr3PowerParams, StructureBits,
};
use strange_workloads::eval_pairs;

fn main() {
    banner(
        "Section 8.9: Energy and area",
        "energy -21% and memory cycles -15.8% vs baseline; area 0.0022 mm2 \
         (simple) / 0.012 mm2 (RL) at 22 nm",
    );
    let h = Harness::new();
    let timing = TimingParams::ddr3_1600();
    let power = Ddr3PowerParams::default();
    let workloads = eval_pairs(5120);

    let mut base_energy = 0.0;
    let mut ds_energy = 0.0;
    let mut base_cycles = 0u64;
    let mut ds_cycles = 0u64;
    for wl in &workloads {
        let base = h.run(Design::Oblivious, wl, Mech::DRange);
        let ds = h.run(Design::DrStrange, wl, Mech::DRange);
        base_energy += system_energy(&base.channels, &timing, &power).total_nj();
        ds_energy += system_energy(&ds.channels, &timing, &power).total_nj();
        base_cycles += base.mem_cycles;
        ds_cycles += ds.mem_cycles;
    }
    println!("--- energy over the 43 dual-core workloads ---");
    println!(
        "baseline:   {:>10.2} mJ over {} memory cycles",
        base_energy * 1e-6,
        base_cycles
    );
    println!(
        "DR-STRANGE: {:>10.2} mJ over {} memory cycles",
        ds_energy * 1e-6,
        ds_cycles
    );
    println!(
        "energy reduction: paper 21%   | measured {:.1}%",
        improvement_pct(base_energy, ds_energy)
    );
    println!(
        "cycle reduction:  paper 15.8% | measured {:.1}%",
        improvement_pct(base_cycles as f64, ds_cycles as f64)
    );

    println!("\n--- area (22 nm) ---");
    let simple = StructureBits::paper_simple();
    let rl = StructureBits::paper_rl();
    println!(
        "simple predictor config: paper 0.0022 mm2 (0.00048% of core) | \
         measured {:.4} mm2 ({:.5}%)",
        area_mm2(simple),
        area_percent_of_core(simple)
    );
    println!(
        "RL predictor config:     paper 0.012 mm2 | measured {:.4} mm2",
        area_mm2(rl)
    );
    println!("\n--- area sweep over buffer sizes (simple predictor) ---");
    for entries in [1usize, 4, 16, 64, 256] {
        let bits = StructureBits {
            buffer: entries as u64 * 64,
            ..StructureBits::paper_simple()
        };
        println!("{entries:>4}-entry buffer: {:.4} mm2", area_mm2(bits));
    }
}
