//! Concurrent RNG server load sweep: sustained served throughput and
//! request-latency percentiles across host-thread count × offered load ×
//! TRNG mechanism, through the `strange-server` async submit/drain
//! facade (one OS thread per session, virtual-time pacing).
//!
//! Each cell starts a server over a coreless DR-STRaNGe system, opens N
//! closed-loop sessions (32-byte `getrandom` requests, think time sets
//! the offered load), drives them from N host threads, and reads the
//! final `ServiceStats`. One cell additionally asserts the determinism
//! contract in-bench: the 4-thread async run must be bit-identical to
//! the synchronous `ServiceConfig` closed-loop run (stats including the
//! per-request latency log, plus the served words).
//!
//! Emits `BENCH_server.json` (working directory, or `$BENCH_SERVER_OUT`).
//! Requests per session come from `STRANGE_SERVER_REQUESTS` (default
//! 150).

use std::thread;
use std::time::Instant;

use strange_core::{ClientSpec, ServiceConfig, System, SystemConfig};
use strange_server::{Pacing, RngServer, ServerReport};
use strange_trng::{DRange, QuacTrng, TrngMechanism};

const BYTES_PER_REQUEST: usize = 32;
/// Host-thread counts (= concurrent sessions; one thread per session).
const THREADS: [usize; 3] = [1, 2, 4];
/// Closed-loop think times in CPU cycles: the offered-load dial (smaller
/// think → higher offered load; 500 drives D-RaNGe past saturation).
const THINKS: [u64; 2] = [500, 20_000];
const TRNG_SEED: u64 = 2022;

fn requests_per_session() -> u64 {
    std::env::var("STRANGE_SERVER_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(150)
}

#[derive(Clone, Copy, PartialEq)]
enum Mechanism {
    DRange,
    Quac,
}

impl Mechanism {
    fn label(self) -> &'static str {
        match self {
            Mechanism::DRange => "D-RaNGe",
            Mechanism::Quac => "QUAC-TRNG",
        }
    }

    fn build(self) -> Box<dyn TrngMechanism> {
        match self {
            Mechanism::DRange => Box::new(DRange::new(TRNG_SEED)),
            Mechanism::Quac => Box::new(QuacTrng::new(TRNG_SEED)),
        }
    }
}

fn server_system(mech: Mechanism) -> System {
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        capture_values: true,
        sessions: true,
        ..ServiceConfig::default()
    });
    System::new(cfg, Vec::new(), mech.build()).expect("valid configuration")
}

/// Drives `threads` closed-loop sessions (one host thread each) to
/// completion and returns the report plus host wall time.
fn drive(mech: Mechanism, threads: usize, think: u64, requests: u64) -> (ServerReport, f64) {
    let start = Instant::now();
    let server = RngServer::start(server_system(mech), Pacing::Virtual);
    let handles: Vec<_> = (0..threads)
        .map(|_| server.open_session(ClientSpec::manual(BYTES_PER_REQUEST)))
        .collect();
    let workers: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            thread::spawn(move || {
                let mut buf = [0u8; BYTES_PER_REQUEST];
                for _ in 0..requests {
                    let served = h.getrandom(&mut buf, think);
                    assert_eq!(served.words.len(), BYTES_PER_REQUEST / 8);
                }
                h.close();
            })
        })
        .collect();
    for w in workers {
        w.join().expect("session thread panicked");
    }
    let report = server.shutdown();
    (report, start.elapsed().as_secs_f64() * 1e3)
}

/// The determinism contract, asserted in-bench: N-thread async facade ≡
/// synchronous `service` run, bit for bit.
fn assert_async_equals_sync(requests: u64) {
    let think = THINKS[0];
    let (report, _) = drive(Mechanism::DRange, 4, think, requests);
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        clients: (0..4)
            .map(|_| ClientSpec::closed_loop(BYTES_PER_REQUEST, think, requests))
            .collect(),
        capture_values: true,
        ..ServiceConfig::default()
    });
    let mut sys = System::new(cfg, Vec::new(), Mechanism::DRange.build())
        .expect("valid configuration");
    let res = sys.run();
    assert!(!res.hit_cycle_limit);
    let sync_stats = res.service.expect("service stats");
    let sync_words = sys.service().expect("service").captured_words().to_vec();
    assert_eq!(
        report.stats, sync_stats,
        "async facade must be bit-identical to the synchronous service run"
    );
    assert_eq!(report.captured, sync_words, "served words must match");
    println!(
        "determinism check: 4-thread async == sync over {} requests\n",
        sync_stats.requests_completed
    );
}

struct Cell {
    mech: &'static str,
    threads: usize,
    think: u64,
    served_mbps: f64,
    p50: u64,
    p95: u64,
    p99: u64,
    completed: u64,
    sim_mcycles: f64,
    wall_ms: f64,
}

fn main() {
    let requests = requests_per_session();
    println!(
        "server load sweep: closed-loop sessions x {BYTES_PER_REQUEST}-byte getrandom, \
         {requests} requests/session, one host thread per session\n"
    );
    assert_async_equals_sync(requests.min(100));

    let mut cells = Vec::new();
    println!(
        "{:10} {:>7} {:>7} {:>9} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "mechanism", "threads", "think", "served", "p50", "p95", "p99", "simMcyc", "wall ms"
    );
    for mech in [Mechanism::DRange, Mechanism::Quac] {
        for &threads in &THREADS {
            for &think in &THINKS {
                let (report, wall_ms) = drive(mech, threads, think, requests);
                let stats = &report.stats;
                assert_eq!(stats.requests_completed, threads as u64 * requests);
                assert_eq!(stats.latency_by_client.len(), threads);
                let seconds = report.cpu_cycles as f64 / 4e9;
                let served_mbps = stats.bytes_served as f64 * 8.0 / seconds / 1e6;
                let pcts = stats.latency_percentiles(&[0.50, 0.95, 0.99]);
                let cell = Cell {
                    mech: mech.label(),
                    threads,
                    think,
                    served_mbps,
                    p50: pcts[0].expect("completions"),
                    p95: pcts[1].expect("completions"),
                    p99: pcts[2].expect("completions"),
                    completed: stats.requests_completed,
                    sim_mcycles: report.cpu_cycles as f64 / 1e6,
                    wall_ms,
                };
                println!(
                    "{:10} {:>7} {:>7} {:>7.0}Mb {:>8} {:>8} {:>8} {:>9.2} {:>8.1}",
                    cell.mech,
                    cell.threads,
                    cell.think,
                    cell.served_mbps,
                    cell.p50,
                    cell.p95,
                    cell.p99,
                    cell.sim_mcycles,
                    cell.wall_ms
                );
                cells.push(cell);
            }
        }
    }

    let json = format!(
        "{{\n  \"bytes_per_request\": {BYTES_PER_REQUEST},\n  \
         \"requests_per_session\": {requests},\n  \"pacing\": \"virtual\",\n  \
         \"latency_unit\": \"cpu_cycles_at_4ghz\",\n  \"cells\": [\n{}\n  ]\n}}\n",
        cells
            .iter()
            .map(|c| {
                format!(
                    "    {{\"mechanism\": \"{}\", \"threads\": {}, \"think_cycles\": {}, \
                     \"served_mbps\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \
                     \"completed\": {}, \"sim_mcycles\": {:.2}, \"wall_ms\": {:.2}}}",
                    c.mech,
                    c.threads,
                    c.think,
                    c.served_mbps,
                    c.p50,
                    c.p95,
                    c.p99,
                    c.completed,
                    c.sim_mcycles,
                    c.wall_ms
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let out =
        std::env::var("BENCH_SERVER_OUT").unwrap_or_else(|_| "BENCH_server.json".to_string());
    std::fs::write(&out, json).expect("write benchmark json");
    println!("\nwrote {out}");
}
