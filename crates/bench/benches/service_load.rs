//! `getrandom()` service-layer load sweep: p50/p95/p99 request latency
//! and offered vs served throughput across offered load × buffer size ×
//! TRNG mechanism, over the cycle-accurate service path (Sections 5.3/6).
//!
//! Each cell simulates N Poisson open-loop clients issuing 32-byte
//! `getrandom` requests against a coreless DR-STRaNGe system; requests
//! are served from the random number buffer (fast path) or by real
//! on-demand generation episodes (slow path). One cell additionally runs
//! under both simulation modes and asserts FastForward ≡ Reference on
//! every statistic including the per-request latency log.
//!
//! Emits `BENCH_service.json` (in the working directory, or at
//! `$BENCH_SERVICE_OUT`). Requests per client come from
//! `STRANGE_SERVICE_REQUESTS` (default 200).

use std::time::Instant;

use strange_core::{SimMode, System, SystemConfig};
use strange_trng::{DRange, QuacTrng, TrngMechanism};
use strange_workloads::poisson_service;

/// Aggregate offered loads (Mb/s) across the client population — spans
/// comfortably-buffered to past-saturation for D-RaNGe on 4 channels.
const OFFERED_MBPS: [u32; 3] = [640, 2560, 10_240];
const BUFFER_ENTRIES: [usize; 2] = [4, 16];
const CLIENTS: usize = 4;
const BYTES_PER_REQUEST: usize = 32;
/// Seed for the arrival streams (fixed so every run sees the same offered
/// trace).
const ARRIVAL_SEED: u64 = 2022;

fn requests_per_client() -> u64 {
    std::env::var("STRANGE_SERVICE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(200)
}

#[derive(Clone, Copy, PartialEq)]
enum Mechanism {
    DRange,
    Quac,
}

impl Mechanism {
    fn label(self) -> &'static str {
        match self {
            Mechanism::DRange => "D-RaNGe",
            Mechanism::Quac => "QUAC-TRNG",
        }
    }

    fn build(self) -> Box<dyn TrngMechanism> {
        match self {
            Mechanism::DRange => Box::new(DRange::new(1)),
            Mechanism::Quac => Box::new(QuacTrng::new(1)),
        }
    }
}

fn config(mech_entries: usize, mbps: u32, requests: u64, mode: SimMode) -> SystemConfig {
    SystemConfig::dr_strange(0)
        .with_buffer_entries(mech_entries)
        .with_service(poisson_service(
            CLIENTS,
            BYTES_PER_REQUEST,
            mbps,
            requests,
            ARRIVAL_SEED,
        ))
        .with_sim_mode(mode)
}

struct Cell {
    mech: &'static str,
    entries: usize,
    offered_mbps: u32,
    served_mbps: f64,
    p50: u64,
    p95: u64,
    p99: u64,
    mean: f64,
    buffer_hit_rate: f64,
    completed: u64,
    wall_ms: f64,
}

fn run_cell(mech: Mechanism, entries: usize, mbps: u32, requests: u64) -> Cell {
    let cfg = config(entries, mbps, requests, SimMode::FastForward);
    let mut sys = System::new(cfg, Vec::new(), mech.build()).expect("valid configuration");
    let start = Instant::now();
    let res = sys.run();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(!res.hit_cycle_limit, "service run must drain its requests");
    let svc = res.service.expect("service stats present");
    assert_eq!(svc.requests_completed, CLIENTS as u64 * requests);
    // 4 GHz clock: bits / (cycles / 4e9 s) → Mb/s.
    let seconds = res.cpu_cycles as f64 / 4e9;
    let served_mbps = svc.bytes_served as f64 * 8.0 / seconds / 1e6;
    let percentiles = svc.latency_percentiles(&[0.50, 0.95, 0.99]);
    Cell {
        mech: mech.label(),
        entries,
        offered_mbps: mbps,
        served_mbps,
        p50: percentiles[0].expect("completions"),
        p95: percentiles[1].expect("completions"),
        p99: percentiles[2].expect("completions"),
        mean: svc.mean_latency().expect("completions"),
        buffer_hit_rate: svc.buffer_hit_rate(),
        completed: svc.requests_completed,
        wall_ms,
    }
}

/// FastForward ≡ Reference on an active service configuration, asserted
/// on every run statistic including the exact latency log.
fn assert_modes_identical(requests: u64) {
    let run = |mode: SimMode| {
        let cfg = config(16, OFFERED_MBPS[1], requests, mode);
        let mut sys = System::new(cfg, Vec::new(), Mechanism::DRange.build())
            .expect("valid configuration");
        let res = sys.run();
        let skipped = sys.skipped_cycles();
        (res, skipped)
    };
    let (reference, ref_skipped) = run(SimMode::Reference);
    let (fast, fast_skipped) = run(SimMode::FastForward);
    assert_eq!(ref_skipped, 0, "reference must not skip");
    assert!(fast_skipped > 0, "fast-forward must engage");
    assert_eq!(fast.cpu_cycles, reference.cpu_cycles, "cpu cycles");
    assert_eq!(fast.stats, reference.stats, "engine stats");
    assert_eq!(fast.channels, reference.channels, "channel stats");
    assert_eq!(fast.service, reference.service, "service stats + latency log");
    println!(
        "mode check: FastForward == Reference over {} cycles ({:.0}% skipped)\n",
        fast.cpu_cycles,
        fast_skipped as f64 / fast.cpu_cycles as f64 * 100.0
    );
}

fn main() {
    let requests = requests_per_client();
    println!(
        "service load sweep: {CLIENTS} Poisson clients x {BYTES_PER_REQUEST}-byte getrandom, \
         {requests} requests/client\n"
    );
    assert_modes_identical(requests.min(100));

    let mut cells = Vec::new();
    println!(
        "{:10} {:>7} {:>9} {:>9} {:>8} {:>8} {:>8} {:>9} {:>6}",
        "mechanism", "entries", "offered", "served", "p50", "p95", "p99", "mean", "hit%"
    );
    for mech in [Mechanism::DRange, Mechanism::Quac] {
        for &entries in &BUFFER_ENTRIES {
            for &mbps in &OFFERED_MBPS {
                let c = run_cell(mech, entries, mbps, requests);
                println!(
                    "{:10} {:>7} {:>7}Mb {:>7.0}Mb {:>8} {:>8} {:>8} {:>9.1} {:>5.0}%",
                    c.mech,
                    c.entries,
                    c.offered_mbps,
                    c.served_mbps,
                    c.p50,
                    c.p95,
                    c.p99,
                    c.mean,
                    c.buffer_hit_rate * 100.0
                );
                cells.push(c);
            }
        }
    }

    // Shape checks (tracked, not enforced): a bigger buffer should not
    // hurt the tail, and saturation should show up at the top load level.
    let json = format!(
        "{{\n  \"clients\": {CLIENTS},\n  \"bytes_per_request\": {BYTES_PER_REQUEST},\n  \
         \"requests_per_client\": {requests},\n  \"latency_unit\": \"cpu_cycles_at_4ghz\",\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        cells
            .iter()
            .map(|c| {
                format!(
                    "    {{\"mechanism\": \"{}\", \"buffer_entries\": {}, \"offered_mbps\": {}, \
                     \"served_mbps\": {:.1}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \
                     \"mean\": {:.1}, \"buffer_hit_rate\": {:.4}, \"completed\": {}, \
                     \"wall_ms\": {:.2}}}",
                    c.mech,
                    c.entries,
                    c.offered_mbps,
                    c.served_mbps,
                    c.p50,
                    c.p95,
                    c.p99,
                    c.mean,
                    c.buffer_hit_rate,
                    c.completed,
                    c.wall_ms
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    );
    let out = std::env::var("BENCH_SERVICE_OUT")
        .unwrap_or_else(|_| "BENCH_service.json".to_string());
    std::fs::write(&out, json).expect("write benchmark json");
    println!("\nwrote {out}");
}
