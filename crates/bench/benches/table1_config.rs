//! Table 1: the simulated system configuration, plus the calibrated TRNG
//! mechanism characteristics the configuration implies.

use strange_bench::banner;
use strange_core::SystemConfig;
use strange_trng::{DRange, QuacTrng, TrngMechanism};

fn main() {
    banner(
        "Table 1: Simulated System Configuration",
        "1-16 cores @4GHz, 3-wide, 128-entry window; DDR3-1600, 4 channels, \
         1 rank/ch, 8 banks; 32-entry queues, FR-FCFS+Cap16; DR-STRANGE: \
         32-entry RNG queue, 256-entry predictor table/channel, 16-entry buffer",
    );
    for cores in [2usize, 4, 8, 16] {
        println!("--- {cores}-core DR-STRaNGe configuration ---");
        println!("{}\n", SystemConfig::dr_strange(cores).describe());
    }
    println!("--- baseline (RNG-oblivious) ---");
    println!("{}\n", SystemConfig::rng_oblivious(2).describe());

    println!("--- TRNG mechanism calibration (DESIGN.md §3) ---");
    for mech in [
        Box::new(DRange::new(1)) as Box<dyn TrngMechanism>,
        Box::new(QuacTrng::new(1)),
    ] {
        println!(
            "{:<10} {:>3} bits / {:>3}-cycle round; sustained ≈ {:.2} Gb/s (4ch); \
             64-bit demand ≈ {} cycles + drain",
            mech.name(),
            mech.batch_bits(),
            mech.batch_latency(),
            mech.sustained_throughput_gbps(4),
            mech.demand_latency_cycles(4),
        );
    }
    println!(
        "\npaper anchors: D-RaNGe ≈ 563 Mb/s, QUAC-TRNG ≈ 3.44 Gb/s; 64-bit \
         generation ≈ 198 memory cycles; 8-bit batch = 40 cycles (PeriodThreshold)"
    );
}
