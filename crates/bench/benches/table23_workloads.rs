//! Tables 2 and 3: the multi-programmed workload inventories.

use strange_bench::{banner, per_group, MIX_SEED};
use strange_workloads::{
    all_apps, eval_pairs, four_core_groups, motivation_pairs, multicore_class_groups,
    IntensityClass, RNG_THROUGHPUTS_MBPS,
};

fn main() {
    banner(
        "Tables 2-3: Multicore Workloads",
        "172 motivation pairs (43 apps x 4 RNG intensities); 43 evaluation \
         pairs @5120 Mb/s; 4-core LLLS/LLHS/LHHS/HHHS groups; 8/16-core \
         L/M/H groups (10 workloads each in the paper)",
    );

    let apps = all_apps();
    let by_class = |c: IntensityClass| apps.iter().filter(|a| a.class() == c).count();
    println!(
        "application suite: {} apps — L:{} M:{} H:{}",
        apps.len(),
        by_class(IntensityClass::Low),
        by_class(IntensityClass::Medium),
        by_class(IntensityClass::High)
    );

    let motivation = motivation_pairs();
    println!(
        "\nTable 2 (motivation): {} two-core workloads over RNG intensities {:?} Mb/s",
        motivation.len(),
        RNG_THROUGHPUTS_MBPS
    );

    let eval = eval_pairs(5120);
    println!("Table 3 (2-core):     {} workloads, e.g. {}", eval.len(), eval[20].name);

    for (name, ws) in four_core_groups(per_group(), MIX_SEED) {
        let sample: Vec<String> = ws[0].apps.iter().map(|a| a.label()).collect();
        println!(
            "Table 3 (4-core {name}): {} workloads, e.g. {}",
            ws.len(),
            sample.join("+")
        );
    }
    for cores in [8usize, 16] {
        for (name, ws) in multicore_class_groups(cores, per_group(), MIX_SEED) {
            println!("Table 3 ({name}): {} workloads of {} cores", ws.len(), cores);
        }
    }
}
