//! Embeds a fingerprint of the simulator's source code into the bench
//! crate as `STRANGE_CODE_FINGERPRINT`.
//!
//! The on-disk alone-baseline cache (`src/diskcache.rs`) uses it as the
//! default code-version tag: any edit to a crate that can influence a
//! simulation result rebuilds this crate with a new fingerprint, so a
//! freshly edited simulator can never read baselines computed by older
//! code. The same fingerprint is embedded in every bench binary built
//! from the same sources, which is what lets the figure targets share
//! one cache namespace. `STRANGE_CACHE_TAG` still overrides it (CI pins
//! the commit SHA).

use std::fs;
use std::path::{Path, PathBuf};

/// Every workspace crate whose code can influence an alone-run result.
const SIM_CRATES: [&str; 8] = [
    "bench", "core", "cpu", "dram", "energy", "metrics", "trng", "workloads",
];

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn main() {
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").expect("cargo sets this"));
    let crates = manifest.parent().expect("crates/ parent dir");
    let mut files = Vec::new();
    for krate in SIM_CRATES {
        let src = crates.join(krate).join("src");
        // Re-run on file additions/removals too (directory mtime).
        println!("cargo:rerun-if-changed={}", src.display());
        collect(&src, &mut files);
    }
    files.sort();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for file in &files {
        println!("cargo:rerun-if-changed={}", file.display());
        // Hash the workspace-relative name and the contents (FNV-1a),
        // so renames and edits both change the fingerprint.
        let rel = file.strip_prefix(crates).unwrap_or(file);
        let contents = fs::read(file).unwrap_or_default();
        for b in rel.to_string_lossy().bytes().chain([0u8]).chain(contents) {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    println!("cargo:rustc-env=STRANGE_CODE_FINGERPRINT={hash:016x}");
}
