//! Content-keyed on-disk cache for alone-run baselines.
//!
//! Every figure target needs the same ~44 "application running alone on
//! the baseline" simulations to normalize slowdowns; within one process
//! the [`crate::Harness`] memoizes them, but each `cargo bench --bench
//! figNN` invocation is a fresh process that recomputed them all. This
//! cache persists [`crate::AloneRun`]s across processes, keyed by the
//! full simulation content key — application label, mechanism, per-core
//! instruction target, and a *code-version tag* — so a stale binary can
//! never serve a result computed by different code.
//!
//! * Location: `$STRANGE_ALONE_CACHE_DIR`, default `target/alone-cache`.
//!   Set `STRANGE_ALONE_CACHE=0` (or `off`) to disable.
//! * Tag: `$STRANGE_CACHE_TAG`, default a build-time fingerprint of the
//!   simulator crates' sources (`build.rs`) — editing any code that can
//!   influence a result starts a fresh namespace automatically. CI pins
//!   the commit hash instead.
//! * Format: one small JSON file per key. Floats are stored as exact
//!   `f64::to_bits` values — a cache hit is **bit-identical** to the
//!   recompute (asserted in `tests/disk_cache.rs`). The key fields are
//!   stored alongside and verified on read, so a file-name collision can
//!   only miss, never serve a wrong result. Writes go through a
//!   temp-file rename, so concurrent bench processes race benignly.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::AloneRun;

/// The full content key of one alone-run baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AloneKeyFields<'a> {
    /// Application label (catalog name or RNG-benchmark label).
    pub app: &'a str,
    /// Mechanism key (`Mech` debug form).
    pub mech: &'a str,
    /// Per-core instruction target of the run.
    pub instr: u64,
    /// Code-version tag.
    pub tag: &'a str,
}

impl AloneKeyFields<'_> {
    /// File name for this key: readable prefix + FNV-1a content hash
    /// (collisions are detected by the stored key fields, not assumed
    /// away).
    fn file_name(&self) -> String {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for part in [self.app, self.mech, self.tag, &self.instr.to_string()] {
            for b in part.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= 0x1f;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let safe: String = self
            .app
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        format!("alone-{safe}-{hash:016x}.json")
    }
}

/// The on-disk cache handle (one per [`crate::Harness`]).
#[derive(Debug)]
pub struct AloneDiskCache {
    dir: PathBuf,
    tag: String,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AloneDiskCache {
    /// Opens a cache in `dir` with the given code-version tag (the
    /// directory is created lazily on the first store).
    pub fn new(dir: impl Into<PathBuf>, tag: impl Into<String>) -> Self {
        AloneDiskCache {
            dir: dir.into(),
            tag: tag.into(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The environment-configured cache: `STRANGE_ALONE_CACHE_DIR`
    /// (default `target/alone-cache` of the workspace), tag
    /// `STRANGE_CACHE_TAG` (default: the build-time source fingerprint
    /// of the simulator crates, so code edits auto-invalidate); `None`
    /// when `STRANGE_ALONE_CACHE` is `0`/`off`.
    pub fn from_env() -> Option<Self> {
        match std::env::var("STRANGE_ALONE_CACHE") {
            Ok(v) if v == "0" || v.eq_ignore_ascii_case("off") => return None,
            _ => {}
        }
        // Bench/test binaries run with CWD = the package root, so anchor
        // the default at the workspace target dir rather than a relative
        // path that would sprout a second target/ under crates/bench.
        let dir = std::env::var("STRANGE_ALONE_CACHE_DIR").unwrap_or_else(|_| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/alone-cache").to_string()
        });
        let tag = std::env::var("STRANGE_CACHE_TAG")
            .unwrap_or_else(|_| concat!("src-", env!("STRANGE_CODE_FINGERPRINT")).to_string());
        Some(AloneDiskCache::new(dir, tag))
    }

    /// The cache's code-version tag.
    pub fn tag(&self) -> &str {
        &self.tag
    }

    /// Cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Disk hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Disk misses (computations that went to the simulator) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Looks up a baseline; verifies the stored key fields before
    /// trusting the payload. Any malformed or mismatched file is a miss.
    pub fn load(&self, app: &str, mech: &str, instr: u64) -> Option<AloneRun> {
        let key = AloneKeyFields {
            app,
            mech,
            instr,
            tag: &self.tag,
        };
        let text = fs::read_to_string(self.dir.join(key.file_name())).ok();
        let run = text.as_deref().and_then(|t| parse_entry(t, &key));
        match run {
            Some(run) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(run)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a freshly computed baseline (best-effort: I/O failures are
    /// ignored — the cache is an accelerator, not a source of truth).
    pub fn store(&self, app: &str, mech: &str, instr: u64, run: &AloneRun) {
        let key = AloneKeyFields {
            app,
            mech,
            instr,
            tag: &self.tag,
        };
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let body = render_entry(&key, run);
        let path = self.dir.join(key.file_name());
        let tmp = self.dir.join(format!(
            "{}.tmp.{}",
            key.file_name(),
            std::process::id()
        ));
        if fs::write(&tmp, body).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
    }
}

fn render_entry(key: &AloneKeyFields<'_>, run: &AloneRun) -> String {
    format!(
        "{{\"app\": {:?}, \"mech\": {:?}, \"instr\": {}, \"tag\": {:?}, \
         \"exec_cycles\": {}, \"mcpi_bits\": {}, \"ipc_bits\": {}, \
         \"mcpi\": {:.6}, \"ipc\": {:.6}}}\n",
        key.app,
        key.mech,
        key.instr,
        key.tag,
        run.exec_cycles,
        run.mcpi.to_bits(),
        run.ipc.to_bits(),
        run.mcpi, // human-readable duplicates; the _bits fields are load-bearing
        run.ipc,
    )
}

/// Extracts `"field": <raw>` from the flat JSON entry (no nesting, no
/// escapes beyond what `{:?}` produces for the label strings).
fn field_raw<'a>(text: &'a str, name: &str) -> Option<&'a str> {
    let tag = format!("\"{name}\": ");
    let start = text.find(&tag)? + tag.len();
    let rest = &text[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim())
}

fn field_str<'a>(text: &'a str, name: &str) -> Option<&'a str> {
    let raw = field_raw(text, name)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

fn parse_entry(text: &str, key: &AloneKeyFields<'_>) -> Option<AloneRun> {
    if field_str(text, "app")? != key.app
        || field_str(text, "mech")? != key.mech
        || field_str(text, "tag")? != key.tag
        || field_raw(text, "instr")?.parse::<u64>().ok()? != key.instr
    {
        return None;
    }
    Some(AloneRun {
        exec_cycles: field_raw(text, "exec_cycles")?.parse().ok()?,
        mcpi: f64::from_bits(field_raw(text, "mcpi_bits")?.parse().ok()?),
        ipc: f64::from_bits(field_raw(text, "ipc_bits")?.parse().ok()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AloneRun {
        AloneRun {
            exec_cycles: 123_456,
            mcpi: 1.519_283_746_500_1,
            ipc: 0.912_837_465_000_3,
        }
    }

    #[test]
    fn entry_round_trips_bit_exactly() {
        let key = AloneKeyFields {
            app: "mcf",
            mech: "DRange",
            instr: 200_000,
            tag: "v0.1.0",
        };
        let text = render_entry(&key, &sample());
        let run = parse_entry(&text, &key).expect("parses");
        assert_eq!(run.exec_cycles, sample().exec_cycles);
        assert_eq!(run.mcpi.to_bits(), sample().mcpi.to_bits());
        assert_eq!(run.ipc.to_bits(), sample().ipc.to_bits());
    }

    #[test]
    fn mismatched_key_fields_are_misses() {
        let key = AloneKeyFields {
            app: "mcf",
            mech: "DRange",
            instr: 200_000,
            tag: "v0.1.0",
        };
        let text = render_entry(&key, &sample());
        for wrong in [
            AloneKeyFields { app: "lbm", ..key.clone() },
            AloneKeyFields { mech: "Quac", ..key.clone() },
            AloneKeyFields { instr: 60_000, ..key.clone() },
            AloneKeyFields { tag: "v9", ..key.clone() },
        ] {
            assert!(parse_entry(&text, &wrong).is_none(), "{wrong:?}");
        }
    }

    #[test]
    fn garbage_files_are_misses() {
        let key = AloneKeyFields {
            app: "mcf",
            mech: "DRange",
            instr: 1,
            tag: "t",
        };
        for garbage in ["", "{}", "not json", "{\"app\": \"mcf\"}"] {
            assert!(parse_entry(garbage, &key).is_none());
        }
    }

    #[test]
    fn distinct_keys_get_distinct_files() {
        let a = AloneKeyFields { app: "mcf", mech: "DRange", instr: 1, tag: "t" };
        let b = AloneKeyFields { app: "mcf", mech: "DRange", instr: 2, tag: "t" };
        let c = AloneKeyFields { app: "mcf", mech: "Quac", instr: 1, tag: "t" };
        assert_ne!(a.file_name(), b.file_name());
        assert_ne!(a.file_name(), c.file_name());
    }
}
