//! Shared experiment harness for the DR-STRaNGe reproduction.
//!
//! Every figure and table of the paper's evaluation has a `harness = false`
//! bench target in `benches/` (see DESIGN.md §4 for the index); this
//! library provides the common machinery:
//!
//! * [`Design`] — every system design point the paper compares (baseline,
//!   Greedy Idle, DR-STRaNGe and its ablations), mapped to a
//!   [`SystemConfig`].
//! * [`Mech`] — the TRNG mechanism under test (D-RaNGe, QUAC-TRNG, or the
//!   throughput-parameterized mechanism of Figure 2).
//! * [`Harness`] — runs workloads, caches the expensive "alone" baseline
//!   runs that slowdown/MCPI normalization needs, and computes the paper's
//!   per-workload metrics ([`PairEval`], [`MultiEval`]).
//!
//! # Batched, multi-threaded execution
//!
//! A figure is a (design × workload) matrix of independent, deterministic
//! simulations, so the harness runs them on a scoped worker pool (see
//! [`runner`]):
//!
//! * [`Harness::run_many`] executes a batch of [`RunJob`]s in parallel and
//!   returns the results in job order.
//! * [`eval_pair_matrix_par`] / [`eval_multi_matrix_par`] evaluate a whole
//!   figure matrix in parallel, after pre-warming the alone-run cache so
//!   workers never duplicate a baseline.
//!
//! The worker count comes from `STRANGE_THREADS` (default: the host's
//! available parallelism). Parallel results are **bit-identical** to the
//! sequential path: every job is self-contained, the alone cache
//! deduplicates in-flight computations through per-key `OnceLock`s (each
//! baseline is computed exactly once, no matter how many workers want it),
//! and outputs are collected in index order. `tests/parallel_determinism.rs`
//! asserts this equivalence.
//!
//! # Scale configuration
//!
//! Scale is a [`ScaleConfig`] value injected into the harness, not an
//! ambient global: [`Harness::with_scale`] pins it explicitly (tests use
//! this instead of mutating the process environment), while
//! [`Harness::new`] / [`ScaleConfig::from_env`] read the conventional
//! environment variables **once per process** (memoized):
//!
//! * `STRANGE_INSTR` — instructions per core (default 200 000; the paper
//!   simulates 200 M-instruction SimPoints, so absolute numbers differ but
//!   the comparisons are at equal work).
//! * `STRANGE_PER_GROUP` — multi-programmed workloads per group for the
//!   multicore figures (default 3; the paper uses 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diskcache;
pub mod runner;

pub use diskcache::AloneDiskCache;

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use strange_core::{
    FillMode, PredictorKind, RngRouting, RunResult, SchedulerKind, System, SystemConfig,
};
use strange_metrics::{geometric_mean, unfairness_index, MemSlowdown};
use strange_trng::{DRange, QuacTrng, ThroughputTrng, TrngMechanism};
use strange_workloads::{AppRef, Workload};

static INSTR_TARGET: OnceLock<u64> = OnceLock::new();
static PER_GROUP: OnceLock<usize> = OnceLock::new();

/// Instructions each core must retire (env `STRANGE_INSTR`, default
/// 200 000 — large enough that the boot-time buffer pre-fill covers well
/// under a fifth of each run's RNG demand). Read once per process; tests
/// inject scale through [`Harness::with_scale`] instead of mutating the
/// environment.
pub fn instr_target() -> u64 {
    *INSTR_TARGET.get_or_init(|| {
        std::env::var("STRANGE_INSTR")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200_000)
    })
}

/// Workloads per multicore group (env `STRANGE_PER_GROUP`, default 3; the
/// paper uses 10). Read once per process.
pub fn per_group() -> usize {
    *PER_GROUP.get_or_init(|| {
        std::env::var("STRANGE_PER_GROUP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(3)
    })
}

/// Experiment scale, plumbed explicitly through the harness instead of
/// re-read from the environment per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleConfig {
    /// Instructions each core must retire.
    pub instr: u64,
    /// Workloads per multicore group.
    pub per_group: usize,
}

impl ScaleConfig {
    /// The process-wide scale from `STRANGE_INSTR` / `STRANGE_PER_GROUP`
    /// (memoized environment reads).
    pub fn from_env() -> Self {
        ScaleConfig {
            instr: instr_target(),
            per_group: per_group(),
        }
    }
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig::from_env()
    }
}

/// Seed for the randomized workload-group sampling (fixed so every bench
/// target sees the same mixes).
pub const MIX_SEED: u64 = 2022;

/// Seed for the TRNG entropy substrate (timing is seed-independent).
pub const TRNG_SEED: u64 = 1;

/// The TRNG mechanism under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mech {
    /// D-RaNGe (the default mechanism for all main results).
    DRange,
    /// D-RaNGe with an overridden demand-mode switch cost (ablation).
    DRangeSwitch(u64),
    /// QUAC-TRNG (Section 8.7).
    Quac,
    /// Throughput-parameterized mechanism (Figure 2), aggregate Mb/s.
    Throughput(u32),
}

impl Mech {
    /// Builds a fresh mechanism instance.
    pub fn build(self) -> Box<dyn TrngMechanism> {
        match self {
            Mech::DRange => Box::new(DRange::new(TRNG_SEED)),
            Mech::DRangeSwitch(cycles) => {
                Box::new(DRange::new(TRNG_SEED).with_demand_switch_cycles(cycles))
            }
            Mech::Quac => Box::new(QuacTrng::new(TRNG_SEED)),
            Mech::Throughput(mbps) => Box::new(ThroughputTrng::new(mbps, 4, TRNG_SEED)),
        }
    }

    /// Cache key for alone-run reuse.
    fn key(self) -> String {
        format!("{self:?}")
    }
}

/// A system design point of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// RNG-oblivious baseline: FR-FCFS+Cap(16), RNG requests in the read
    /// queues, no buffer.
    Oblivious,
    /// RNG-oblivious baseline with the BLISS scheduler (Figure 11).
    ObliviousBliss,
    /// The Greedy Idle comparison design (oracle filling).
    Greedy,
    /// Full DR-STRaNGe (simple predictor, low-utilization threshold 4,
    /// 16-entry buffer).
    DrStrange,
    /// DR-STRaNGe with the Q-learning predictor (Figure 13).
    DrStrangeRl,
    /// DR-STRaNGe without an idleness predictor (Figure 13's "No Pred.").
    DrStrangeNoPred,
    /// DR-STRaNGe with the low-utilization path disabled (Figure 15's
    /// "Threshold = 0").
    DrStrangeNoLowUtil,
    /// RNG-aware scheduling only — no buffer (Figures 11 and the paper's
    /// scheduler-isolation studies).
    RngAwareNoBuffer,
    /// Simple buffering (no predictor) with a given buffer size, for the
    /// Figure 10 sweep. `0` degrades to [`Design::RngAwareNoBuffer`].
    Buffered(usize),
    /// DR-STRaNGe with OS priorities: `true` = the RNG application has the
    /// high priority, `false` = the non-RNG applications do (Figure 12).
    Priority(bool),
    /// DR-STRaNGe with a non-default PeriodThreshold (ablation).
    PeriodThreshold(u64),
}

impl Design {
    /// Short label used in result tables.
    pub fn label(&self) -> String {
        match self {
            Design::Oblivious => "RNG-Oblivious".into(),
            Design::ObliviousBliss => "BLISS".into(),
            Design::Greedy => "Greedy".into(),
            Design::DrStrange => "DR-STRANGE".into(),
            Design::DrStrangeRl => "DR-STRANGE+RL".into(),
            Design::DrStrangeNoPred => "DR-STRANGE(NoPred)".into(),
            Design::DrStrangeNoLowUtil => "DR-STRANGE(Thr=0)".into(),
            Design::RngAwareNoBuffer => "RNG-Aware".into(),
            Design::Buffered(n) => format!("{n}-Entry"),
            Design::Priority(true) => "DR-STRANGE(RNG)".into(),
            Design::Priority(false) => "DR-STRANGE(NonRNG)".into(),
            Design::PeriodThreshold(t) => format!("Thr={t}"),
        }
    }

    /// System configuration for this design on `workload` at the
    /// process-default scale ([`instr_target`]).
    pub fn config(&self, workload: &Workload) -> SystemConfig {
        self.config_scaled(workload, instr_target())
    }

    /// System configuration for this design on `workload` with an
    /// explicit per-core instruction target.
    pub fn config_scaled(&self, workload: &Workload, instr: u64) -> SystemConfig {
        let cores = workload.cores();
        let cfg = match self {
            Design::Oblivious => SystemConfig::rng_oblivious(cores),
            Design::ObliviousBliss => {
                SystemConfig::rng_oblivious(cores).with_scheduler(SchedulerKind::Bliss)
            }
            Design::Greedy => SystemConfig::greedy_idle(cores),
            Design::DrStrange => SystemConfig::dr_strange(cores),
            Design::DrStrangeRl => SystemConfig::dr_strange_rl(cores),
            Design::DrStrangeNoPred => SystemConfig::dr_strange_no_predictor(cores),
            Design::DrStrangeNoLowUtil => {
                SystemConfig::dr_strange(cores).with_low_util_threshold(0)
            }
            Design::RngAwareNoBuffer => {
                let mut cfg = SystemConfig::dr_strange(cores);
                cfg.routing = RngRouting::Aware;
                cfg.fill = FillMode::None;
                cfg.buffer_entries = 0;
                cfg
            }
            Design::Buffered(0) => return Design::RngAwareNoBuffer.config_scaled(workload, instr),
            Design::Buffered(entries) => SystemConfig {
                predictor: PredictorKind::AlwaysLong,
                low_util_threshold: 0,
                ..SystemConfig::dr_strange(cores).with_buffer_entries(*entries)
            },
            Design::Priority(rng_high) => {
                let rng_core = workload.rng_core().unwrap_or(cores - 1);
                let prios = (0..cores)
                    .map(|i| {
                        if (i == rng_core) == *rng_high {
                            2
                        } else {
                            1
                        }
                    })
                    .collect();
                SystemConfig::dr_strange(cores).with_priorities(prios)
            }
            Design::PeriodThreshold(t) => {
                let mut cfg = SystemConfig::dr_strange(cores);
                cfg.period_threshold = *t;
                cfg
            }
        };
        // Every design honors the perf-toggle environment overrides
        // (`STRANGE_PROBE_CACHE`, `STRANGE_DIRTY_READINESS`,
        // `STRANGE_BURST_EVENTS`), so any bench can A/B the fast-forward
        // machinery without code changes.
        cfg.with_instruction_target(instr).with_perf_toggles_from_env()
    }
}

/// Cached outcome of an application running alone on the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AloneRun {
    /// Execution cycles for the instruction target.
    pub exec_cycles: u64,
    /// MCPI at the instruction target.
    pub mcpi: f64,
    /// IPC at the instruction target.
    pub ipc: f64,
}

/// Per-workload metrics for a dual-core (app + RNG benchmark) run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairEval {
    /// Non-RNG application slowdown over running alone.
    pub nonrng_slowdown: f64,
    /// RNG application slowdown over running alone.
    pub rng_slowdown: f64,
    /// Unfairness index (max/min memory slowdown).
    pub unfairness: f64,
    /// Buffer serve rate.
    pub serve_rate: f64,
    /// Idleness-predictor accuracy.
    pub accuracy: f64,
    /// Total DRAM cycles of the run.
    pub mem_cycles: u64,
}

/// Per-workload metrics for a multicore run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiEval {
    /// Weighted speedup over the non-RNG applications.
    pub weighted_speedup: f64,
    /// RNG application slowdown over running alone (1.0 when the workload
    /// has no RNG benchmark).
    pub rng_slowdown: f64,
    /// Unfairness index over all applications.
    pub unfairness: f64,
    /// Idleness-predictor accuracy.
    pub accuracy: f64,
}

/// One batched simulation: a design point applied to a workload with a
/// TRNG mechanism.
#[derive(Debug, Clone)]
pub struct RunJob {
    /// The design point to simulate.
    pub design: Design,
    /// The workload to run.
    pub workload: Workload,
    /// The TRNG mechanism under test.
    pub mech: Mech,
}

impl RunJob {
    /// Creates a job.
    pub fn new(design: Design, workload: Workload, mech: Mech) -> Self {
        RunJob {
            design,
            workload,
            mech,
        }
    }
}

type AloneKey = (String, String);

/// The experiment runner with a thread-safe alone-run cache.
///
/// All evaluation methods take `&self`, so one harness can be shared by
/// every worker of a batched run. The alone cache holds one `OnceLock`
/// per key: concurrent requests for the same baseline block on the first
/// computation instead of duplicating it.
pub struct Harness {
    scale: ScaleConfig,
    alone_cache: Mutex<HashMap<AloneKey, Arc<OnceLock<AloneRun>>>>,
    disk: Option<AloneDiskCache>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// Creates a harness at the process-default scale
    /// ([`ScaleConfig::from_env`]) with the environment-configured
    /// on-disk alone-baseline cache ([`AloneDiskCache::from_env`]) — so
    /// repeated figure targets skip recomputing the ~44 shared alone
    /// runs across processes.
    pub fn new() -> Self {
        let mut h = Harness::with_scale(ScaleConfig::from_env());
        h.disk = AloneDiskCache::from_env();
        h
    }

    /// Creates a harness with an explicitly injected scale (tests and
    /// callers that must not depend on ambient environment variables).
    /// No on-disk cache: attach one explicitly with
    /// [`Harness::with_disk_cache`].
    pub fn with_scale(scale: ScaleConfig) -> Self {
        Harness {
            scale,
            alone_cache: Mutex::new(HashMap::new()),
            disk: None,
        }
    }

    /// Attaches an on-disk alone-baseline cache.
    pub fn with_disk_cache(mut self, cache: AloneDiskCache) -> Self {
        self.disk = Some(cache);
        self
    }

    /// The attached on-disk cache, if any (hit/miss counters for tests
    /// and bench banners).
    pub fn disk_cache(&self) -> Option<&AloneDiskCache> {
        self.disk.as_ref()
    }

    /// The scale this harness runs at.
    pub fn scale(&self) -> ScaleConfig {
        self.scale
    }

    /// Number of distinct alone baselines cached so far.
    pub fn alone_cache_len(&self) -> usize {
        self.alone_cache.lock().expect("alone cache poisoned").len()
    }

    /// Runs `workload` under `design` with `mech`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (internal error) — bench
    /// targets are expected to abort loudly.
    pub fn run(&self, design: Design, workload: &Workload, mech: Mech) -> RunResult {
        let config = design.config_scaled(workload, self.scale.instr);
        System::new(config, workload.traces(), mech.build())
            .expect("valid configuration")
            .run()
    }

    /// Runs a batch of jobs on the worker pool ([`runner::worker_threads`]
    /// workers) and returns the results in job order. Dispatch is
    /// longest-first (cost estimate: `cores × instructions`), so a heavy
    /// multicore job drawn last cannot serialize the barrier tail.
    pub fn run_many(&self, jobs: &[RunJob]) -> Vec<RunResult> {
        let instr = self.scale.instr;
        runner::run_indexed_weighted(
            jobs.len(),
            runner::worker_threads(),
            |i| jobs[i].workload.cores() as u64 * instr,
            |i| {
                let job = &jobs[i];
                self.run(job.design, &job.workload, job.mech)
            },
        )
    }

    /// The alone-run baseline for `app` (cached; computed exactly once per
    /// `(app, mechanism)` even under concurrent callers). With an
    /// attached [`AloneDiskCache`], the baseline is first looked up on
    /// disk (keyed by app, mechanism, instruction target, and code tag)
    /// and stored there after a fresh computation — a disk hit is
    /// bit-identical to the recompute.
    pub fn alone(&self, app: &AppRef, mech: Mech) -> AloneRun {
        let key = (app.label(), mech.key());
        let cell = {
            let mut cache = self.alone_cache.lock().expect("alone cache poisoned");
            Arc::clone(cache.entry(key).or_default())
        };
        // The map lock is released before the (expensive) computation;
        // `get_or_init` blocks racing workers on this key only.
        *cell.get_or_init(|| {
            let label = app.label();
            let mech_key = mech.key();
            if let Some(disk) = &self.disk {
                if let Some(run) = disk.load(&label, &mech_key, self.scale.instr) {
                    return run;
                }
            }
            let wl = Workload {
                name: format!("{label}-alone"),
                apps: vec![app.clone()],
            };
            let res = self.run(Design::Oblivious, &wl, mech);
            let run = AloneRun {
                exec_cycles: res.exec_cycles(0),
                mcpi: res.cores[0].mcpi(),
                ipc: res.cores[0].ipc(),
            };
            if let Some(disk) = &self.disk {
                disk.store(&label, &mech_key, self.scale.instr, &run);
            }
            run
        })
    }

    /// Pre-computes the alone baselines every app in `workloads` needs, in
    /// parallel over distinct apps. Matrix evaluation calls this first so
    /// workers start from a warm cache instead of serializing on the most
    /// popular baseline (every pair workload shares its RNG benchmark).
    pub fn warm_alone_cache(&self, workloads: &[Workload], mech: Mech, threads: usize) {
        let mut seen = HashMap::new();
        for wl in workloads {
            for app in &wl.apps {
                seen.entry(app.label()).or_insert_with(|| app.clone());
            }
        }
        let apps: Vec<AppRef> = seen.into_values().collect();
        runner::run_indexed(apps.len(), threads, |i| self.alone(&apps[i], mech));
    }

    /// Evaluates a dual-core pair workload under `design`.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is not a two-core app+RNG pair.
    pub fn eval_pair(&self, design: Design, workload: &Workload, mech: Mech) -> PairEval {
        assert_eq!(workload.cores(), 2, "pair workloads have two cores");
        let rng_core = workload.rng_core().expect("pair has an RNG benchmark");
        let app_core = 1 - rng_core;
        let alone_app = self.alone(&workload.apps[app_core], mech);
        let alone_rng = self.alone(&workload.apps[rng_core], mech);
        let res = self.run(design, workload, mech);
        let unfairness = unfairness_index(&[
            MemSlowdown::from_mcpi(res.cores[app_core].mcpi(), alone_app.mcpi),
            MemSlowdown::from_mcpi(res.cores[rng_core].mcpi(), alone_rng.mcpi),
        ])
        .expect("two applications");
        PairEval {
            nonrng_slowdown: res.exec_cycles(app_core) as f64 / alone_app.exec_cycles as f64,
            rng_slowdown: res.exec_cycles(rng_core) as f64 / alone_rng.exec_cycles as f64,
            unfairness,
            serve_rate: res.stats.buffer_serve_rate(),
            accuracy: res.stats.predictor_accuracy(),
            mem_cycles: res.mem_cycles,
        }
    }

    /// Evaluates a multicore workload under `design`.
    pub fn eval_multi(&self, design: Design, workload: &Workload, mech: Mech) -> MultiEval {
        let res = self.run(design, workload, mech);
        let rng_core = workload.rng_core();
        let mut ipc_pairs = Vec::new();
        let mut slowdowns = Vec::new();
        let mut rng_slowdown = 1.0;
        for core in 0..workload.cores() {
            let alone = self.alone(&workload.apps[core], mech);
            slowdowns.push(MemSlowdown::from_mcpi(res.cores[core].mcpi(), alone.mcpi));
            if Some(core) == rng_core {
                rng_slowdown = res.exec_cycles(core) as f64 / alone.exec_cycles as f64;
            } else {
                ipc_pairs.push((res.cores[core].ipc(), alone.ipc));
            }
        }
        let weighted_speedup =
            strange_metrics::weighted_speedup(&ipc_pairs).expect("non-RNG apps present");
        MultiEval {
            weighted_speedup,
            rng_slowdown,
            unfairness: unfairness_index(&slowdowns).expect("apps present"),
            accuracy: res.stats.predictor_accuracy(),
        }
    }
}

/// Evaluates every workload under every design sequentially:
/// `matrix[d][w]`. The reference path the parallel variant must match.
pub fn eval_pair_matrix(
    harness: &Harness,
    designs: &[Design],
    workloads: &[Workload],
    mech: Mech,
) -> Vec<Vec<PairEval>> {
    eval_pair_matrix_with_threads(harness, designs, workloads, mech, 1)
}

/// [`eval_pair_matrix`] on the shared worker pool
/// ([`runner::worker_threads`] workers). Bit-identical to the sequential
/// path.
pub fn eval_pair_matrix_par(
    harness: &Harness,
    designs: &[Design],
    workloads: &[Workload],
    mech: Mech,
) -> Vec<Vec<PairEval>> {
    eval_pair_matrix_with_threads(harness, designs, workloads, mech, runner::worker_threads())
}

/// [`eval_pair_matrix`] with an explicit worker count (determinism tests
/// compare thread counts against each other).
pub fn eval_pair_matrix_with_threads(
    harness: &Harness,
    designs: &[Design],
    workloads: &[Workload],
    mech: Mech,
    threads: usize,
) -> Vec<Vec<PairEval>> {
    if workloads.is_empty() {
        return vec![Vec::new(); designs.len()];
    }
    if threads > 1 {
        harness.warm_alone_cache(workloads, mech, threads);
    }
    let w = workloads.len();
    // Pair workloads all have two cores, so the weight degenerates to a
    // constant and dispatch stays in matrix order; the weighted call keeps
    // the two matrix paths symmetric.
    let instr = harness.scale().instr;
    let flat = runner::run_indexed_weighted(
        designs.len() * w,
        threads,
        |i| workloads[i % w].cores() as u64 * instr,
        |i| harness.eval_pair(designs[i / w], &workloads[i % w], mech),
    );
    flat.chunks(w).map(<[PairEval]>::to_vec).collect()
}

/// Evaluates every workload under every design sequentially (multicore
/// metrics): `matrix[d][w]`.
pub fn eval_multi_matrix(
    harness: &Harness,
    designs: &[Design],
    workloads: &[Workload],
    mech: Mech,
) -> Vec<Vec<MultiEval>> {
    eval_multi_matrix_with_threads(harness, designs, workloads, mech, 1)
}

/// [`eval_multi_matrix`] on the shared worker pool. Bit-identical to the
/// sequential path.
pub fn eval_multi_matrix_par(
    harness: &Harness,
    designs: &[Design],
    workloads: &[Workload],
    mech: Mech,
) -> Vec<Vec<MultiEval>> {
    eval_multi_matrix_with_threads(harness, designs, workloads, mech, runner::worker_threads())
}

/// [`eval_multi_matrix`] with an explicit worker count.
pub fn eval_multi_matrix_with_threads(
    harness: &Harness,
    designs: &[Design],
    workloads: &[Workload],
    mech: Mech,
    threads: usize,
) -> Vec<Vec<MultiEval>> {
    if workloads.is_empty() {
        return vec![Vec::new(); designs.len()];
    }
    if threads > 1 {
        harness.warm_alone_cache(workloads, mech, threads);
    }
    let w = workloads.len();
    // Multicore groups mix 4/8/16-core workloads: longest-first dispatch
    // keeps the 16-core jobs from landing on an otherwise-drained pool.
    let instr = harness.scale().instr;
    let flat = runner::run_indexed_weighted(
        designs.len() * w,
        threads,
        |i| workloads[i % w].cores() as u64 * instr,
        |i| harness.eval_multi(designs[i / w], &workloads[i % w], mech),
    );
    flat.chunks(w).map(<[MultiEval]>::to_vec).collect()
}

/// Prints one panel of a dual-core figure: rows are the paper's 23
/// figure applications (by pair index, assuming `eval_pairs` ordering),
/// columns the designs, final row the average over *all* workloads.
pub fn print_pair_metric(
    title: &str,
    designs: &[Design],
    workloads: &[Workload],
    matrix: &[Vec<PairEval>],
    metric: impl Fn(&PairEval) -> f64,
) {
    println!("--- {title} ---");
    let mut header = vec!["workload".to_string()];
    header.extend(designs.iter().map(Design::label));
    let mut table = strange_metrics::Table::new(
        &header.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let figure_rows = workloads.len().min(23);
    for w in 0..figure_rows {
        let mut row = vec![workloads[w].apps[0].label()];
        for design_row in matrix {
            row.push(format!("{:.2}", metric(&design_row[w])));
        }
        table.row(&row);
    }
    let mut avg_row = vec![format!("AVG({})", workloads.len())];
    for design_row in matrix {
        let vals: Vec<f64> = design_row.iter().map(&metric).collect();
        avg_row.push(format!("{:.3}", mean(&vals)));
    }
    table.row(&avg_row);
    println!("{}", table.render());
}

/// Prints the standard experiment banner with the paper's expectation.
pub fn banner(experiment: &str, paper: &str) {
    println!("\n=== {experiment} ===");
    println!("paper: {paper}");
    println!(
        "scale: {} instructions/core (STRANGE_INSTR), {} workloads/group \
         (STRANGE_PER_GROUP), {} worker threads (STRANGE_THREADS)\n",
        instr_target(),
        per_group(),
        runner::worker_threads()
    );
}

/// Arithmetic mean helper (bench targets should not unwrap inline).
pub fn mean(xs: &[f64]) -> f64 {
    strange_metrics::arithmetic_mean(xs).unwrap_or(0.0)
}

/// Geometric mean helper.
pub fn gmean(xs: &[f64]) -> f64 {
    geometric_mean(xs).unwrap_or(0.0)
}

/// Percent improvement of `new` over `old` where lower is better.
pub fn improvement_pct(old: f64, new: f64) -> f64 {
    if old == 0.0 {
        0.0
    } else {
        (old - new) / old * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strange_workloads::app_by_name;

    fn tiny_scale() -> ScaleConfig {
        ScaleConfig {
            instr: 5_000,
            per_group: 2,
        }
    }

    #[test]
    fn designs_produce_valid_configs() {
        let wl = Workload::pair(&app_by_name("mcf").unwrap(), 5120);
        for d in [
            Design::Oblivious,
            Design::ObliviousBliss,
            Design::Greedy,
            Design::DrStrange,
            Design::DrStrangeRl,
            Design::DrStrangeNoPred,
            Design::DrStrangeNoLowUtil,
            Design::RngAwareNoBuffer,
            Design::Buffered(0),
            Design::Buffered(4),
            Design::Priority(true),
            Design::Priority(false),
            Design::PeriodThreshold(80),
        ] {
            d.config(&wl).validate().unwrap();
            assert_eq!(
                d.config_scaled(&wl, 1234).instruction_target,
                1234,
                "explicit scale must be honored"
            );
            assert!(!d.label().is_empty());
        }
    }

    #[test]
    fn priority_config_marks_the_right_core() {
        let wl = Workload::pair(&app_by_name("mcf").unwrap(), 5120);
        let rng_core = wl.rng_core().unwrap();
        let cfg = Design::Priority(true).config(&wl);
        assert_eq!(cfg.priority_of(rng_core), 2);
        assert_eq!(cfg.priority_of(1 - rng_core), 1);
        let cfg = Design::Priority(false).config(&wl);
        assert_eq!(cfg.priority_of(rng_core), 1);
        assert_eq!(cfg.priority_of(1 - rng_core), 2);
    }

    #[test]
    fn alone_cache_hits() {
        // Scale is injected explicitly — no process-environment mutation,
        // so this test is safe under the parallel test runner.
        let h = Harness::with_scale(tiny_scale());
        let app = AppRef::Named("povray");
        let a = h.alone(&app, Mech::DRange);
        let b = h.alone(&app, Mech::DRange);
        assert_eq!(a.exec_cycles, b.exec_cycles);
        assert_eq!(h.alone_cache_len(), 1);
    }

    #[test]
    fn alone_cache_dedups_across_worker_threads() {
        let h = Harness::with_scale(tiny_scale());
        let app = AppRef::Named("povray");
        let runs = runner::run_indexed(8, 4, |_| h.alone(&app, Mech::DRange));
        assert_eq!(h.alone_cache_len(), 1, "computed exactly once");
        assert!(runs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn run_many_preserves_job_order() {
        let h = Harness::with_scale(tiny_scale());
        let wl = Workload::pair(&app_by_name("povray").unwrap(), 640);
        let jobs = vec![
            RunJob::new(Design::Oblivious, wl.clone(), Mech::DRange),
            RunJob::new(Design::DrStrange, wl.clone(), Mech::DRange),
        ];
        let batch = h.run_many(&jobs);
        assert_eq!(batch.len(), 2);
        let seq_base = h.run(Design::Oblivious, &wl, Mech::DRange);
        let seq_ds = h.run(Design::DrStrange, &wl, Mech::DRange);
        assert_eq!(batch[0].cpu_cycles, seq_base.cpu_cycles);
        assert_eq!(batch[1].cpu_cycles, seq_ds.cpu_cycles);
    }

    #[test]
    fn improvement_pct_signs() {
        assert!(improvement_pct(2.0, 1.5) > 0.0);
        assert!(improvement_pct(1.5, 2.0) < 0.0);
        assert_eq!(improvement_pct(0.0, 1.0), 0.0);
    }
}
