//! Hand-rolled scoped worker pool for batched experiment runs.
//!
//! The build environment has no crates.io access, so instead of rayon this
//! module provides the one primitive the harness needs: run `n` index-
//! addressed jobs on a bounded set of `std::thread::scope` workers pulling
//! from an atomic work queue, and return the results **in index order**
//! regardless of which worker computed what. Each simulation is
//! deterministic and self-contained, so parallel execution is bit-identical
//! to sequential execution by construction (asserted by
//! `tests/parallel_determinism.rs`).
//!
//! The worker count comes from `STRANGE_THREADS` (default: the host's
//! available parallelism), read once per process.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

static THREADS: OnceLock<usize> = OnceLock::new();

/// Worker threads used by the batched entry points (`STRANGE_THREADS`,
/// default: available parallelism). Read once per process; at least 1.
pub fn worker_threads() -> usize {
    *THREADS.get_or_init(|| {
        std::env::var("STRANGE_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Runs `f(0..n)` on up to `threads` scoped workers and returns the
/// results in index order. With `threads <= 1` (or fewer than two jobs)
/// the jobs run inline on the caller's thread — the sequential reference
/// path that the parallel path must match bit-for-bit.
///
/// # Panics
///
/// Propagates a panic from any job (bench targets are expected to abort
/// loudly on internal errors).
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    // `Mutex<Option<T>>` slots only require `T: Send` (a shared `OnceLock`
    // would demand `T: Sync`); each slot is locked exactly once, by the
    // worker that drew its index.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                let prev = slots[i].lock().expect("slot poisoned").replace(value);
                assert!(prev.is_none(), "job {i} ran twice");
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_indexed(2, 16, |i| i), vec![0, 1]);
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn worker_threads_is_at_least_one() {
        assert!(worker_threads() >= 1);
    }
}
