//! Hand-rolled scoped worker pool for batched experiment runs.
//!
//! The build environment has no crates.io access, so instead of rayon this
//! module provides the one primitive the harness needs: run `n` index-
//! addressed jobs on a bounded set of `std::thread::scope` workers pulling
//! from an atomic work queue, and return the results **in index order**
//! regardless of which worker computed what. Each simulation is
//! deterministic and self-contained, so parallel execution is bit-identical
//! to sequential execution by construction (asserted by
//! `tests/parallel_determinism.rs`).
//!
//! The worker count comes from `STRANGE_THREADS` (default: the host's
//! available parallelism), read once per process.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

static THREADS: OnceLock<usize> = OnceLock::new();

/// Worker threads used by the batched entry points (`STRANGE_THREADS`,
/// default: available parallelism). Read once per process; at least 1.
pub fn worker_threads() -> usize {
    *THREADS.get_or_init(|| {
        std::env::var("STRANGE_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(NonZeroUsize::get)
                    .unwrap_or(1)
            })
    })
}

/// Runs `f(0..n)` on up to `threads` scoped workers and returns the
/// results in index order. With `threads <= 1` (or fewer than two jobs)
/// the jobs run inline on the caller's thread — the sequential reference
/// path that the parallel path must match bit-for-bit.
///
/// Jobs are dispatched in index order; when job costs are known, prefer
/// [`run_indexed_weighted`], which dispatches longest-first to tighten
/// the end-of-batch barrier tail.
///
/// # Panics
///
/// Propagates a panic from any job (bench targets are expected to abort
/// loudly on internal errors).
pub fn run_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_in_order(n, threads, &(0..n).collect::<Vec<_>>(), f)
}

/// [`run_indexed`] with cost-aware dispatch: `weight(i)` estimates job
/// `i`'s cost (e.g. `cores × instructions`), and workers pop jobs in
/// descending-weight order (ties broken by index, so equal weights
/// degrade to plain index order). Results are still returned in **index
/// order**, and every job runs exactly once, so the output is
/// bit-identical to [`run_indexed`] — only the wall-clock schedule
/// changes: a long job landing last no longer serializes the barrier
/// tail behind an otherwise-idle pool.
///
/// # Panics
///
/// Propagates a panic from any job.
pub fn run_indexed_weighted<T, F, W>(n: usize, threads: usize, weight: W, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    W: Fn(usize) -> u64,
{
    run_in_order(n, threads, &dispatch_order(n, weight), f)
}

/// The longest-first dispatch schedule: indices `0..n` sorted by
/// descending `weight(i)`, ties by ascending index (deterministic).
pub fn dispatch_order<W: Fn(usize) -> u64>(n: usize, weight: W) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weight(i)), i));
    order
}

/// Shared engine: runs the jobs, popping `order` front-to-back, storing
/// results by original index. The sequential path (`threads <= 1`) runs
/// in plain index order — dispatch order is a parallel scheduling concern
/// only, and keeping the reference path order-stable makes the
/// bit-identity contract easy to reason about.
fn run_in_order<T, F>(n: usize, threads: usize, order: &[usize], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    debug_assert_eq!(order.len(), n);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    // `Mutex<Option<T>>` slots only require `T: Send` (a shared `OnceLock`
    // would demand `T: Sync`); each slot is locked exactly once, by the
    // worker that drew its index.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                if k >= n {
                    break;
                }
                let i = order[k];
                let value = f(i);
                let prev = slots[i].lock().expect("slot poisoned").replace(value);
                assert!(prev.is_none(), "job {i} ran twice");
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(run_indexed(2, 16, |i| i), vec![0, 1]);
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn worker_threads_is_at_least_one() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn dispatch_order_is_longest_first_with_stable_ties() {
        let weights = [5u64, 9, 9, 1, 7];
        let order = dispatch_order(weights.len(), |i| weights[i]);
        assert_eq!(order, vec![1, 2, 4, 0, 3]);
        // Equal weights degrade to plain index order.
        assert_eq!(dispatch_order(4, |_| 3), vec![0, 1, 2, 3]);
    }

    #[test]
    fn weighted_results_stay_in_index_order() {
        for threads in [1, 2, 8] {
            let out = run_indexed_weighted(50, threads, |i| (50 - i) as u64, |i| i * 3);
            assert_eq!(out, (0..50).map(|i| i * 3).collect::<Vec<_>>());
            let out = run_indexed_weighted(50, threads, |i| i as u64, |i| i + 1);
            assert_eq!(out, (1..=50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn weighted_matches_unweighted_results() {
        let plain = run_indexed(40, 4, |i| i * i);
        let weighted = run_indexed_weighted(40, 4, |i| (i % 7) as u64, |i| i * i);
        assert_eq!(plain, weighted);
    }
}
