//! The on-disk alone-baseline cache: a disk hit must be bit-identical to
//! a fresh recompute, stale/foreign entries must miss, and the cache must
//! be invisible to results (only to wall time).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use strange_bench::{AloneDiskCache, Harness, Mech, ScaleConfig};
use strange_workloads::AppRef;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// A unique throwaway cache directory per test (under the target dir so
/// the sandboxed build environment may write it).
fn scratch_dir() -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"))
        .join(format!("alone-cache-test-{}-{seq}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn tiny_scale() -> ScaleConfig {
    ScaleConfig {
        instr: 5_000,
        per_group: 2,
    }
}

#[test]
fn disk_hit_is_bit_identical_to_recompute() {
    let dir = scratch_dir();
    let app = AppRef::Named("povray");

    // Fresh harness, no disk cache: the ground truth.
    let truth = Harness::with_scale(tiny_scale()).alone(&app, Mech::DRange);

    // First cached harness: miss + store.
    let h1 = Harness::with_scale(tiny_scale())
        .with_disk_cache(AloneDiskCache::new(&dir, "test-tag"));
    let first = h1.alone(&app, Mech::DRange);
    assert_eq!(h1.disk_cache().unwrap().hits(), 0);
    assert_eq!(h1.disk_cache().unwrap().misses(), 1);

    // Second cached harness (fresh in-memory cache): disk hit.
    let h2 = Harness::with_scale(tiny_scale())
        .with_disk_cache(AloneDiskCache::new(&dir, "test-tag"));
    let second = h2.alone(&app, Mech::DRange);
    assert_eq!(h2.disk_cache().unwrap().hits(), 1, "second run must hit disk");

    // Bit-identical across truth, store path, and hit path.
    for run in [first, second] {
        assert_eq!(run.exec_cycles, truth.exec_cycles);
        assert_eq!(run.mcpi.to_bits(), truth.mcpi.to_bits());
        assert_eq!(run.ipc.to_bits(), truth.ipc.to_bits());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tag_and_scale_changes_invalidate() {
    let dir = scratch_dir();
    let app = AppRef::Named("povray");
    let h = Harness::with_scale(tiny_scale())
        .with_disk_cache(AloneDiskCache::new(&dir, "tag-a"));
    h.alone(&app, Mech::DRange);

    // Different code tag: same key otherwise, must recompute.
    let other_tag = Harness::with_scale(tiny_scale())
        .with_disk_cache(AloneDiskCache::new(&dir, "tag-b"));
    other_tag.alone(&app, Mech::DRange);
    assert_eq!(other_tag.disk_cache().unwrap().hits(), 0);

    // Different instruction target: must recompute.
    let other_scale = Harness::with_scale(ScaleConfig {
        instr: 6_000,
        per_group: 2,
    })
    .with_disk_cache(AloneDiskCache::new(&dir, "tag-a"));
    other_scale.alone(&app, Mech::DRange);
    assert_eq!(other_scale.disk_cache().unwrap().hits(), 0);

    // Different mechanism: must recompute.
    let h2 = Harness::with_scale(tiny_scale())
        .with_disk_cache(AloneDiskCache::new(&dir, "tag-a"));
    h2.alone(&app, Mech::Quac);
    assert_eq!(h2.disk_cache().unwrap().hits(), 0);
    // …while the original key still hits.
    h2.alone(&app, Mech::DRange);
    assert_eq!(h2.disk_cache().unwrap().hits(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_fall_back_to_recompute() {
    let dir = scratch_dir();
    let app = AppRef::Named("povray");
    let h = Harness::with_scale(tiny_scale())
        .with_disk_cache(AloneDiskCache::new(&dir, "t"));
    let truth = h.alone(&app, Mech::DRange);

    // Corrupt every cache file in place.
    for entry in std::fs::read_dir(&dir).unwrap() {
        std::fs::write(entry.unwrap().path(), "{corrupt").unwrap();
    }
    let h2 = Harness::with_scale(tiny_scale())
        .with_disk_cache(AloneDiskCache::new(&dir, "t"));
    let run = h2.alone(&app, Mech::DRange);
    assert_eq!(h2.disk_cache().unwrap().hits(), 0, "corrupt file must miss");
    assert_eq!(run.exec_cycles, truth.exec_cycles);
    let _ = std::fs::remove_dir_all(&dir);
}
