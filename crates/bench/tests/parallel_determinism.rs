//! The batched, multi-threaded runner must be **bit-identical** to the
//! sequential harness: same `RunResult`s, same per-workload metrics, same
//! alone-cache values — for any worker count. Every simulation is
//! deterministic and self-contained, so the only way parallelism could
//! diverge is a harness bug (shared-state leak, mis-ordered collection,
//! duplicated alone baseline); these tests pin that down.

use strange_bench::{
    eval_multi_matrix_with_threads, eval_pair_matrix_with_threads, Design, Harness, Mech, RunJob,
    ScaleConfig,
};
use strange_workloads::{eval_pairs, four_core_groups, Workload};

const SCALE: ScaleConfig = ScaleConfig {
    instr: 8_000,
    per_group: 2,
};

fn pair_workloads(n: usize) -> Vec<Workload> {
    eval_pairs(5120).into_iter().take(n).collect()
}

#[test]
fn parallel_pair_matrix_is_bit_identical_to_sequential() {
    // ≥2 designs × ≥3 workloads, as required by the acceptance criteria.
    let designs = [Design::Oblivious, Design::Greedy, Design::DrStrange];
    let workloads = pair_workloads(4);
    let seq_h = Harness::with_scale(SCALE);
    let seq = eval_pair_matrix_with_threads(&seq_h, &designs, &workloads, Mech::DRange, 1);
    for threads in [2, 4] {
        let par_h = Harness::with_scale(SCALE);
        let par =
            eval_pair_matrix_with_threads(&par_h, &designs, &workloads, Mech::DRange, threads);
        assert_eq!(seq, par, "{threads}-thread matrix diverged");
        // Same alone-cache contents: same number of distinct baselines,
        // and every cached value identical (f64-exact).
        assert_eq!(seq_h.alone_cache_len(), par_h.alone_cache_len());
        for wl in &workloads {
            for app in &wl.apps {
                assert_eq!(
                    seq_h.alone(app, Mech::DRange),
                    par_h.alone(app, Mech::DRange),
                    "alone baseline diverged for {}",
                    app.label()
                );
            }
        }
    }
}

#[test]
fn parallel_multi_matrix_is_bit_identical_to_sequential() {
    let designs = [Design::Oblivious, Design::DrStrange];
    let workloads: Vec<Workload> = four_core_groups(2, strange_bench::MIX_SEED)
        .into_iter()
        .flat_map(|(_, ws)| ws)
        .take(3)
        .collect();
    assert!(workloads.len() >= 3);
    let seq_h = Harness::with_scale(SCALE);
    let seq = eval_multi_matrix_with_threads(&seq_h, &designs, &workloads, Mech::DRange, 1);
    let par_h = Harness::with_scale(SCALE);
    let par = eval_multi_matrix_with_threads(&par_h, &designs, &workloads, Mech::DRange, 3);
    assert_eq!(seq, par);
}

#[test]
fn run_many_matches_individual_runs() {
    let designs = [Design::Oblivious, Design::DrStrange];
    let workloads = pair_workloads(3);
    let h = Harness::with_scale(SCALE);
    let jobs: Vec<RunJob> = designs
        .iter()
        .flat_map(|&d| {
            workloads
                .iter()
                .map(move |w| RunJob::new(d, w.clone(), Mech::DRange))
        })
        .collect();
    let batch = h.run_many(&jobs);
    assert_eq!(batch.len(), jobs.len());
    for (job, got) in jobs.iter().zip(&batch) {
        let want = h.run(job.design, &job.workload, job.mech);
        assert_eq!(got.cpu_cycles, want.cpu_cycles, "{}", job.workload.name);
        assert_eq!(got.mem_cycles, want.mem_cycles);
        assert_eq!(got.hit_cycle_limit, want.hit_cycle_limit);
        assert_eq!(got.stats.rng_requests, want.stats.rng_requests);
        assert_eq!(got.stats.fill_batches, want.stats.fill_batches);
        assert_eq!(
            got.stats.rng_served_from_buffer,
            want.stats.rng_served_from_buffer
        );
        for core in 0..job.workload.cores() {
            assert_eq!(got.exec_cycles(core), want.exec_cycles(core));
            assert_eq!(got.cores[core].end_stats, want.cores[core].end_stats);
        }
        for (a, b) in got.channels.iter().zip(&want.channels) {
            assert_eq!(a.acts, b.acts);
            assert_eq!(a.reads, b.reads);
            assert_eq!(a.idle_periods, b.idle_periods);
        }
    }
}
