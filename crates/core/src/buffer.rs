//! The random number buffer (Section 5.1).
//!
//! A small FIFO of 64-bit true-random words in the memory controller.
//! DR-STRaNGe fills it during (predicted) idle DRAM periods in 8-bit
//! batches and serves incoming random-number requests from it with low
//! latency. Served words are discarded (each random number is returned to
//! exactly one requester — the Section 6 security property).

use std::collections::VecDeque;

use strange_metrics::Ratio;

/// A bit-granular FIFO of random data with a 64-bit-entry capacity.
///
/// Bits arrive in arbitrary-size batches (D-RaNGe rounds deliver 8 bits,
/// QUAC rounds 256); consumers take whole 64-bit words.
///
/// # Examples
///
/// ```
/// use strange_core::RandomNumberBuffer;
///
/// let mut buf = RandomNumberBuffer::new(16);
/// assert!(buf.pop_word().is_none());
/// for _ in 0..8 {
///     buf.push_bits(0xAB, 8); // eight 8-bit batches
/// }
/// assert_eq!(buf.available_bits(), 64);
/// assert!(buf.pop_word().is_some());
/// assert_eq!(buf.available_bits(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct RandomNumberBuffer {
    words: VecDeque<u64>,
    partial: u64,
    partial_bits: u32,
    capacity_entries: usize,
    serves: Ratio,
}

impl RandomNumberBuffer {
    /// Creates a buffer with `capacity_entries` 64-bit entries (paper
    /// default 16; 0 yields an always-empty, always-full buffer that
    /// disables buffering).
    pub fn new(capacity_entries: usize) -> Self {
        RandomNumberBuffer {
            words: VecDeque::with_capacity(capacity_entries),
            partial: 0,
            partial_bits: 0,
            capacity_entries,
            serves: Ratio::new(),
        }
    }

    /// Capacity in 64-bit entries.
    pub fn capacity_entries(&self) -> usize {
        self.capacity_entries
    }

    /// Capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_entries as u64 * 64
    }

    /// Bits currently stored (complete words plus the partial word).
    pub fn available_bits(&self) -> u64 {
        self.words.len() as u64 * 64 + self.partial_bits as u64
    }

    /// Number of complete 64-bit words available.
    pub fn available_words(&self) -> usize {
        self.words.len()
    }

    /// Whether the buffer can accept no more bits.
    pub fn is_full(&self) -> bool {
        self.available_bits() >= self.capacity_bits()
    }

    /// Whether no complete word is available.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Pushes `count` (1..=64) random bits (low bits of `value`). Bits
    /// beyond capacity are dropped. Returns the number of bits accepted.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than 64.
    pub fn push_bits(&mut self, value: u64, count: u32) -> u32 {
        assert!((1..=64).contains(&count), "count must be 1..=64");
        let room = self.capacity_bits().saturating_sub(self.available_bits());
        let take = count.min(room.min(64) as u32);
        for i in 0..take {
            let bit = (value >> i) & 1;
            self.partial |= bit << self.partial_bits;
            self.partial_bits += 1;
            if self.partial_bits == 64 {
                self.words.push_back(self.partial);
                self.partial = 0;
                self.partial_bits = 0;
            }
        }
        take
    }

    /// Takes one complete 64-bit word, discarding it from the buffer, or
    /// `None` when fewer than 64 bits are available. Records the outcome in
    /// the serve-rate statistics.
    pub fn pop_word(&mut self) -> Option<u64> {
        let word = self.words.pop_front();
        self.serves.record(word.is_some());
        word
    }

    /// Serve-rate statistics: the fraction of pop attempts satisfied from
    /// the buffer (Figure 10's "buffer serve rate").
    pub fn serve_stats(&self) -> Ratio {
        self.serves
    }

    /// Clears stored bits (partition/flush countermeasure hook, Section 6).
    pub fn clear(&mut self) {
        self.words.clear();
        self.partial = 0;
        self.partial_bits = 0;
    }

    /// Discards up to `count` stored words, oldest first (the
    /// fault-injection integrity-check hook: flagged-corrupt words are
    /// dropped, never served). Returns how many were actually discarded.
    /// The partial word is untouched — only complete words carry an
    /// integrity tag.
    pub fn discard_words(&mut self, count: usize) -> usize {
        let n = count.min(self.words.len());
        self.words.drain(..n);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_capacity_is_inert() {
        let mut b = RandomNumberBuffer::new(0);
        assert!(b.is_full());
        assert_eq!(b.push_bits(0xFF, 8), 0);
        assert!(b.pop_word().is_none());
        assert_eq!(b.serve_stats().rate(), 0.0);
    }

    #[test]
    fn bits_accumulate_into_words_in_order() {
        let mut b = RandomNumberBuffer::new(2);
        // First 64 bits: value 1 in the very first bit position.
        b.push_bits(1, 1);
        b.push_bits(0, 63);
        assert_eq!(b.available_words(), 1);
        assert_eq!(b.pop_word(), Some(1));
    }

    #[test]
    fn capacity_truncates_pushes() {
        let mut b = RandomNumberBuffer::new(1);
        assert_eq!(b.push_bits(u64::MAX, 64), 64);
        assert!(b.is_full());
        assert_eq!(b.push_bits(u64::MAX, 8), 0);
    }

    #[test]
    fn served_words_are_discarded() {
        let mut b = RandomNumberBuffer::new(1);
        b.push_bits(0xDEAD, 64);
        let first = b.pop_word();
        let second = b.pop_word();
        assert!(first.is_some());
        assert!(second.is_none(), "a served word must not be served twice");
    }

    #[test]
    fn serve_rate_tracks_hits_and_misses() {
        let mut b = RandomNumberBuffer::new(1);
        b.pop_word(); // miss
        b.push_bits(7, 64);
        b.pop_word(); // hit
        assert_eq!(b.serve_stats().rate(), 0.5);
    }

    #[test]
    fn clear_discards_content() {
        let mut b = RandomNumberBuffer::new(2);
        b.push_bits(0xAB, 8);
        b.push_bits(0xCD, 64);
        b.clear();
        assert_eq!(b.available_bits(), 0);
    }

    #[test]
    fn discard_words_drops_oldest_and_caps_at_occupancy() {
        let mut b = RandomNumberBuffer::new(4);
        for w in 1u64..=3 {
            b.push_bits(w, 64);
        }
        b.push_bits(0xF, 4); // partial word survives discards
        assert_eq!(b.discard_words(2), 2);
        assert_eq!(b.pop_word(), Some(3), "oldest words go first");
        assert_eq!(b.discard_words(5), 0, "capped at occupancy");
        assert_eq!(b.available_bits(), 4);
    }

    proptest! {
        /// available_bits() is conserved by pushes (accepted bits only) and
        /// bounded by capacity.
        #[test]
        fn push_conservation(
            capacity in 0usize..8,
            batches in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..64),
        ) {
            let mut b = RandomNumberBuffer::new(capacity);
            let mut expected: u64 = 0;
            for (value, count) in batches {
                let accepted = b.push_bits(value, count);
                expected += accepted as u64;
                prop_assert_eq!(b.available_bits(), expected);
                prop_assert!(b.available_bits() <= b.capacity_bits());
            }
        }

        /// Popping returns exactly the accumulated 64-bit groups, FIFO.
        #[test]
        fn fifo_order(words in proptest::collection::vec(any::<u64>(), 1..8)) {
            let mut b = RandomNumberBuffer::new(words.len());
            for w in &words {
                b.push_bits(*w, 64);
            }
            for w in &words {
                prop_assert_eq!(b.pop_word(), Some(*w));
            }
            prop_assert!(b.pop_word().is_none());
        }

        /// 8-bit batch reassembly: pushing 8 batches of 8 bits yields the
        /// word whose byte i equals batch i.
        #[test]
        fn byte_reassembly(bytes in proptest::collection::vec(0u64..256, 8)) {
            let mut b = RandomNumberBuffer::new(1);
            for byte in &bytes {
                b.push_bits(*byte, 8);
            }
            let expected = bytes
                .iter()
                .enumerate()
                .fold(0u64, |acc, (i, byte)| acc | (byte << (8 * i)));
            prop_assert_eq!(b.pop_word(), Some(expected));
        }
    }
}
