//! System configuration (paper Table 1) and the design points of the
//! evaluation.

use strange_cpu::CoreConfig;
use strange_dram::{ConfigError, Geometry, TimingParams};

use crate::faults::FaultPlan;
use crate::health::WatchdogConfig;
use crate::sched::{CoalesceWindow, FairnessPolicy};
use crate::service::{QosClass, ServiceConfig};

/// Which baseline per-channel scheduling policy the controller uses for
/// regular (non-RNG) requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// FR-FCFS with a column-access cap (the paper's baseline; cap 16).
    FrFcfsCap(u32),
    /// Pure FR-FCFS (no cap).
    FrFcfs,
    /// BLISS with the paper's parameters (threshold 4, interval 10 000).
    Bliss,
}

/// How RNG requests are routed and arbitrated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RngRouting {
    /// RNG-oblivious: RNG requests share the per-channel read queues and
    /// compete under the baseline policy (Section 3's baseline).
    Oblivious,
    /// RNG-aware: a separate global RNG request queue plus the Section 5.2
    /// priority rules and starvation prevention.
    Aware,
}

/// How the random number buffer is filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillMode {
    /// No buffer filling (every request is generated on demand).
    None,
    /// The Greedy Idle Design (Section 7): an oracle that adds one batch of
    /// bits for every `PeriodThreshold` cycles a channel stays idle, with
    /// zero overhead (no channel occupancy, no commands).
    GreedyOracle,
    /// Real filling driven by an idleness predictor: generation rounds
    /// occupy the channel, mispredictions stall regular requests.
    Predictive,
}

/// How the simulation loop advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMode {
    /// Tick every CPU cycle and every DRAM cycle unconditionally — the
    /// bit-exact reference the fast-forward path is validated against.
    Reference,
    /// Event-driven fast-forward: when every core is dormant and every
    /// channel quiescent, jump straight to the next event (completion,
    /// blockade end, refresh deadline, fill round, timing readiness) and
    /// bulk-apply the per-cycle accounting for the skipped span. Produces
    /// results bit-identical to [`SimMode::Reference`].
    FastForward,
}

/// Which DRAM idleness predictor gates predictive filling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// Treat every idle period as long (the "simple buffering mechanism"
    /// of Section 5.1.1, evaluated as "DR-STRaNGe (No Pred.)" in Fig. 13).
    AlwaysLong,
    /// The 256-entry 2-bit-saturating-counter predictor (Section 5.1.2).
    Simple,
    /// The Q-learning predictor (Section 5.1.2, "DR-STRaNGe + RL").
    Qlearning,
}

/// Full system configuration.
///
/// Defaults reproduce paper Table 1 plus the DR-STRaNGe row: 4 GHz 3-wide
/// cores with 128-entry windows, DDR3-1600 with 4 channels × 1 rank × 8
/// banks, 32-entry queues, FR-FCFS+Cap(16), a 32-entry RNG queue, a
/// 256-entry predictor table per channel, and a 16-entry random number
/// buffer.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of cores (1–16 in the paper's experiments).
    pub cores: usize,
    /// Instructions each core must retire for the run to count as finished.
    pub instruction_target: u64,
    /// DRAM geometry.
    pub geometry: Geometry,
    /// DRAM timing parameters.
    pub timing: TimingParams,
    /// Core microarchitecture parameters.
    pub core: CoreConfig,
    /// Per-channel scheduling policy for regular requests.
    pub scheduler: SchedulerKind,
    /// RNG request routing (oblivious vs. RNG-aware).
    pub routing: RngRouting,
    /// Buffer-fill strategy.
    pub fill: FillMode,
    /// Idleness predictor used by [`FillMode::Predictive`].
    pub predictor: PredictorKind,
    /// Random number buffer capacity in 64-bit entries (paper default 16;
    /// 0 disables the buffer entirely).
    pub buffer_entries: usize,
    /// Idle-period length (cycles) above which a period counts as long
    /// (paper: 40, the time to generate one 8-bit batch).
    pub period_threshold: u64,
    /// Low-utilization threshold: read-queue occupancy below which the
    /// predictor may trigger a fill despite pending requests (paper: 4;
    /// 0 disables low-utilization filling).
    pub low_util_threshold: usize,
    /// Starvation-prevention stall limit in cycles (paper: 100).
    pub stall_limit: u64,
    /// Global RNG request queue capacity (paper: 32).
    pub rng_queue_capacity: usize,
    /// Latency (memory cycles) to serve a random number from the buffer,
    /// covering the syscall path and the buffer read.
    pub buffer_serve_latency: u64,
    /// Per-core OS priority levels (higher = more important). Empty means
    /// all equal.
    pub priorities: Vec<u8>,
    /// Safety cap on simulated CPU cycles (0 = derive from the target).
    pub max_cpu_cycles: u64,
    /// How the simulation loop advances time (defaults to
    /// [`SimMode::FastForward`]; results are identical either way).
    pub sim_mode: SimMode,
    /// Whether the per-channel O(1) next-event probe cache is enabled
    /// (default true; results are identical either way — the switch lets
    /// perf benchmarks isolate the cache's contribution). Also gates the
    /// engine-level fill-state probe memoization.
    pub probe_cache: bool,
    /// Whether the per-channel dirty-tracked readiness cache is enabled
    /// (default true; results are identical either way — live-tick
    /// readiness rebuilds recompute only entries whose timing inputs
    /// changed instead of the whole queue). A/B switch for the busy-tick
    /// benchmarks, like `probe_cache`.
    pub dirty_readiness: bool,
    /// Whether RNG completions are scheduled as coalesced one-event
    /// bursts (default true; results are identical either way — a
    /// k-request burst becomes one heap event with k entries instead of
    /// k events, so it no longer cuts a fast-forward bubble into k
    /// spans). A/B switch for the busy-tick benchmarks.
    pub burst_events: bool,
    /// Whether the random number buffer starts full (default true: a
    /// booted machine reaches a full buffer long before any measurement
    /// window). Disable for cold-start studies and the interactive
    /// `RngDevice` front-end.
    pub prefill_buffer: bool,
    /// The `getrandom()` service layer: simulated clients issuing
    /// random-number requests from configurable arrival processes (empty
    /// disables the service — the default).
    pub service: ServiceConfig,
    /// How competing tenants are ordered at the buffer-serve and
    /// service-issue decision points (defaults to
    /// [`FairnessPolicy::Strict`], the pre-policy behavior, bit-identical
    /// to earlier versions).
    pub fairness: FairnessPolicy,
    /// The Section 5.2 burst-coalescing window: when a queued RNG burst
    /// commits to one generation episode (defaults to
    /// [`CoalesceWindow::Stability`], the paper-faithful one-cycle
    /// stability wait).
    pub coalesce: CoalesceWindow,
    /// Deterministic fault schedule (channel outages, stall storms,
    /// entropy derating, buffer corruption) applied by the engine at
    /// exact DRAM-bus cycles. Empty — no faults — by default.
    pub fault_plan: FaultPlan,
    /// Entropy-health watchdog (per-channel quality windows, quarantine,
    /// probationary re-admission). Disabled by default.
    pub watchdog: WatchdogConfig,
}

impl SystemConfig {
    /// Table 1 baseline system with `cores` cores: RNG-oblivious routing,
    /// no buffer, FR-FCFS+Cap(16).
    pub fn rng_oblivious(cores: usize) -> Self {
        SystemConfig {
            cores,
            instruction_target: 300_000,
            geometry: Geometry::paper_default(),
            timing: TimingParams::ddr3_1600(),
            core: CoreConfig::paper_default(),
            scheduler: SchedulerKind::FrFcfsCap(16),
            routing: RngRouting::Oblivious,
            fill: FillMode::None,
            predictor: PredictorKind::Simple,
            buffer_entries: 0,
            period_threshold: 40,
            low_util_threshold: 4,
            stall_limit: 100,
            rng_queue_capacity: 32,
            buffer_serve_latency: 10,
            priorities: Vec::new(),
            max_cpu_cycles: 0,
            sim_mode: SimMode::FastForward,
            probe_cache: true,
            dirty_readiness: true,
            burst_events: true,
            prefill_buffer: true,
            service: ServiceConfig::default(),
            fairness: FairnessPolicy::Strict,
            coalesce: CoalesceWindow::Stability,
            fault_plan: FaultPlan::default(),
            watchdog: WatchdogConfig::off(),
        }
    }

    /// The Greedy Idle comparison design: RNG-aware routing, oracle filling
    /// into a 16-entry buffer.
    pub fn greedy_idle(cores: usize) -> Self {
        SystemConfig {
            routing: RngRouting::Aware,
            fill: FillMode::GreedyOracle,
            buffer_entries: 16,
            ..SystemConfig::rng_oblivious(cores)
        }
    }

    /// Full DR-STRaNGe: RNG-aware routing, predictive filling with the
    /// simple predictor (low-utilization threshold 4), 16-entry buffer.
    pub fn dr_strange(cores: usize) -> Self {
        SystemConfig {
            routing: RngRouting::Aware,
            fill: FillMode::Predictive,
            predictor: PredictorKind::Simple,
            buffer_entries: 16,
            ..SystemConfig::rng_oblivious(cores)
        }
    }

    /// DR-STRaNGe with the Q-learning predictor ("DR-STRaNGe + RL").
    pub fn dr_strange_rl(cores: usize) -> Self {
        SystemConfig {
            predictor: PredictorKind::Qlearning,
            ..SystemConfig::dr_strange(cores)
        }
    }

    /// DR-STRaNGe without an idleness predictor (Section 5.1.1's simple
    /// buffering; "DR-STRaNGe (No Pred.)" in Figure 13): every idle cycle
    /// triggers filling, no low-utilization mode.
    pub fn dr_strange_no_predictor(cores: usize) -> Self {
        SystemConfig {
            predictor: PredictorKind::AlwaysLong,
            low_util_threshold: 0,
            ..SystemConfig::dr_strange(cores)
        }
    }

    /// Sets the per-core instruction target.
    pub fn with_instruction_target(mut self, target: u64) -> Self {
        self.instruction_target = target;
        self
    }

    /// Sets the buffer capacity in 64-bit entries.
    pub fn with_buffer_entries(mut self, entries: usize) -> Self {
        self.buffer_entries = entries;
        self
    }

    /// Sets per-core priorities (higher value = higher priority).
    pub fn with_priorities(mut self, priorities: Vec<u8>) -> Self {
        self.priorities = priorities;
        self
    }

    /// Sets the baseline scheduling policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the low-utilization threshold (0 disables).
    pub fn with_low_util_threshold(mut self, threshold: usize) -> Self {
        self.low_util_threshold = threshold;
        self
    }

    /// Sets the simulation-loop mode (reference vs. fast-forward).
    pub fn with_sim_mode(mut self, sim_mode: SimMode) -> Self {
        self.sim_mode = sim_mode;
        self
    }

    /// Enables or disables the per-channel next-event probe cache.
    pub fn with_probe_cache(mut self, enabled: bool) -> Self {
        self.probe_cache = enabled;
        self
    }

    /// Enables or disables the per-channel dirty-tracked readiness cache.
    pub fn with_dirty_readiness(mut self, enabled: bool) -> Self {
        self.dirty_readiness = enabled;
        self
    }

    /// Enables or disables coalesced one-event RNG completion bursts.
    pub fn with_burst_events(mut self, enabled: bool) -> Self {
        self.burst_events = enabled;
        self
    }

    /// Applies the `STRANGE_PROBE_CACHE`, `STRANGE_DIRTY_READINESS`, and
    /// `STRANGE_BURST_EVENTS` environment overrides (`0`/`false`/`off`
    /// disables, `1`/`true`/`on` enables, anything else leaves the
    /// built-in default). The bench harness routes every design's config
    /// through this, so any existing benchmark can A/B the perf features
    /// without code changes.
    pub fn with_perf_toggles_from_env(mut self) -> Self {
        fn read(var: &str) -> Option<bool> {
            match std::env::var(var).ok()?.to_ascii_lowercase().as_str() {
                "0" | "false" | "off" => Some(false),
                "1" | "true" | "on" => Some(true),
                _ => None,
            }
        }
        if let Some(v) = read("STRANGE_PROBE_CACHE") {
            self.probe_cache = v;
        }
        if let Some(v) = read("STRANGE_DIRTY_READINESS") {
            self.dirty_readiness = v;
        }
        if let Some(v) = read("STRANGE_BURST_EVENTS") {
            self.burst_events = v;
        }
        self
    }

    /// Sets the `getrandom()` service configuration (clients + capture).
    pub fn with_service(mut self, service: ServiceConfig) -> Self {
        self.service = service;
        self
    }

    /// Enables or disables the boot-time buffer pre-fill.
    pub fn with_prefill_buffer(mut self, prefill: bool) -> Self {
        self.prefill_buffer = prefill;
        self
    }

    /// Sets the tenant fairness policy (strict priority, aging, or
    /// weighted fair queueing).
    pub fn with_fairness(mut self, fairness: FairnessPolicy) -> Self {
        self.fairness = fairness;
        self
    }

    /// Sets the RNG-burst coalescing window.
    pub fn with_coalesce_window(mut self, coalesce: CoalesceWindow) -> Self {
        self.coalesce = coalesce;
        self
    }

    /// Sets the deterministic fault schedule.
    pub fn with_fault_plan(mut self, fault_plan: FaultPlan) -> Self {
        self.fault_plan = fault_plan;
        self
    }

    /// Sets the entropy-health watchdog configuration.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Priority level of `core` (1 when unset — all applications equal).
    pub fn priority_of(&self, core: usize) -> u8 {
        self.priorities.get(core).copied().unwrap_or(1)
    }

    /// Extends `priorities` to cover the service clients' virtual cores
    /// (index `cores + i` for client *i*) from their QoS classes, so the
    /// Section 5.2 arbitration sees tenant priorities. Explicit entries
    /// win; when every client is [`QosClass::Normal`] and no entry covers
    /// a virtual core, the vector is left as-is (Normal equals the
    /// unset-default priority 1). Called by `System::new` /
    /// `MemSubsystem::new`; idempotent.
    pub(crate) fn materialize_client_priorities(&mut self) {
        let clients = &self.service.clients;
        let full = self.cores + clients.len();
        if clients.is_empty() || self.priorities.len() >= full {
            return;
        }
        if clients.iter().all(|c| c.qos == QosClass::Normal)
            && self.priorities.len() <= self.cores
        {
            return;
        }
        while self.priorities.len() < self.cores {
            self.priorities.push(1);
        }
        while self.priorities.len() < full {
            let i = self.priorities.len() - self.cores;
            self.priorities.push(clients[i].qos.priority());
        }
    }

    /// Upper bound on CPU cycles for the run.
    pub fn cycle_limit(&self) -> u64 {
        if self.max_cpu_cycles > 0 {
            self.max_cpu_cycles
        } else {
            // Generous: a slowdown beyond ~300x would hit this.
            self.instruction_target.saturating_mul(300).max(1_000_000)
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] when a field is out of
    /// range (zero cores, zero instruction target, geometry/timing issues,
    /// or a predictive configuration with a zero-entry buffer).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 && self.service.clients.is_empty() && !self.service.sessions {
            // A pure service-driven system (no trace cores) is a valid
            // configuration; a system with neither cores nor clients —
            // and no dynamic-session registration — is not.
            return Err(ConfigError::InvalidParameter {
                field: "cores",
                constraint: "be nonzero (or configure service clients/sessions)",
            });
        }
        for client in &self.service.clients {
            client.validate()?;
        }
        if self.priorities.len() > self.cores + self.service.clients.len() {
            // Entries beyond the last virtual client core could never be
            // consulted; rejecting them catches mis-sized QoS setups.
            return Err(ConfigError::InvalidParameter {
                field: "priorities",
                constraint: "cover at most the cores plus service clients",
            });
        }
        if self.instruction_target == 0 {
            return Err(ConfigError::InvalidParameter {
                field: "instruction_target",
                constraint: "be nonzero",
            });
        }
        if self.rng_queue_capacity == 0 {
            return Err(ConfigError::InvalidParameter {
                field: "rng_queue_capacity",
                constraint: "be nonzero",
            });
        }
        if self.fill != FillMode::None && self.buffer_entries == 0 {
            return Err(ConfigError::InvalidParameter {
                field: "buffer_entries",
                constraint: "be nonzero when a fill mode is enabled",
            });
        }
        if matches!(self.fairness, FairnessPolicy::Aging { quantum: 0 }) {
            return Err(ConfigError::InvalidParameter {
                field: "fairness.quantum",
                constraint: "be nonzero (aging cycles per priority level)",
            });
        }
        if matches!(self.fairness, FairnessPolicy::WeightedFair { quantum: 0 }) {
            return Err(ConfigError::InvalidParameter {
                field: "fairness.quantum",
                constraint: "be nonzero (DRR words per unit weight)",
            });
        }
        if matches!(self.coalesce, CoalesceWindow::KOrTimeout { k: 0, .. }) {
            return Err(ConfigError::InvalidParameter {
                field: "coalesce.k",
                constraint: "be nonzero (k = 1 disables coalescing)",
            });
        }
        self.fault_plan.validate(self.geometry.channels)?;
        self.watchdog.validate()?;
        self.geometry.validate()?;
        self.timing.validate()?;
        Ok(())
    }

    /// Renders the configuration as paper-Table-1-style rows (used by the
    /// `table1_config` bench target).
    pub fn describe(&self) -> String {
        format!(
            "Processor     {} cores, 4GHz, {}-wide issue, {}-entry instruction window\n\
             DRAM          DDR3-1600, 800MHz bus, {} channels, {} rank/channel, {} banks/rank, {}K rows/bank\n\
             Memory Ctrl.  32-entry read/write queues, {:?}\n\
             DR-STRANGE    {}-entry RNG queue, routing {:?}, fill {:?}, predictor {:?}, {}-entry random number buffer",
            self.cores,
            self.core.issue_width,
            self.core.window_size,
            self.geometry.channels,
            self.geometry.ranks,
            self.geometry.banks,
            self.geometry.rows / 1024,
            self.scheduler,
            self.rng_queue_capacity,
            self.routing,
            self.fill,
            self.predictor,
            self.buffer_entries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            SystemConfig::rng_oblivious(2),
            SystemConfig::greedy_idle(2),
            SystemConfig::dr_strange(2),
            SystemConfig::dr_strange_rl(4),
            SystemConfig::dr_strange_no_predictor(2),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn paper_defaults_match_table1() {
        let cfg = SystemConfig::dr_strange(2);
        assert_eq!(cfg.geometry.channels, 4);
        assert_eq!(cfg.geometry.banks, 8);
        assert_eq!(cfg.core.issue_width, 3);
        assert_eq!(cfg.core.window_size, 128);
        assert_eq!(cfg.buffer_entries, 16);
        assert_eq!(cfg.period_threshold, 40);
        assert_eq!(cfg.low_util_threshold, 4);
        assert_eq!(cfg.stall_limit, 100);
        assert_eq!(cfg.rng_queue_capacity, 32);
        assert_eq!(cfg.scheduler, SchedulerKind::FrFcfsCap(16));
    }

    #[test]
    fn zero_cores_rejected() {
        assert!(SystemConfig::rng_oblivious(0).validate().is_err());
    }

    #[test]
    fn predictive_fill_requires_buffer() {
        let cfg = SystemConfig::dr_strange(2).with_buffer_entries(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fairness_policy_parameters_are_validated() {
        for cfg in [
            SystemConfig::dr_strange(2).with_fairness(FairnessPolicy::aging()),
            SystemConfig::dr_strange(2).with_fairness(FairnessPolicy::weighted_fair()),
            SystemConfig::dr_strange(2)
                .with_coalesce_window(CoalesceWindow::KOrTimeout { k: 8, timeout: 400 }),
        ] {
            cfg.validate().unwrap();
        }
        let zero_aging =
            SystemConfig::dr_strange(2).with_fairness(FairnessPolicy::Aging { quantum: 0 });
        assert!(zero_aging.validate().is_err());
        let zero_wfq =
            SystemConfig::dr_strange(2).with_fairness(FairnessPolicy::WeightedFair { quantum: 0 });
        assert!(zero_wfq.validate().is_err());
        let zero_k = SystemConfig::dr_strange(2)
            .with_coalesce_window(CoalesceWindow::KOrTimeout { k: 0, timeout: 400 });
        assert!(zero_k.validate().is_err());
    }

    #[test]
    fn fault_plans_are_validated_against_the_geometry() {
        let ok = SystemConfig::dr_strange(2)
            .with_fault_plan(FaultPlan::new().outage(1_000, 3, 500).corruption(2_000, 8));
        ok.validate().unwrap();
        let bad_channel =
            SystemConfig::dr_strange(2).with_fault_plan(FaultPlan::new().outage(1_000, 4, 500));
        assert!(bad_channel.validate().is_err(), "channel 4 of 4 is out of range");
        let unsorted = SystemConfig::dr_strange(2)
            .with_fault_plan(FaultPlan::new().corruption(2_000, 8).outage(1_000, 0, 500));
        assert!(unsorted.validate().is_err());
    }

    #[test]
    fn watchdog_config_is_validated() {
        SystemConfig::dr_strange(2)
            .with_watchdog(WatchdogConfig::standard())
            .validate()
            .unwrap();
        let mut bad = WatchdogConfig::standard();
        bad.trip_failures = 0;
        assert!(SystemConfig::dr_strange(2).with_watchdog(bad).validate().is_err());
    }

    #[test]
    fn priorities_default_to_equal() {
        let cfg = SystemConfig::dr_strange(2);
        assert_eq!(cfg.priority_of(0), cfg.priority_of(1));
        let cfg = cfg.with_priorities(vec![2, 1]);
        assert!(cfg.priority_of(0) > cfg.priority_of(1));
    }

    #[test]
    fn describe_mentions_key_structures() {
        let s = SystemConfig::dr_strange(2).describe();
        assert!(s.contains("random number buffer"));
        assert!(s.contains("DDR3-1600"));
    }

    #[test]
    fn cycle_limit_scales_with_target() {
        let cfg = SystemConfig::dr_strange(2).with_instruction_target(10_000_000);
        assert!(cfg.cycle_limit() >= 10_000_000);
    }
}
