//! The DR-STRaNGe memory-side engine.
//!
//! [`MemSubsystem`] owns the channel controllers, the global RNG request
//! queue, the random number buffer, the per-channel idleness predictors,
//! and the TRNG mechanism, and implements the paper's Section 5 machinery:
//!
//! * **Modes** — channels run in Regular Execution Mode; on-demand
//!   generation switches *all* channels into RNG mode (bank drain +
//!   timing-parameter reconfiguration + generation rounds + restore),
//!   which is how the paper's baseline and DR-STRaNGe both generate when
//!   the buffer cannot serve.
//! * **RNG-aware arbitration** (Section 5.2) — the separate RNG queue, the
//!   OS-priority rules (RNG-prioritized / non-RNG-prioritized / equal), and
//!   the starvation-prevention stall counter.
//! * **Buffer filling** (Section 5.1) — greedy-oracle or predictor-gated
//!   generation rounds on idle channels, including the low-utilization
//!   path, with mispredictions mechanically stalling the requests that
//!   arrive while a round holds the channel.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use strange_cpu::MemorySystem;
use strange_dram::{
    Bliss, ChannelController, CompletedAccess, CoreId, DramAddress, FrFcfs, Readiness, Request,
    RequestId, RequestKind, SchedulerPolicy, CPU_CYCLES_PER_MEM_CYCLE,
};
use strange_trng::TrngMechanism;

use crate::buffer::RandomNumberBuffer;
use crate::config::{FillMode, PredictorKind, RngRouting, SchedulerKind, SystemConfig};
use crate::faults::FaultKind;
use crate::health::{HealthState, Watchdog};
use crate::sched::{effective_priority, strict_pick, CoalesceWindow, DrrState, FairnessPolicy};
use crate::predictor::{
    AlwaysLongPredictor, IdlenessPredictor, Prediction, QlearningPredictor, SimplePredictor,
};
use crate::stats::SystemStats;

/// Per-channel scheduling policy, monomorphized over the design space.
#[derive(Debug, Clone)]
pub enum AnyPolicy {
    /// FR-FCFS (optionally capped).
    FrFcfs(FrFcfs),
    /// BLISS.
    Bliss(Bliss),
}

impl SchedulerPolicy for AnyPolicy {
    fn select(&mut self, now: u64, queue: &[Request], readiness: &[Readiness]) -> Option<usize> {
        match self {
            AnyPolicy::FrFcfs(p) => p.select(now, queue, readiness),
            AnyPolicy::Bliss(p) => p.select(now, queue, readiness),
        }
    }

    fn on_serviced(&mut self, req: &Request, row_hit: bool) {
        match self {
            AnyPolicy::FrFcfs(p) => p.on_serviced(req, row_hit),
            AnyPolicy::Bliss(p) => p.on_serviced(req, row_hit),
        }
    }

    fn on_cycle(&mut self, now: u64) {
        match self {
            AnyPolicy::FrFcfs(p) => p.on_cycle(now),
            AnyPolicy::Bliss(p) => p.on_cycle(now),
        }
    }

    fn on_cycles_skipped(&mut self, from: u64, to: u64) {
        match self {
            AnyPolicy::FrFcfs(p) => p.on_cycles_skipped(from, to),
            AnyPolicy::Bliss(p) => p.on_cycles_skipped(from, to),
        }
    }
}

enum AnyPredictor {
    AlwaysLong(AlwaysLongPredictor),
    Simple(SimplePredictor),
    Qlearning(QlearningPredictor),
}

impl AnyPredictor {
    fn predict(&mut self, last_addr: u64) -> Prediction {
        match self {
            AnyPredictor::AlwaysLong(p) => p.predict(last_addr),
            AnyPredictor::Simple(p) => p.predict(last_addr),
            AnyPredictor::Qlearning(p) => p.predict(last_addr),
        }
    }

    fn update(&mut self, last_addr: u64, predicted: Prediction, was_long: bool) {
        match self {
            AnyPredictor::AlwaysLong(p) => p.update(last_addr, predicted, was_long),
            AnyPredictor::Simple(p) => p.update(last_addr, predicted, was_long),
            AnyPredictor::Qlearning(p) => p.update(last_addr, predicted, was_long),
        }
    }
}

/// One completed memory-side request, as delivered to the CPU/service
/// layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The issuing core (a virtual core ≥ `SystemConfig::cores` addresses
    /// a service client).
    pub core: CoreId,
    /// The request id handed out at issue time.
    pub id: RequestId,
    /// For RNG requests, the served 64-bit word and whether it came from
    /// the random number buffer; `None` for loads.
    pub rng: Option<(u64, bool)>,
}

/// One RNG completion within a burst: `(id, core, value, from_buffer)`.
type BurstEntry = (RequestId, CoreId, u64, bool);

/// A coalesced batch of RNG completions, all maturing at `due`: one heap
/// event carrying k entries instead of k per-request events, so an
/// 8-request burst no longer cuts a multi-thousand-cycle fast-forward
/// bubble into eight spans. Heap ordering is on `(due, seq)` alone —
/// `seq` is a unique monotone push counter, so the order is total and
/// the payload never tiebreaks. Delivery order to the completion drain
/// is re-normalized to the legacy per-entry `(due, id)` order (entries
/// are id-sorted at push; same-due multi-burst ticks re-sort the merged
/// run), which is what keeps burst-on ≡ burst-off bit-identical.
#[derive(Debug, Clone)]
struct RngBurst {
    due: u64,
    seq: u64,
    entries: Vec<BurstEntry>,
}

impl PartialEq for RngBurst {
    fn eq(&self, other: &Self) -> bool {
        (self.due, self.seq) == (other.due, other.seq)
    }
}

impl Eq for RngBurst {}

impl Ord for RngBurst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl PartialOrd for RngBurst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One memoized fill-state probe result (see [`MemSubsystem::fill_bound`]).
#[derive(Debug, Clone, Copy)]
struct FillProbe {
    /// Σ of per-channel probe epochs at computation time.
    chan_epochs: u64,
    /// Engine fill epoch at computation time.
    fill_epoch: u64,
    /// The computed bound (absolute cycle; ≤ `now` means "tick live").
    bound: u64,
    /// First cycle at which a predicate suppressed by an RNG blockade
    /// could flip by time passage alone (earliest `blocked_until`); the
    /// entry must not be used at or past it.
    valid_until: u64,
}

/// Per-channel fill/idle bookkeeping.
#[derive(Debug, Clone, Default)]
struct ChanFill {
    was_idle: bool,
    idle_len: u64,
    prediction: Option<Prediction>,
    predict_addr: u64,
    fill_end: Option<u64>,
    fill_is_low_util: bool,
    last_low_util_end: u64,
}

/// The memory subsystem: everything below the cores.
pub struct MemSubsystem {
    config: SystemConfig,
    mapping: strange_dram::AddressMapping,
    channels: Vec<ChannelController<AnyPolicy>>,
    mechanism: Box<dyn TrngMechanism>,
    buffer: RandomNumberBuffer,
    rng_queue: VecDeque<Request>,
    /// Deficit-round-robin state for [`FairnessPolicy::WeightedFair`]'s
    /// buffer-serve arbitration (tenant = issuing core id).
    drr: DrrState,
    predictors: Vec<AnyPredictor>,
    fill: Vec<ChanFill>,
    demand_finish: Option<u64>,
    rng_stall_counter: u64,
    rng_queue_len_last: usize,
    /// Next unapplied `config.fault_plan` event (events fire in order on
    /// their exact cycles; pending cycles bound `next_event_at`).
    fault_next: usize,
    /// Per-channel cycle (exclusive) until which a `ChannelOutage`
    /// excludes the channel from TRNG generation; 0 = healthy.
    chan_out_until: Vec<u64>,
    /// Per-channel cycle (exclusive) until which a
    /// [`FaultKind::ChannelDerate`] biases generated words; 0 = clean.
    bias_until: Vec<u64>,
    /// Per-channel stuck-at-one mask applied to generated words while the
    /// quality derate is active.
    bias_mask: Vec<u64>,
    /// Entropy-health watchdog: per-channel quality windows, the
    /// quarantine state machine, and probe scheduling.
    watchdog: Watchdog,
    /// Round-robin cursor attributing demand-episode words to the live
    /// channels that generated them (health sampling + bias).
    attribute_rr: usize,
    /// Cycle (exclusive) until which `EntropyDerate` reduces the usable
    /// bits per generation round to `derate_num / derate_den`.
    derate_until: u64,
    /// Active derate fraction, numerator.
    derate_num: u32,
    /// Active derate fraction, denominator.
    derate_den: u32,
    /// Running estimate (3/4-weighted EWMA) of one demand-generation
    /// episode's cost in DRAM cycles; 2× this, on the CPU clock, is the
    /// [`FairnessPolicy::AdaptiveAging`] quantum. Updated only at episode
    /// starts (live cycles), so it is fast-forward safe.
    demand_cost_est: u64,
    mem_now: u64,
    next_id: RequestId,
    next_rng_channel: u32,
    /// A [`MemorySystem::try_rng`] rejection observed since the last
    /// memory tick (or skip). Admission capacity only changes inside
    /// `tick`/`skip_to` — nothing between ticks frees a queue slot or
    /// refills the buffer — so once one caller is rejected, every later
    /// call before the next tick short-circuits to `None` without
    /// re-scanning channels. Saturated service runs hit this every cycle
    /// for every client.
    rng_rejecting: bool,
    rng_app: Vec<bool>,
    /// Due RNG completion bursts (see [`RngBurst`]). With
    /// `config.burst_events` off, every entry is its own single-event
    /// burst — the legacy per-request event granularity.
    rng_done: BinaryHeap<Reverse<RngBurst>>,
    /// Monotone push counter: the burst heap's unique tiebreak.
    burst_seq: u64,
    /// Recycled burst entry vectors (drained bursts return theirs), so
    /// steady-state burst scheduling allocates nothing.
    burst_pool: Vec<Vec<BurstEntry>>,
    completed_scratch: Vec<CompletedAccess>,
    value_log: Option<Vec<u64>>,
    /// Memoized fill-state probe; stale when either epoch changes or
    /// `valid_until` passes.
    fill_probe: Cell<Option<FillProbe>>,
    /// Engine-local mutation counter for fill-relevant state the channel
    /// epochs cannot see: buffer content, demand episodes, fill rounds,
    /// idle-edge processing, low-utilization pacing.
    fill_epoch: Cell<u64>,
    stats: SystemStats,
}

impl MemSubsystem {
    /// Builds the memory subsystem for `config` with the given TRNG
    /// mechanism.
    pub fn new(mut config: SystemConfig, mechanism: Box<dyn TrngMechanism>) -> Self {
        config.materialize_client_priorities();
        let geometry = config.geometry;
        let timing = config.timing;
        let make_policy = || match config.scheduler {
            SchedulerKind::FrFcfsCap(cap) => AnyPolicy::FrFcfs(FrFcfs::with_cap(geometry, cap)),
            SchedulerKind::FrFcfs => AnyPolicy::FrFcfs(FrFcfs::new(geometry)),
            SchedulerKind::Bliss => AnyPolicy::Bliss(Bliss::paper_default()),
        };
        let channels: Vec<_> = (0..geometry.channels)
            .map(|i| {
                let mut ch = ChannelController::new(i, geometry, timing, make_policy());
                ch.set_probe_cache(config.probe_cache);
                ch.set_dirty_readiness(config.dirty_readiness);
                ch
            })
            .collect();
        let predictors = (0..geometry.channels)
            .map(|_| match config.predictor {
                PredictorKind::AlwaysLong => AnyPredictor::AlwaysLong(AlwaysLongPredictor),
                PredictorKind::Simple => AnyPredictor::Simple(SimplePredictor::new()),
                PredictorKind::Qlearning => AnyPredictor::Qlearning(QlearningPredictor::new()),
            })
            .collect();
        let fill = vec![ChanFill::default(); geometry.channels as usize];
        // By default the buffer starts full: the system fills it once at
        // boot (the paper's mechanism fills whenever DRAM is idle, so a
        // freshly booted machine reaches a full buffer long before any
        // workload of interest runs). Starting empty would charge a
        // one-time warm-up fill against every measurement window;
        // cold-start studies disable `prefill_buffer`.
        let mut mechanism = mechanism;
        let mut buffer = RandomNumberBuffer::new(config.buffer_entries);
        while config.prefill_buffer && !buffer.is_full() {
            let word = mechanism.draw(64);
            if buffer.push_bits(word, 64) == 0 {
                break;
            }
        }
        // Seed the adaptive-aging estimate with the mechanism's closed-form
        // uncontended episode cost; observed episodes refine it.
        let demand_cost_est = mechanism.demand_latency_cycles(geometry.channels);
        MemSubsystem {
            mapping: strange_dram::AddressMapping::new(geometry).expect("validated geometry"),
            buffer,
            rng_queue: VecDeque::new(),
            drr: DrrState::new(),
            predictors,
            fill,
            demand_finish: None,
            rng_stall_counter: 0,
            rng_queue_len_last: 0,
            fault_next: 0,
            chan_out_until: vec![0; geometry.channels as usize],
            bias_until: vec![0; geometry.channels as usize],
            bias_mask: vec![0; geometry.channels as usize],
            watchdog: Watchdog::new(config.watchdog, geometry.channels as usize),
            attribute_rr: 0,
            derate_until: 0,
            derate_num: 1,
            derate_den: 1,
            demand_cost_est,
            mem_now: 0,
            next_id: 0,
            next_rng_channel: 0,
            rng_rejecting: false,
            // Virtual cores above the real ones address service clients.
            rng_app: vec![false; config.cores + config.service.clients.len()],
            rng_done: BinaryHeap::new(),
            burst_seq: 0,
            burst_pool: Vec::new(),
            completed_scratch: Vec::new(),
            value_log: None,
            fill_probe: Cell::new(None),
            fill_epoch: Cell::new(0),
            stats: SystemStats::new(),
            channels,
            mechanism,
            config,
        }
    }

    /// Marks the memoized fill-state probe stale. Must accompany every
    /// mutation of fill-relevant state that the per-channel probe epochs
    /// do not capture: buffer pushes/pops, demand-episode start/end, fill
    /// round start/end, processed idle edges, blockade extensions, and
    /// low-utilization pacing updates.
    fn touch_fill(&self) {
        self.fill_epoch.set(self.fill_epoch.get().wrapping_add(1));
    }

    /// Enables or disables logging of served random values (kept to the
    /// most recent 4096; used by interface-level examples and tests).
    pub fn set_value_log(&mut self, enabled: bool) {
        self.value_log = if enabled { Some(Vec::new()) } else { None };
    }

    /// Served random values recorded so far (empty when logging is off).
    pub fn value_log(&self) -> &[u64] {
        self.value_log.as_deref().unwrap_or(&[])
    }

    /// Engine statistics.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// Channel controllers (stats access for results/energy).
    pub fn channels(&self) -> &[ChannelController<AnyPolicy>] {
        &self.channels
    }

    /// The random number buffer (tests and examples).
    pub fn buffer(&self) -> &RandomNumberBuffer {
        &self.buffer
    }

    /// Number of requests currently in the global RNG queue.
    pub fn rng_queue_len(&self) -> usize {
        self.rng_queue.len()
    }

    /// Registers a dynamically opened service client addressed as virtual
    /// core `core`, carrying OS priority `priority` into the Section 5.2
    /// arbitration.
    pub(crate) fn register_client(&mut self, core: usize, priority: u8) {
        if self.rng_app.len() <= core {
            self.rng_app.resize(core + 1, false);
        }
        if self.config.priorities.len() <= core {
            // Indices below the new client keep the unset-default level.
            self.config.priorities.resize(core + 1, 1);
        }
        self.config.priorities[core] = priority;
    }

    /// Whether any configured priority differs from the default level 1
    /// (gates the priority-ordered buffer-serve scan; with uniform
    /// priorities FIFO order is already priority order).
    fn priorities_differentiate(&self) -> bool {
        self.config.priorities.iter().any(|&p| p != 1)
    }

    /// Whether channel `i`'s TRNG cells are out at `now` (excluded from
    /// demand generation and fill rounds; regular traffic unaffected).
    fn chan_out(&self, i: usize, now: u64) -> bool {
        now < self.chan_out_until[i]
    }

    /// Whether channel `i` is unavailable for TRNG generation at `now`:
    /// either its cells are out ([`FaultKind::ChannelOutage`]) or the
    /// entropy-health watchdog has it quarantined / on probation. Both
    /// ride the same failover paths; the difference is that outages
    /// expire by time passage (bounded by `chan_out_until`) while health
    /// exclusion flips only at watchdog transitions, each of which bumps
    /// the fill epoch.
    fn chan_unavailable(&self, i: usize, now: u64) -> bool {
        self.chan_out(i, now) || self.watchdog.excluded(i)
    }

    /// Channel `i`'s entropy-health state (watchdog observability).
    pub fn channel_health(&self, i: usize) -> HealthState {
        self.watchdog.state(i)
    }

    /// Number of channels the watchdog currently excludes from
    /// generation (quarantined or probationary). The server's admission
    /// ladder derates its watermarks by this fraction of capacity.
    pub fn quarantined_channels(&self) -> usize {
        self.watchdog.excluded_count()
    }

    /// Applies the active quality-derate bias to a word generated by
    /// channel `chan` (`take` = significant low bits of the draw).
    fn taint_word(&self, chan: usize, now: u64, word: u64, take: u32) -> u64 {
        if now >= self.bias_until[chan] {
            return word;
        }
        let keep = if take >= 64 { !0u64 } else { (1u64 << take) - 1 };
        word | (self.bias_mask[chan] & keep)
    }

    /// Samples the low `take` bits of one generated draw into channel
    /// `chan`'s health window (live path only; excluded channels are
    /// sampled via probe rounds). Sub-word fill chunks accumulate in the
    /// watchdog until a full word completes, so fill-only operation is
    /// sampled just like demand generation.
    fn observe_health(&mut self, chan: usize, word: u64, take: u32, now: u64) {
        if !self.watchdog.enabled() || self.watchdog.excluded(chan) {
            return;
        }
        if self
            .watchdog
            .observe_bits(chan, word, take, now, &mut self.stats)
        {
            // Quarantine flips the fill predicates for this channel.
            self.touch_fill();
        }
    }

    /// Runs due probe rounds on excluded channels: draw `probe_words`
    /// words (biased if the underlying fault is still active), test them
    /// through the channel's quality window, and discard them — tainted
    /// words are never buffered or served. The round occupies the
    /// channel like a fill round (blockade + command accounting), and
    /// pending `probe_due` cycles bound [`MemSubsystem::next_event_at`],
    /// so both simulation modes run each probe on its exact cycle.
    fn watchdog_probe_step(&mut self, now: u64) {
        if !self.watchdog.enabled() {
            return;
        }
        for i in 0..self.channels.len() {
            if !self.watchdog.probe_ready(i, now) {
                continue;
            }
            if self.chan_out(i, now) {
                // Outage on a quarantined channel: probing dead cells is
                // meaningless; retry at recovery.
                self.watchdog.defer_probe(i, self.chan_out_until[i]);
                continue;
            }
            if self.channels[i].is_blocked(now) {
                self.watchdog.defer_probe(i, self.channels[i].blocked_until());
                continue;
            }
            let n = self.config.watchdog.probe_words;
            let mut words = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let raw = self.mechanism.draw(64);
                words.push(self.taint_word(i, now, raw, 64));
            }
            // Occupy the channel like a chained fill burst: switch in,
            // generate, switch out.
            let rounds = (64 * n as u64).div_ceil(self.effective_batch_bits(now) as u64);
            let switch = self.mechanism.fill_switch_cycles();
            let end = now + 2 * switch + rounds * self.mechanism.batch_latency();
            self.channels[i].block_until(end);
            let cmds = self.mechanism.batch_commands();
            self.channels[i].note_rng_commands(
                cmds.acts * rounds,
                cmds.reads * rounds,
                cmds.pres * rounds,
            );
            self.stats.probe_rounds += 1;
            self.stats.tainted_words_discarded += n as u64;
            self.watchdog.run_probe(i, &words, now, &mut self.stats);
            // Blockade extension + possible state transition both stale
            // the fill probe.
            self.touch_fill();
        }
    }

    /// Usable true-random bits per generation round at `now`: the
    /// mechanism's nominal yield, reduced to the active derate fraction
    /// (minimum 1) while an [`FaultKind::EntropyDerate`] window is open.
    fn effective_batch_bits(&self, now: u64) -> u32 {
        let bits = self.mechanism.batch_bits();
        if now < self.derate_until {
            ((bits as u64 * self.derate_num as u64 / self.derate_den as u64) as u32).max(1)
        } else {
            bits
        }
    }

    /// The [`FairnessPolicy::AdaptiveAging`] quantum in **CPU cycles**:
    /// 2× the running demand-episode cost estimate, converted through the
    /// 5:1 clock ratio (engine-side consumers scale it back down).
    pub fn adaptive_aging_quantum(&self) -> u64 {
        (2 * self.demand_cost_est).max(1) * CPU_CYCLES_PER_MEM_CYCLE
    }

    /// Applies every fault-plan event due at or before `now`, in plan
    /// order. Pending event cycles bound [`MemSubsystem::next_event_at`],
    /// so both simulation modes land a live tick on each event's exact
    /// cycle and the mutations below never fall inside a skipped span.
    fn apply_due_faults(&mut self, now: u64) {
        while let Some(ev) = self.config.fault_plan.events.get(self.fault_next) {
            if ev.at > now {
                break;
            }
            let kind = ev.kind;
            self.fault_next += 1;
            self.stats.faults_injected += 1;
            match kind {
                FaultKind::ChannelOutage { channel, duration } => {
                    let i = channel as usize;
                    self.chan_out_until[i] = self.chan_out_until[i].max(now + duration);
                    // Outages flip fill predicates without touching any
                    // channel epoch; recovery bounds live in
                    // `fill_bound_scan` and the probe's `valid_until`.
                    self.touch_fill();
                }
                FaultKind::StallStorm { channel, duration } => {
                    // The blockade machinery already owns "no commands
                    // issue until cycle X": next-event and probe-cache
                    // handling of the recovery edge come for free.
                    self.channels[channel as usize].block_until(now + duration);
                    self.touch_fill();
                }
                FaultKind::EntropyDerate { num, den, duration } => {
                    self.derate_until = now + duration;
                    self.derate_num = num;
                    self.derate_den = den;
                }
                FaultKind::BufferCorruption { words } => {
                    let discarded = self.buffer.discard_words(words as usize);
                    self.stats.corrupted_words_discarded += discarded as u64;
                    self.touch_fill();
                }
                FaultKind::ChannelDerate {
                    channel,
                    num,
                    den,
                    duration,
                } => {
                    let i = channel as usize;
                    self.bias_until[i] = now + duration;
                    // Stuck-at-one mask over the degraded bit fraction:
                    // only the low `64 * num / den` bits stay random.
                    // Bias changes word *values* at draw sites (always
                    // live ticks), never scheduling, so no fill-probe or
                    // next-event impact.
                    let usable = (64 * num as u64 / den as u64) as u32;
                    self.bias_mask[i] = (!0u64).checked_shl(usable).unwrap_or(0);
                }
            }
        }
    }

    /// Flushes end-of-run accounting (open idle periods).
    pub fn finish(&mut self) {
        for ch in &mut self.channels {
            ch.finish();
        }
    }

    /// The earliest memory cycle at or after `now` at which a tick of the
    /// subsystem could do anything beyond the linear per-cycle accounting
    /// that [`MemSubsystem::skip_to`] replays in bulk.
    ///
    /// Composes, over the engine state and every channel: the end of a
    /// demand-generation episode, due RNG completions, a non-empty RNG
    /// queue (arbitration runs per-cycle), per-channel events
    /// ([`ChannelController::next_event_at`]), fill-round completions,
    /// idle-period edges the predictive path has not yet processed, greedy
    /// threshold crossings, and the low-utilization retry pacing window.
    /// `u64::MAX` means no memory-side event bounds the skip.
    pub fn next_event_at(&self, now: u64) -> u64 {
        // The RNG queue's arbitration (burst coalescing, starvation
        // counter) runs every cycle while the queue is non-empty.
        if self.config.routing == RngRouting::Aware && !self.rng_queue.is_empty() {
            return now;
        }
        let mut event = u64::MAX;
        if let Some(f) = self.demand_finish {
            event = event.min(f);
        }
        if let Some(ev) = self.config.fault_plan.events.get(self.fault_next) {
            // The next scheduled fault mutates state on its exact cycle.
            event = event.min(ev.at);
        }
        if let Some(p) = self.watchdog.next_probe_at() {
            // A pending probe round mutates state on its due cycle (or
            // re-schedules itself to a strictly later one).
            event = event.min(p);
        }
        if let Some(Reverse(burst)) = self.rng_done.peek() {
            event = event.min(burst.due);
        }
        for ch in &self.channels {
            if let Some(t) = ch.next_event_at(now) {
                event = event.min(t);
                if event <= now {
                    return now;
                }
            }
        }
        event = event.min(self.fill_bound(now));
        event.max(now)
    }

    /// Sum of the per-channel probe epochs: one pointer read per channel,
    /// unchanged iff no channel mutated scheduling-relevant state.
    fn chan_epoch_sum(&self) -> u64 {
        self.channels
            .iter()
            .fold(0u64, |acc, ch| acc.wrapping_add(ch.probe_epoch()))
    }

    /// The fill-state portion of [`MemSubsystem::next_event_at`] (fill
    /// rounds, greedy threshold crossings, idle edges, low-utilization
    /// pacing), memoized on `(Σ channel epochs, fill epoch)`. The cached
    /// value is an absolute cycle: anything at or before `now` means "the
    /// next tick must run live", and the greedy/low-util bounds are stable
    /// absolutes within an invalidation window, so a hit skips the whole
    /// per-channel predicate walk.
    fn fill_bound(&self, now: u64) -> u64 {
        if self.config.fill == FillMode::None {
            return u64::MAX;
        }
        let chan_epochs = self.chan_epoch_sum();
        let fill_epoch = self.fill_epoch.get();
        if self.config.probe_cache {
            if let Some(p) = self.fill_probe.get() {
                if p.chan_epochs == chan_epochs
                    && p.fill_epoch == fill_epoch
                    && now < p.valid_until
                {
                    debug_assert_eq!(
                        p.bound.max(now),
                        self.fill_bound_scan(now).max(now),
                        "stale fill-probe cache"
                    );
                    return p.bound;
                }
            }
        }
        let bound = self.fill_bound_scan(now);
        if self.config.probe_cache {
            // Blockade and outage expiries re-enable suppressed fill
            // predicates with no state mutation, so the entry dies at the
            // earliest one.
            let valid_until = self
                .channels
                .iter()
                .map(|ch| ch.blocked_until())
                .chain(self.chan_out_until.iter().copied())
                .filter(|&b| b > now)
                .min()
                .unwrap_or(u64::MAX);
            self.fill_probe.set(Some(FillProbe {
                chan_epochs,
                fill_epoch,
                bound,
                valid_until,
            }));
        }
        bound
    }

    /// Recomputes the fill-state bound from scratch (the memoization's
    /// oracle).
    fn fill_bound_scan(&self, now: u64) -> u64 {
        let mut event = u64::MAX;
        // An outage expiry re-enables this channel's fill predicates by
        // time passage alone; the recovery cycle must tick live.
        for &until in &self.chan_out_until {
            if until > now {
                event = event.min(until);
            }
        }
        match self.config.fill {
            FillMode::None => {}
            FillMode::GreedyOracle => {
                let threshold = self.config.period_threshold;
                for (i, ch) in self.channels.iter().enumerate() {
                    // One batch lands exactly when idle_len reaches the
                    // threshold; the tick that makes it so must run live.
                    if ch.queues_empty()
                        && !self.buffer.is_full()
                        && self.fill[i].idle_len < threshold
                    {
                        event = event.min(now + (threshold - 1 - self.fill[i].idle_len));
                    }
                }
            }
            FillMode::Predictive => {
                let demand_active = self.demand_finish.is_some();
                let low_util = self.config.low_util_threshold;
                let pace = 8 * self.mechanism.batch_latency();
                for (i, ch) in self.channels.iter().enumerate() {
                    let st = &self.fill[i];
                    if let Some(end) = st.fill_end {
                        event = event.min(end);
                    }
                    let idle_now = ch.queues_empty();
                    if idle_now != st.was_idle {
                        // An unprocessed idle-period edge: the next tick
                        // predicts or trains, so it must run live.
                        return now;
                    }
                    if idle_now {
                        if st.prediction == Some(Prediction::Long)
                            && st.fill_end.is_none()
                            && !self.buffer.is_full()
                            && !demand_active
                            && !ch.is_blocked(now)
                            && !self.chan_unavailable(i, now)
                        {
                            // A fill round would start this cycle. (An
                            // out channel waits for its recovery bound,
                            // emitted above; a quarantined channel waits
                            // for its probe cycles, which bound
                            // `next_event_at` directly.)
                            return now;
                        }
                    } else if low_util > 0
                        && st.fill_end.is_none()
                        && !demand_active
                        && !ch.is_blocked(now)
                        && !self.chan_unavailable(i, now)
                        && !self.buffer.is_full()
                        && ch.read_queue_len() < low_util
                    {
                        // The low-utilization path re-evaluates once the
                        // pacing window elapses (the predicate's time is
                        // deterministic even though its outcome calls the
                        // predictor, which only the live tick may do).
                        event = event.min((st.last_low_util_end + pace).max(now));
                    }
                }
            }
        }
        event
    }

    /// Bulk-applies the per-cycle accounting for the dead memory-cycle
    /// span `from..to`, leaving the subsystem in exactly the state that
    /// ticking it once per cycle would (the caller must guarantee
    /// `to <= next_event_at(from)` and that no request enters the
    /// subsystem during the span).
    pub fn skip_to(&mut self, from: u64, to: u64) {
        if to <= from {
            return;
        }
        debug_assert!(self.next_event_at(from) >= to, "skip_to past an engine event");
        let n = to - from;
        // `tick` refreshes these every cycle; replay the final values.
        self.mem_now = to - 1;
        self.rng_rejecting = false;
        self.rng_queue_len_last = self.rng_queue.len();
        for ch in &mut self.channels {
            ch.skip_to(from, to);
        }
        match self.config.fill {
            FillMode::None => {}
            // Idle-length counters advance per-cycle in both fill modes;
            // edges cannot occur inside a dead span (queue contents only
            // change at events), so idleness is uniform across it.
            FillMode::GreedyOracle => {
                for i in 0..self.channels.len() {
                    if self.channels[i].queues_empty() {
                        self.fill[i].idle_len += n;
                        self.fill[i].was_idle = true;
                    } else {
                        self.fill[i].idle_len = 0;
                        self.fill[i].was_idle = false;
                    }
                }
            }
            FillMode::Predictive => {
                for i in 0..self.channels.len() {
                    let idle_now = self.channels[i].queues_empty();
                    debug_assert_eq!(idle_now, self.fill[i].was_idle, "edge inside dead span");
                    if idle_now {
                        self.fill[i].idle_len += n;
                    }
                }
            }
        }
    }

    /// Advances the memory side by one DRAM bus cycle; completed requests
    /// are appended to `completions`.
    pub fn tick(&mut self, now: u64, completions: &mut Vec<Completion>) {
        self.mem_now = now;
        self.rng_rejecting = false;

        // Scheduled faults fire first: the rest of this tick already sees
        // the degraded world (outage exclusions, blockades, derated
        // yields, discarded buffer words). Probe rounds run next so the
        // fill and demand paths below see any re-admission immediately.
        self.apply_due_faults(now);
        self.watchdog_probe_step(now);

        // Demand-generation episode ends. Per the paper's flowchart
        // (Figure 4, track d): if a channel remains idle after random
        // number generation, keep filling the buffer — the timing
        // parameters are already configured, so rounds chain directly.
        if let Some(f) = self.demand_finish {
            if now >= f {
                self.demand_finish = None;
                self.touch_fill();
                if self.config.fill == FillMode::Predictive {
                    for i in 0..self.channels.len() {
                        if self.channels[i].queues_empty()
                            && !self.buffer.is_full()
                            && !self.channels[i].is_blocked(now)
                            && !self.chan_unavailable(i, now)
                        {
                            self.start_fill_round(i, now, 0, false);
                        }
                    }
                }
            }
        }

        // RNG-aware arbitration (Section 5.2).
        if self.config.routing == RngRouting::Aware {
            self.serve_rng_from_buffer(now);
            self.rng_arbitrate(now);
        }

        // Buffer filling (Section 5.1).
        match self.config.fill {
            FillMode::None => {}
            FillMode::GreedyOracle => self.greedy_fill_step(now),
            FillMode::Predictive => self.predictive_fill_step(now),
        }

        // Regular command scheduling; RNG-oblivious designs may select RNG
        // requests here, which triggers a global generation episode. The
        // oblivious baseline serves only what its per-channel schedulers
        // selected *this cycle* — it has no notion of batching a burst, so
        // a burst of requests costs one mode switch each (the frequent-
        // switching overhead Section 5.2 attributes to single-queue
        // designs). The RNG-aware path batches instead (rng_arbitrate).
        let mut demand_batch: Vec<Request> = Vec::new();
        for ch in &mut self.channels {
            if let Some(req) = ch.tick(now, &mut self.completed_scratch) {
                demand_batch.push(req);
            }
        }
        if !demand_batch.is_empty() {
            self.start_demand_generation(now, demand_batch);
        }

        for done in self.completed_scratch.drain(..) {
            completions.push(Completion {
                core: done.request.core,
                id: done.request.id,
                rng: None,
            });
        }

        // RNG completions due this cycle: bursts arrive as one event with
        // k id-sorted entries. When several bursts mature with the same
        // due, their merged run is re-sorted by id so delivery stays the
        // legacy per-entry `(due, id)` order regardless of burst shape —
        // bursts with distinct dues already pop in due order.
        let mut run_start = completions.len();
        let mut run_due = u64::MAX;
        let mut run_bursts = 0usize;
        while let Some(Reverse(head)) = self.rng_done.peek() {
            if head.due > now {
                break;
            }
            let Reverse(burst) = self.rng_done.pop().expect("peeked");
            if burst.due != run_due {
                if run_bursts > 1 {
                    completions[run_start..].sort_unstable_by_key(|c| c.id);
                }
                run_start = completions.len();
                run_due = burst.due;
                run_bursts = 0;
            }
            run_bursts += 1;
            for &(id, core, value, from_buffer) in &burst.entries {
                completions.push(Completion {
                    core,
                    id,
                    rng: Some((value, from_buffer)),
                });
            }
            self.recycle_burst_vec(burst.entries);
        }
        if run_bursts > 1 {
            completions[run_start..].sort_unstable_by_key(|c| c.id);
        }
    }

    fn alloc_id(&mut self) -> RequestId {
        self.next_id += 1;
        self.next_id
    }

    fn log_value(&mut self, value: u64) {
        if let Some(log) = &mut self.value_log {
            if log.len() >= 4096 {
                log.remove(0);
            }
            log.push(value);
        }
    }

    /// Serves queued RNG requests from the buffer (requests that missed at
    /// issue time can still hit once filling catches up). Which request a
    /// contended buffer word goes to is the configured
    /// [`FairnessPolicy`]'s decision — this is the Section 5.2 rules
    /// applied to the buffer fast path, which is what separates QoS
    /// classes when buffer words are the contended resource:
    ///
    /// * `Strict` — highest OS priority, then oldest (with uniform
    ///   priorities this degenerates to the original FIFO pop: the queue
    ///   is arrival-ordered).
    /// * `Aging` — like `Strict`, but a request's priority rises one
    ///   level per aging quantum it has waited, so a backlogged Low
    ///   tenant eventually outranks fresh High traffic.
    /// * `WeightedFair` — deficit round robin over the queued tenants;
    ///   within the chosen tenant, oldest first.
    fn serve_rng_from_buffer(&mut self, now: u64) {
        if self.rng_queue.is_empty() || self.buffer.available_words() == 0 {
            return;
        }
        self.touch_fill();
        let by_priority = self.priorities_differentiate();
        // Every word served this cycle matures together: one burst event.
        let due = now + self.config.buffer_serve_latency;
        let mut burst = self.take_burst_vec();
        // DRR scratch, reused across the served words of this cycle so
        // the per-word policy evaluation allocates nothing (amortized).
        let mut wfq_active: Vec<usize> = Vec::new();
        let mut wfq_quanta: Vec<u64> = Vec::new();
        while !self.rng_queue.is_empty() && self.buffer.available_words() > 0 {
            let best = match self.config.fairness {
                FairnessPolicy::Strict => {
                    if by_priority {
                        strict_pick(
                            self.rng_queue
                                .iter()
                                .map(|r| (self.config.priority_of(r.core), r.arrival, r.id)),
                        )
                        .expect("non-empty queue")
                    } else {
                        0 // arrival-ordered queue: FIFO is priority order
                    }
                }
                FairnessPolicy::Aging { .. } | FairnessPolicy::AdaptiveAging => {
                    // The engine runs on the DRAM bus clock; scale the
                    // CPU-cycle quantum (static, or derived from the
                    // observed episode cost) through the 5:1 clock ratio.
                    let quantum = match self.config.fairness {
                        FairnessPolicy::Aging { quantum } => quantum,
                        _ => self.adaptive_aging_quantum(),
                    };
                    let qm = (quantum / CPU_CYCLES_PER_MEM_CYCLE).max(1);
                    self.rng_queue
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, r)| {
                            let base = self.config.priority_of(r.core);
                            let eff = effective_priority(base, now - r.arrival, qm);
                            (eff, Reverse((r.arrival, r.id)))
                        })
                        .map(|(i, _)| i)
                        .expect("non-empty queue")
                }
                FairnessPolicy::WeightedFair { quantum } => {
                    wfq_active.clear();
                    wfq_active.extend(self.rng_queue.iter().map(|r| r.core));
                    wfq_active.sort_unstable();
                    wfq_active.dedup();
                    wfq_quanta.clear();
                    wfq_quanta.extend(wfq_active.iter().map(|&c| {
                        quantum as u64 * FairnessPolicy::weight_of(self.config.priority_of(c))
                    }));
                    let tenant = self.drr.pick(&wfq_active, &wfq_quanta, 1);
                    self.rng_queue
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.core == tenant)
                        .min_by_key(|(_, r)| (r.arrival, r.id))
                        .map(|(i, _)| i)
                        .expect("picked tenant has a queued request")
                }
            };
            let req = self.rng_queue.remove(best).expect("index in range");
            let word = self.buffer.pop_word().expect("word available");
            self.log_value(word);
            self.record_rng_completion(&req, due, true);
            burst.push((req.id, req.core, word, true));
        }
        self.push_burst(due, burst);
    }

    /// Schedule-time stats for one RNG completion (recorded when the
    /// completion is committed, as the per-request path always did).
    fn record_rng_completion(&mut self, req: &Request, due: u64, from_buffer: bool) {
        self.stats.buffer_serve.record(from_buffer);
        if from_buffer {
            self.stats.rng_served_from_buffer += 1;
        } else {
            self.stats.rng_served_on_demand += 1;
        }
        self.stats.rng_latency_sum += due.saturating_sub(req.arrival);
        self.stats.rng_completions += 1;
    }

    /// A recycled (or fresh) burst entry vector.
    fn take_burst_vec(&mut self) -> Vec<BurstEntry> {
        self.burst_pool.pop().unwrap_or_default()
    }

    /// Returns a drained entry vector to the recycle pool.
    fn recycle_burst_vec(&mut self, mut v: Vec<BurstEntry>) {
        if self.burst_pool.len() < 64 {
            v.clear();
            self.burst_pool.push(v);
        }
    }

    /// Commits `entries` to complete at `due`: one coalesced heap event
    /// with `burst_events` on, or one single-entry event per completion
    /// (the legacy granularity) with it off. Entries are id-sorted so a
    /// lone burst drains in delivery order without a sort.
    fn push_burst(&mut self, due: u64, mut entries: Vec<BurstEntry>) {
        if entries.is_empty() {
            self.recycle_burst_vec(entries);
            return;
        }
        entries.sort_unstable_by_key(|e| e.0);
        if self.config.burst_events {
            self.burst_seq += 1;
            let seq = self.burst_seq;
            self.rng_done.push(Reverse(RngBurst { due, seq, entries }));
        } else {
            for e in entries.drain(..) {
                self.burst_seq += 1;
                let seq = self.burst_seq;
                self.rng_done.push(Reverse(RngBurst { due, seq, entries: vec![e] }));
            }
            self.recycle_burst_vec(entries);
        }
    }

    /// [`MemSubsystem::push_burst`] for a single completion.
    fn push_burst_one(&mut self, due: u64, entry: BurstEntry) {
        let mut entries = self.take_burst_vec();
        entries.push(entry);
        self.push_burst(due, entries);
    }

    /// The Section 5.2 decision: should the RNG queue be scheduled now?
    fn rng_arbitrate(&mut self, now: u64) {
        if self.demand_finish.is_some() || self.rng_queue.is_empty() {
            self.rng_queue_len_last = self.rng_queue.len();
            return;
        }
        // Burst coalescing: requests arrive back-to-back (the paper: "RNG
        // requests are received in bursts and served together"), so the
        // queue waits for the configured window before the whole burst
        // shares one mode switch.
        match self.config.coalesce {
            // One cycle of queue stability (the paper-faithful default).
            CoalesceWindow::Stability => {
                if self.rng_queue.len() != self.rng_queue_len_last {
                    self.rng_queue_len_last = self.rng_queue.len();
                    return;
                }
            }
            // Hold for a k-deep burst, bounded by how long the oldest
            // request may wait (both checks run on the DRAM bus clock;
            // the queue being non-empty pins the engine to live ticks,
            // so the timeout is observed on its exact cycle).
            CoalesceWindow::KOrTimeout { k, timeout } => {
                self.rng_queue_len_last = self.rng_queue.len();
                let oldest = self.rng_queue.front().expect("non-empty queue").arrival;
                if self.rng_queue.len() < k && now.saturating_sub(oldest) < timeout {
                    return;
                }
            }
        }
        let max_rng_prio = self
            .rng_queue
            .iter()
            .map(|r| self.config.priority_of(r.core))
            .max()
            .expect("non-empty queue");

        let mut max_nonrng_reg: Option<u8> = None;
        let mut oldest_reg: Option<Request> = None;
        for ch in &self.channels {
            for req in ch.read_queue() {
                // Queues are swap_remove-scrambled; age is (arrival, id),
                // never queue position.
                if oldest_reg.is_none_or(|o| (req.arrival, req.id) < (o.arrival, o.id)) {
                    oldest_reg = Some(*req);
                }
                if !self.rng_app[req.core] {
                    let p = self.config.priority_of(req.core);
                    max_nonrng_reg = Some(max_nonrng_reg.map_or(p, |m: u8| m.max(p)));
                }
            }
        }

        let go = match max_nonrng_reg {
            // No competing non-RNG read anywhere: generate.
            None => true,
            // RNG-prioritized and equal-priority cases both choose the RNG
            // queue (Section 5.2.1).
            Some(reg) if max_rng_prio >= reg => true,
            // Non-RNG prioritized: wait, unless the oldest regular read is
            // from an RNG application and younger than the oldest RNG
            // request, or the starvation limit is hit.
            Some(_) => {
                let oldest_rng = self.rng_queue.front().expect("non-empty").arrival;
                let exception = oldest_reg
                    .is_some_and(|r| self.rng_app[r.core] && r.arrival > oldest_rng);
                if exception {
                    true
                } else {
                    self.rng_stall_counter += 1;
                    self.stats.rng_wait_cycles += 1;
                    if self.rng_stall_counter >= self.config.stall_limit {
                        self.stats.starvation_overrides += 1;
                        true
                    } else {
                        false
                    }
                }
            }
        };

        if go {
            self.rng_stall_counter = 0;
            let requests = self.take_episode_batch();
            self.start_demand_generation(now, requests);
        }
    }

    /// Commits queued RNG requests to one generation episode. Under
    /// [`FairnessPolicy::WeightedFair`] a tenant's share of the episode is
    /// capped at `quantum × weight` words — a queue-hogging tenant cannot
    /// claim more of a shared mode switch than its weight entitles it to;
    /// its excess requests stay queued for the next episode (the queue
    /// remaining non-empty pins the engine to live ticks, so the deferral
    /// is fast-forward safe). Every other policy drains the whole queue
    /// (the paper's burst-sharing behavior).
    fn take_episode_batch(&mut self) -> Vec<Request> {
        let FairnessPolicy::WeightedFair { quantum } = self.config.fairness else {
            return self.rng_queue.drain(..).collect();
        };
        let queued: Vec<Request> = self.rng_queue.drain(..).collect();
        // Per-tenant words taken so far; the RNG queue holds at most
        // `rng_queue_capacity` (32) entries, so a linear scan suffices.
        let mut shares: Vec<(usize, u64)> = Vec::new();
        let mut taken = Vec::new();
        for req in queued {
            let cap =
                quantum as u64 * FairnessPolicy::weight_of(self.config.priority_of(req.core));
            let share = match shares.iter_mut().find(|(core, _)| *core == req.core) {
                Some((_, n)) => n,
                None => {
                    shares.push((req.core, 0));
                    &mut shares.last_mut().expect("just pushed").1
                }
            };
            if *share < cap {
                *share += 1;
                taken.push(req);
            } else {
                self.stats.demand_batch_deferrals += 1;
                self.rng_queue.push_back(req);
            }
        }
        // `cap >= 1` always admits each tenant's oldest request, so the
        // episode is never empty.
        taken
    }

    /// Switches the healthy channels into RNG mode and generates 64 bits
    /// for every request in `requests` (the all-channel, minimum-latency
    /// on-demand path described in Section 3 — degraded to the surviving
    /// channels when a [`FaultKind::ChannelOutage`] is active: fewer bits
    /// per round means more rounds, i.e. graceful degradation at reduced
    /// rate rather than failure).
    fn start_demand_generation(&mut self, now: u64, requests: Vec<Request>) {
        debug_assert!(!requests.is_empty());
        self.touch_fill();
        // Resolve any in-flight fill rounds first: their bits land, their
        // occupancy is folded into the episode start. (Rounds that started
        // before an outage still deliver — the cells sampled before the
        // fault are good.)
        let fill_bits = self.effective_batch_bits(now);
        for i in 0..self.fill.len() {
            if self.fill[i].fill_end.take().is_some() {
                self.deliver_batch_bits(i, fill_bits);
                self.stats.fill_batches += 1;
            }
        }

        // Failover: only channels whose TRNG cells are healthy at `now`
        // participate — outage channels and watchdog-excluded channels
        // alike. Exclusion is best-effort: if the watchdog would leave
        // nothing, the episode falls back to the non-out set (serving
        // possibly-degraded words beats deadlocking demand requests; the
        // episode is counted degraded either way). If every channel is
        // out, the episode waits for the earliest recovery (degraded to a
        // single just-recovered channel).
        let mut live: Vec<usize> = (0..self.channels.len())
            .filter(|&i| !self.chan_unavailable(i, now))
            .collect();
        if live.is_empty() {
            live = (0..self.channels.len())
                .filter(|&i| !self.chan_out(i, now))
                .collect();
        }
        let mut ready = now;
        if live.is_empty() {
            let (first, until) = self
                .chan_out_until
                .iter()
                .enumerate()
                .map(|(i, &u)| (i, u))
                .min_by_key(|&(i, u)| (u, i))
                .expect("at least one channel");
            ready = until;
            live.push(first);
        }
        let eff_bits = self.effective_batch_bits(now);
        if live.len() < self.channels.len() || eff_bits < self.mechanism.batch_bits() {
            self.stats.degraded_generations += 1;
        }
        for &i in &live {
            ready = ready.max(self.channels[i].blocked_until());
            ready = ready.max(self.channels[i].prepare_rng_mode(now));
        }
        let mech = &mut self.mechanism;
        let start = ready + mech.demand_switch_cycles();
        let bits_needed = 64 * requests.len() as u64;
        let per_round = eff_bits as u64 * live.len() as u64;
        let rounds = bits_needed.div_ceil(per_round);
        let data_ready = start + rounds * mech.batch_latency();
        let finish = data_ready + mech.demand_switch_cycles();
        let cmds = mech.batch_commands();
        for &i in &live {
            let ch = &mut self.channels[i];
            ch.block_until(finish);
            ch.note_rng_commands(cmds.acts * rounds, cmds.reads * rounds, cmds.pres * rounds);
        }
        // Refine the adaptive-aging estimate from the observed cost (a
        // live-cycle-only mutation, so fast-forward safe).
        let cost = finish - now;
        self.demand_cost_est = (3 * self.demand_cost_est + cost) / 4;
        let mut burst = self.take_burst_vec();
        for req in &requests {
            // Attribute each word round-robin to a generating channel:
            // that channel's quality derate (if any) biases the word, and
            // the watchdog samples it into that channel's health window.
            let chan = live[self.attribute_rr % live.len()];
            self.attribute_rr = self.attribute_rr.wrapping_add(1);
            let raw = self.mechanism.draw(64);
            let value = self.taint_word(chan, now, raw, 64);
            self.observe_health(chan, value, 64, now);
            self.log_value(value);
            self.record_rng_completion(req, data_ready, false);
            burst.push((req.id, req.core, value, false));
        }
        self.push_burst(data_ready, burst);
        self.stats.demand_generations += 1;
        // Surplus bits beyond the demanded 64s go to the buffer.
        let mut surplus = rounds * per_round - bits_needed;
        while surplus > 0 && !self.buffer.is_full() {
            let take = surplus.min(64) as u32;
            let chan = live[self.attribute_rr % live.len()];
            self.attribute_rr = self.attribute_rr.wrapping_add(1);
            let raw = self.mechanism.draw(take);
            let word = self.taint_word(chan, now, raw, take);
            self.observe_health(chan, word, take, now);
            let accepted = self.buffer.push_bits(word, take);
            self.stats.bits_buffered += accepted as u64;
            if accepted < take {
                break;
            }
            surplus -= take as u64;
        }
        self.demand_finish = Some(finish);
    }

    /// Starts one generation round on channel `i`, blocking it for
    /// `extra_switch + batch_latency` cycles and accounting the commands.
    fn start_fill_round(&mut self, i: usize, now: u64, extra_switch: u64, low_util: bool) {
        self.touch_fill();
        let end = now + extra_switch + self.mechanism.batch_latency();
        self.fill[i].fill_end = Some(end);
        self.fill[i].fill_is_low_util = low_util;
        self.channels[i].block_until(end);
        let cmds = self.mechanism.batch_commands();
        self.channels[i].note_rng_commands(cmds.acts, cmds.reads, cmds.pres);
    }

    /// Draws one fill batch's bits on channel `chan` into the buffer,
    /// applying that channel's quality-derate bias (if active) and
    /// sampling full words into its health window.
    fn deliver_batch_bits(&mut self, chan: usize, bits: u32) {
        self.touch_fill();
        let now = self.mem_now;
        let mut remaining = bits;
        while remaining > 0 {
            let take = remaining.min(64);
            let raw = self.mechanism.draw(take);
            let word = self.taint_word(chan, now, raw, take);
            self.observe_health(chan, word, take, now);
            let accepted = self.buffer.push_bits(word, take);
            self.stats.bits_buffered += accepted as u64;
            remaining -= take;
            if accepted < take {
                break;
            }
        }
    }

    /// Greedy Idle oracle (Section 7's comparison point): "if an idle
    /// period reaches the Period Threshold, we assume we fill the buffer
    /// with 8 random bits without any overhead" — one batch per qualifying
    /// idle period, zero occupancy, no commands. This is why the greedy
    /// design trails DR-STRaNGe: it cannot exploit the rest of a long idle
    /// period, nor low-utilization slack (Section 8.1).
    fn greedy_fill_step(&mut self, now: u64) {
        let threshold = self.config.period_threshold;
        let bits = self.effective_batch_bits(now);
        for i in 0..self.channels.len() {
            let idle_now = self.channels[i].queues_empty();
            if idle_now != self.fill[i].was_idle {
                // Idle edge processed: the greedy threshold crossing moves.
                self.touch_fill();
            }
            if idle_now {
                self.fill[i].idle_len += 1;
                if self.fill[i].idle_len == threshold
                    && !self.buffer.is_full()
                    && !self.chan_unavailable(i, now)
                {
                    // An outage or quarantine swallows this period's
                    // oracle batch (the crossing still ticks live; only
                    // the delivery is suppressed).
                    self.deliver_batch_bits(i, bits);
                    self.stats.greedy_batches += 1;
                }
            } else {
                self.fill[i].idle_len = 0;
            }
            self.fill[i].was_idle = idle_now;
        }
    }

    /// Predictor-gated filling (Section 5.1): idle-start predictions, fill
    /// round chaining, the low-utilization path, and predictor training at
    /// period end.
    fn predictive_fill_step(&mut self, now: u64) {
        let threshold = self.config.period_threshold;
        let low_util = self.config.low_util_threshold;
        let batch_bits = self.effective_batch_bits(now);
        let batch_latency = self.mechanism.batch_latency();
        let fill_switch = self.mechanism.fill_switch_cycles();
        let demand_active = self.demand_finish.is_some();

        for i in 0..self.channels.len() {
            // 1. Complete a due fill round.
            if let Some(end) = self.fill[i].fill_end {
                if now >= end {
                    // Touches the fill probe via deliver_batch_bits; the
                    // round end, chaining decision, and blockade extension
                    // below are all covered by that bump.
                    self.deliver_batch_bits(i, batch_bits);
                    let st = &mut self.fill[i];
                    st.fill_end = None;
                    let was_low_util = st.fill_is_low_util;
                    st.fill_is_low_util = false;
                    if was_low_util {
                        self.stats.low_util_batches += 1;
                        self.fill[i].last_low_util_end = now;
                        // Low-utilization rounds never chain: the stalled
                        // requests get the channel back.
                        self.channels[i].block_until(now + fill_switch);
                    } else {
                        self.stats.fill_batches += 1;
                        // Chain while the channel stays idle (and healthy)
                        // and the buffer has room; otherwise restore
                        // timing parameters.
                        if self.channels[i].queues_empty()
                            && !self.buffer.is_full()
                            && !demand_active
                            && !self.chan_unavailable(i, now)
                        {
                            self.start_fill_round(i, now, 0, false);
                        } else {
                            self.channels[i].block_until(now + fill_switch);
                        }
                    }
                }
            }

            // 2. Idle-period edge tracking and prediction.
            let idle_now = self.channels[i].queues_empty();
            let was_idle = self.fill[i].was_idle;
            if idle_now != was_idle {
                // Edge processed (prediction or training below): the
                // cached fill bound no longer reflects this channel.
                self.touch_fill();
            }
            if idle_now {
                self.fill[i].idle_len += 1;
                if !was_idle {
                    // Period starts: predict (unless the engine is mid
                    // generation or the channel is otherwise occupied).
                    let can_predict = !demand_active && !self.channels[i].is_blocked(now);
                    if can_predict {
                        let addr = self.channels[i].last_enqueued_line();
                        let pred = self.predictors[i].predict(addr);
                        self.fill[i].prediction = Some(pred);
                        self.fill[i].predict_addr = addr;
                    }
                }
                // Start (or resume) filling when predicted long and the
                // channel's TRNG cells are healthy.
                if self.fill[i].prediction == Some(Prediction::Long)
                    && self.fill[i].fill_end.is_none()
                    && !self.buffer.is_full()
                    && !demand_active
                    && !self.channels[i].is_blocked(now)
                    && !self.chan_unavailable(i, now)
                {
                    self.start_fill_round(i, now, fill_switch, false);
                }
            } else {
                if was_idle {
                    // Period ended: train the predictor.
                    let len = self.fill[i].idle_len;
                    if let Some(pred) = self.fill[i].prediction.take() {
                        let was_long = len >= threshold;
                        let addr = self.fill[i].predict_addr;
                        self.predictors[i].update(addr, pred, was_long);
                        self.stats.predictor.record(pred.is_long(), was_long);
                    }
                    self.fill[i].idle_len = 0;
                }

                // 3. Low-utilization path: nearly-empty read queue. Paced
                // to one round per 8 × batch_latency window per channel so
                // the predictor "stalls only a small number of requests"
                // (Section 5.1.2) even for workloads that hover below the
                // occupancy threshold.
                if low_util > 0
                    && self.fill[i].fill_end.is_none()
                    && !demand_active
                    && !self.channels[i].is_blocked(now)
                    && !self.chan_unavailable(i, now)
                    && !self.buffer.is_full()
                    && self.channels[i].read_queue_len() < low_util
                    && now >= self.fill[i].last_low_util_end + 8 * batch_latency
                {
                    let addr = self.channels[i].last_enqueued_line();
                    if self.predictors[i].predict(addr) == Prediction::Long {
                        self.start_fill_round(i, now, fill_switch, true);
                    } else {
                        self.fill[i].last_low_util_end = now;
                        self.touch_fill();
                    }
                }
            }
            self.fill[i].was_idle = idle_now;
        }
    }
}

impl MemorySystem for MemSubsystem {
    fn try_load(&mut self, core: CoreId, line_addr: u64) -> Option<RequestId> {
        let addr = self.mapping.decode(line_addr);
        let ch = &mut self.channels[addr.channel as usize];
        if !ch.can_accept(RequestKind::Read) {
            return None;
        }
        let id = self.alloc_id();
        let req = Request {
            id,
            core,
            kind: RequestKind::Read,
            addr,
            arrival: self.mem_now,
        };
        self.channels[addr.channel as usize]
            .try_enqueue(req, self.mem_now)
            .expect("capacity checked");
        Some(id)
    }

    fn try_store(&mut self, core: CoreId, line_addr: u64) -> bool {
        let addr = self.mapping.decode(line_addr);
        let ch = &mut self.channels[addr.channel as usize];
        if !ch.can_accept(RequestKind::Write) {
            return false;
        }
        let id = self.alloc_id();
        let req = Request {
            id,
            core,
            kind: RequestKind::Write,
            addr,
            arrival: self.mem_now,
        };
        self.channels[addr.channel as usize]
            .try_enqueue(req, self.mem_now)
            .expect("capacity checked");
        true
    }

    fn try_rng(&mut self, core: CoreId) -> Option<RequestId> {
        if core < self.rng_app.len() {
            self.rng_app[core] = true;
        }
        if self.rng_rejecting {
            return None;
        }
        match self.config.routing {
            RngRouting::Oblivious => {
                // RNG requests share the read queues; round-robin over
                // channels for queue-slot pressure.
                let start = self.next_rng_channel;
                let n = self.channels.len() as u32;
                let mut chosen = None;
                for off in 0..n {
                    let c = ((start + off) % n) as usize;
                    if self.channels[c].can_accept(RequestKind::Rng) {
                        chosen = Some(c);
                        break;
                    }
                }
                let Some(c) = chosen else {
                    self.rng_rejecting = true;
                    return None;
                };
                self.next_rng_channel = (c as u32 + 1) % n;
                let id = self.alloc_id();
                let req = Request {
                    id,
                    core,
                    kind: RequestKind::Rng,
                    addr: DramAddress {
                        channel: c as u32,
                        rank: 0,
                        bank: 0,
                        row: 0,
                        col: 0,
                    },
                    arrival: self.mem_now,
                };
                self.stats.rng_requests += 1;
                self.channels[c]
                    .try_enqueue(req, self.mem_now)
                    .expect("capacity checked");
                Some(id)
            }
            RngRouting::Aware => {
                // Admission is decided before an id is allocated, so a
                // rejected call leaves the allocator untouched.
                let buffered = self.buffer.available_words() > 0;
                if !buffered && self.rng_queue.len() >= self.config.rng_queue_capacity {
                    self.rng_rejecting = true;
                    return None;
                }
                let id = self.alloc_id();
                let req = Request {
                    id,
                    core,
                    kind: RequestKind::Rng,
                    addr: DramAddress {
                        channel: 0,
                        rank: 0,
                        bank: 0,
                        row: 0,
                        col: 0,
                    },
                    arrival: self.mem_now,
                };
                // Fast path: serve straight from the buffer (step 2a of the
                // paper's Figure 4 flowchart).
                if buffered {
                    let word = self.buffer.pop_word().expect("word available");
                    self.touch_fill();
                    self.stats.rng_requests += 1;
                    self.log_value(word);
                    let due = self.mem_now + self.config.buffer_serve_latency;
                    self.record_rng_completion(&req, due, true);
                    self.push_burst_one(due, (req.id, req.core, word, true));
                    return Some(id);
                }
                // Slow path: the RNG queue (step 2b), subject to capacity.
                self.stats.rng_requests += 1;
                self.rng_queue.push_back(req);
                Some(id)
            }
        }
    }
}
