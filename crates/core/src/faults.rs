//! Deterministic fault injection for the DR-STRaNGe engine.
//!
//! The paper argues the RNG must be an *end-to-end system* concern;
//! a system concern includes surviving components that stop behaving.
//! A [`FaultPlan`] schedules adverse events at exact DRAM-bus cycles —
//! channel outages, stall storms, entropy-source derating, and buffer
//! corruption — and the engine degrades gracefully through each of them:
//!
//! * [`FaultKind::ChannelOutage`] — the channel's TRNG cells become
//!   unusable (e.g. a temperature excursion pushes the sampled cells out
//!   of the D-RaNGe bias band, Section 4's reliability discussion).
//!   Regular reads and writes continue; on-demand generation **fails
//!   over to the surviving channels**, paying proportionally more rounds
//!   per episode, and predictive filling skips the channel until it
//!   recovers.
//! * [`FaultKind::StallStorm`] — the whole channel stalls for a window
//!   (mitigative refresh storms, thermal throttling): no commands issue,
//!   which the engine models with the same blockade machinery RNG mode
//!   uses.
//! * [`FaultKind::EntropyDerate`] — each generation round yields fewer
//!   usable true-random bits for a window, modeling the post-processing
//!   path (`strange_trng::quality`-style health tests) rejecting a
//!   fraction of raw cells; rounds keep their latency, so throughput
//!   degrades by exactly the configured fraction.
//! * [`FaultKind::BufferCorruption`] — an integrity check flags stored
//!   words as corrupt at a given cycle and the buffer discards them
//!   (the Section 6 flush hook); subsequent requests fall back to
//!   on-demand generation until filling catches up.
//!
//! Every event fires on its exact scheduled cycle in both
//! [`crate::SimMode::Reference`] and [`crate::SimMode::FastForward`]:
//! pending event cycles bound the engine's `next_event_at`, active
//! outage expiries bound the fill-state probe, and derating only changes
//! decisions taken at live ticks — so the house bit-identity invariant
//! holds under any plan (`tests/robustness.rs`).

use strange_dram::ConfigError;

/// What goes wrong at a [`FaultEvent`]'s cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Channel `channel`'s TRNG cells are unusable for `duration` cycles:
    /// excluded from demand generation (failover to surviving channels)
    /// and from fill rounds; regular traffic is unaffected.
    ChannelOutage {
        /// Channel index (must be within the configured geometry).
        channel: u32,
        /// DRAM-bus cycles the outage lasts (nonzero).
        duration: u64,
    },
    /// Channel `channel` issues no commands for `duration` cycles
    /// (refresh storm / thermal throttle): modeled as a blockade, so
    /// regular requests queue up and drain after recovery.
    StallStorm {
        /// Channel index (must be within the configured geometry).
        channel: u32,
        /// DRAM-bus cycles the storm lasts (nonzero).
        duration: u64,
    },
    /// For `duration` cycles, every generation round yields only
    /// `num/den` of its nominal true-random bits (minimum 1), modeling
    /// entropy-source health tests discarding biased cells. Round
    /// latency is unchanged, so generation throughput drops by the same
    /// fraction.
    EntropyDerate {
        /// Numerator of the usable-bit fraction.
        num: u32,
        /// Denominator of the usable-bit fraction (`num < den`, `den > 0`).
        den: u32,
        /// DRAM-bus cycles the derating lasts (nonzero).
        duration: u64,
    },
    /// The integrity check discards up to `words` stored 64-bit words
    /// from the random number buffer at this cycle (corrupt words are
    /// never served — the Section 6 security property extended to
    /// faulty storage).
    BufferCorruption {
        /// Number of words to discard (nonzero; capped at occupancy).
        words: u32,
    },
    /// Channel `channel`'s raw entropy **quality** degrades for
    /// `duration` cycles: only a `num/den` fraction of each generated
    /// word's bits stays random, the rest read stuck-at-one, while
    /// throughput is unchanged — the silent failure mode the
    /// entropy-health watchdog exists to catch. Unlike
    /// [`FaultKind::EntropyDerate`] (which models post-processing already
    /// rejecting bad cells, so fewer but *good* bits come out), a
    /// quality-derated channel keeps pushing biased words into the shared
    /// buffer until the watchdog quarantines it.
    ChannelDerate {
        /// Channel index (must be within the configured geometry).
        channel: u32,
        /// Numerator of the still-random bit fraction.
        num: u32,
        /// Denominator of the still-random bit fraction (`num < den`,
        /// `den > 0`).
        den: u32,
        /// DRAM-bus cycles the degradation lasts (nonzero).
        duration: u64,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Absolute DRAM-bus cycle at which the fault fires.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic schedule of faults, applied by the engine at exact
/// cycles. Build with the chainable constructors:
///
/// ```
/// use strange_core::FaultPlan;
///
/// let plan = FaultPlan::new()
///     .outage(10_000, 0, 50_000)
///     .derate(20_000, 1, 4, 30_000)
///     .corruption(25_000, 8);
/// assert_eq!(plan.events.len(), 3);
/// ```
///
/// # Overlap semantics
///
/// Windowed faults of the **same kind on the same resource must not
/// overlap**: a second [`FaultKind::ChannelOutage`] (or
/// [`FaultKind::StallStorm`]) on a channel whose previous window of that
/// kind is still active, or a second [`FaultKind::EntropyDerate`] while
/// one is active (derating is global), is **rejected** by
/// [`FaultPlan::validate`]. The engine would otherwise merge them
/// silently — max-extension for outages and storms, last-writer-wins for
/// derates — which distorts the intended schedule without any signal to
/// the experimenter; rejecting keeps plans unambiguous. Windows are
/// half-open `[at, at + duration)`, so a window starting exactly at the
/// previous one's end is back-to-back, not overlapping, and is allowed.
/// Faults of *different* kinds (or the same kind on different channels)
/// may overlap freely and compose.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The scheduled events, sorted by cycle (validated).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no faults — the default).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds a [`FaultKind::ChannelOutage`] at cycle `at`.
    pub fn outage(mut self, at: u64, channel: u32, duration: u64) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::ChannelOutage { channel, duration },
        });
        self
    }

    /// Adds a [`FaultKind::StallStorm`] at cycle `at`.
    pub fn stall_storm(mut self, at: u64, channel: u32, duration: u64) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::StallStorm { channel, duration },
        });
        self
    }

    /// Adds a [`FaultKind::EntropyDerate`] at cycle `at`.
    pub fn derate(mut self, at: u64, num: u32, den: u32, duration: u64) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::EntropyDerate { num, den, duration },
        });
        self
    }

    /// Adds a [`FaultKind::BufferCorruption`] at cycle `at`.
    pub fn corruption(mut self, at: u64, words: u32) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::BufferCorruption { words },
        });
        self
    }

    /// Adds a [`FaultKind::ChannelDerate`] at cycle `at`.
    pub fn channel_derate(mut self, at: u64, channel: u32, num: u32, den: u32, duration: u64) -> Self {
        self.events.push(FaultEvent {
            at,
            kind: FaultKind::ChannelDerate {
                channel,
                num,
                den,
                duration,
            },
        });
        self
    }

    /// Validates the plan against a `channels`-channel geometry: events
    /// sorted by cycle, channel indices in range, durations and fractions
    /// meaningful, and no same-kind window overlap (see the type-level
    /// docs for the overlap semantics).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self, channels: u32) -> Result<(), ConfigError> {
        let mut last = 0u64;
        // Exclusive end cycle of the latest window of each kind, per
        // channel (outage / storm) or globally (derate).
        let mut outage_end = vec![0u64; channels as usize];
        let mut storm_end = vec![0u64; channels as usize];
        let mut quality_end = vec![0u64; channels as usize];
        let mut derate_end = 0u64;
        for ev in &self.events {
            if ev.at < last {
                return Err(ConfigError::InvalidParameter {
                    field: "fault_plan.events",
                    constraint: "be sorted by cycle",
                });
            }
            last = ev.at;
            match ev.kind {
                FaultKind::ChannelOutage { channel, duration }
                | FaultKind::StallStorm { channel, duration } => {
                    if channel >= channels {
                        return Err(ConfigError::InvalidParameter {
                            field: "fault_plan.channel",
                            constraint: "name a configured channel",
                        });
                    }
                    if duration == 0 {
                        return Err(ConfigError::InvalidParameter {
                            field: "fault_plan.duration",
                            constraint: "be nonzero",
                        });
                    }
                    let end = if matches!(ev.kind, FaultKind::ChannelOutage { .. }) {
                        &mut outage_end[channel as usize]
                    } else {
                        &mut storm_end[channel as usize]
                    };
                    if ev.at < *end {
                        return Err(ConfigError::InvalidParameter {
                            field: "fault_plan.events",
                            constraint: "not overlap a same-kind window on the same channel",
                        });
                    }
                    *end = ev.at.saturating_add(duration);
                }
                FaultKind::EntropyDerate { num, den, duration } => {
                    if den == 0 || num >= den {
                        return Err(ConfigError::InvalidParameter {
                            field: "fault_plan.derate",
                            constraint: "satisfy num < den with den nonzero",
                        });
                    }
                    if duration == 0 {
                        return Err(ConfigError::InvalidParameter {
                            field: "fault_plan.duration",
                            constraint: "be nonzero",
                        });
                    }
                    if ev.at < derate_end {
                        return Err(ConfigError::InvalidParameter {
                            field: "fault_plan.events",
                            constraint: "not overlap an active entropy derate",
                        });
                    }
                    derate_end = ev.at.saturating_add(duration);
                }
                FaultKind::BufferCorruption { words } => {
                    if words == 0 {
                        return Err(ConfigError::InvalidParameter {
                            field: "fault_plan.words",
                            constraint: "be nonzero",
                        });
                    }
                }
                FaultKind::ChannelDerate {
                    channel,
                    num,
                    den,
                    duration,
                } => {
                    if channel >= channels {
                        return Err(ConfigError::InvalidParameter {
                            field: "fault_plan.channel",
                            constraint: "name a configured channel",
                        });
                    }
                    if den == 0 || num >= den {
                        return Err(ConfigError::InvalidParameter {
                            field: "fault_plan.derate",
                            constraint: "satisfy num < den with den nonzero",
                        });
                    }
                    if duration == 0 {
                        return Err(ConfigError::InvalidParameter {
                            field: "fault_plan.duration",
                            constraint: "be nonzero",
                        });
                    }
                    let end = &mut quality_end[channel as usize];
                    if ev.at < *end {
                        return Err(ConfigError::InvalidParameter {
                            field: "fault_plan.events",
                            constraint: "not overlap a same-kind window on the same channel",
                        });
                    }
                    *end = ev.at.saturating_add(duration);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_plan_keeps_order_and_validates() {
        let plan = FaultPlan::new()
            .outage(100, 1, 50)
            .stall_storm(200, 0, 25)
            .derate(300, 1, 2, 400)
            .corruption(500, 4);
        assert_eq!(plan.events.len(), 4);
        plan.validate(4).unwrap();
        assert!(FaultPlan::new().is_empty());
        assert!(!plan.is_empty());
    }

    #[test]
    fn unsorted_plan_rejected() {
        let plan = FaultPlan::new().corruption(500, 4).outage(100, 0, 50);
        assert!(plan.validate(4).is_err());
    }

    #[test]
    fn out_of_range_channel_rejected() {
        assert!(FaultPlan::new().outage(0, 4, 10).validate(4).is_err());
        assert!(FaultPlan::new().stall_storm(0, 9, 10).validate(4).is_err());
    }

    #[test]
    fn degenerate_parameters_rejected() {
        assert!(FaultPlan::new().outage(0, 0, 0).validate(4).is_err());
        assert!(FaultPlan::new().derate(0, 2, 2, 10).validate(4).is_err());
        assert!(FaultPlan::new().derate(0, 1, 0, 10).validate(4).is_err());
        assert!(FaultPlan::new().derate(0, 1, 2, 0).validate(4).is_err());
        assert!(FaultPlan::new().corruption(0, 0).validate(4).is_err());
    }

    #[test]
    fn equal_cycles_are_allowed() {
        // Two faults on the same cycle apply in plan order.
        let plan = FaultPlan::new().corruption(100, 1).outage(100, 0, 10);
        plan.validate(4).unwrap();
    }

    #[test]
    fn overlapping_same_kind_same_channel_rejected() {
        // Second outage starts while the first (100..200) is active.
        let plan = FaultPlan::new().outage(100, 0, 100).outage(150, 0, 10);
        assert!(plan.validate(4).is_err());
        let plan = FaultPlan::new().stall_storm(100, 2, 100).stall_storm(199, 2, 1);
        assert!(plan.validate(4).is_err());
        // Derating is global: two active derates have no defined meaning.
        let plan = FaultPlan::new().derate(100, 1, 2, 100).derate(150, 1, 4, 10);
        assert!(plan.validate(4).is_err());
    }

    #[test]
    fn channel_derate_validates_like_other_windows() {
        FaultPlan::new().channel_derate(0, 1, 1, 4, 100).validate(4).unwrap();
        assert!(FaultPlan::new().channel_derate(0, 9, 1, 4, 100).validate(4).is_err());
        assert!(FaultPlan::new().channel_derate(0, 0, 4, 4, 100).validate(4).is_err());
        assert!(FaultPlan::new().channel_derate(0, 0, 1, 4, 0).validate(4).is_err());
        // Overlap on the same channel rejected; other channels compose.
        assert!(FaultPlan::new()
            .channel_derate(0, 0, 1, 4, 100)
            .channel_derate(50, 0, 1, 2, 10)
            .validate(4)
            .is_err());
        FaultPlan::new()
            .channel_derate(0, 0, 1, 4, 100)
            .channel_derate(50, 1, 1, 2, 10)
            .validate(4)
            .unwrap();
    }

    #[test]
    fn back_to_back_and_cross_kind_overlaps_allowed() {
        // Windows are half-open: a window starting at the previous end is
        // adjacent, not overlapping.
        FaultPlan::new()
            .outage(100, 0, 100)
            .outage(200, 0, 50)
            .validate(4)
            .unwrap();
        // Same kind on different channels overlaps freely.
        FaultPlan::new()
            .outage(100, 0, 100)
            .outage(150, 1, 100)
            .validate(4)
            .unwrap();
        // Different kinds on the same channel compose (an outage during a
        // stall storm, a derate during an outage).
        FaultPlan::new()
            .stall_storm(100, 0, 500)
            .outage(200, 0, 100)
            .derate(250, 1, 2, 50)
            .validate(4)
            .unwrap();
    }
}
