//! Online entropy-health watchdog (detect → quarantine → probe → re-admit).
//!
//! Real DRAM entropy degrades with temperature and voltage drift; a
//! derated channel that keeps serving low-entropy words into the shared
//! buffer is a silent security failure. The watchdog closes the loop the
//! paper's end-to-end argument demands: generated words are sampled per
//! channel into sliding [`QualityWindow`]s and the incremental
//! monobit/runs/serial tests run at deterministic window boundaries;
//! consecutive failures trip a per-channel state machine
//!
//! ```text
//! Healthy → Suspect → Quarantined → Probation → Healthy
//! ```
//!
//! Quarantined and probationary channels are **excluded** from demand
//! generation and fill arbitration (the same failover paths a
//! [`crate::FaultKind::ChannelOutage`] uses), but receive scheduled
//! low-rate probe rounds whose words are tested and discarded — never
//! buffered, never served — until a configurable pass streak re-admits
//! the channel.
//!
//! # Determinism contract
//!
//! Every transition happens at an exact simulated cycle from simulated
//! state only:
//!
//! * live window tests fire at draw sites, which are live ticks by
//!   construction (words are only drawn inside `tick`);
//! * probe rounds fire at `probe_due` cycles that the engine folds into
//!   `next_event_at`, exactly like pending fault-plan events;
//! * exclusion flips only inside those transitions, each of which bumps
//!   the engine's fill epoch, so the memoized fill probe never caches
//!   across a health transition.
//!
//! Reference ≡ FastForward bit-identity therefore holds under any
//! watchdog configuration (`tests/robustness.rs`, `tests/chaos.rs`).

use strange_dram::ConfigError;
use strange_trng::QualityWindow;

use crate::stats::SystemStats;

/// Per-channel entropy-health state (see the module docs for the
/// transition diagram).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Passing its quality windows; fully in service.
    Healthy,
    /// One or more consecutive window failures, below the trip count;
    /// still in service.
    Suspect,
    /// Tripped: excluded from generation and fill, probed at low rate.
    Quarantined,
    /// Probe windows have started passing; still excluded until the
    /// configured pass streak completes.
    Probation,
}

impl HealthState {
    /// Whether this state excludes the channel from demand generation
    /// and fill arbitration.
    pub fn excluded(self) -> bool {
        matches!(self, HealthState::Quarantined | HealthState::Probation)
    }
}

/// Entropy-health watchdog configuration (disabled by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Master switch; when false the watchdog neither samples nor tests.
    pub enabled: bool,
    /// Words per quality window; a test fires every `window_words`
    /// sampled words per channel (non-overlapping windows).
    pub window_words: u32,
    /// Consecutive failing windows that trip `Suspect → Quarantined`.
    pub trip_failures: u32,
    /// DRAM-bus cycles between probe rounds on an excluded channel.
    pub probe_period: u64,
    /// Words drawn (tested and discarded) per probe round.
    pub probe_words: u32,
    /// Consecutive passing probe windows that re-admit the channel.
    pub probe_pass_streak: u32,
}

impl WatchdogConfig {
    /// Watchdog off: no sampling, no exclusion (the default).
    pub fn off() -> Self {
        WatchdogConfig {
            enabled: false,
            ..WatchdogConfig::standard()
        }
    }

    /// A balanced enabled configuration: 32-word windows, two failures
    /// to trip, probes every 20k DRAM cycles, two passes to re-admit.
    pub fn standard() -> Self {
        WatchdogConfig {
            enabled: true,
            window_words: 32,
            trip_failures: 2,
            probe_period: 20_000,
            probe_words: 32,
            probe_pass_streak: 2,
        }
    }

    /// Validates the parameters (only meaningful when enabled).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.enabled {
            return Ok(());
        }
        if self.window_words == 0 {
            return Err(ConfigError::InvalidParameter {
                field: "watchdog.window_words",
                constraint: "be nonzero",
            });
        }
        if self.trip_failures == 0 {
            return Err(ConfigError::InvalidParameter {
                field: "watchdog.trip_failures",
                constraint: "be nonzero",
            });
        }
        if self.probe_period == 0 {
            return Err(ConfigError::InvalidParameter {
                field: "watchdog.probe_period",
                constraint: "be nonzero",
            });
        }
        if self.probe_words == 0 {
            return Err(ConfigError::InvalidParameter {
                field: "watchdog.probe_words",
                constraint: "be nonzero",
            });
        }
        if self.probe_pass_streak == 0 {
            return Err(ConfigError::InvalidParameter {
                field: "watchdog.probe_pass_streak",
                constraint: "be nonzero",
            });
        }
        Ok(())
    }
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig::off()
    }
}

/// Per-channel sampling window and state-machine bookkeeping.
struct ChannelHealth {
    state: HealthState,
    window: QualityWindow,
    /// Words sampled since the last boundary test.
    fresh: u32,
    /// Consecutive failing live windows.
    fails: u32,
    /// Consecutive passing probe windows.
    streak: u32,
    /// Next probe-round cycle while excluded (`u64::MAX` otherwise).
    probe_due: u64,
    /// Sub-word bit accumulator: predictive fill rounds deliver bits in
    /// chunks smaller than 64, which pack low-bits-first here until a
    /// full word is ready for the window.
    acc: u64,
    /// Valid low bits in `acc` (< 64).
    acc_bits: u32,
}

impl ChannelHealth {
    fn new(window_words: u32) -> Self {
        ChannelHealth {
            state: HealthState::Healthy,
            window: QualityWindow::new(window_words.max(1) as usize),
            fresh: 0,
            fails: 0,
            streak: 0,
            probe_due: u64::MAX,
            acc: 0,
            acc_bits: 0,
        }
    }
}

/// The engine-side watchdog: one [`ChannelHealth`] per channel plus the
/// shared configuration. All mutation entry points return whether an
/// exclusion-relevant transition occurred so the caller can invalidate
/// its fill-state memoization.
pub(crate) struct Watchdog {
    cfg: WatchdogConfig,
    chans: Vec<ChannelHealth>,
}

impl Watchdog {
    pub(crate) fn new(cfg: WatchdogConfig, channels: usize) -> Self {
        let chans = (0..channels)
            .map(|_| ChannelHealth::new(cfg.window_words))
            .collect();
        Watchdog { cfg, chans }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Whether channel `i` is currently excluded from generation/fill.
    pub(crate) fn excluded(&self, i: usize) -> bool {
        self.cfg.enabled && self.chans[i].state.excluded()
    }

    /// Number of currently excluded channels.
    pub(crate) fn excluded_count(&self) -> usize {
        if !self.cfg.enabled {
            return 0;
        }
        self.chans.iter().filter(|c| c.state.excluded()).count()
    }

    /// Channel `i`'s current health state.
    pub(crate) fn state(&self, i: usize) -> HealthState {
        self.chans[i].state
    }

    /// Earliest pending probe cycle over all excluded channels (bounds
    /// the engine's `next_event_at`, like pending fault events).
    pub(crate) fn next_probe_at(&self) -> Option<u64> {
        if !self.cfg.enabled {
            return None;
        }
        self.chans
            .iter()
            .filter(|c| c.state.excluded())
            .map(|c| c.probe_due)
            .min()
    }

    /// Whether channel `i` has a probe round due at `now`.
    pub(crate) fn probe_ready(&self, i: usize, now: u64) -> bool {
        self.cfg.enabled && self.chans[i].state.excluded() && now >= self.chans[i].probe_due
    }

    /// Pushes a due probe to a later (strictly future) cycle because the
    /// channel is blocked or out.
    pub(crate) fn defer_probe(&mut self, i: usize, until: u64) {
        self.chans[i].probe_due = self.chans[i].probe_due.max(until);
    }

    /// Samples the low `take` bits of one draw for channel `i` on the
    /// live path. Bits pack low-first into the channel's sub-word
    /// accumulator (predictive fill delivers chunks smaller than 64);
    /// each completed 64-bit word enters the sliding window via
    /// [`Watchdog::observe`]. Returns true iff the channel transitioned
    /// into quarantine.
    pub(crate) fn observe_bits(
        &mut self,
        i: usize,
        bits: u64,
        take: u32,
        now: u64,
        stats: &mut SystemStats,
    ) -> bool {
        debug_assert!(self.cfg.enabled);
        debug_assert!((1..=64).contains(&take));
        let bits = if take == 64 {
            bits
        } else {
            bits & ((1u64 << take) - 1)
        };
        let ch = &mut self.chans[i];
        let avail = 64 - ch.acc_bits;
        if take < avail {
            ch.acc |= bits << ch.acc_bits;
            ch.acc_bits += take;
            return false;
        }
        let word = ch.acc | (bits << ch.acc_bits);
        ch.acc = if avail >= 64 { 0 } else { bits >> avail };
        ch.acc_bits = take - avail;
        self.observe(i, word, now, stats)
    }

    /// Samples one full generated word for channel `i` on the live path.
    /// Fires a boundary test every `window_words` samples; returns true
    /// iff the channel transitioned into quarantine (the caller must
    /// invalidate its fill memoization).
    pub(crate) fn observe(
        &mut self,
        i: usize,
        word: u64,
        now: u64,
        stats: &mut SystemStats,
    ) -> bool {
        debug_assert!(self.cfg.enabled);
        let ch = &mut self.chans[i];
        debug_assert!(!ch.state.excluded(), "excluded channels sample via probes");
        ch.window.push(word);
        ch.fresh += 1;
        if ch.fresh < self.cfg.window_words {
            return false;
        }
        ch.fresh = 0;
        stats.windows_tested += 1;
        if ch.window.report().all_passed() {
            ch.fails = 0;
            ch.state = HealthState::Healthy;
            return false;
        }
        ch.fails += 1;
        if ch.fails < self.cfg.trip_failures {
            ch.state = HealthState::Suspect;
            return false;
        }
        // Trip: exclude and schedule the first probe round.
        ch.state = HealthState::Quarantined;
        ch.fails = 0;
        ch.streak = 0;
        ch.fresh = 0;
        ch.window.clear();
        ch.acc = 0;
        ch.acc_bits = 0;
        ch.probe_due = now + self.cfg.probe_period;
        stats.quarantines += 1;
        true
    }

    /// Runs one probe round's test for channel `i` over `words` (already
    /// drawn — and discarded — by the engine). Returns true iff the
    /// channel was re-admitted.
    pub(crate) fn run_probe(
        &mut self,
        i: usize,
        words: &[u64],
        now: u64,
        stats: &mut SystemStats,
    ) -> bool {
        debug_assert!(self.cfg.enabled);
        let ch = &mut self.chans[i];
        debug_assert!(ch.state.excluded(), "probes only run while excluded");
        ch.window.clear();
        for &w in words {
            ch.window.push(w);
        }
        stats.windows_tested += 1;
        let passed = ch.window.report().all_passed();
        ch.window.clear();
        if passed {
            ch.streak += 1;
            if ch.streak >= self.cfg.probe_pass_streak {
                ch.state = HealthState::Healthy;
                ch.streak = 0;
                ch.fails = 0;
                ch.fresh = 0;
                ch.acc = 0;
                ch.acc_bits = 0;
                ch.probe_due = u64::MAX;
                stats.readmissions += 1;
                return true;
            }
            ch.state = HealthState::Probation;
        } else {
            ch.streak = 0;
            if ch.state == HealthState::Probation {
                // Relapse: back to quarantine (counted like a fresh trip).
                ch.state = HealthState::Quarantined;
                stats.quarantines += 1;
            }
        }
        ch.probe_due = now + self.cfg.probe_period;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            enabled: true,
            window_words: 4,
            trip_failures: 2,
            probe_period: 100,
            probe_words: 4,
            probe_pass_streak: 2,
        }
    }

    /// Words that fail monobit spectacularly (all ones).
    const BAD: u64 = u64::MAX;

    fn good_words(n: usize) -> Vec<u64> {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn config_validation() {
        WatchdogConfig::off().validate().unwrap();
        WatchdogConfig::standard().validate().unwrap();
        let mut bad = WatchdogConfig::standard();
        bad.window_words = 0;
        assert!(bad.validate().is_err());
        let mut bad = WatchdogConfig::standard();
        bad.probe_pass_streak = 0;
        assert!(bad.validate().is_err());
        // Degenerate parameters are fine while disabled.
        bad.enabled = false;
        bad.validate().unwrap();
    }

    #[test]
    fn trip_and_readmit_walks_the_full_state_machine() {
        let mut wd = Watchdog::new(cfg(), 2);
        let mut stats = SystemStats::new();
        // First failing window: Healthy -> Suspect.
        for _ in 0..4 {
            assert!(!wd.observe(0, BAD, 10, &mut stats));
        }
        assert_eq!(wd.state(0), HealthState::Suspect);
        assert!(!wd.excluded(0));
        // Second consecutive failure trips quarantine.
        let mut tripped = false;
        for _ in 0..4 {
            tripped |= wd.observe(0, BAD, 20, &mut stats);
        }
        assert!(tripped);
        assert_eq!(wd.state(0), HealthState::Quarantined);
        assert!(wd.excluded(0));
        assert_eq!(wd.excluded_count(), 1);
        assert_eq!(stats.quarantines, 1);
        assert_eq!(wd.next_probe_at(), Some(120));
        // A failing probe keeps it quarantined.
        assert!(!wd.run_probe(0, &[BAD; 4], 120, &mut stats));
        assert_eq!(wd.state(0), HealthState::Quarantined);
        // Passing probes walk Probation -> Healthy.
        let good = good_words(4);
        assert!(!wd.run_probe(0, &good, 220, &mut stats));
        assert_eq!(wd.state(0), HealthState::Probation);
        assert!(wd.excluded(0), "probation is still excluded");
        assert!(wd.run_probe(0, &good, 320, &mut stats));
        assert_eq!(wd.state(0), HealthState::Healthy);
        assert!(!wd.excluded(0));
        assert_eq!(stats.readmissions, 1);
        assert_eq!(wd.next_probe_at(), None);
    }

    #[test]
    fn probation_relapse_returns_to_quarantine() {
        let mut wd = Watchdog::new(cfg(), 1);
        let mut stats = SystemStats::new();
        for _ in 0..8 {
            wd.observe(0, BAD, 0, &mut stats);
        }
        assert_eq!(wd.state(0), HealthState::Quarantined);
        wd.run_probe(0, &good_words(4), 100, &mut stats);
        assert_eq!(wd.state(0), HealthState::Probation);
        wd.run_probe(0, &[BAD; 4], 200, &mut stats);
        assert_eq!(wd.state(0), HealthState::Quarantined);
        assert_eq!(stats.quarantines, 2, "relapse counts as a quarantine");
    }

    #[test]
    fn passing_windows_recover_suspect_without_exclusion() {
        let mut wd = Watchdog::new(cfg(), 1);
        let mut stats = SystemStats::new();
        for _ in 0..4 {
            wd.observe(0, BAD, 0, &mut stats);
        }
        assert_eq!(wd.state(0), HealthState::Suspect);
        for &w in good_words(4).iter() {
            wd.observe(0, w, 5, &mut stats);
        }
        assert_eq!(wd.state(0), HealthState::Healthy);
        assert_eq!(stats.quarantines, 0);
        assert_eq!(stats.windows_tested, 2);
    }

    #[test]
    fn deferred_probes_only_move_forward() {
        let mut wd = Watchdog::new(cfg(), 1);
        let mut stats = SystemStats::new();
        for _ in 0..8 {
            wd.observe(0, BAD, 0, &mut stats);
        }
        assert_eq!(wd.next_probe_at(), Some(100));
        wd.defer_probe(0, 250);
        assert_eq!(wd.next_probe_at(), Some(250));
        wd.defer_probe(0, 150);
        assert_eq!(wd.next_probe_at(), Some(250), "deferrals never rewind");
    }
}
