//! The application interface (Section 5.3).
//!
//! DR-STRaNGe exposes the DRAM TRNG to software through the existing
//! `getrandom()` path: the kernel's random-number service is backed by the
//! memory controller's random number buffer instead of (or in addition to)
//! the entropy pool. [`RngDevice`] models that service at the API level —
//! a blocking `getrandom`-style call that fills a caller-provided byte
//! buffer, serving from the buffer when possible and generating on demand
//! otherwise — together with the Section 6 security properties:
//!
//! * random bits are returned to exactly one caller and then discarded;
//! * the latency difference between buffer hits and on-demand generation is
//!   exposed through [`ServeKind`] so examples/tests can reason about the
//!   timing side channel the paper discusses.

use strange_trng::TrngMechanism;

use crate::buffer::RandomNumberBuffer;

/// How a `getrandom` call was satisfied (observable timing class — the
/// Section 6 side-channel discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKind {
    /// All requested bytes came from the random number buffer (fast path).
    Buffer,
    /// At least one generation episode was needed (slow path).
    Generated,
}

/// A `getrandom()`-style device backed by a DRAM TRNG mechanism and the
/// DR-STRaNGe random number buffer.
///
/// # Examples
///
/// ```
/// use strange_core::RngDevice;
/// use strange_trng::DRange;
///
/// let mut dev = RngDevice::new(Box::new(DRange::new(1)), 16);
/// let mut key = [0u8; 32];
/// dev.getrandom(&mut key);
/// assert_ne!(key, [0u8; 32]); // overwhelmingly likely
/// ```
pub struct RngDevice {
    mechanism: Box<dyn TrngMechanism>,
    buffer: RandomNumberBuffer,
    refill_batches: u32,
}

impl std::fmt::Debug for RngDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RngDevice")
            .field("mechanism", &self.mechanism.name())
            .field("buffered_bits", &self.buffer.available_bits())
            .finish()
    }
}

impl RngDevice {
    /// Creates a device over `mechanism` with a buffer of
    /// `buffer_entries` 64-bit words (the paper's default is 16).
    pub fn new(mechanism: Box<dyn TrngMechanism>, buffer_entries: usize) -> Self {
        RngDevice {
            mechanism,
            buffer: RandomNumberBuffer::new(buffer_entries),
            refill_batches: 0,
        }
    }

    /// The underlying mechanism's name.
    pub fn mechanism_name(&self) -> &'static str {
        self.mechanism.name()
    }

    /// Bits currently buffered.
    pub fn buffered_bits(&self) -> u64 {
        self.buffer.available_bits()
    }

    /// Generation batches performed so far (each models one RNG-mode round
    /// on DRAM; background filling in the full system keeps this low).
    pub fn generation_batches(&self) -> u32 {
        self.refill_batches
    }

    /// Models background filling: runs `batches` generation rounds into the
    /// buffer (what the DR-STRaNGe engine does during idle DRAM periods).
    pub fn background_fill(&mut self, batches: u32) {
        for _ in 0..batches {
            if self.buffer.is_full() {
                break;
            }
            let mut remaining = self.mechanism.batch_bits();
            while remaining > 0 {
                let take = remaining.min(64);
                let word = self.mechanism.draw(take);
                self.buffer.push_bits(word, take);
                remaining -= take;
            }
            self.refill_batches += 1;
        }
    }

    /// Fills `out` with true-random bytes, blocking (conceptually) until
    /// enough bits are available. Returns how the call was served.
    ///
    /// Served bits are discarded from the buffer: no two callers ever see
    /// the same random data (Section 6).
    pub fn getrandom(&mut self, out: &mut [u8]) -> ServeKind {
        let mut kind = ServeKind::Buffer;
        let mut i = 0;
        while i < out.len() {
            let word = match self.buffer.pop_word() {
                Some(w) => w,
                None => {
                    kind = ServeKind::Generated;
                    self.refill_batches += 1;
                    self.mechanism.draw(64)
                }
            };
            let bytes = word.to_le_bytes();
            let n = (out.len() - i).min(8);
            out[i..i + n].copy_from_slice(&bytes[..n]);
            i += n;
        }
        kind
    }

    /// Returns one 64-bit true-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.getrandom(&mut bytes);
        u64::from_le_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strange_trng::DRange;

    fn device() -> RngDevice {
        RngDevice::new(Box::new(DRange::new(3)), 16)
    }

    #[test]
    fn empty_buffer_serves_by_generation() {
        let mut dev = device();
        let mut buf = [0u8; 16];
        assert_eq!(dev.getrandom(&mut buf), ServeKind::Generated);
    }

    #[test]
    fn filled_buffer_serves_fast_path() {
        let mut dev = device();
        dev.background_fill(64); // 64 batches × 8 bits = 8 words
        let mut buf = [0u8; 8];
        assert_eq!(dev.getrandom(&mut buf), ServeKind::Buffer);
    }

    #[test]
    fn served_bits_are_discarded() {
        let mut dev = device();
        dev.background_fill(8); // exactly one word
        let before = dev.buffered_bits();
        let mut buf = [0u8; 8];
        dev.getrandom(&mut buf);
        assert_eq!(dev.buffered_bits(), before - 64);
    }

    #[test]
    fn two_calls_return_different_data() {
        let mut dev = device();
        let a = dev.next_u64();
        let b = dev.next_u64();
        assert_ne!(a, b, "random values must not repeat across callers");
    }

    #[test]
    fn partial_word_requests_work() {
        let mut dev = device();
        let mut buf = [0u8; 5];
        dev.getrandom(&mut buf);
        // Can't assert on randomness of 5 bytes beyond not panicking, but
        // a second call must differ with overwhelming probability.
        let mut buf2 = [0u8; 5];
        dev.getrandom(&mut buf2);
        assert_ne!(buf, buf2);
    }

    #[test]
    fn background_fill_stops_at_capacity() {
        let mut dev = device();
        dev.background_fill(10_000);
        assert!(dev.buffered_bits() <= 16 * 64);
        assert!(dev.generation_batches() < 10_000);
    }

    #[test]
    fn output_passes_quality_tests() {
        let mut dev = device();
        let words: Vec<u64> = (0..2048).map(|_| dev.next_u64()).collect();
        assert!(strange_trng::runs_test(&words).statistic < 10.0);
    }
}
