//! The application interface (Section 5.3).
//!
//! DR-STRaNGe exposes the DRAM TRNG to software through the existing
//! `getrandom()` path: the kernel's random-number service is backed by the
//! memory controller's random number buffer instead of (or in addition to)
//! the entropy pool. [`RngDevice`] models that service as an interactive
//! front-end over the **cycle-accurate service layer**: every call is
//! submitted as a real request to a simulated [`System`] (a manual
//! [`crate::ClientSpec`] client on a coreless DR-STRaNGe memory
//! subsystem), driven through the RNG queue, arbitration, buffer serve,
//! and on-demand generation machinery, and charged its true latency in
//! CPU cycles. The Section 6 security properties hold by construction:
//!
//! * random bits are drawn once and returned to exactly one caller;
//! * the latency difference between buffer hits and on-demand generation
//!   is observable both through [`ServeKind`] and through the per-call
//!   cycle counts ([`RngDevice::last_latency_cycles`]) — the timing side
//!   channel the paper discusses.
//!
//! For load experiments with many concurrent clients and open-loop
//! arrival processes, configure the service layer directly through
//! [`crate::ServiceConfig`] and [`System::run`]; this type is the
//! synchronous single-caller convenience wrapper on the same path.

use strange_trng::TrngMechanism;

use crate::config::{FillMode, PredictorKind, RngRouting, SystemConfig};
use crate::service::{ClientSpec, ServiceConfig};
use crate::system::System;

pub use crate::service::ServeKind;

/// CPU-cycle budget per driven operation; generously above any realistic
/// request latency, so exceeding it indicates an internal bug rather than
/// a slow configuration.
const DRIVE_CYCLE_CAP: u64 = 50_000_000;

/// A `getrandom()`-style device backed by a DRAM TRNG mechanism and the
/// DR-STRaNGe random number buffer, simulated cycle-accurately.
///
/// # Examples
///
/// ```
/// use strange_core::RngDevice;
/// use strange_trng::DRange;
///
/// let mut dev = RngDevice::new(Box::new(DRange::new(1)), 16);
/// let mut key = [0u8; 32];
/// dev.getrandom(&mut key);
/// assert_ne!(key, [0u8; 32]); // overwhelmingly likely
/// assert!(dev.last_latency_cycles() > 0); // real cycles were charged
/// ```
pub struct RngDevice {
    system: System,
    name: &'static str,
    last_latency: u64,
}

impl std::fmt::Debug for RngDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RngDevice")
            .field("mechanism", &self.name)
            .field("buffered_bits", &self.buffered_bits())
            .field("cpu_cycles", &self.system.cpu_cycles())
            .finish()
    }
}

impl RngDevice {
    /// Creates a device over `mechanism` with a buffer of
    /// `buffer_entries` 64-bit words (the paper's default is 16).
    ///
    /// The underlying system boots cold (empty buffer, no prefill) with
    /// RNG-aware routing and predictor-less background filling — the
    /// Section 5.1.1 simple buffering mechanism, which is exact here
    /// because a coreless device has no regular traffic to mispredict
    /// against. `buffer_entries == 0` disables buffering entirely (every
    /// call generates on demand).
    pub fn new(mechanism: Box<dyn TrngMechanism>, buffer_entries: usize) -> Self {
        let name = mechanism.name();
        let mut config = SystemConfig::rng_oblivious(0);
        config.routing = RngRouting::Aware;
        config.buffer_entries = buffer_entries;
        config.fill = if buffer_entries > 0 {
            FillMode::Predictive
        } else {
            FillMode::None
        };
        config.predictor = PredictorKind::AlwaysLong;
        config.low_util_threshold = 0;
        config.prefill_buffer = false;
        config.service = ServiceConfig {
            clients: vec![ClientSpec::manual(8)],
            ..ServiceConfig::default()
        };
        let system = System::new(config, Vec::new(), mechanism).expect("valid device config");
        RngDevice {
            system,
            name,
            last_latency: 0,
        }
    }

    /// The underlying mechanism's name.
    pub fn mechanism_name(&self) -> &'static str {
        self.name
    }

    /// Bits currently buffered.
    pub fn buffered_bits(&self) -> u64 {
        self.system.mem().buffer().available_bits()
    }

    /// Generation batches performed so far: background fill rounds plus
    /// on-demand generation episodes.
    pub fn generation_batches(&self) -> u32 {
        let s = self.system.mem().stats();
        (s.fill_batches + s.low_util_batches + s.greedy_batches + s.demand_generations) as u32
    }

    /// CPU cycles the simulated system has advanced (4 GHz clock).
    pub fn cpu_cycles(&self) -> u64 {
        self.system.cpu_cycles()
    }

    /// End-to-end latency in CPU cycles of the most recent
    /// [`RngDevice::getrandom`] call (0 before the first call).
    pub fn last_latency_cycles(&self) -> u64 {
        self.last_latency
    }

    /// The underlying simulated system (service statistics, buffer and
    /// engine inspection).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Background filling: advances simulated time until `batches` more
    /// generation rounds have landed in the buffer (or it fills up) —
    /// what the DR-STRaNGe engine does during idle DRAM periods. A
    /// no-op for an unbuffered device.
    pub fn background_fill(&mut self, batches: u32) {
        if self.system.config().fill == FillMode::None || batches == 0 {
            return;
        }
        let done = |s: &System| {
            let st = s.mem().stats();
            st.fill_batches + st.low_util_batches + st.greedy_batches
        };
        let target = done(&self.system) + batches as u64;
        self.system.advance_until(DRIVE_CYCLE_CAP, |s| {
            done(s) >= target || s.mem().buffer().is_full()
        });
    }

    /// Fills `out` with true-random bytes, blocking (in simulated time)
    /// until the request is served, and returns how it was served. The
    /// cycles charged are available via
    /// [`RngDevice::last_latency_cycles`].
    ///
    /// Served bits are discarded from the buffer: no two callers ever see
    /// the same random data (Section 6).
    ///
    /// # Panics
    ///
    /// Panics if `out` is empty.
    pub fn getrandom(&mut self, out: &mut [u8]) -> ServeKind {
        let seq = self.system.service_submit(0, out.len());
        let served = self.system.run_service_request(0, seq, DRIVE_CYCLE_CAP);
        for (chunk, word) in out.chunks_mut(8).zip(&served.words) {
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        self.last_latency = served.latency_cycles;
        served.kind
    }

    /// Returns one 64-bit true-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.getrandom(&mut bytes);
        u64::from_le_bytes(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strange_trng::DRange;

    fn device() -> RngDevice {
        RngDevice::new(Box::new(DRange::new(3)), 16)
    }

    #[test]
    fn empty_buffer_serves_by_generation() {
        let mut dev = device();
        let mut buf = [0u8; 16];
        assert_eq!(dev.getrandom(&mut buf), ServeKind::Generated);
        assert_eq!(dev.system().mem().stats().demand_generations, 1);
    }

    #[test]
    fn filled_buffer_serves_fast_path() {
        let mut dev = device();
        dev.background_fill(64); // 64 batches × 8 bits = 8 words
        assert!(dev.buffered_bits() >= 8 * 64);
        let mut buf = [0u8; 8];
        assert_eq!(dev.getrandom(&mut buf), ServeKind::Buffer);
    }

    #[test]
    fn buffer_hit_is_faster_than_generation() {
        // The Section 6 timing side channel: the buffered fast path is
        // observably quicker than an on-demand episode, in real cycles.
        let mut dev = device();
        let mut buf = [0u8; 8];
        dev.getrandom(&mut buf);
        let generated = dev.last_latency_cycles();
        dev.background_fill(64);
        let kind = dev.getrandom(&mut buf);
        assert_eq!(kind, ServeKind::Buffer);
        let buffered = dev.last_latency_cycles();
        assert!(
            buffered < generated,
            "buffer hit {buffered} must beat generation {generated}"
        );
    }

    #[test]
    fn served_bits_are_discarded() {
        let mut dev = device();
        dev.background_fill(10_000); // fill to capacity
        let before = dev.buffered_bits();
        assert_eq!(before, 16 * 64);
        // Drain the full buffer in one call: every served word leaves it.
        let mut buf = [0u8; 16 * 8];
        dev.getrandom(&mut buf);
        assert!(
            dev.buffered_bits() < before,
            "served words must be discarded (got {} of {before} bits)",
            dev.buffered_bits()
        );
    }

    #[test]
    fn two_calls_return_different_data() {
        let mut dev = device();
        let a = dev.next_u64();
        let b = dev.next_u64();
        assert_ne!(a, b, "random values must not repeat across callers");
    }

    #[test]
    fn partial_word_requests_work() {
        let mut dev = device();
        let mut buf = [0u8; 5];
        dev.getrandom(&mut buf);
        // Can't assert on randomness of 5 bytes beyond not panicking, but
        // a second call must differ with overwhelming probability.
        let mut buf2 = [0u8; 5];
        dev.getrandom(&mut buf2);
        assert_ne!(buf, buf2);
    }

    #[test]
    fn background_fill_stops_at_capacity() {
        let mut dev = device();
        dev.background_fill(10_000);
        assert_eq!(dev.buffered_bits(), 16 * 64);
        assert!(dev.generation_batches() < 10_000);
    }

    #[test]
    fn unbuffered_device_always_generates() {
        let mut dev = RngDevice::new(Box::new(DRange::new(3)), 0);
        dev.background_fill(100); // no-op
        assert_eq!(dev.buffered_bits(), 0);
        let mut buf = [0u8; 8];
        assert_eq!(dev.getrandom(&mut buf), ServeKind::Generated);
        assert_eq!(dev.getrandom(&mut buf), ServeKind::Generated);
    }

    #[test]
    fn device_time_advances_monotonically() {
        let mut dev = device();
        let t0 = dev.cpu_cycles();
        dev.next_u64();
        let t1 = dev.cpu_cycles();
        assert!(t1 > t0, "a served request must consume simulated time");
        dev.next_u64();
        assert!(dev.cpu_cycles() > t1);
    }

    #[test]
    fn output_passes_quality_tests() {
        let mut dev = device();
        let words: Vec<u64> = (0..2048).map(|_| dev.next_u64()).collect();
        assert!(strange_trng::runs_test(&words).statistic < 10.0);
    }
}
