//! DR-STRaNGe: the end-to-end system design for DRAM-based true random
//! number generators (Bostancı et al., HPCA 2022) — the paper's primary
//! contribution, implemented over the `strange-dram` / `strange-cpu` /
//! `strange-trng` substrates.
//!
//! The three components of the design (paper Section 5):
//!
//! 1. **Random number buffering** — [`RandomNumberBuffer`] plus the DRAM
//!    idleness predictors ([`SimplePredictor`], [`QlearningPredictor`],
//!    and the predictor-less [`AlwaysLongPredictor`]) hide the high TRNG
//!    latency by generating during predicted-long idle periods.
//! 2. **RNG-aware scheduling** — the engine's separate RNG request queue,
//!    OS-priority arbitration rules, and starvation prevention
//!    (see [`MemSubsystem`]); the [`sched`] module generalizes the
//!    Section 5.2 starvation counter into pluggable tenant fairness
//!    policies ([`FairnessPolicy`]: strict priority, aging, weighted
//!    fair queueing) and makes the burst-coalescing window a knob
//!    ([`CoalesceWindow`]).
//! 3. **Application interface** — the cycle-accurate `getrandom()` service
//!    layer ([`RngService`], [`ServiceConfig`], [`ArrivalProcess`]): N
//!    simulated clients issue requests from closed-loop, Poisson, or
//!    bursty arrival processes, served from the buffer (fast path) or by
//!    real on-demand generation episodes (slow path), with per-request
//!    completion cycles recorded ([`ServiceStats`]). [`RngDevice`] is the
//!    synchronous single-caller front-end on the same path, with the
//!    Section 6 security properties.
//!
//! [`System`] ties cores, memory, and service clients together and runs
//! multi-programmed workloads; [`SystemConfig`] selects the design point
//! (RNG-oblivious baseline, Greedy Idle, DR-STRaNGe, and ablations), with
//! presets matching every configuration the paper evaluates.
//!
//! # Event-driven fast-forward (the next-event contract)
//!
//! DR-STRaNGe's whole premise is that DRAM sits idle most of the time, so
//! the simulator's hot loop would otherwise spend the majority of its
//! iterations ticking components that provably do nothing. Under
//! [`SimMode::FastForward`] (the default), [`System::run`] jumps dead
//! spans in one step while staying bit-identical to
//! [`SimMode::Reference`] — `tests/determinism.rs` asserts equality of
//! every statistic, snapshot, and served random value across both modes.
//!
//! Each layer upholds a two-method contract:
//!
//! * **Next event** — a *read-only* bound on the earliest cycle at which
//!   a tick could do anything beyond linear bookkeeping. Layers must be
//!   conservative: returning "now" merely forfeits skipping, while
//!   returning a later cycle than the true next event would silently
//!   diverge from the reference. The bounds are:
//!   [`strange_dram::ChannelController::next_event_at`] (in-flight data,
//!   RNG blockade end, refresh deadline, earliest bank/rank/bus readiness
//!   over queued requests), [`strange_cpu::Core::next_ready_cycle`]
//!   (stall-until on outstanding misses, pure-compute bubble stretches),
//!   and [`MemSubsystem::next_event_at`] (demand-episode boundaries, RNG
//!   completions, fill rounds, greedy threshold crossings, unprocessed
//!   idle-period edges, low-utilization pacing — plus every channel).
//! * **Skip** — a bulk replay of the per-cycle accounting for a span the
//!   caller proved dead: [`strange_dram::ChannelController::skip_to`],
//!   [`strange_cpu::Core::skip_cycles`], [`MemSubsystem::skip_to`], and
//!   [`strange_dram::SchedulerPolicy::on_cycles_skipped`] for policies
//!   with per-cycle state (BLISS's clearing interval). After a skip the
//!   component must be indistinguishable from having ticked every cycle.
//!
//! [`System::run`] composes these: the global dead span is the minimum of
//! every core's and the memory subsystem's next event (memory events are
//! converted through the 5:1 CPU/DRAM clock ratio), capped at the
//! finish-check boundary on which the run would end so both modes report
//! identical total cycle counts. Anything inside an active span falls
//! back to the per-cycle path. New engine features must either prove
//! their state changes only at cycles already reported as events, or
//! extend `next_event_at` accordingly.
//!
//! # Examples
//!
//! Run a two-application workload (one RNG benchmark, one synthetic
//! streaming app) under full DR-STRaNGe:
//!
//! ```
//! use strange_core::{System, SystemConfig};
//! use strange_cpu::{LoopTrace, TraceOp};
//! use strange_trng::DRange;
//!
//! let traces: Vec<Box<dyn strange_cpu::TraceSource + Send>> = vec![
//!     Box::new(LoopTrace::new(vec![TraceOp::Load { gap: 49, addr: 0x1000 }])),
//!     Box::new(LoopTrace::new(vec![TraceOp::Rng { gap: 150 }])),
//! ];
//! let config = SystemConfig::dr_strange(2).with_instruction_target(10_000);
//! let mut system = System::new(config, traces, Box::new(DRange::new(1)))?;
//! let result = system.run();
//! assert!(result.stats.rng_requests > 0);
//! # Ok::<(), strange_dram::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod config;
mod engine;
mod faults;
mod health;
mod interface;
mod predictor;
pub mod sched;
mod service;
mod stats;
mod system;

pub use buffer::RandomNumberBuffer;
pub use config::{FillMode, PredictorKind, RngRouting, SchedulerKind, SimMode, SystemConfig};
pub use faults::{FaultEvent, FaultKind, FaultPlan};
pub use health::{HealthState, WatchdogConfig};
pub use engine::{AnyPolicy, Completion, MemSubsystem};
pub use interface::RngDevice;
pub use predictor::{
    AlwaysLongPredictor, IdlenessPredictor, Prediction, QlearningPredictor, SimplePredictor,
};
pub use sched::{CoalesceWindow, FairnessPolicy};
pub use service::{
    ArrivalProcess, ClientSpec, QosClass, RngService, ServeKind, ServedRequest, ServiceConfig,
    ServiceStats,
};
pub use stats::SystemStats;
pub use system::{CoreOutcome, RunResult, System};
