//! DR-STRaNGe: the end-to-end system design for DRAM-based true random
//! number generators (Bostancı et al., HPCA 2022) — the paper's primary
//! contribution, implemented over the `strange-dram` / `strange-cpu` /
//! `strange-trng` substrates.
//!
//! The three components of the design (paper Section 5):
//!
//! 1. **Random number buffering** — [`RandomNumberBuffer`] plus the DRAM
//!    idleness predictors ([`SimplePredictor`], [`QlearningPredictor`],
//!    and the predictor-less [`AlwaysLongPredictor`]) hide the high TRNG
//!    latency by generating during predicted-long idle periods.
//! 2. **RNG-aware scheduling** — the engine's separate RNG request queue,
//!    OS-priority arbitration rules, and starvation prevention
//!    (see [`MemSubsystem`]).
//! 3. **Application interface** — [`RngDevice`], the `getrandom()`-style
//!    service with the Section 6 security properties.
//!
//! [`System`] ties cores and memory together and runs multi-programmed
//! workloads; [`SystemConfig`] selects the design point (RNG-oblivious
//! baseline, Greedy Idle, DR-STRaNGe, and ablations), with presets matching
//! every configuration the paper evaluates.
//!
//! # Examples
//!
//! Run a two-application workload (one RNG benchmark, one synthetic
//! streaming app) under full DR-STRaNGe:
//!
//! ```
//! use strange_core::{System, SystemConfig};
//! use strange_cpu::{LoopTrace, TraceOp};
//! use strange_trng::DRange;
//!
//! let traces: Vec<Box<dyn strange_cpu::TraceSource + Send>> = vec![
//!     Box::new(LoopTrace::new(vec![TraceOp::Load { gap: 49, addr: 0x1000 }])),
//!     Box::new(LoopTrace::new(vec![TraceOp::Rng { gap: 150 }])),
//! ];
//! let config = SystemConfig::dr_strange(2).with_instruction_target(10_000);
//! let mut system = System::new(config, traces, Box::new(DRange::new(1)))?;
//! let result = system.run();
//! assert!(result.stats.rng_requests > 0);
//! # Ok::<(), strange_dram::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod config;
mod engine;
mod interface;
mod predictor;
mod stats;
mod system;

pub use buffer::RandomNumberBuffer;
pub use config::{FillMode, PredictorKind, RngRouting, SchedulerKind, SystemConfig};
pub use engine::{AnyPolicy, MemSubsystem};
pub use interface::{RngDevice, ServeKind};
pub use predictor::{
    AlwaysLongPredictor, IdlenessPredictor, Prediction, QlearningPredictor, SimplePredictor,
};
pub use stats::SystemStats;
pub use system::{CoreOutcome, RunResult, System};
