//! DRAM idleness predictors (Section 5.1.2).
//!
//! When a channel's request queues empty out, DR-STRaNGe must decide
//! whether the idle period will be long enough (≥ PeriodThreshold = 40
//! cycles, one 8-bit generation round) to fill the random number buffer
//! without stalling upcoming requests. The paper proposes two predictors:
//!
//! * [`SimplePredictor`] — a 256-entry table of 2-bit saturating counters
//!   indexed by the last accessed memory address, plus a low-utilization
//!   mode that also fires when the read queue is nearly empty.
//! * [`QlearningPredictor`] — a Q-learning agent whose state combines the
//!   last accessed address with the history of the last 10 idle periods.
//!
//! [`AlwaysLongPredictor`] represents the predictor-less "simple buffering
//! mechanism" of Section 5.1.1 (every idle period treated as long).

mod qlearn;
mod simple;

pub use qlearn::QlearningPredictor;
pub use simple::SimplePredictor;

/// A predicted idle-period class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prediction {
    /// Long enough to generate at least one batch of random bits.
    Long,
    /// Too short; generating would stall upcoming requests.
    Short,
}

impl Prediction {
    /// Whether this prediction is [`Prediction::Long`].
    pub fn is_long(&self) -> bool {
        matches!(self, Prediction::Long)
    }
}

/// A DRAM idleness predictor.
///
/// The engine calls [`IdlenessPredictor::predict`] once when an idle (or
/// low-utilization) period begins, and [`IdlenessPredictor::update`] once
/// when the period ends with the observed outcome. `last_addr` is the flat
/// cache-line address of the most recent request on the channel — the
/// paper's prediction context.
pub trait IdlenessPredictor: Send {
    /// Predicts the class of the idle period that is starting.
    fn predict(&mut self, last_addr: u64) -> Prediction;

    /// Learns from a finished idle period: `predicted` is what this
    /// predictor answered at the start, `was_long` the ground truth.
    fn update(&mut self, last_addr: u64, predicted: Prediction, was_long: bool);
}

/// The predictor-less mode of Section 5.1.1: every idle period is assumed
/// long, so filling starts on every idle cycle.
///
/// # Examples
///
/// ```
/// use strange_core::{AlwaysLongPredictor, IdlenessPredictor, Prediction};
///
/// let mut p = AlwaysLongPredictor;
/// assert_eq!(p.predict(0xABC), Prediction::Long);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysLongPredictor;

impl IdlenessPredictor for AlwaysLongPredictor {
    fn predict(&mut self, _last_addr: u64) -> Prediction {
        Prediction::Long
    }

    fn update(&mut self, _last_addr: u64, _predicted: Prediction, _was_long: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_long_is_constant() {
        let mut p = AlwaysLongPredictor;
        for addr in [0u64, 1, u64::MAX] {
            assert!(p.predict(addr).is_long());
            p.update(addr, Prediction::Long, false);
            assert!(p.predict(addr).is_long());
        }
    }

    #[test]
    fn prediction_is_long_helper() {
        assert!(Prediction::Long.is_long());
        assert!(!Prediction::Short.is_long());
    }
}
