//! The reinforcement-learning (Q-learning) DRAM idleness predictor.
//!
//! Section 5.1.2 frames idleness prediction as a Q-learning problem:
//!
//! * **State**: the least-significant 10 bits of the last accessed address
//!   XOR'ed with the history of the last 10 idle periods (1 = long).
//! * **Actions**: initiate random number generation (predict long) or wait
//!   (predict short).
//! * **Reward**: positive when the action matched the observed period
//!   class, negative otherwise, applied with
//!   `Q(s,a) = (1 - α)·Q(s,a) + α·r` and learning rate α = 0.05 (the next
//!   state term is omitted because the next state depends on future
//!   accesses — exactly as the paper describes).
//!
//! Storage: 1024 states × 2 actions × 4-byte Q-values = 8 KiB, matching the
//! paper's Section 8.9 cost accounting.

use crate::predictor::{IdlenessPredictor, Prediction};

const STATE_BITS: u32 = 10;
const STATES: usize = 1 << STATE_BITS;
const ACTIONS: usize = 2;
const ACTION_GENERATE: usize = 0;
const ACTION_WAIT: usize = 1;

/// The Q-learning idleness predictor.
///
/// # Examples
///
/// ```
/// use strange_core::{IdlenessPredictor, Prediction, QlearningPredictor};
///
/// let mut p = QlearningPredictor::new();
/// // Train: periods after this address are always long.
/// for _ in 0..8 {
///     let pred = p.predict(0x3F);
///     p.update(0x3F, pred, true);
/// }
/// assert_eq!(p.predict(0x3F), Prediction::Long);
/// ```
#[derive(Debug, Clone)]
pub struct QlearningPredictor {
    q: Vec<[f32; ACTIONS]>,
    history: u16, // last 10 idle periods, bit 0 = most recent, 1 = long
    alpha: f32,
}

impl QlearningPredictor {
    /// Creates an agent with the paper's parameters (α = 0.05).
    pub fn new() -> Self {
        QlearningPredictor::with_learning_rate(0.05)
    }

    /// Creates an agent with a custom learning rate in (0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not within (0, 1].
    pub fn with_learning_rate(alpha: f32) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "learning rate must be in (0, 1]"
        );
        QlearningPredictor {
            q: vec![[0.0; ACTIONS]; STATES],
            history: 0,
            alpha,
        }
    }

    /// Storage cost in bytes (8 KiB for the default configuration,
    /// Section 8.9).
    pub fn storage_bytes(&self) -> u64 {
        (self.q.len() * ACTIONS * std::mem::size_of::<f32>()) as u64
    }

    fn state(&self, last_addr: u64) -> usize {
        ((last_addr as usize) ^ (self.history as usize)) & (STATES - 1)
    }
}

impl Default for QlearningPredictor {
    fn default() -> Self {
        QlearningPredictor::new()
    }
}

impl IdlenessPredictor for QlearningPredictor {
    fn predict(&mut self, last_addr: u64) -> Prediction {
        let s = self.state(last_addr);
        let q = &self.q[s];
        // Optimistic tie-break toward generating bootstraps exploration:
        // a bad generate gets punished and the agent switches to waiting.
        if q[ACTION_GENERATE] >= q[ACTION_WAIT] {
            Prediction::Long
        } else {
            Prediction::Short
        }
    }

    fn update(&mut self, last_addr: u64, predicted: Prediction, was_long: bool) {
        let s = self.state(last_addr);
        let action = match predicted {
            Prediction::Long => ACTION_GENERATE,
            Prediction::Short => ACTION_WAIT,
        };
        let correct = (action == ACTION_GENERATE) == was_long;
        let reward: f32 = if correct { 1.0 } else { -1.0 };
        let q = &mut self.q[s][action];
        *q = (1.0 - self.alpha) * *q + self.alpha * reward;
        // Shift the idle-period history.
        self.history = ((self.history << 1) | u16::from(was_long)) & ((1 << STATE_BITS) - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_paper_8kib() {
        let p = QlearningPredictor::new();
        assert_eq!(p.storage_bytes(), 8192);
    }

    #[test]
    fn learns_to_wait_after_punishment() {
        let mut p = QlearningPredictor::new();
        let addr = 0x7;
        // All periods short: generating gets punished until Wait wins.
        // History stays all-zero (short), so the state is stable.
        for _ in 0..64 {
            let pred = p.predict(addr);
            p.update(addr, pred, false);
        }
        assert_eq!(p.predict(addr), Prediction::Short);
    }

    #[test]
    fn learns_to_generate_in_long_periods() {
        let mut p = QlearningPredictor::new();
        let addr = 0x3FF;
        for _ in 0..64 {
            let pred = p.predict(addr);
            p.update(addr, pred, true);
        }
        assert_eq!(p.predict(addr), Prediction::Long);
    }

    #[test]
    fn history_distinguishes_contexts() {
        let mut a = QlearningPredictor::new();
        let mut b = QlearningPredictor::new();
        // Same address, different histories → different states.
        a.update(0, Prediction::Long, true);
        b.update(0, Prediction::Long, false);
        assert_ne!(a.state(0x123), b.state(0x123));
    }

    #[test]
    fn q_values_bounded_by_reward_magnitude() {
        let mut p = QlearningPredictor::new();
        for i in 0..10_000u64 {
            let pred = p.predict(i);
            p.update(i, pred, i % 3 == 0);
        }
        for q in &p.q {
            assert!(q[0].abs() <= 1.0 + f32::EPSILON);
            assert!(q[1].abs() <= 1.0 + f32::EPSILON);
        }
    }

    #[test]
    fn adapts_to_phase_change() {
        let mut p = QlearningPredictor::new();
        let addr = 0x55;
        // Phase 1: long periods.
        for _ in 0..64 {
            let pred = p.predict(addr);
            p.update(addr, pred, true);
        }
        // Phase 2: short periods (history change also shifts state; drive
        // updates until the prediction flips).
        let mut flipped = false;
        for _ in 0..256 {
            let pred = p.predict(addr);
            p.update(addr, pred, false);
            if p.predict(addr) == Prediction::Short {
                flipped = true;
                break;
            }
        }
        assert!(flipped, "agent must adapt to the new phase");
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn invalid_alpha_rejected() {
        QlearningPredictor::with_learning_rate(0.0);
    }
}
