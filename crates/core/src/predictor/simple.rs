//! The simple (table-based) DRAM idleness predictor.
//!
//! Per channel, the paper keeps a 256-entry table of 2-bit saturating
//! counters, a last-accessed-address register, and an idle-length counter.
//! The table is indexed by the last accessed memory address; a counter
//! value of 2 or 3 predicts a *long* idle period (≥ PeriodThreshold). When
//! an idle period ends, the entry is incremented if the period was long and
//! decremented otherwise.
//!
//! The intuition: the address a program touched last identifies where it is
//! in its access pattern, and the idle gap that follows a given program
//! point is stable across visits.

use crate::predictor::{IdlenessPredictor, Prediction};

/// Counter value at and above which a period is predicted long.
const LONG_THRESHOLD: u8 = 2;
/// Saturating counter maximum (2-bit).
const COUNTER_MAX: u8 = 3;

/// The 256-entry, 2-bit saturating-counter idleness predictor.
///
/// # Examples
///
/// ```
/// use strange_core::{IdlenessPredictor, Prediction, SimplePredictor};
///
/// let mut p = SimplePredictor::new();
/// // Untrained entries are weakly long.
/// assert_eq!(p.predict(0x40), Prediction::Long);
/// // Two short periods at this address train the entry to predict Short.
/// p.update(0x40, Prediction::Long, false);
/// p.update(0x40, Prediction::Long, false);
/// assert_eq!(p.predict(0x40), Prediction::Short);
/// ```
#[derive(Debug, Clone)]
pub struct SimplePredictor {
    table: Vec<u8>,
}

impl SimplePredictor {
    /// Creates a predictor with the paper's 256-entry table.
    ///
    /// Counters start at 2 (weakly long): an address whose idle behaviour
    /// has never been observed permits generation — necessary for the
    /// low-utilization path to ever fire on streaming applications whose
    /// channels never go fully idle (their entries would otherwise never
    /// be trained) — and two short observations train it off.
    pub fn new() -> Self {
        SimplePredictor::with_entries(256)
    }

    /// Creates a predictor with a custom table size (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or not a power of two.
    pub fn with_entries(entries: usize) -> Self {
        assert!(
            entries > 0 && entries.is_power_of_two(),
            "table size must be a nonzero power of two"
        );
        SimplePredictor {
            table: vec![LONG_THRESHOLD; entries],
        }
    }

    /// Table size in entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Storage cost in bits (2 bits per entry — 0.0625 KiB for 256 entries,
    /// the Section 8.9 figure).
    pub fn storage_bits(&self) -> u64 {
        self.table.len() as u64 * 2
    }

    fn index(&self, last_addr: u64) -> usize {
        // Channel-interleaved line addresses share their low bits within a
        // channel, so index at a coarser granularity with a small mix.
        let a = last_addr >> 2;
        (a ^ (a >> 8)) as usize & (self.table.len() - 1)
    }
}

impl Default for SimplePredictor {
    fn default() -> Self {
        SimplePredictor::new()
    }
}

impl IdlenessPredictor for SimplePredictor {
    fn predict(&mut self, last_addr: u64) -> Prediction {
        let idx = self.index(last_addr);
        if self.table[idx] >= LONG_THRESHOLD {
            Prediction::Long
        } else {
            Prediction::Short
        }
    }

    fn update(&mut self, last_addr: u64, _predicted: Prediction, was_long: bool) {
        let idx = self.index(last_addr);
        let c = &mut self.table[idx];
        if was_long {
            *c = (*c + 1).min(COUNTER_MAX);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_table_is_256_entries_64_bytes() {
        let p = SimplePredictor::new();
        assert_eq!(p.entries(), 256);
        assert_eq!(p.storage_bits(), 512); // 0.0625 KiB
    }

    #[test]
    fn counters_saturate_high_and_low() {
        let mut p = SimplePredictor::new();
        let addr = 0x1234;
        for _ in 0..10 {
            p.update(addr, Prediction::Short, true);
        }
        assert_eq!(p.predict(addr), Prediction::Long);
        for _ in 0..10 {
            p.update(addr, Prediction::Long, false);
        }
        assert_eq!(p.predict(addr), Prediction::Short);
    }

    #[test]
    fn hysteresis_requires_two_flips() {
        let mut p = SimplePredictor::new();
        let addr = 0x88;
        // Train strongly long (counter 3).
        for _ in 0..3 {
            p.update(addr, Prediction::Short, true);
        }
        // One short period: still predicts long (counter 2).
        p.update(addr, Prediction::Long, false);
        assert_eq!(p.predict(addr), Prediction::Long);
        // Second short period flips it.
        p.update(addr, Prediction::Long, false);
        assert_eq!(p.predict(addr), Prediction::Short);
    }

    #[test]
    fn distinct_addresses_use_distinct_entries() {
        let mut p = SimplePredictor::new();
        let a = 0x0;
        let b = 0x40; // different index after the >>2 shift
        for _ in 0..3 {
            p.update(a, Prediction::Long, false);
        }
        assert_eq!(p.predict(a), Prediction::Short);
        assert_eq!(p.predict(b), Prediction::Long, "b's entry untrained");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        SimplePredictor::with_entries(100);
    }

    proptest! {
        /// A phase-stable workload (every period at an address has the same
        /// class) is learned perfectly after two visits.
        #[test]
        fn learns_stable_behaviour(addr in any::<u64>(), long in any::<bool>()) {
            let mut p = SimplePredictor::new();
            for _ in 0..2 {
                let pred = p.predict(addr);
                p.update(addr, pred, long);
            }
            let expected = if long { Prediction::Long } else { Prediction::Short };
            prop_assert_eq!(p.predict(addr), expected);
        }

        /// Counter stays within the 2-bit range whatever the history.
        #[test]
        fn counters_bounded(updates in proptest::collection::vec((any::<u64>(), any::<bool>()), 0..256)) {
            let mut p = SimplePredictor::new();
            for (addr, long) in updates {
                p.update(addr, Prediction::Short, long);
            }
            prop_assert!(p.table.iter().all(|&c| c <= COUNTER_MAX));
        }
    }
}
