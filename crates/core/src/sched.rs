//! Pluggable fairness and arbitration policies for tenant scheduling.
//!
//! The paper's Section 5.2 scheduler already embodies one fairness
//! mechanism: the `stall_limit` starvation counter that bounds how long
//! the RNG queue can lose arbitration against regular reads. This module
//! generalizes that idea from RNG-vs-regular to *tenant-vs-tenant*: the
//! three priority-ordered decision points of the service stack — the
//! engine's buffer serve ([`crate::MemSubsystem`]), the service layer's
//! per-cycle issue ordering ([`crate::RngService`]), and the
//! `rng_arbitrate` burst-coalescing window — all consult one configured
//! [`FairnessPolicy`] (plus a [`CoalesceWindow`]) instead of hardcoding
//! strict OS priority.
//!
//! Three policies:
//!
//! * [`FairnessPolicy::Strict`] — today's behavior, bit-identical to the
//!   pre-policy priority path (highest priority first, ties to the
//!   oldest request). Under a saturating higher-priority backlog a Low
//!   tenant starves outright.
//! * [`FairnessPolicy::Aging`] — per-tenant starvation counters in the
//!   spirit of Section 5.2's `stall_limit`: a tenant's effective
//!   priority rises by one level per `quantum` cycles its oldest pending
//!   request has waited. Because the counter would be incremented exactly
//!   once per cycle the request is pending, it always equals
//!   `now - arrival`, so it is computed in closed form — which is also
//!   what makes the policy safe under the fast-forward skip contract (no
//!   per-cycle state to replay across a dead span).
//! * [`FairnessPolicy::WeightedFair`] — deficit round robin over the
//!   tenants with weights derived from their [`crate::QosClass`]
//!   priority (`weight = priority + 1`, so Low:Normal:High share
//!   1:2:3). Every tenant with pending work is guaranteed a weighted
//!   share of served words, so no tenant starves regardless of the
//!   offered load above it.
//!
//! All three policies are deterministic functions of simulated state
//! only, and their state (the DRR deficits) mutates exclusively at live
//! decision cycles — cycles the fast-forward engine never skips — so
//! `Reference` ≡ `FastForward` bit-identity holds for each
//! (`tests/determinism.rs`).

use std::cmp::Reverse;

/// How competing tenants are ordered at the service stack's decision
/// points (buffer serve, per-cycle word issue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessPolicy {
    /// Strict OS priority (the pre-policy behavior, and the default):
    /// highest priority first, ties broken oldest-first. Starves low
    /// tenants under saturating higher-priority load.
    #[default]
    Strict,
    /// Priority aging: effective priority = base + `waited / quantum`,
    /// where `waited` is how long the tenant's oldest pending request
    /// has been waiting. Generalizes the Section 5.2 `stall_limit`
    /// starvation counter to tenant-vs-tenant arbitration; a Low tenant
    /// overtakes a High one after `(high - low) × quantum` cycles of
    /// waiting, which bounds its tail latency.
    Aging {
        /// CPU cycles of waiting per effective-priority level gained
        /// (must be nonzero; engine-side decisions, which run on the
        /// DRAM clock, scale it by the 5:1 clock ratio).
        quantum: u64,
    },
    /// Priority aging with a *derived* quantum: instead of a static
    /// value, the quantum tracks 2× the engine's running estimate of one
    /// on-demand generation episode's cost (mode switches + rounds), so
    /// bounded-wait scales with the mechanism — a Low tenant overtakes a
    /// High one after roughly two episodes' worth of waiting whether the
    /// substrate is D-RaNGe (slow rounds) or QUAC-TRNG (fast rounds).
    /// The estimate updates only at episode starts — live decision
    /// cycles — so the policy stays fast-forward safe.
    AdaptiveAging,
    /// Deficit round robin over tenants, weighted by QoS class
    /// (`weight = priority + 1`): each round, a tenant may serve up to
    /// `quantum × weight` 64-bit words before the turn passes on.
    WeightedFair {
        /// DRR refill per round in 64-bit words per unit weight (must be
        /// nonzero).
        quantum: u32,
    },
}

impl FairnessPolicy {
    /// Aging with the default quantum (25 000 CPU cycles ≈ 6.25 µs at
    /// 4 GHz): a Low tenant matches a High one after two quanta of
    /// waiting, bounding its tail latency near 50 k cycles under
    /// saturating higher-priority load.
    pub fn aging() -> Self {
        FairnessPolicy::Aging { quantum: 25_000 }
    }

    /// Weighted fair queueing with the default quantum (4 words per unit
    /// weight per round — one 256-bit request's worth for a Low tenant).
    pub fn weighted_fair() -> Self {
        FairnessPolicy::WeightedFair { quantum: 4 }
    }

    /// Aging with the quantum derived from the observed generation-episode
    /// cost (see [`FairnessPolicy::AdaptiveAging`]).
    pub fn adaptive_aging() -> Self {
        FairnessPolicy::AdaptiveAging
    }

    /// The DRR weight of a tenant with OS priority `priority`
    /// (`priority + 1`, so priority 0 still gets a share).
    pub fn weight_of(priority: u8) -> u64 {
        priority as u64 + 1
    }
}

/// When the Section 5.2 arbitration commits a queued RNG burst to one
/// generation episode (the mode-switch amortization window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoalesceWindow {
    /// Wait for one cycle of RNG-queue stability (the paper-faithful
    /// behavior, and the default): a burst arriving back-to-back shares
    /// one mode switch, and the queue goes as soon as it stops growing.
    #[default]
    Stability,
    /// Wait until the queue holds at least `k` requests or the oldest
    /// queued request has waited `timeout` cycles, whichever comes
    /// first: trades first-word latency against mode-switch
    /// amortization under many open-loop clients.
    KOrTimeout {
        /// Queue depth that releases the burst immediately (must be
        /// nonzero; `k = 1` disables coalescing).
        k: usize,
        /// Maximum DRAM-bus cycles the oldest request may wait for the
        /// burst to build (0 releases immediately).
        timeout: u64,
    },
}

/// Effective priority of a tenant under [`FairnessPolicy::Aging`]:
/// `base + waited / quantum`, saturating. `waited` and `quantum` must be
/// in the same clock domain (the engine scales CPU-cycle quanta onto the
/// DRAM clock).
pub fn effective_priority(base: u8, waited: u64, quantum: u64) -> u64 {
    base as u64 + waited / quantum.max(1)
}

/// Index of the entry the Strict policy serves first — the pre-refactor
/// priority path, verbatim: highest OS priority wins, ties go to the
/// oldest `(arrival, id)`. Entries are `(priority, arrival, id)` per
/// pending request, consumed as an iterator so the engine's per-word
/// serve loop allocates nothing; `None` on an empty stream.
///
/// For a uniformly prioritized, arrival-ordered queue this is always
/// index 0, which is why the engine's FIFO fast path (`pop_front` when
/// no priority differs) is outcome-identical — the Strict-oracle
/// property test in `tests/fairness.rs` pins both equivalences.
pub fn strict_pick(entries: impl IntoIterator<Item = (u8, u64, u64)>) -> Option<usize> {
    entries
        .into_iter()
        .enumerate()
        .max_by_key(|&(_, (priority, arrival, id))| (priority, Reverse((arrival, id))))
        .map(|(i, _)| i)
}

/// Deficit-round-robin scheduler state: one deficit counter per tenant
/// id plus the round cursor. Shared by the engine's buffer serve (tenant
/// = virtual core) and the service layer's issue path (tenant = client
/// index).
///
/// The state mutates only when [`DrrState::pick`] is called — i.e. at
/// live decision cycles — so it is inert across fast-forwarded dead
/// spans by construction.
#[derive(Debug, Clone, Default)]
pub struct DrrState {
    /// Per-tenant word credit, indexed by tenant id.
    deficit: Vec<u64>,
    /// Tenant id at or after which the scan for the next turn starts.
    cursor: usize,
}

impl DrrState {
    /// Fresh scheduler state (all deficits zero, cursor at tenant 0).
    pub fn new() -> Self {
        DrrState::default()
    }

    fn ensure(&mut self, tenant: usize) {
        if self.deficit.len() <= tenant {
            self.deficit.resize(tenant + 1, 0);
        }
    }

    /// Chooses which tenant serves the next unit of work and charges its
    /// deficit by `cost`.
    ///
    /// `active` lists the tenant ids with pending work, ascending and
    /// deduplicated; `quanta[i]` is the per-round refill of `active[i]`
    /// (weight × configured quantum, floored at 1). Classic DRR
    /// accounting: a tenant reaching the head of the round refills once,
    /// spends its deficit in consecutive turns while it lasts, then
    /// passes the turn; tenants that went inactive forfeit their unspent
    /// credit.
    ///
    /// # Panics
    ///
    /// Panics when `active` is empty or `quanta` has a different length.
    pub fn pick(&mut self, active: &[usize], quanta: &[u64], cost: u64) -> usize {
        assert!(!active.is_empty(), "DRR pick with no active tenant");
        assert_eq!(active.len(), quanta.len(), "one quantum per active tenant");
        self.ensure(*active.last().expect("non-empty"));
        // A flow whose queue emptied leaves the round and forfeits its
        // credit (classic DRR); done lazily against the current active
        // set so no per-cycle bookkeeping is needed.
        let mut it = active.iter().peekable();
        for (t, d) in self.deficit.iter_mut().enumerate() {
            while it.peek().is_some_and(|&&a| a < t) {
                it.next();
            }
            if it.peek() != Some(&&t) {
                *d = 0;
            }
        }
        // First active tenant at or after the cursor, wrapping.
        let mut idx = active
            .iter()
            .position(|&t| t >= self.cursor)
            .unwrap_or(0);
        loop {
            let t = active[idx];
            if self.deficit[t] < cost {
                // Head-of-round refill. A single refill covers the unit
                // costs both call sites use; a cost above one refill
                // banks the credit and passes the turn.
                self.deficit[t] += quanta[idx].max(1);
                if self.deficit[t] < cost {
                    idx = (idx + 1) % active.len();
                    self.cursor = active[idx];
                    continue;
                }
            }
            self.deficit[t] -= cost;
            // Spent credit keeps the turn; an exhausted deficit passes
            // it to the next active tenant.
            self.cursor = if self.deficit[t] > 0 { t } else { t + 1 };
            return t;
        }
    }

    /// Returns `cost` of credit to `tenant` and hands it back the turn —
    /// the undo for a [`DrrState::pick`] whose unit of work was then
    /// rejected downstream (RNG-queue back-pressure). Without the
    /// refund, blocked cycles would burn tenants' round credit on
    /// phantom picks and skew the served shares away from the
    /// configured weights.
    pub fn refund(&mut self, tenant: usize, cost: u64) {
        self.ensure(tenant);
        self.deficit[tenant] += cost;
        self.cursor = tenant;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_pick_prefers_priority_then_age() {
        // (priority, arrival, id)
        let entries = [(1, 10, 1), (2, 50, 2), (2, 40, 3), (0, 0, 4)];
        assert_eq!(strict_pick(entries), Some(2), "oldest of the highest level");
        assert_eq!(strict_pick([]), None);
    }

    #[test]
    fn strict_pick_on_uniform_arrival_ordered_queue_is_fifo() {
        let entries = [(1, 5, 1), (1, 5, 2), (1, 9, 3)];
        assert_eq!(strict_pick(entries), Some(0));
    }

    #[test]
    fn effective_priority_ages_one_level_per_quantum() {
        assert_eq!(effective_priority(0, 0, 100), 0);
        assert_eq!(effective_priority(0, 99, 100), 0);
        assert_eq!(effective_priority(0, 100, 100), 1);
        assert_eq!(effective_priority(0, 250, 100), 2);
        assert_eq!(effective_priority(2, 0, 100), 2);
        // A zero quantum is rejected by config validation; the helper
        // still never divides by zero.
        assert_eq!(effective_priority(1, 7, 0), 8);
    }

    #[test]
    fn drr_shares_words_by_weight() {
        // Tenants 0 (weight 1) and 1 (weight 3), always active: over any
        // long window the served ratio approaches 1:3.
        let mut drr = DrrState::new();
        let active = [0usize, 1];
        let quanta = [1u64, 3];
        let mut served = [0u64; 2];
        for _ in 0..400 {
            served[drr.pick(&active, &quanta, 1)] += 1;
        }
        assert_eq!(served[0] * 3, served[1], "1:3 weighted share");
    }

    #[test]
    fn drr_single_tenant_always_wins() {
        let mut drr = DrrState::new();
        for _ in 0..10 {
            assert_eq!(drr.pick(&[7], &[2], 1), 7);
        }
    }

    #[test]
    fn drr_inactive_tenant_forfeits_credit() {
        let mut drr = DrrState::new();
        // Tenant 0 banks three words of credit (quantum 4, one spent)…
        assert_eq!(drr.pick(&[0, 1], &[4, 4], 1), 0);
        // …then leaves the active set while tenant 1 spends its round
        // down to zero credit.
        for _ in 0..4 {
            assert_eq!(drr.pick(&[1], &[1], 1), 1);
        }
        // On return, tenant 0's banked credit is gone: with equal unit
        // quanta the tenants alternate exactly.
        let mut served = [0u64; 2];
        for _ in 0..64 {
            served[drr.pick(&[0, 1], &[1, 1], 1)] += 1;
        }
        assert_eq!(served[0], served[1], "equal weights serve equally");
    }

    #[test]
    fn drr_refund_undoes_a_rejected_pick() {
        // A pick whose work unit is rejected downstream, then refunded,
        // leaves the schedule exactly as if the pick never happened.
        let mut charged = DrrState::new();
        let active = [0usize, 1];
        let quanta = [1u64, 1];
        let t = charged.pick(&active, &quanta, 1);
        charged.refund(t, 1);
        let mut fresh = DrrState::new();
        let replay: Vec<usize> = (0..16).map(|_| charged.pick(&active, &quanta, 1)).collect();
        let expected: Vec<usize> = (0..16).map(|_| fresh.pick(&active, &quanta, 1)).collect();
        assert_eq!(replay, expected);
    }

    #[test]
    fn drr_is_deterministic() {
        let run = || {
            let mut drr = DrrState::new();
            (0..100)
                .map(|i| {
                    let active: &[usize] = if i % 3 == 0 { &[0, 2, 5] } else { &[0, 5] };
                    let quanta: &[u64] = if i % 3 == 0 { &[1, 2, 3] } else { &[1, 3] };
                    drr.pick(active, quanta, 1)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn policy_defaults_and_weights() {
        assert_eq!(FairnessPolicy::default(), FairnessPolicy::Strict);
        assert_eq!(CoalesceWindow::default(), CoalesceWindow::Stability);
        assert_eq!(FairnessPolicy::weight_of(0), 1);
        assert_eq!(FairnessPolicy::weight_of(2), 3);
        assert!(matches!(
            FairnessPolicy::aging(),
            FairnessPolicy::Aging { quantum } if quantum > 0
        ));
        assert!(matches!(
            FairnessPolicy::weighted_fair(),
            FairnessPolicy::WeightedFair { quantum } if quantum > 0
        ));
    }
}
