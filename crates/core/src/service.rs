//! The cycle-accurate `getrandom()` service layer (Sections 5.3 and 6).
//!
//! The paper's end-to-end claim is that applications reach the DRAM TRNG
//! through the kernel's `getrandom()` path and that the random number
//! buffer hides the TRNG's latency from them. This module makes that path
//! first-class in the simulation: N simulated *clients* issue
//! `getrandom(bytes)` requests according to configurable arrival processes
//! ([`ArrivalProcess`]), each request is decomposed into 64-bit words and
//! threaded through the memory subsystem's real RNG machinery — the buffer
//! fast path (`buffer_serve_latency`), the RNG queue, arbitration, and
//! on-demand generation episodes — and every request's completion cycle is
//! recorded.
//!
//! Clients are simulation entities parallel to the trace cores: they are
//! addressed as *virtual cores* (`CoreId >= SystemConfig::cores`), their
//! word requests flow through [`crate::MemSubsystem`] exactly like core
//! `TraceOp::Rng` requests, and their arrival cycles participate in the
//! fast-forward next-event contract so [`crate::SimMode::FastForward`]
//! stays bit-identical to [`crate::SimMode::Reference`] under active
//! request traffic.
//!
//! Security property (Section 6): every 64-bit word is drawn once and
//! served to exactly one request; with value capture enabled the service
//! retains per-request word values so tests can assert no byte is ever
//! shared between clients.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use strange_cpu::MemorySystem;
use strange_dram::RequestId;
use strange_metrics::{percentile_sorted, Histogram};

use crate::engine::MemSubsystem;
use crate::sched::{effective_priority, DrrState, FairnessPolicy};

/// Per-tenant quality-of-service class, mapped onto the OS priority
/// levels the Section 5.2 arbitration rules consume (higher = more
/// important; trace cores default to priority 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QosClass {
    /// Background tenant (priority 0): loses Section 5.2 arbitration
    /// against every default-priority competitor.
    Low,
    /// The default tenant class (priority 1 — equal to unconfigured
    /// trace cores, so behavior matches the pre-QoS service layer).
    #[default]
    Normal,
    /// Latency-sensitive tenant (priority 2): wins arbitration against
    /// default-priority competitors and is served first from the buffer
    /// and the per-cycle issue path.
    High,
    /// An explicit raw OS priority level (escape hatch for studies that
    /// need more than three tiers).
    Custom(u8),
}

impl QosClass {
    /// The OS priority level this class maps to.
    pub fn priority(self) -> u8 {
        match self {
            QosClass::Low => 0,
            QosClass::Normal => 1,
            QosClass::High => 2,
            QosClass::Custom(p) => p,
        }
    }
}

/// How a `getrandom` call was satisfied (observable timing class — the
/// Section 6 side-channel discussion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeKind {
    /// All requested bytes came from the random number buffer (fast path).
    Buffer,
    /// At least one generation episode was needed (slow path).
    Generated,
}

/// When a client's `getrandom(bytes)` requests arrive.
///
/// All gaps and think times are in **CPU cycles** (4 GHz).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Closed loop: one request in flight; the next arrives `think` cycles
    /// after the previous completes. The first request arrives at cycle 0.
    ClosedLoop {
        /// Think time between a completion and the next request.
        think: u64,
    },
    /// Open loop: requests arrive with exponentially distributed
    /// inter-arrival gaps of the given mean, regardless of completions
    /// (Poisson process). The first request arrives after one drawn gap.
    Poisson {
        /// Mean inter-arrival gap in CPU cycles.
        mean_gap: u64,
        /// Seed for the (deterministic) inter-arrival stream.
        seed: u64,
    },
    /// Open loop, bursty: `burst` requests arrive back-to-back every `gap`
    /// cycles (the paper: "RNG requests are received in bursts and served
    /// together"). The first burst arrives at cycle 0.
    Bursty {
        /// Requests per burst.
        burst: u32,
        /// Cycles between burst starts.
        gap: u64,
    },
    /// Replay of a recorded arrival trace: one request per entry, at the
    /// given **absolute** CPU cycles (non-decreasing). This is how
    /// production `getrandom` arrival logs — or the recorded arrivals of
    /// a previous run (`ServiceConfig::record_arrivals`) — are fed back
    /// into the simulator; `strange-workloads` provides the text-format
    /// parser and writer.
    TraceReplay {
        /// Absolute arrival cycles, non-decreasing (duplicates allowed:
        /// several requests may arrive on one cycle).
        schedule: Arc<Vec<u64>>,
    },
    /// Externally driven: requests are submitted explicitly through
    /// [`crate::System::service_submit`] (the interactive `RngDevice`
    /// front-end). Never blocks run-loop termination.
    Manual,
}

/// One simulated `getrandom()` client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientSpec {
    /// Arrival process for this client's requests.
    pub arrival: ArrivalProcess,
    /// Bytes requested per `getrandom` call (must be nonzero; rounded up
    /// to whole 64-bit words on the wire, as the hardware serves words).
    pub bytes: usize,
    /// Total requests this client issues over the run (ignored for
    /// [`ArrivalProcess::Manual`]; zero means the client is inert).
    pub requests: u64,
    /// QoS class: the OS priority level this tenant's requests carry into
    /// the Section 5.2 arbitration (defaults to [`QosClass::Normal`]).
    pub qos: QosClass,
}

impl ClientSpec {
    /// A closed-loop client: `requests` calls of `bytes` each, with
    /// `think` CPU cycles between completion and the next call.
    pub fn closed_loop(bytes: usize, think: u64, requests: u64) -> Self {
        ClientSpec {
            arrival: ArrivalProcess::ClosedLoop { think },
            bytes,
            requests,
            qos: QosClass::Normal,
        }
    }

    /// An open-loop Poisson client.
    pub fn poisson(bytes: usize, mean_gap: u64, requests: u64, seed: u64) -> Self {
        ClientSpec {
            arrival: ArrivalProcess::Poisson { mean_gap, seed },
            bytes,
            requests,
            qos: QosClass::Normal,
        }
    }

    /// An open-loop bursty client.
    pub fn bursty(bytes: usize, burst: u32, gap: u64, requests: u64) -> Self {
        ClientSpec {
            arrival: ArrivalProcess::Bursty { burst, gap },
            bytes,
            requests,
            qos: QosClass::Normal,
        }
    }

    /// A trace-replay client: one request of `bytes` per entry of
    /// `schedule`, at those absolute CPU cycles (must be non-decreasing).
    pub fn trace_replay(bytes: usize, schedule: Vec<u64>) -> Self {
        ClientSpec {
            requests: schedule.len() as u64,
            arrival: ArrivalProcess::TraceReplay {
                schedule: Arc::new(schedule),
            },
            bytes,
            qos: QosClass::Normal,
        }
    }

    /// An externally driven client (see [`ArrivalProcess::Manual`]).
    pub fn manual(bytes: usize) -> Self {
        ClientSpec {
            arrival: ArrivalProcess::Manual,
            bytes,
            requests: 0,
            qos: QosClass::Normal,
        }
    }

    /// Sets the tenant's QoS class (the per-session priority override).
    pub fn with_qos(mut self, qos: QosClass) -> Self {
        self.qos = qos;
        self
    }

    /// Validates the spec: nonzero bytes, nonzero burst, a non-decreasing
    /// replay schedule that covers `requests`. Enforced both for
    /// configured clients ([`crate::SystemConfig::validate`]) and for
    /// dynamically opened sessions ([`crate::System::open_session`]).
    ///
    /// # Errors
    ///
    /// Returns [`strange_dram::ConfigError::InvalidParameter`] naming the
    /// offending field.
    pub fn validate(&self) -> Result<(), strange_dram::ConfigError> {
        use strange_dram::ConfigError::InvalidParameter;
        if self.bytes == 0 {
            return Err(InvalidParameter {
                field: "service.clients.bytes",
                constraint: "be nonzero",
            });
        }
        if let ArrivalProcess::Bursty { burst: 0, .. } = self.arrival {
            return Err(InvalidParameter {
                field: "service.clients.burst",
                constraint: "be nonzero",
            });
        }
        if let ArrivalProcess::TraceReplay { schedule } = &self.arrival {
            if schedule.windows(2).any(|w| w[0] > w[1]) {
                return Err(InvalidParameter {
                    field: "service.clients.schedule",
                    constraint: "be non-decreasing",
                });
            }
            if self.requests > schedule.len() as u64 {
                return Err(InvalidParameter {
                    field: "service.clients.requests",
                    constraint: "not exceed the replay schedule length",
                });
            }
        }
        Ok(())
    }

    fn words(&self) -> u32 {
        (self.bytes.div_ceil(8)).max(1) as u32
    }
}

/// Service-layer configuration carried by [`crate::SystemConfig`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServiceConfig {
    /// The simulated clients (empty disables the service layer — unless
    /// `sessions` enables dynamic registration).
    pub clients: Vec<ClientSpec>,
    /// Record the served 64-bit words per request (tests of the Section 6
    /// no-duplication property; manual requests always capture, since the
    /// caller consumes the bytes).
    pub capture_values: bool,
    /// Record each client's arrival cycles
    /// ([`RngService::arrival_log`]), so a run can be replayed later
    /// through [`ArrivalProcess::TraceReplay`].
    pub record_arrivals: bool,
    /// Allow dynamic session registration ([`crate::System::open_session`]):
    /// the service layer is active even with zero initial clients, and a
    /// coreless system with no initial clients validates.
    pub sessions: bool,
}

/// Aggregate statistics of the service layer over one run.
///
/// Latencies are end-to-end per request in **CPU cycles**: from the
/// arrival cycle (including client-side queueing when the service falls
/// behind an open-loop process) to the delivery of the request's last
/// word.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceStats {
    /// Requests generated by the arrival processes (offered load).
    pub requests_offered: u64,
    /// Requests fully served.
    pub requests_completed: u64,
    /// 64-bit word requests issued into the memory subsystem.
    pub words_issued: u64,
    /// Bytes delivered to clients (requested bytes of completed calls).
    pub bytes_served: u64,
    /// Words served from the random number buffer (fast path).
    pub words_from_buffer: u64,
    /// Words served by on-demand generation (slow path).
    pub words_generated: u64,
    /// Completed requests whose every word came from the buffer.
    pub buffer_hit_requests: u64,
    /// Cycles on which at least one client had words it could not issue
    /// (RNG queue back-pressure).
    pub issue_blocked_cycles: u64,
    /// Log₂-bucketed latency histogram (constant memory).
    pub latency: Histogram,
    /// Exact per-request latencies in completion order.
    pub latency_log: Vec<u64>,
    /// Exact per-request latencies split by client (index = client /
    /// session id), each in that client's completion order — the
    /// per-tenant view the QoS studies compare.
    pub latency_by_client: Vec<Vec<u64>>,
    /// Bytes delivered per client (requested bytes of its completed
    /// calls) — with [`ServiceStats::last_completion_by_client`], the
    /// per-tenant served-throughput view the fairness sweeps feed into
    /// Jain's index.
    pub bytes_by_client: Vec<u64>,
    /// CPU cycle of each client's most recent completion (0 before any).
    pub last_completion_by_client: Vec<u64>,
}

impl ServiceStats {
    /// Exact latency percentile (`q` in `0.0..=1.0`); `None` before any
    /// completion. Sorts a copy of the latency log — for several
    /// quantiles at once, use [`ServiceStats::latency_percentiles`],
    /// which sorts only once.
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        self.latency_percentiles(&[q])[0]
    }

    /// Exact latency percentiles for each `q` in `qs`, sharing one sort
    /// of the latency log; entries are `None` before any completion.
    pub fn latency_percentiles(&self, qs: &[f64]) -> Vec<Option<u64>> {
        let mut sorted = self.latency_log.clone();
        sorted.sort_unstable();
        qs.iter().map(|&q| percentile_sorted(&sorted, q)).collect()
    }

    /// Mean request latency in CPU cycles.
    pub fn mean_latency(&self) -> Option<f64> {
        self.latency.mean()
    }

    /// Exact latency percentile of one client's requests (`None` before
    /// any completion or for an unknown client).
    pub fn client_latency_percentile(&self, client: usize, q: f64) -> Option<u64> {
        let mut sorted = self.latency_by_client.get(client)?.clone();
        sorted.sort_unstable();
        percentile_sorted(&sorted, q)
    }

    /// Served throughput of one client in Mb/s over its active span
    /// (arrival of its first request is approximated as cycle 0; `None`
    /// before any completion). The per-tenant rates a fairness index
    /// compares.
    pub fn client_served_mbps(&self, client: usize) -> Option<f64> {
        let bytes = *self.bytes_by_client.get(client)?;
        let last = *self.last_completion_by_client.get(client)?;
        if bytes == 0 || last == 0 {
            return None;
        }
        Some(bytes as f64 * 8.0 / (last as f64 / 4e9) / 1e6)
    }

    /// Fraction of completed requests served entirely from the buffer.
    pub fn buffer_hit_rate(&self) -> f64 {
        if self.requests_completed == 0 {
            0.0
        } else {
            self.buffer_hit_requests as f64 / self.requests_completed as f64
        }
    }
}

/// A fully served request, as handed back to an interactive caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServedRequest {
    /// The served 64-bit words, in issue order (enough to cover the
    /// requested bytes).
    pub words: Vec<u64>,
    /// Fast/slow path classification.
    pub kind: ServeKind,
    /// End-to-end latency in CPU cycles.
    pub latency_cycles: u64,
}

/// One in-flight `getrandom` request.
#[derive(Debug, Clone)]
struct ActiveRequest {
    arrival: u64,
    bytes: usize,
    words_to_issue: u32,
    outstanding: u32,
    buffer_words: u32,
    generated_words: u32,
    capture: bool,
    words: Vec<u64>,
}

/// Per-client runtime state.
#[derive(Debug, Clone)]
struct ClientState {
    spec: ClientSpec,
    rng: SmallRng,
    /// OS priority level of this tenant ([`QosClass::priority`]).
    priority: u8,
    /// Absolute CPU cycle of the next arrival (`None`: no arrival
    /// scheduled — closed loop waiting on a completion, open loop
    /// exhausted, or manual).
    next_arrival: Option<u64>,
    arrivals: u64,
    next_seq: u64,
    /// Seqs with words still to issue, FIFO.
    issue_queue: VecDeque<u64>,
    in_flight: HashMap<u64, ActiveRequest>,
    /// Completed manual requests awaiting pickup.
    done_manual: HashMap<u64, ServedRequest>,
    /// Arrival cycles of every request, in arrival order (only populated
    /// when `ServiceConfig::record_arrivals` is set).
    arrival_log: Vec<u64>,
    /// A closed session: no further arrivals or submissions accepted.
    closed: bool,
}

impl ClientState {
    fn new(spec: ClientSpec) -> Self {
        ClientState::new_at(spec, 0)
    }

    /// Builds the state for a client opened at CPU cycle `open`: relative
    /// arrival processes (closed loop, Poisson, bursty) schedule from the
    /// open cycle; trace replay keeps its absolute schedule; manual
    /// clients schedule nothing.
    fn new_at(spec: ClientSpec, open: u64) -> Self {
        let (seed, next_arrival) = match &spec.arrival {
            ArrivalProcess::ClosedLoop { .. } | ArrivalProcess::Bursty { .. } => {
                (0, (spec.requests > 0).then_some(open))
            }
            ArrivalProcess::Poisson { seed, .. } => (*seed, None), // drawn below
            ArrivalProcess::TraceReplay { schedule } => {
                (0, (spec.requests > 0).then(|| schedule.first().copied().unwrap_or(0)))
            }
            ArrivalProcess::Manual => (0, None),
        };
        let priority = spec.qos.priority();
        let mut state = ClientState {
            spec,
            rng: SmallRng::seed_from_u64(seed),
            priority,
            next_arrival,
            arrivals: 0,
            next_seq: 0,
            issue_queue: VecDeque::new(),
            in_flight: HashMap::new(),
            done_manual: HashMap::new(),
            arrival_log: Vec::new(),
            closed: false,
        };
        if let ArrivalProcess::Poisson { mean_gap, .. } = state.spec.arrival {
            if state.spec.requests > 0 {
                let first = open + state.draw_gap(mean_gap);
                state.next_arrival = Some(first);
            }
        }
        state
    }

    /// One exponential inter-arrival gap (at least 1 cycle).
    fn draw_gap(&mut self, mean: u64) -> u64 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let gap = -(1.0 - u).ln() * mean.max(1) as f64;
        (gap.round() as u64).max(1)
    }

    /// Whether this client can block run-loop termination.
    fn targets_met(&self) -> bool {
        let arrivals_done = self.closed
            || match self.spec.arrival {
                ArrivalProcess::Manual => true,
                _ => self.arrivals >= self.spec.requests,
            };
        arrivals_done && self.issue_queue.is_empty() && self.in_flight.is_empty()
    }

    fn has_unissued_words(&self) -> bool {
        !self.issue_queue.is_empty()
    }
}

/// The runtime service: owns the clients, maps in-flight word requests
/// back to them, and accumulates [`ServiceStats`].
#[derive(Debug, Clone)]
pub struct RngService {
    base_core: usize,
    capture: bool,
    record_arrivals: bool,
    /// Whether manual completions are queued for in-order draining
    /// ([`RngService::pop_completed`]). On for session-driven systems
    /// (server front-ends); off for the take-by-seq `RngDevice` path,
    /// which would otherwise accumulate never-drained queue entries.
    track_completed_order: bool,
    clients: Vec<ClientState>,
    /// How competing clients are ordered on the per-cycle issue path
    /// (who takes RNG-queue slots and buffer words first).
    fairness: FairnessPolicy,
    /// Deficit-round-robin state for [`FairnessPolicy::WeightedFair`]
    /// (tenant = client index).
    drr: DrrState,
    /// Scheduled-arrival min-heap `(cycle, client)`, lazily pruned: an
    /// entry is live only while it matches its client's `next_arrival`
    /// (stale duplicates from rescheduling are discarded on peek/pop).
    /// Interior mutability lets the read-only next-event probe prune.
    /// This is what keeps per-tick arrival processing and next-event
    /// probes sublinear in the client population (10⁴–10⁵ sessions in
    /// the fleet scenarios).
    arrivals: RefCell<BinaryHeap<Reverse<(u64, usize)>>>,
    /// Clients holding unissued words, in [`FairnessPolicy::Strict`]
    /// issue order: descending priority, ascending index within a level
    /// (so equal-priority populations keep the original index order).
    active: BTreeSet<(Reverse<u8>, usize)>,
    /// The same membership in client-index order (the deficit-round-
    /// robin candidate order).
    active_by_index: BTreeSet<usize>,
    /// Clients whose termination targets are not yet met (O(1)
    /// [`RngService::targets_met`]).
    unmet: usize,
    /// Scratch for the aging-policy per-tick re-sort (reused so a busy
    /// tick allocates nothing).
    aging_scratch: Vec<(Reverse<u64>, u64, usize)>,
    /// Word-request id → (client index, request seq).
    word_map: HashMap<RequestId, (usize, u64)>,
    /// Served words of completed requests, in completion order (only
    /// populated when value capture is on).
    captured: Vec<u64>,
    /// Completed manual requests in completion order, for in-order
    /// draining by server front-ends ([`RngService::pop_completed`]).
    completed_order: VecDeque<(usize, u64)>,
    stats: ServiceStats,
}

impl RngService {
    /// Builds the service from its configuration. `base_core` is the
    /// number of real trace cores; client *i* issues requests as virtual
    /// core `base_core + i`. `fairness` orders competing clients on the
    /// issue path (`SystemConfig::fairness`).
    pub(crate) fn new(config: &ServiceConfig, base_core: usize, fairness: FairnessPolicy) -> Self {
        let clients: Vec<ClientState> =
            config.clients.iter().cloned().map(ClientState::new).collect();
        let mut service = RngService {
            base_core,
            capture: config.capture_values,
            record_arrivals: config.record_arrivals,
            track_completed_order: config.sessions,
            fairness,
            drr: DrrState::new(),
            arrivals: RefCell::new(BinaryHeap::new()),
            active: BTreeSet::new(),
            active_by_index: BTreeSet::new(),
            unmet: 0,
            aging_scratch: Vec::new(),
            word_map: HashMap::new(),
            captured: Vec::new(),
            completed_order: VecDeque::new(),
            stats: ServiceStats {
                latency_by_client: vec![Vec::new(); clients.len()],
                bytes_by_client: vec![0; clients.len()],
                last_completion_by_client: vec![0; clients.len()],
                ..ServiceStats::default()
            },
            clients,
        };
        for ci in 0..service.clients.len() {
            service.note_open(ci);
        }
        service
    }

    /// Bookkeeping for a freshly added client: schedule its first
    /// arrival and count it toward the unmet-target total.
    fn note_open(&mut self, ci: usize) {
        if let Some(t) = self.clients[ci].next_arrival {
            self.arrivals.get_mut().push(Reverse((t, ci)));
        }
        if !self.clients[ci].targets_met() {
            self.unmet += 1;
        }
    }

    /// Marks a client as holding unissued words (idempotent).
    fn activate(&mut self, ci: usize) {
        self.active.insert((Reverse(self.clients[ci].priority), ci));
        self.active_by_index.insert(ci);
    }

    /// Clears a client's unissued-words mark (idempotent).
    fn deactivate(&mut self, ci: usize) {
        self.active.remove(&(Reverse(self.clients[ci].priority), ci));
        self.active_by_index.remove(&ci);
    }

    /// Registers a new session at CPU cycle `now` and returns its client
    /// index (the session id; virtual core = `base_core + id`).
    pub(crate) fn open_session(&mut self, spec: ClientSpec, now: u64) -> usize {
        let id = self.clients.len();
        self.clients.push(ClientState::new_at(spec, now));
        self.stats.latency_by_client.push(Vec::new());
        self.stats.bytes_by_client.push(0);
        self.stats.last_completion_by_client.push(0);
        self.note_open(id);
        self.track_completed_order = true;
        id
    }

    /// Closes a session: no further arrivals or submissions are
    /// accepted. Requests already in flight (or queued for issue) drain
    /// normally — the session blocks run-loop termination only until
    /// they complete.
    ///
    /// # Panics
    ///
    /// Panics when the session is out of range.
    pub(crate) fn close_session(&mut self, id: usize) {
        let was_met = self.clients[id].targets_met();
        let c = &mut self.clients[id];
        c.closed = true;
        c.next_arrival = None;
        if !was_met && self.clients[id].targets_met() {
            self.unmet -= 1;
        }
    }

    /// The OS priority level of a session's tenant.
    pub fn client_priority(&self, id: usize) -> u8 {
        self.clients[id].priority
    }

    /// The recorded arrival cycles of client `id` (empty unless
    /// `ServiceConfig::record_arrivals` was set).
    pub fn arrival_log(&self, id: usize) -> &[u64] {
        &self.clients[id].arrival_log
    }

    /// Completed manual requests not yet drained via
    /// [`RngService::pop_completed`].
    pub fn completed_pending(&self) -> usize {
        self.completed_order.len()
    }

    /// Drains the oldest undelivered manual completion, in completion
    /// order: `(client, seq, result)`. Entries already taken through
    /// [`RngService::take_completed`] are skipped.
    pub(crate) fn pop_completed(&mut self) -> Option<(usize, u64, ServedRequest)> {
        while let Some((client, seq)) = self.completed_order.pop_front() {
            if let Some(served) = self.clients[client].done_manual.remove(&seq) {
                return Some((client, seq, served));
            }
        }
        None
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Number of configured clients.
    pub fn clients(&self) -> usize {
        self.clients.len()
    }

    /// Whether every client has issued its configured requests and all of
    /// them completed (the run-loop termination condition). O(1): the
    /// run loop probes this on every finish-check boundary, so it must
    /// not scan a 10⁴-session population.
    pub fn targets_met(&self) -> bool {
        self.unmet == 0
    }

    /// Requests currently in flight (arrived, not yet fully served).
    pub fn in_flight(&self) -> usize {
        self.clients.iter().map(|c| c.in_flight.len()).sum()
    }

    /// Whether a specific request has completed (manual clients).
    pub(crate) fn is_completed(&self, client: usize, seq: u64) -> bool {
        self.clients[client].done_manual.contains_key(&seq)
    }

    /// Takes the result of a completed manual request.
    pub(crate) fn take_completed(&mut self, client: usize, seq: u64) -> Option<ServedRequest> {
        let served = self.clients[client].done_manual.remove(&seq);
        if served.is_some() && self.track_completed_order {
            // Keep the in-order drain queue free of tombstones under
            // mixed take-by-seq / pop-in-order use.
            if let Some(pos) = self
                .completed_order
                .iter()
                .position(|&entry| entry == (client, seq))
            {
                self.completed_order.remove(pos);
            }
        }
        served
    }

    /// Submits a manual request of `bytes` at CPU cycle `now`; returns the
    /// request's sequence number for [`RngService::is_completed`] /
    /// [`RngService::take_completed`].
    ///
    /// # Panics
    ///
    /// Panics when `client` is out of range, is not a
    /// [`ArrivalProcess::Manual`] client, or `bytes` is zero.
    pub(crate) fn submit(&mut self, client: usize, bytes: usize, now: u64) -> u64 {
        self.submit_at(client, bytes, now, now)
    }

    /// [`RngService::submit`] with an explicit `arrival` stamp `<= now`:
    /// open-loop pipelined sessions may commit to an arrival schedule
    /// faster than the service drains, so a request's intended arrival
    /// can precede its injection cycle. Latency accounting and fairness
    /// aging then include that queueing delay, exactly as they do for
    /// the in-simulation open-loop arrival processes.
    ///
    /// # Panics
    ///
    /// Panics like [`RngService::submit`], or when `arrival > now`.
    pub(crate) fn submit_at(&mut self, client: usize, bytes: usize, arrival: u64, now: u64) -> u64 {
        assert!(bytes > 0, "getrandom of zero bytes");
        assert!(arrival <= now, "submit stamped after its injection cycle");
        let record = self.record_arrivals;
        let was_met = self.clients[client].targets_met();
        let c = &mut self.clients[client];
        assert!(
            matches!(c.spec.arrival, ArrivalProcess::Manual),
            "submit on a non-manual client"
        );
        assert!(!c.closed, "submit on a closed session");
        if record {
            c.arrival_log.push(arrival);
        }
        self.stats.requests_offered += 1;
        let seq = c.next_seq;
        c.next_seq += 1;
        c.arrivals += 1;
        let words = (bytes.div_ceil(8)).max(1) as u32;
        c.in_flight.insert(
            seq,
            ActiveRequest {
                arrival,
                bytes,
                words_to_issue: words,
                outstanding: 0,
                buffer_words: 0,
                generated_words: 0,
                capture: true,
                words: Vec::with_capacity(words as usize),
            },
        );
        c.issue_queue.push_back(seq);
        if was_met {
            self.unmet += 1;
        }
        self.activate(client);
        seq
    }

    /// The earliest CPU cycle at or after `now` at which the service could
    /// do anything: `Some(now)` while any client holds unissued words
    /// (issue retries run per-cycle under RNG-queue back-pressure),
    /// otherwise the earliest scheduled arrival. `None` when fully
    /// dormant — completions are bounded separately by the memory
    /// subsystem's own next-event machinery.
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        if !self.active.is_empty() {
            return Some(now);
        }
        // Every live `next_arrival` has a matching heap entry, so the
        // earliest non-stale top is the global minimum; stale duplicates
        // from rescheduling are pruned as they surface.
        let mut heap = self.arrivals.borrow_mut();
        while let Some(&Reverse((t, ci))) = heap.peek() {
            if self.clients[ci].next_arrival == Some(t) {
                return Some(t.max(now));
            }
            heap.pop();
        }
        None
    }

    /// Advances the service by one CPU cycle: processes due arrivals for
    /// every client, then issues queued word requests into the memory
    /// subsystem in the order the configured [`FairnessPolicy`] dictates
    /// — this is who takes RNG-queue slots and buffer words first under
    /// contention:
    ///
    /// * `Strict` — descending tenant priority, index order within a
    ///   level (the pre-policy behavior).
    /// * `Aging` — like `Strict`, but each waiting tenant's priority
    ///   rises one level per aging quantum its oldest queued request has
    ///   waited; ties go to the older request, then the lower index.
    /// * `WeightedFair` — deficit round robin, one word per turn, so a
    ///   saturating high-priority tenant cannot monopolize the issue
    ///   path.
    pub(crate) fn tick(&mut self, now: u64, mem: &mut MemSubsystem) {
        // Drain due arrivals off the heap instead of scanning every
        // client: a tick touches only the clients that actually have an
        // arrival this cycle. Same-cycle entries pop in client-index
        // order (the heap key is `(cycle, index)`), matching the old
        // full-scan processing order.
        loop {
            let due = {
                let heap = self.arrivals.get_mut();
                match heap.peek() {
                    Some(&Reverse((t, ci))) if t <= now => {
                        heap.pop();
                        Some((t, ci))
                    }
                    _ => None,
                }
            };
            let Some((t, ci)) = due else { break };
            if self.clients[ci].next_arrival != Some(t) {
                continue; // stale entry from a reschedule
            }
            self.process_arrivals(ci, now);
            if let Some(nt) = self.clients[ci].next_arrival {
                self.arrivals.get_mut().push(Reverse((nt, ci)));
            }
            if self.clients[ci].has_unissued_words() {
                self.activate(ci);
            }
        }
        // Issue over only the clients holding words. The first rejection
        // is global for this memory tick — the engine memoizes RNG-queue
        // exhaustion, so every later `try_rng` this tick would also be
        // refused — which makes breaking there outcome-identical to the
        // historical issue-everyone loop.
        let mut blocked = false;
        match self.fairness {
            FairnessPolicy::Strict => {
                while let Some(&(_, ci)) = self.active.iter().next() {
                    if self.issue_words(ci, mem) {
                        blocked = true;
                        break;
                    }
                }
            }
            FairnessPolicy::Aging { .. } | FairnessPolicy::AdaptiveAging => {
                // (effective priority desc, oldest arrival, index): a
                // dynamic re-sort of the Strict order with waiting time
                // folded in. Clients with nothing to issue don't compete.
                // AdaptiveAging reads the quantum off the engine's running
                // episode-cost estimate instead of a static knob.
                let quantum = match self.fairness {
                    FairnessPolicy::Aging { quantum } => quantum,
                    _ => mem.adaptive_aging_quantum(),
                };
                let mut order = std::mem::take(&mut self.aging_scratch);
                order.clear();
                order.extend(self.active.iter().map(|&(_, ci)| {
                    let c = &self.clients[ci];
                    let &seq = c.issue_queue.front().expect("active client has queued words");
                    let arrival = c.in_flight[&seq].arrival;
                    let eff = effective_priority(c.priority, now.saturating_sub(arrival), quantum);
                    (Reverse(eff), arrival, ci)
                }));
                // The key embeds the unique client index, so the unstable
                // sort is total and input-order independent.
                order.sort_unstable();
                for &(_, _, ci) in &order {
                    if self.issue_words(ci, mem) {
                        blocked = true;
                        break;
                    }
                }
                self.aging_scratch = order;
            }
            FairnessPolicy::WeightedFair { quantum } => {
                blocked = self.issue_words_drr(quantum, mem);
            }
        }
        if blocked {
            self.stats.issue_blocked_cycles += 1;
        }
        #[cfg(debug_assertions)]
        self.check_bookkeeping();
    }

    /// Debug oracle: the incremental arrival-heap / active-set / unmet
    /// bookkeeping must agree with a full rescan. Skipped above 64
    /// clients so debug runs of the fleet-scale scenarios stay fast.
    #[cfg(debug_assertions)]
    fn check_bookkeeping(&self) {
        if self.clients.len() > 64 {
            return;
        }
        let unmet = self.clients.iter().filter(|c| !c.targets_met()).count();
        debug_assert_eq!(self.unmet, unmet, "unmet-target counter out of sync");
        debug_assert_eq!(self.active.len(), self.active_by_index.len());
        for (ci, c) in self.clients.iter().enumerate() {
            debug_assert_eq!(
                self.active.contains(&(Reverse(c.priority), ci)),
                c.has_unissued_words(),
                "active set out of sync for client {ci}"
            );
        }
    }

    fn process_arrivals(&mut self, ci: usize, now: u64) {
        while let Some(t) = self.clients[ci].next_arrival {
            if t > now {
                break;
            }
            let (burst, reschedule) = {
                let c = &mut self.clients[ci];
                match &c.spec.arrival {
                    ArrivalProcess::ClosedLoop { .. } => (1, None),
                    ArrivalProcess::Poisson { mean_gap, .. } => {
                        let mean_gap = *mean_gap;
                        let gap = c.draw_gap(mean_gap);
                        (1, Some(t + gap))
                    }
                    ArrivalProcess::Bursty { burst, gap } => {
                        let (burst, gap) = (*burst, *gap);
                        (burst.max(1), Some(t + gap.max(1)))
                    }
                    ArrivalProcess::TraceReplay { schedule } => {
                        (1, schedule.get(c.arrivals as usize + 1).copied())
                    }
                    ArrivalProcess::Manual => unreachable!("manual clients never schedule"),
                }
            };
            for _ in 0..burst {
                let c = &mut self.clients[ci];
                if c.arrivals >= c.spec.requests {
                    break;
                }
                c.arrivals += 1;
                if self.record_arrivals {
                    c.arrival_log.push(t);
                }
                let seq = c.next_seq;
                c.next_seq += 1;
                let words = c.spec.words();
                let bytes = c.spec.bytes;
                let capture = self.capture;
                c.in_flight.insert(
                    seq,
                    ActiveRequest {
                        arrival: t,
                        bytes,
                        words_to_issue: words,
                        outstanding: 0,
                        buffer_words: 0,
                        generated_words: 0,
                        capture,
                        words: if capture {
                            Vec::with_capacity(words as usize)
                        } else {
                            Vec::new()
                        },
                    },
                );
                c.issue_queue.push_back(seq);
                self.stats.requests_offered += 1;
            }
            let c = &mut self.clients[ci];
            c.next_arrival = if c.arrivals >= c.spec.requests {
                None
            } else {
                reschedule
            };
            // Closed loop schedules the next arrival at completion time.
            if matches!(c.spec.arrival, ArrivalProcess::ClosedLoop { .. }) {
                break;
            }
        }
    }

    /// Issues as many queued words as the memory subsystem accepts this
    /// cycle; returns true when back-pressure left words unissued.
    fn issue_words(&mut self, ci: usize, mem: &mut MemSubsystem) -> bool {
        let core = self.base_core + ci;
        while let Some(&seq) = self.clients[ci].issue_queue.front() {
            // The front of the issue queue always has at least one word
            // left (requests enter with >= 1 and are popped on reaching
            // zero), so admission can be tried before the in-flight
            // lookup: under back-pressure — every cycle of a saturated
            // run — this returns without touching the map at all.
            let Some(id) = mem.try_rng(core) else {
                return true;
            };
            let req = self.clients[ci]
                .in_flight
                .get_mut(&seq)
                .expect("queued request is in flight");
            debug_assert!(req.words_to_issue > 0, "queued request has no words left");
            req.words_to_issue -= 1;
            req.outstanding += 1;
            self.stats.words_issued += 1;
            self.word_map.insert(id, (ci, seq));
            if req.words_to_issue == 0 {
                self.clients[ci].issue_queue.pop_front();
            }
        }
        self.deactivate(ci);
        false
    }

    /// Deficit-round-robin issue: one word per DRR turn, interleaving
    /// the competing clients by their QoS weight instead of issuing each
    /// client to exhaustion. Returns true when back-pressure left words
    /// unissued (the memory subsystem rejecting one client's word means
    /// the global RNG queue is full, so no client could issue).
    fn issue_words_drr(&mut self, quantum: u32, mem: &mut MemSubsystem) -> bool {
        // Scratch reused across the words issued this cycle, so the
        // per-word DRR evaluation allocates nothing (amortized).
        let mut active: Vec<usize> = Vec::new();
        let mut quanta: Vec<u64> = Vec::new();
        loop {
            active.clear();
            active.extend(self.active_by_index.iter().copied());
            if active.is_empty() {
                return false;
            }
            quanta.clear();
            quanta.extend(
                active
                    .iter()
                    .map(|&ci| quantum as u64 * FairnessPolicy::weight_of(self.clients[ci].priority)),
            );
            let ci = self.drr.pick(&active, &quanta, 1);
            let core = self.base_core + ci;
            let &seq = self.clients[ci]
                .issue_queue
                .front()
                .expect("active client has queued words");
            match mem.try_rng(core) {
                Some(id) => {
                    let req = self.clients[ci]
                        .in_flight
                        .get_mut(&seq)
                        .expect("queued request is in flight");
                    req.words_to_issue -= 1;
                    req.outstanding += 1;
                    self.stats.words_issued += 1;
                    self.word_map.insert(id, (ci, seq));
                    if req.words_to_issue == 0 {
                        self.clients[ci].issue_queue.pop_front();
                        if self.clients[ci].issue_queue.is_empty() {
                            self.deactivate(ci);
                        }
                    }
                }
                None => {
                    // The word was never served: hand the charged credit
                    // (and the turn) back, or blocked cycles would burn
                    // this tenant's round on phantom picks.
                    self.drr.refund(ci, 1);
                    return true;
                }
            }
        }
    }

    /// Whether `core` addresses one of this service's virtual clients.
    pub(crate) fn owns_core(&self, core: usize) -> bool {
        core >= self.base_core && core < self.base_core + self.clients.len()
    }

    /// Delivers one completed word request. `now` is the CPU cycle of
    /// delivery; `value`/`from_buffer` describe the served word.
    pub(crate) fn complete(&mut self, id: RequestId, value: u64, from_buffer: bool, now: u64) {
        let (ci, seq) = self
            .word_map
            .remove(&id)
            .expect("completion for an unknown service request");
        if from_buffer {
            self.stats.words_from_buffer += 1;
        } else {
            self.stats.words_generated += 1;
        }
        let finished = {
            let req = self.clients[ci]
                .in_flight
                .get_mut(&seq)
                .expect("completion for a finished request");
            if from_buffer {
                req.buffer_words += 1;
            } else {
                req.generated_words += 1;
            }
            if req.capture {
                req.words.push(value);
            }
            req.outstanding -= 1;
            req.outstanding == 0 && req.words_to_issue == 0
        };
        if !finished {
            return;
        }
        let req = self.clients[ci]
            .in_flight
            .remove(&seq)
            .expect("request present");
        if self.capture {
            self.captured.extend_from_slice(&req.words);
        }
        let latency = now - req.arrival;
        self.stats.requests_completed += 1;
        self.stats.bytes_served += req.bytes as u64;
        self.stats.latency.record(latency);
        self.stats.latency_log.push(latency);
        self.stats.latency_by_client[ci].push(latency);
        self.stats.bytes_by_client[ci] += req.bytes as u64;
        self.stats.last_completion_by_client[ci] = now;
        let kind = if req.generated_words == 0 {
            self.stats.buffer_hit_requests += 1;
            ServeKind::Buffer
        } else {
            ServeKind::Generated
        };
        let c = &mut self.clients[ci];
        match c.spec.arrival {
            ArrivalProcess::ClosedLoop { think } if !c.closed && c.arrivals < c.spec.requests => {
                c.next_arrival = Some(now + think);
                self.arrivals.get_mut().push(Reverse((now + think, ci)));
            }
            ArrivalProcess::Manual => {
                c.done_manual.insert(
                    seq,
                    ServedRequest {
                        words: req.words,
                        kind,
                        latency_cycles: latency,
                    },
                );
                if self.track_completed_order {
                    self.completed_order.push_back((ci, seq));
                }
            }
            _ => {}
        }
        // The request just left `in_flight`, so the client was unmet on
        // entry; if this was its last obligation it is met now.
        if self.clients[ci].targets_met() {
            self.unmet -= 1;
        }
    }

    /// All served words captured so far, in completion order (empty
    /// unless `capture_values` was set). Used by the Section 6
    /// no-duplication tests: every word must appear exactly once across
    /// all clients.
    pub fn captured_words(&self) -> &[u64] {
        &self.captured
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_word_rounding() {
        assert_eq!(ClientSpec::manual(1).words(), 1);
        assert_eq!(ClientSpec::manual(8).words(), 1);
        assert_eq!(ClientSpec::manual(9).words(), 2);
        assert_eq!(ClientSpec::manual(32).words(), 4);
    }

    #[test]
    fn poisson_gaps_are_deterministic_and_positive() {
        let spec = ClientSpec::poisson(8, 500, 10, 42);
        let mut a = ClientState::new(spec.clone());
        let mut b = ClientState::new(spec);
        assert_eq!(a.next_arrival, b.next_arrival);
        for _ in 0..100 {
            let (x, y) = (a.draw_gap(500), b.draw_gap(500));
            assert_eq!(x, y);
            assert!(x >= 1);
        }
    }

    #[test]
    fn poisson_mean_gap_is_calibrated() {
        let mut c = ClientState::new(ClientSpec::poisson(8, 1000, 1, 7));
        let n = 20_000;
        let total: u64 = (0..n).map(|_| c.draw_gap(1000)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 50.0, "mean gap {mean}");
    }

    #[test]
    fn closed_loop_first_arrival_is_cycle_zero() {
        let c = ClientState::new(ClientSpec::closed_loop(16, 100, 5));
        assert_eq!(c.next_arrival, Some(0));
        assert!(!c.targets_met());
    }

    #[test]
    fn inert_and_manual_clients_meet_targets() {
        assert!(ClientState::new(ClientSpec::manual(8)).targets_met());
        assert!(ClientState::new(ClientSpec::poisson(8, 100, 0, 1)).targets_met());
    }

    #[test]
    fn service_stats_percentiles() {
        let mut s = ServiceStats::default();
        for v in [10, 20, 30, 40, 1000] {
            s.latency_log.push(v);
            s.latency.record(v);
        }
        assert_eq!(s.latency_percentile(0.5), Some(30));
        assert_eq!(s.latency_percentile(1.0), Some(1000));
    }
}
