//! System-level statistics for one simulation run.

use strange_metrics::{ConfusionCounts, Ratio};

/// Counters accumulated by the DR-STRaNGe engine during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Random-number requests issued by all cores.
    pub rng_requests: u64,
    /// Requests served directly from the random number buffer.
    pub rng_served_from_buffer: u64,
    /// Requests served by on-demand generation.
    pub rng_served_on_demand: u64,
    /// On-demand generation episodes (each may serve several requests).
    pub demand_generations: u64,
    /// Predictive fill batches completed on idle channels.
    pub fill_batches: u64,
    /// Fill batches triggered by the low-utilization path.
    pub low_util_batches: u64,
    /// Greedy-oracle batches credited (Greedy Idle design only).
    pub greedy_batches: u64,
    /// Random bits pushed into the buffer (fills plus demand surplus).
    pub bits_buffered: u64,
    /// Buffer serve-rate statistics (hits = served from buffer).
    pub buffer_serve: Ratio,
    /// Idleness-predictor confusion counts aggregated over channels.
    pub predictor: ConfusionCounts,
    /// Sum of end-to-end RNG service latencies in memory cycles.
    pub rng_latency_sum: u64,
    /// Number of RNG requests completed (for the latency average).
    pub rng_completions: u64,
    /// Cycles the RNG queue spent deprioritized while non-empty (starvation
    /// accounting; the paper observes the stall limit is never reached).
    pub rng_wait_cycles: u64,
    /// Times the starvation-prevention limit forced RNG service.
    pub starvation_overrides: u64,
    /// Fault-plan events applied (outages, storms, derating, corruption).
    pub faults_injected: u64,
    /// Demand-generation episodes that ran degraded: fewer live channels
    /// than configured (outage failover) or derated bits per round.
    pub degraded_generations: u64,
    /// Buffer words discarded by corruption events (never served).
    pub corrupted_words_discarded: u64,
    /// RNG requests held back from a generation episode by the
    /// weighted-fair per-tenant batch cap (served by a later episode).
    pub demand_batch_deferrals: u64,
    /// Entropy-health quality windows tested (live boundaries + probes).
    pub windows_tested: u64,
    /// Transitions into [`crate::HealthState::Quarantined`] (fresh trips
    /// and probation relapses).
    pub quarantines: u64,
    /// Probe rounds executed on excluded channels.
    pub probe_rounds: u64,
    /// Channels re-admitted after completing a probation pass streak.
    pub readmissions: u64,
    /// Words drawn by probe rounds and discarded after testing (tainted
    /// words are never buffered or served).
    pub tainted_words_discarded: u64,
}

impl SystemStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        SystemStats::default()
    }

    /// Average end-to-end RNG service latency in memory cycles.
    pub fn avg_rng_latency(&self) -> f64 {
        if self.rng_completions == 0 {
            0.0
        } else {
            self.rng_latency_sum as f64 / self.rng_completions as f64
        }
    }

    /// Buffer serve rate (Figure 10).
    pub fn buffer_serve_rate(&self) -> f64 {
        self.buffer_serve.rate()
    }

    /// Predictor accuracy (Figure 14).
    pub fn predictor_accuracy(&self) -> f64 {
        strange_metrics::accuracy(&self.predictor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_are_zero_safe() {
        let s = SystemStats::new();
        assert_eq!(s.avg_rng_latency(), 0.0);
        assert_eq!(s.buffer_serve_rate(), 0.0);
        assert_eq!(s.predictor_accuracy(), 0.0);
    }

    #[test]
    fn latency_average_computes() {
        let mut s = SystemStats::new();
        s.rng_latency_sum = 600;
        s.rng_completions = 3;
        assert_eq!(s.avg_rng_latency(), 200.0);
    }
}
