//! The end-to-end simulated system: cores + DR-STRaNGe memory subsystem.
//!
//! [`System`] couples the trace-driven cores (4 GHz) to the memory
//! subsystem (800 MHz DRAM bus, 5 CPU cycles per DRAM cycle) and runs the
//! multi-programmed workload until every core retires its instruction
//! target. Cores that finish early keep executing — the standard
//! methodology for multi-programmed evaluation, which preserves memory
//! contention for the co-runners.

use strange_cpu::{Core, CoreStats, FinishSnapshot, TraceSource};
use strange_dram::{ChannelStats, ConfigError, CoreId, CPU_CYCLES_PER_MEM_CYCLE};
use strange_trng::TrngMechanism;

use crate::config::{SimMode, SystemConfig};
use crate::engine::{Completion, MemSubsystem};
use crate::service::{ClientSpec, RngService, ServedRequest, ServiceStats};
use crate::stats::SystemStats;

/// How often the run loop re-checks whether every core has finished (in
/// CPU cycles). Both simulation modes quantize the finish check to the
/// same boundaries so they report identical total cycle counts.
const FINISH_CHECK_PERIOD: u64 = 64;

/// Outcome of one core's execution.
#[derive(Debug, Clone)]
pub struct CoreOutcome {
    /// Statistics frozen when the instruction target was reached (absent
    /// only if the run hit the safety cycle limit first).
    pub finish: Option<FinishSnapshot>,
    /// Statistics at the end of the whole run (includes post-target work).
    pub end_stats: CoreStats,
}

impl CoreOutcome {
    /// Execution time in CPU cycles for the instruction target; falls back
    /// to the full run length when the target was not reached.
    pub fn exec_cycles(&self, run_cycles: u64) -> u64 {
        self.finish.map_or(run_cycles, |f| f.at_cycle.max(1))
    }

    /// MCPI at the instruction target (memory + RNG stalls per
    /// instruction).
    pub fn mcpi(&self) -> f64 {
        self.finish.map_or(self.end_stats.mcpi(), |f| f.stats.mcpi())
    }

    /// IPC for the instruction-target window.
    pub fn ipc(&self) -> f64 {
        match self.finish {
            Some(f) => f.stats.retired as f64 / f.at_cycle.max(1) as f64,
            None => self.end_stats.ipc(),
        }
    }
}

/// Results of a completed simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-core outcomes, indexed by core id.
    pub cores: Vec<CoreOutcome>,
    /// Engine statistics (buffer, predictor, generation episodes).
    pub stats: SystemStats,
    /// Per-channel DRAM statistics (commands, idle periods, latencies).
    pub channels: Vec<ChannelStats>,
    /// `getrandom()` service-layer statistics (request latencies, offered
    /// vs served counts); `None` when no service clients were configured.
    pub service: Option<ServiceStats>,
    /// Total CPU cycles simulated.
    pub cpu_cycles: u64,
    /// Total DRAM bus cycles simulated.
    pub mem_cycles: u64,
    /// True when the safety cycle limit ended the run before every core
    /// finished (indicates a pathological configuration).
    pub hit_cycle_limit: bool,
}

impl RunResult {
    /// Execution time (CPU cycles) of `core` for its instruction target.
    pub fn exec_cycles(&self, core: CoreId) -> u64 {
        self.cores[core].exec_cycles(self.cpu_cycles)
    }

    /// Slowdown of `core` relative to a baseline run of the same
    /// application alone.
    ///
    /// # Panics
    ///
    /// Panics when `alone` has no core `core`: silently substituting a
    /// different core's baseline would produce a wrong-but-plausible
    /// slowdown, so a mismatched comparison is a caller bug.
    pub fn slowdown_vs(&self, core: CoreId, alone: &RunResult) -> f64 {
        assert!(
            core < alone.cores.len(),
            "slowdown_vs: core {core} has no counterpart in the alone run ({} cores)",
            alone.cores.len()
        );
        self.exec_cycles(core) as f64 / alone.exec_cycles(core) as f64
    }

    /// Aggregated DRAM statistics over all channels.
    pub fn total_channel_stats(&self) -> ChannelStats {
        let mut total = ChannelStats::new();
        for ch in &self.channels {
            total.merge(ch);
        }
        total
    }
}

/// The full simulated system.
pub struct System {
    config: SystemConfig,
    cores: Vec<Core>,
    mem: MemSubsystem,
    service: Option<RngService>,
    cpu_cycle: u64,
    skipped_cycles: u64,
    completions: Vec<Completion>,
}

impl System {
    /// Builds a system from a configuration, one trace per core, and a TRNG
    /// mechanism.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] when the configuration is
    /// invalid or the number of traces does not match `config.cores`.
    pub fn new(
        config: SystemConfig,
        traces: Vec<Box<dyn TraceSource + Send>>,
        mechanism: Box<dyn TrngMechanism>,
    ) -> Result<Self, ConfigError> {
        let mut config = config;
        config.validate()?;
        config.materialize_client_priorities();
        if traces.len() != config.cores {
            return Err(ConfigError::InvalidParameter {
                field: "traces",
                constraint: "match the configured core count",
            });
        }
        let cores: Vec<Core> = traces
            .into_iter()
            .enumerate()
            .map(|(i, t)| Core::new(i, config.core, t, config.instruction_target))
            .collect();
        let mem = MemSubsystem::new(config.clone(), mechanism);
        let service = (!config.service.clients.is_empty() || config.service.sessions)
            .then(|| RngService::new(&config.service, config.cores, config.fairness));
        Ok(System {
            config,
            cores,
            mem,
            service,
            cpu_cycle: 0,
            skipped_cycles: 0,
            completions: Vec::new(),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The memory subsystem (buffer/queue inspection in tests).
    pub fn mem(&self) -> &MemSubsystem {
        &self.mem
    }

    /// Enables logging of served random values (see
    /// [`MemSubsystem::value_log`]).
    pub fn set_value_log(&mut self, enabled: bool) {
        self.mem.set_value_log(enabled);
    }

    /// CPU cycles simulated so far.
    pub fn cpu_cycles(&self) -> u64 {
        self.cpu_cycle
    }

    /// CPU cycles fast-forwarded (not individually ticked) so far. Zero
    /// under [`SimMode::Reference`]; tests use this to prove the fast
    /// path actually engages rather than degenerating to per-cycle
    /// stepping (which would make mode-equivalence checks vacuous).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Advances the system by `n` CPU cycles (test/diagnostic hook; `run`
    /// is the normal entry point).
    pub fn step_cpu_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.step_one();
        }
    }

    fn step_one(&mut self) {
        let now = self.cpu_cycle;
        if now.is_multiple_of(CPU_CYCLES_PER_MEM_CYCLE) {
            let mem_now = now / CPU_CYCLES_PER_MEM_CYCLE;
            self.mem.tick(mem_now, &mut self.completions);
            for done in self.completions.drain(..) {
                if done.core < self.cores.len() {
                    self.cores[done.core].complete(done.id);
                } else {
                    let svc = self
                        .service
                        .as_mut()
                        .expect("virtual-core completion without a service");
                    debug_assert!(svc.owns_core(done.core), "completion core out of range");
                    let (value, from_buffer) =
                        done.rng.expect("service requests are RNG requests");
                    svc.complete(done.id, value, from_buffer, now);
                }
            }
        }
        for core in &mut self.cores {
            core.tick(now, &mut self.mem);
        }
        if let Some(svc) = &mut self.service {
            svc.tick(now, &mut self.mem);
        }
        self.cpu_cycle += 1;
    }

    /// The end of the dead span starting at the current cycle: the
    /// earliest upcoming core or memory event, capped at `stop`. Equal to
    /// the current cycle when something happens right now.
    fn next_event(&self, stop: u64) -> u64 {
        let now = self.cpu_cycle;
        let mut end = stop;
        for core in &self.cores {
            match core.next_ready_cycle(now) {
                // Fully stalled: bounded by memory events only.
                None => {}
                Some(t) => {
                    if t <= now {
                        return now;
                    }
                    end = end.min(t);
                }
            }
        }
        // Service-client arrivals are CPU-cycle events; a client holding
        // unissued words (RNG-queue back-pressure) retries every cycle.
        if let Some(svc) = &self.service {
            match svc.next_event_at(now) {
                Some(t) if t <= now => return now,
                Some(t) => end = end.min(t),
                None => {}
            }
        }
        // The next memory tick runs at the next multiple of the clock
        // ratio; events there bound the CPU-cycle span.
        let mem_next = self.cpu_cycle.div_ceil(CPU_CYCLES_PER_MEM_CYCLE);
        let mem_event = self.mem.next_event_at(mem_next);
        if mem_event != u64::MAX {
            end = end.min(mem_event.saturating_mul(CPU_CYCLES_PER_MEM_CYCLE));
        }
        end.max(now)
    }

    /// Caps a dead-span skip target at the finish-check boundary on which
    /// the run would end, so fast-forward stops on exactly the same cycle
    /// as the per-cycle reference. Within a dead span a core's finish
    /// state can only flip during a pure-compute stretch, which
    /// [`Core::finish_within`] predicts in closed form.
    fn capped_at_run_end(&self, target: u64) -> u64 {
        let now = self.cpu_cycle;
        if target <= now {
            return target;
        }
        // Service targets can only be met at a live tick (a completion
        // delivery), never inside a dead span, so an unmet service means
        // the run cannot end inside the span.
        if self.service.as_ref().is_some_and(|s| !s.targets_met()) {
            return target;
        }
        let span = target - now;
        let mut last_finish = now;
        for core in &self.cores {
            match core.finish_within(now, span) {
                Some(at) => last_finish = last_finish.max(at),
                // Some core cannot finish in this span: the run cannot
                // end inside it, so the full skip is safe.
                None => return target,
            }
        }
        // Every core is finished by `last_finish`; the reference loop
        // breaks at the first finish-check boundary after it.
        let boundary = (last_finish / FINISH_CHECK_PERIOD + 1) * FINISH_CHECK_PERIOD;
        target.min(boundary)
    }

    /// Jumps the system to `target`, bulk-applying the skipped span's
    /// accounting across the memory subsystem and every core.
    fn skip_to(&mut self, target: u64) {
        let now = self.cpu_cycle;
        debug_assert!(target > now);
        // The service has no per-cycle accounting to replay; a dead span
        // must simply not contain any of its events.
        debug_assert!(
            self.service
                .as_ref()
                .and_then(|s| s.next_event_at(now))
                .is_none_or(|t| t >= target),
            "skip_to past a service arrival"
        );
        // Memory ticks that fall inside the skipped CPU span.
        let mem_lo = now.div_ceil(CPU_CYCLES_PER_MEM_CYCLE);
        let mem_hi = target.div_ceil(CPU_CYCLES_PER_MEM_CYCLE);
        if mem_hi > mem_lo {
            self.mem.skip_to(mem_lo, mem_hi);
        }
        for core in &mut self.cores {
            core.skip_cycles(now, target - now);
        }
        self.skipped_cycles += target - now;
        self.cpu_cycle = target;
    }

    /// Runs the workload until every core reaches its instruction target
    /// (or the safety cycle limit trips) and returns the results.
    ///
    /// [`SimMode::Reference`] ticks every cycle; [`SimMode::FastForward`]
    /// skips dead spans via the next-event machinery. Both produce
    /// bit-identical results (asserted by `tests/determinism.rs`).
    pub fn run(&mut self) -> RunResult {
        let limit = self.config.cycle_limit();
        let fast = self.config.sim_mode == SimMode::FastForward;
        while self.cpu_cycle < limit {
            // Finish checks happen on fixed boundaries in both modes so
            // the reported cycle totals agree.
            if self.cpu_cycle.is_multiple_of(FINISH_CHECK_PERIOD)
                && self.cores.iter().all(Core::is_finished)
                && self.service.as_ref().is_none_or(RngService::targets_met)
            {
                break;
            }
            if fast {
                // Probe every live cycle: with the per-channel probe cache
                // and the cores' stalled-state memoization the probe is
                // O(cores + channels) pointer reads, so re-probing each
                // cycle (which catches a skippable span the moment it
                // opens) is cheaper than stepping blindly in blocks.
                let target = self.capped_at_run_end(self.next_event(limit));
                if target > self.cpu_cycle {
                    self.skip_to(target);
                } else {
                    self.step_one();
                }
            } else {
                let boundary =
                    ((self.cpu_cycle / FINISH_CHECK_PERIOD + 1) * FINISH_CHECK_PERIOD).min(limit);
                while self.cpu_cycle < boundary {
                    self.step_one();
                }
            }
        }
        self.mem.finish();
        let hit_cycle_limit = !self.cores.iter().all(Core::is_finished)
            || self.service.as_ref().is_some_and(|s| !s.targets_met());
        RunResult {
            cores: self
                .cores
                .iter()
                .map(|c| CoreOutcome {
                    finish: c.finish().copied(),
                    end_stats: *c.stats(),
                })
                .collect(),
            stats: self.mem.stats().clone(),
            channels: self.mem.channels().iter().map(|c| c.stats().clone()).collect(),
            service: self.service.as_ref().map(|s| s.stats().clone()),
            cpu_cycles: self.cpu_cycle,
            mem_cycles: self.cpu_cycle / CPU_CYCLES_PER_MEM_CYCLE,
            hit_cycle_limit,
        }
    }

    /// The `getrandom()` service layer, when configured.
    pub fn service(&self) -> Option<&RngService> {
        self.service.as_ref()
    }

    /// Opens a new service session at the current simulated cycle and
    /// returns its session id (also its client index: the session is
    /// addressed as virtual core `config.cores + id`). Relative arrival
    /// processes (closed loop, Poisson, bursty) schedule from the open
    /// cycle; [`crate::ArrivalProcess::TraceReplay`] keeps its absolute
    /// schedule; manual sessions are driven through
    /// [`System::service_submit`]. The session's
    /// [`crate::ClientSpec::qos`] class is registered with the engine so
    /// the Section 5.2 arbitration sees the tenant's priority.
    ///
    /// The service layer is created on first use when the system was
    /// built without one (e.g. `service.sessions` unset but `cores > 0`).
    ///
    /// # Panics
    ///
    /// Panics when the spec is invalid ([`ClientSpec::validate`]) —
    /// dynamically opened sessions get the same checks as configured
    /// clients.
    pub fn open_session(&mut self, spec: ClientSpec) -> usize {
        if let Err(e) = spec.validate() {
            panic!("open_session: invalid session spec: {e}");
        }
        let now = self.cpu_cycle;
        let base = self.config.cores;
        let priority = spec.qos.priority();
        let fairness = self.config.fairness;
        let service = self
            .service
            .get_or_insert_with(|| RngService::new(&self.config.service, base, fairness));
        let id = service.open_session(spec.clone(), now);
        self.mem.register_client(base + id, priority);
        // Keep the System's own config view consistent with the live
        // session set (priorities + client list).
        self.config.service.clients.push(spec);
        self.config.materialize_client_priorities();
        if self.config.priorities.len() > base + id {
            self.config.priorities[base + id] = priority;
        }
        id
    }

    /// Closes a session opened with [`System::open_session`] (or a
    /// configured client): it stops arriving and rejects further
    /// submissions; requests already in flight drain normally.
    ///
    /// # Panics
    ///
    /// Panics when no service is configured or `session` is out of
    /// range.
    pub fn close_session(&mut self, session: usize) {
        self.service
            .as_mut()
            .expect("no service configured")
            .close_session(session);
    }

    /// Completed manual service requests not yet drained via
    /// [`System::take_service_completion`].
    pub fn service_completions_pending(&self) -> usize {
        self.service.as_ref().map_or(0, RngService::completed_pending)
    }

    /// Drains the oldest undelivered manual completion in completion
    /// order: `(session, seq, result)`. The incremental counterpart of
    /// [`System::run_service_request`] for server front-ends that
    /// multiplex many sessions.
    pub fn take_service_completion(&mut self) -> Option<(usize, u64, ServedRequest)> {
        self.service.as_mut()?.pop_completed()
    }

    /// Submits a `getrandom(bytes)` request on a manual service client and
    /// returns its sequence number (see
    /// [`System::run_service_request`]).
    ///
    /// # Panics
    ///
    /// Panics when no service is configured, `client` is out of range or
    /// not a manual client, or `bytes` is zero.
    pub fn service_submit(&mut self, client: usize, bytes: usize) -> u64 {
        let now = self.cpu_cycle;
        self.service
            .as_mut()
            .expect("no service configured")
            .submit(client, bytes, now)
    }

    /// [`System::service_submit`] with an explicit arrival stamp
    /// `arrival <= now`: a pipelined open-loop session commits to its
    /// arrival schedule up front, so when the service falls behind, a
    /// request's intended arrival precedes the cycle it is injected on.
    /// Latency accounting and fairness aging measure from `arrival`,
    /// charging the client-side queueing delay exactly like the
    /// in-simulation open-loop arrival processes do.
    ///
    /// # Panics
    ///
    /// Panics like [`System::service_submit`], or when `arrival` is in
    /// the future.
    pub fn service_submit_at(&mut self, client: usize, bytes: usize, arrival: u64) -> u64 {
        let now = self.cpu_cycle;
        self.service
            .as_mut()
            .expect("no service configured")
            .submit_at(client, bytes, arrival, now)
    }

    /// Advances the system (honoring the configured [`SimMode`]) until
    /// `stop` returns true or `max_cycles` CPU cycles elapse; returns the
    /// cycles advanced. This is the incremental counterpart of
    /// [`System::run`] for interactive service front-ends.
    pub fn advance_until(&mut self, max_cycles: u64, mut stop: impl FnMut(&System) -> bool) -> u64 {
        let start = self.cpu_cycle;
        let limit = start.saturating_add(max_cycles);
        let fast = self.config.sim_mode == SimMode::FastForward;
        while self.cpu_cycle < limit && !stop(self) {
            if fast {
                let target = self.next_event(limit);
                if target > self.cpu_cycle {
                    self.skip_to(target);
                } else {
                    self.step_one();
                }
            } else {
                self.step_one();
            }
        }
        self.cpu_cycle - start
    }

    /// Drives the simulation until the manual request `(client, seq)`
    /// completes, then returns its served words, timing class, and
    /// end-to-end latency.
    ///
    /// # Panics
    ///
    /// Panics when no service is configured or the request does not
    /// complete within `max_cycles` (a pathological configuration — e.g.
    /// a zero-channel system; the memory subsystem otherwise always makes
    /// progress on queued RNG requests).
    pub fn run_service_request(
        &mut self,
        client: usize,
        seq: u64,
        max_cycles: u64,
    ) -> ServedRequest {
        assert!(self.service.is_some(), "no service configured");
        self.advance_until(max_cycles, |s| {
            s.service
                .as_ref()
                .is_some_and(|svc| svc.is_completed(client, seq))
        });
        self.service
            .as_mut()
            .expect("checked above")
            .take_completed(client, seq)
            .expect("service request did not complete within the cycle cap")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FillMode, RngRouting, SchedulerKind};
    use strange_cpu::{LoopTrace, TraceOp};
    use strange_trng::DRange;

    fn load_trace(gap: u32, stride: u64) -> Box<dyn TraceSource + Send> {
        // A simple streaming trace: loads marching through memory.
        let ops: Vec<TraceOp> = (0..64)
            .map(|i| TraceOp::Load {
                gap,
                addr: i * stride,
            })
            .collect();
        Box::new(LoopTrace::new(ops))
    }

    fn rng_trace(gap: u32) -> Box<dyn TraceSource + Send> {
        // Like the paper's synthetic RNG benchmarks: mostly RNG requests
        // plus sparse reads spread over banks/channels (low intensity).
        let ops: Vec<TraceOp> = (0..16u64)
            .flat_map(|i| {
                [
                    TraceOp::Rng { gap },
                    TraceOp::Load {
                        gap: 100,
                        addr: i * 64 * 513 + i, // spread over channels/banks
                    },
                ]
            })
            .collect();
        Box::new(LoopTrace::new(ops))
    }

    fn quick(cfg: SystemConfig) -> SystemConfig {
        cfg.with_instruction_target(20_000)
    }

    #[test]
    fn single_core_compute_bound_finishes_fast() {
        let cfg = quick(SystemConfig::rng_oblivious(1));
        let mut sys = System::new(cfg, vec![load_trace(999, 64)], Box::new(DRange::new(1))).unwrap();
        let res = sys.run();
        assert!(!res.hit_cycle_limit);
        let ipc = res.cores[0].ipc();
        assert!(ipc > 2.0, "nearly compute bound, got IPC {ipc}");
    }

    #[test]
    fn memory_bound_core_is_slower() {
        let cfg = quick(SystemConfig::rng_oblivious(1));
        let fast = System::new(cfg.clone(), vec![load_trace(999, 64)], Box::new(DRange::new(1)))
            .unwrap()
            .run();
        let slow = System::new(cfg, vec![load_trace(9, 64 * 1024)], Box::new(DRange::new(1)))
            .unwrap()
            .run();
        assert!(slow.exec_cycles(0) > fast.exec_cycles(0));
        assert!(slow.cores[0].mcpi() > fast.cores[0].mcpi());
    }

    #[test]
    fn rng_app_on_oblivious_baseline_generates_on_demand() {
        let cfg = quick(SystemConfig::rng_oblivious(1));
        let mut sys = System::new(cfg, vec![rng_trace(150)], Box::new(DRange::new(1))).unwrap();
        let res = sys.run();
        assert!(!res.hit_cycle_limit);
        assert!(res.stats.rng_requests > 0);
        assert!(res.stats.demand_generations > 0);
        assert_eq!(res.stats.rng_served_from_buffer, 0, "no buffer on baseline");
        assert!(res.cores[0].end_stats.rng_stall_cycles > 0);
    }

    #[test]
    fn dr_strange_serves_rng_app_faster_than_baseline() {
        let mech = || Box::new(DRange::new(1));
        let base = System::new(
            quick(SystemConfig::rng_oblivious(1)),
            vec![rng_trace(150)],
            mech(),
        )
        .unwrap()
        .run();
        let ds = System::new(
            quick(SystemConfig::dr_strange(1)),
            vec![rng_trace(150)],
            mech(),
        )
        .unwrap()
        .run();
        assert!(ds.stats.rng_served_from_buffer > 0, "buffer must serve");
        assert!(
            ds.exec_cycles(0) < base.exec_cycles(0),
            "DR-STRaNGe {} vs baseline {}",
            ds.exec_cycles(0),
            base.exec_cycles(0)
        );
    }

    #[test]
    fn greedy_oracle_fills_buffer_without_commands() {
        let mech = || Box::new(DRange::new(1));
        let greedy = System::new(
            quick(SystemConfig::greedy_idle(1)),
            vec![rng_trace(2000)],
            mech(),
        )
        .unwrap()
        .run();
        assert!(greedy.stats.greedy_batches > 0);
        assert_eq!(greedy.stats.fill_batches, 0, "no predictive fills");
        // Greedy's fills are free: its only RNG commands come from demand
        // generations, so a predictive run of the same workload (real fill
        // rounds) must issue strictly more RNG activations.
        let predictive = System::new(
            quick(SystemConfig::dr_strange(1)),
            vec![rng_trace(2000)],
            mech(),
        )
        .unwrap()
        .run();
        assert!(
            predictive.total_channel_stats().rng_acts > greedy.total_channel_stats().rng_acts,
            "predictive {} vs greedy {}",
            predictive.total_channel_stats().rng_acts,
            greedy.total_channel_stats().rng_acts
        );
    }

    #[test]
    fn predictive_fill_issues_rng_commands() {
        let cfg = quick(SystemConfig::dr_strange(1));
        let mut sys = System::new(cfg, vec![rng_trace(1000)], Box::new(DRange::new(1))).unwrap();
        let res = sys.run();
        assert!(res.stats.fill_batches > 0);
        let total = res.total_channel_stats();
        assert!(total.rng_acts > 0, "fill rounds issue reduced-timing ACTs");
    }

    #[test]
    fn predictor_accuracy_is_recorded() {
        let cfg = quick(SystemConfig::dr_strange(2));
        let mut sys = System::new(
            cfg,
            vec![load_trace(99, 64 * 257), rng_trace(300)],
            Box::new(DRange::new(1)),
        )
        .unwrap();
        let res = sys.run();
        assert!(res.stats.predictor.total() > 0);
        let acc = res.stats.predictor_accuracy();
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn two_core_interference_slows_both() {
        let mech = || Box::new(DRange::new(1));
        let cfg = quick(SystemConfig::rng_oblivious(2));
        let alone_a = System::new(
            quick(SystemConfig::rng_oblivious(1)),
            vec![load_trace(9, 64 * 1024)],
            mech(),
        )
        .unwrap()
        .run();
        let shared = System::new(
            cfg,
            vec![load_trace(9, 64 * 1024), rng_trace(150)],
            mech(),
        )
        .unwrap()
        .run();
        assert!(
            shared.exec_cycles(0) > alone_a.exec_cycles(0),
            "non-RNG app must slow down under RNG interference"
        );
    }

    #[test]
    fn aware_routing_keeps_rng_out_of_read_queues() {
        let cfg = quick(SystemConfig::dr_strange(1)).with_buffer_entries(1);
        let mut sys = System::new(cfg, vec![rng_trace(100)], Box::new(DRange::new(1))).unwrap();
        sys.step_cpu_cycles(50_000);
        // All reads queues hold only non-RNG requests under Aware routing.
        for ch in sys.mem().channels() {
            assert!(ch
                .read_queue()
                .iter()
                .all(|r| r.kind != strange_dram::RequestKind::Rng));
        }
    }

    #[test]
    fn bliss_scheduler_variant_runs() {
        let cfg = quick(SystemConfig::rng_oblivious(2)).with_scheduler(SchedulerKind::Bliss);
        let mut sys = System::new(
            cfg,
            vec![load_trace(9, 64 * 1024), rng_trace(150)],
            Box::new(DRange::new(1)),
        )
        .unwrap();
        let res = sys.run();
        assert!(!res.hit_cycle_limit);
    }

    #[test]
    fn priorities_affect_rng_wait() {
        // Non-RNG app prioritized: RNG requests wait (rng_wait_cycles > 0).
        let mech = || Box::new(DRange::new(1));
        let mk = |prios: Vec<u8>| {
            let cfg = quick(SystemConfig::dr_strange(2))
                .with_buffer_entries(1)
                .with_priorities(prios);
            System::new(
                cfg,
                vec![load_trace(4, 64 * 1024), rng_trace(150)],
                mech(),
            )
            .unwrap()
            .run()
        };
        let nonrng_prio = mk(vec![2, 1]);
        let rng_prio = mk(vec![1, 2]);
        assert!(
            nonrng_prio.stats.rng_wait_cycles > rng_prio.stats.rng_wait_cycles,
            "deprioritized RNG waits more: {} vs {}",
            nonrng_prio.stats.rng_wait_cycles,
            rng_prio.stats.rng_wait_cycles
        );
    }

    #[test]
    fn value_log_records_served_values() {
        let cfg = quick(SystemConfig::dr_strange(1));
        let mut sys = System::new(cfg, vec![rng_trace(500)], Box::new(DRange::new(1))).unwrap();
        sys.set_value_log(true);
        sys.run();
        assert!(!sys.mem().value_log().is_empty());
    }

    #[test]
    fn served_values_are_unique() {
        // Section 6: each random number is served to exactly one request.
        let cfg = quick(SystemConfig::dr_strange(1));
        let mut sys = System::new(cfg, vec![rng_trace(400)], Box::new(DRange::new(1))).unwrap();
        sys.set_value_log(true);
        sys.run();
        let log = sys.mem().value_log();
        assert!(log.len() > 8);
        let mut sorted: Vec<u64> = log.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // True 64-bit randoms collide with negligible probability.
        assert_eq!(sorted.len(), log.len(), "no value served twice");
    }

    #[test]
    fn trace_count_mismatch_rejected() {
        let cfg = quick(SystemConfig::rng_oblivious(2));
        let err = System::new(cfg, vec![rng_trace(100)], Box::new(DRange::new(1))).err();
        assert!(err.is_some());
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            let cfg = quick(SystemConfig::dr_strange(2));
            System::new(
                cfg,
                vec![load_trace(9, 64 * 1024), rng_trace(150)],
                Box::new(DRange::new(7)),
            )
            .unwrap()
            .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.cpu_cycles, b.cpu_cycles);
        assert_eq!(a.exec_cycles(0), b.exec_cycles(0));
        assert_eq!(a.stats.rng_requests, b.stats.rng_requests);
        assert_eq!(a.stats.fill_batches, b.stats.fill_batches);
    }

    #[test]
    fn fill_mode_none_never_fills() {
        let cfg = quick(SystemConfig::dr_strange(1));
        let cfg = SystemConfig {
            fill: FillMode::None,
            routing: RngRouting::Aware,
            buffer_entries: 0,
            ..cfg
        };
        let mut sys = System::new(cfg, vec![rng_trace(200)], Box::new(DRange::new(1))).unwrap();
        let res = sys.run();
        assert_eq!(res.stats.fill_batches, 0);
        assert_eq!(res.stats.rng_served_from_buffer, 0);
        assert!(res.stats.rng_served_on_demand > 0);
    }
}
