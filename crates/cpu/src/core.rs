//! The trace-driven core model.
//!
//! Models the paper's CPU (Table 1): 4 GHz, 3-wide issue, 128-entry
//! instruction window, following Ramulator's simplistic OoO semantics:
//!
//! * up to `issue_width` instructions enter the window per cycle;
//! * non-memory instructions and stores are ready immediately; demand loads
//!   and RNG requests become ready when the memory system answers;
//! * up to `issue_width` ready instructions retire in order per cycle; a
//!   not-ready head stalls the core (counted as a memory or RNG stall);
//! * a full target queue in the memory controller blocks issue
//!   (back-pressure).

use std::cell::Cell;

use strange_dram::{CoreId, RequestId};

use crate::stats::{CoreStats, FinishSnapshot};
use crate::trace::{TraceOp, TraceSource};
use crate::window::{InstructionWindow, PendingKind};

/// The memory system as seen by a core.
///
/// Implemented by the DR-STRaNGe `System` (and by mock memories in tests).
/// All three methods may refuse a request when the relevant queue is full,
/// which stalls instruction issue.
pub trait MemorySystem {
    /// Issues a demand load of `line_addr`; returns the request id used for
    /// the completion callback, or `None` if the read queue is full.
    fn try_load(&mut self, core: CoreId, line_addr: u64) -> Option<RequestId>;

    /// Issues a writeback of `line_addr`; returns false if the write queue
    /// is full.
    fn try_store(&mut self, core: CoreId, line_addr: u64) -> bool;

    /// Issues a 64-bit random-number request; returns the request id, or
    /// `None` if the RNG path cannot accept the request now.
    fn try_rng(&mut self, core: CoreId) -> Option<RequestId>;
}

/// Configuration for one core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions issued/retired per cycle (paper: 3).
    pub issue_width: usize,
    /// Instruction window capacity (paper: 128).
    pub window_size: usize,
}

impl CoreConfig {
    /// The paper's Table 1 core: 3-wide, 128-entry window.
    pub fn paper_default() -> Self {
        CoreConfig {
            issue_width: 3,
            window_size: 128,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::paper_default()
    }
}

/// A trace-driven out-of-order core.
pub struct Core {
    id: CoreId,
    config: CoreConfig,
    window: InstructionWindow,
    trace: Box<dyn TraceSource + Send>,
    current_op: TraceOp,
    bubbles_left: u32,
    target: u64,
    finish: Option<FinishSnapshot>,
    stats: CoreStats,
    /// Memoized "fully stalled" probe result. A fully stalled core (head
    /// waiting on memory, window full) cannot change state except through
    /// [`Core::complete`], so once a probe observes the stalled state,
    /// subsequent probes are a single flag read until a completion
    /// arrives — the O(1) piece of the system-level next-event probe.
    stalled_probe: Cell<bool>,
}

impl std::fmt::Debug for Core {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Core")
            .field("id", &self.id)
            .field("config", &self.config)
            .field("retired", &self.stats.retired)
            .field("target", &self.target)
            .finish_non_exhaustive()
    }
}

impl Core {
    /// Creates a core that executes `trace` until `target` instructions have
    /// retired (and keeps running afterwards to preserve contention).
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero.
    pub fn new(
        id: CoreId,
        config: CoreConfig,
        mut trace: Box<dyn TraceSource + Send>,
        target: u64,
    ) -> Self {
        assert!(target > 0, "instruction target must be nonzero");
        let first = trace.next_op();
        Core {
            id,
            config,
            window: InstructionWindow::new(config.window_size),
            trace,
            current_op: first,
            bubbles_left: first.gap(),
            target,
            finish: None,
            stats: CoreStats::default(),
            stalled_probe: Cell::new(false),
        }
    }

    /// This core's id.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Instruction target for the finish snapshot.
    pub fn target(&self) -> u64 {
        self.target
    }

    /// Running statistics (including post-finish execution).
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Statistics frozen at the instruction target, if reached.
    pub fn finish(&self) -> Option<&FinishSnapshot> {
        self.finish.as_ref()
    }

    /// Whether the instruction target has been reached.
    pub fn is_finished(&self) -> bool {
        self.finish.is_some()
    }

    /// Delivers a completed memory request to the window.
    pub fn complete(&mut self, id: RequestId) -> bool {
        // A completion is the only event that can un-stall a fully
        // stalled core; force the next probe to recompute.
        self.stalled_probe.set(false);
        self.window.complete(id)
    }

    /// The earliest CPU cycle at or after `now` at which this core could
    /// interact with the memory system or otherwise needs cycle-by-cycle
    /// simulation, assuming no completion is delivered in the meantime.
    ///
    /// * `None` — the core is fully stalled (head instruction waiting on
    ///   memory, window full): nothing changes until a completion arrives,
    ///   so only external events bound the dead span.
    /// * `Some(t)` with `t > now` — the core is in a pure-compute stretch
    ///   (no outstanding requests, only bubble instructions until `t`);
    ///   every cycle in `now..t` can be replayed by
    ///   [`Core::skip_cycles`].
    /// * `Some(now)` — the core is active this cycle; no skipping.
    pub fn next_ready_cycle(&self, now: u64) -> Option<u64> {
        if self.stalled_probe.get() {
            return None;
        }
        let width = self.config.issue_width;
        if self.window.outstanding() > 0 {
            if self.window.head_pending().is_some() && !self.window.has_space() {
                self.stalled_probe.set(true);
                None
            } else {
                Some(now)
            }
        } else if self.config.window_size >= width {
            // With only ready entries in flight, the core consumes exactly
            // `issue_width` bubbles per cycle; the cycle that reaches the
            // trace's memory operation must run live.
            Some(now + self.bubbles_left as u64 / width as u64)
        } else {
            Some(now)
        }
    }

    /// Instructions retired over `cycles` dead pure-compute cycles, given
    /// `w0` ready entries in flight at span start: `width` per cycle once
    /// the window holds at least `width` entries (from the second cycle
    /// at the latest).
    fn pure_compute_retired(&self, w0: u64, cycles: u64) -> u64 {
        let width = self.config.issue_width as u64;
        if w0 >= width {
            width * cycles
        } else if cycles == 0 {
            0
        } else {
            w0 + width * (cycles - 1)
        }
    }

    /// The 1-based pure-compute cycle on which cumulative retirement first
    /// reaches `need` more instructions (callers guarantee it does).
    fn pure_compute_crossing(&self, w0: u64, need: u64) -> u64 {
        let width = self.config.issue_width as u64;
        if w0 >= width {
            need.div_ceil(width)
        } else if need <= w0 {
            1
        } else {
            1 + (need - w0).div_ceil(width)
        }
    }

    /// The cycle at which this core first counts as finished if the next
    /// `n` cycles are dead (no memory interaction): `Some(now)` when the
    /// target is already reached, the exact crossing cycle when a
    /// pure-compute stretch reaches it within the span, `None` otherwise.
    /// Used by the fast-forward loop to stop runs on the same
    /// finish-check boundaries as the per-cycle reference.
    pub fn finish_within(&self, now: u64, n: u64) -> Option<u64> {
        if self.finish.is_some() {
            return Some(now);
        }
        if self.window.outstanding() > 0 {
            // Stalled: nothing retires, so the target cannot be crossed.
            return None;
        }
        let w0 = self.window.len() as u64;
        if self.stats.retired + self.pure_compute_retired(w0, n) < self.target {
            return None;
        }
        let cross = self.pure_compute_crossing(w0, self.target - self.stats.retired);
        Some(now + cross - 1)
    }

    /// Replays `n` dead cycles in bulk, leaving the core in exactly the
    /// state `n` calls to [`Core::tick`] would (the caller must guarantee
    /// `now + n <= next_ready_cycle(now)`, i.e. the span is dead).
    pub fn skip_cycles(&mut self, now: u64, n: u64) {
        if n == 0 {
            return;
        }
        if self.window.outstanding() > 0 {
            // Fully stalled: only the cycle and stall counters advance.
            debug_assert!(
                self.window.head_pending().is_some() && !self.window.has_space(),
                "skip of an active core"
            );
            self.stats.cycles += n;
            match self.window.head_pending() {
                Some(PendingKind::Load) => self.stats.mem_stall_cycles += n,
                Some(PendingKind::Rng) => self.stats.rng_stall_cycles += n,
                None => {}
            }
            return;
        }
        // Pure compute: retire/issue evolve in closed form. Each cycle
        // issues exactly `width` bubbles; retirement is `width` per cycle
        // once the window holds at least `width` ready entries (from the
        // second cycle on at the latest).
        let width = self.config.issue_width as u64;
        debug_assert!(
            n <= self.bubbles_left as u64 / width,
            "skip across a memory operation"
        );
        let w0 = self.window.len() as u64;
        let total_retired = self.pure_compute_retired(w0, n);
        if self.finish.is_none() && self.stats.retired + total_retired >= self.target {
            // The instruction target is crossed mid-span: reconstruct the
            // snapshot the per-cycle path would have taken, with the exact
            // crossing cycle and the stats as of the end of that cycle's
            // retire stage.
            let cross = self.pure_compute_crossing(w0, self.target - self.stats.retired);
            let mut stats = self.stats;
            stats.cycles += cross;
            stats.retired += self.pure_compute_retired(w0, cross);
            self.finish = Some(FinishSnapshot {
                at_cycle: now + cross - 1,
                stats,
            });
        }
        self.stats.cycles += n;
        self.stats.retired += total_retired;
        self.window
            .skip_ready(total_retired as usize, (width * n) as usize);
        self.bubbles_left -= (width * n) as u32;
    }

    /// Advances the core by one CPU cycle against `mem`.
    pub fn tick<M: MemorySystem>(&mut self, now: u64, mem: &mut M) {
        self.stats.cycles += 1;

        // Retire stage.
        let retired = self.window.retire(self.config.issue_width);
        self.stats.retired += retired as u64;
        if retired == 0 {
            match self.window.head_pending() {
                Some(PendingKind::Load) => self.stats.mem_stall_cycles += 1,
                Some(PendingKind::Rng) => self.stats.rng_stall_cycles += 1,
                None => {}
            }
        }
        if self.finish.is_none() && self.stats.retired >= self.target {
            self.finish = Some(FinishSnapshot {
                at_cycle: now,
                stats: self.stats,
            });
        }

        // Issue stage.
        let mut issued = 0;
        let mut blocked = false;
        while issued < self.config.issue_width && self.window.has_space() {
            if self.bubbles_left > 0 {
                self.window.insert_ready();
                self.bubbles_left -= 1;
                issued += 1;
                continue;
            }
            match self.current_op {
                TraceOp::Load { addr, .. } => match mem.try_load(self.id, addr) {
                    Some(rid) => {
                        self.window.insert_pending(rid, PendingKind::Load);
                        self.stats.loads += 1;
                        issued += 1;
                        self.advance_trace();
                    }
                    None => {
                        blocked = true;
                        break;
                    }
                },
                TraceOp::Store { addr, .. } => {
                    if mem.try_store(self.id, addr) {
                        self.window.insert_ready();
                        self.stats.stores += 1;
                        issued += 1;
                        self.advance_trace();
                    } else {
                        blocked = true;
                        break;
                    }
                }
                TraceOp::Rng { .. } => {
                    // Past the instruction target the core keeps running to
                    // preserve memory contention for co-runners, but stops
                    // consuming random numbers: post-target RNG traffic
                    // would make equal-work comparisons (energy, command
                    // counts) depend on how fast the finished RNG app
                    // happens to free-run under each design.
                    if self.finish.is_some() {
                        self.window.insert_ready();
                        issued += 1;
                        self.advance_trace();
                        continue;
                    }
                    match mem.try_rng(self.id) {
                        Some(rid) => {
                            self.window.insert_pending(rid, PendingKind::Rng);
                            self.stats.rng_requests += 1;
                            issued += 1;
                            self.advance_trace();
                        }
                        None => {
                            blocked = true;
                            break;
                        }
                    }
                }
            }
        }
        if blocked && issued == 0 {
            self.stats.issue_blocked_cycles += 1;
        }
    }

    fn advance_trace(&mut self) {
        self.current_op = self.trace.next_op();
        self.bubbles_left = self.current_op.gap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::LoopTrace;

    /// A memory that answers loads after a fixed latency, managed manually.
    struct MockMem {
        next_id: RequestId,
        inflight: Vec<(RequestId, u64)>,
        latency: u64,
        accept_loads: bool,
        accept_rng: bool,
    }

    impl MockMem {
        fn new(latency: u64) -> Self {
            MockMem {
                next_id: 0,
                inflight: Vec::new(),
                latency,
                accept_loads: true,
                accept_rng: true,
            }
        }

        fn ready_at(&mut self, now: u64) -> Vec<RequestId> {
            let mut out = Vec::new();
            self.inflight.retain(|&(id, due)| {
                if due <= now {
                    out.push(id);
                    false
                } else {
                    true
                }
            });
            out
        }
    }

    impl MemorySystem for MockMem {
        fn try_load(&mut self, _core: CoreId, _addr: u64) -> Option<RequestId> {
            if !self.accept_loads {
                return None;
            }
            let id = self.next_id;
            self.next_id += 1;
            self.inflight.push((id, self.latency));
            Some(id)
        }

        fn try_store(&mut self, _core: CoreId, _addr: u64) -> bool {
            true
        }

        fn try_rng(&mut self, _core: CoreId) -> Option<RequestId> {
            if !self.accept_rng {
                return None;
            }
            let id = self.next_id;
            self.next_id += 1;
            self.inflight.push((id, self.latency));
            Some(id)
        }
    }

    fn run(core: &mut Core, mem: &mut MockMem, cycles: u64) {
        let mut base = 0;
        for now in 0..cycles {
            // Reset completion clocks relative to issue: deliver anything due.
            for id in mem.ready_at(now.saturating_sub(base)) {
                core.complete(id);
            }
            core.tick(now, mem);
            base = 0;
        }
    }

    #[test]
    fn compute_bound_trace_runs_at_issue_width() {
        // gap 299 + 1 load per 300 instructions, loads answered instantly.
        let trace = LoopTrace::new(vec![TraceOp::Load { gap: 299, addr: 0 }]);
        let mut core = Core::new(0, CoreConfig::paper_default(), Box::new(trace), 3000);
        let mut mem = MockMem::new(0);
        for now in 0..5000 {
            for id in mem.ready_at(now) {
                core.complete(id);
            }
            core.tick(now, &mut mem);
            if core.is_finished() {
                break;
            }
        }
        let f = core.finish().expect("must finish");
        let ipc = core.target() as f64 / f.at_cycle as f64;
        assert!(ipc > 2.5, "near-3 IPC expected, got {ipc}");
    }

    #[test]
    fn memory_stalls_accumulate_with_slow_memory() {
        // One load every 10 instructions, 200-cycle latency: window fills.
        let trace = LoopTrace::new(vec![TraceOp::Load { gap: 9, addr: 0 }]);
        let mut core = Core::new(0, CoreConfig::paper_default(), Box::new(trace), 1000);
        let mut mem = MockMem::new(u64::MAX); // never answers
        run(&mut core, &mut mem, 500);
        assert!(!core.is_finished());
        assert!(core.stats().mem_stall_cycles > 300);
    }

    #[test]
    fn rng_stalls_counted_separately() {
        let trace = LoopTrace::new(vec![TraceOp::Rng { gap: 0 }]);
        let mut core = Core::new(0, CoreConfig::paper_default(), Box::new(trace), 100);
        let mut mem = MockMem::new(u64::MAX);
        run(&mut core, &mut mem, 300);
        assert!(core.stats().rng_stall_cycles > 100);
        assert_eq!(core.stats().mem_stall_cycles, 0);
    }

    #[test]
    fn issue_blocked_when_memory_refuses() {
        let trace = LoopTrace::new(vec![TraceOp::Load { gap: 0, addr: 0 }]);
        let mut core = Core::new(0, CoreConfig::paper_default(), Box::new(trace), 100);
        let mut mem = MockMem::new(0);
        mem.accept_loads = false;
        run(&mut core, &mut mem, 100);
        assert!(core.stats().issue_blocked_cycles > 50);
        assert_eq!(core.stats().loads, 0);
    }

    #[test]
    fn finish_snapshot_freezes_at_target() {
        let trace = LoopTrace::new(vec![TraceOp::Store { gap: 9, addr: 0 }]);
        let mut core = Core::new(0, CoreConfig::paper_default(), Box::new(trace), 300);
        let mut mem = MockMem::new(0);
        run(&mut core, &mut mem, 1000);
        let f = core.finish().expect("finished");
        assert!(f.stats.retired >= 300);
        // Core kept running after the target.
        assert!(core.stats().retired > f.stats.retired);
    }

    #[test]
    fn stores_do_not_block_retirement() {
        let trace = LoopTrace::new(vec![TraceOp::Store { gap: 0, addr: 0 }]);
        let mut core = Core::new(0, CoreConfig::paper_default(), Box::new(trace), 300);
        let mut mem = MockMem::new(u64::MAX); // irrelevant for stores
        run(&mut core, &mut mem, 300);
        assert!(core.is_finished());
        assert_eq!(core.stats().mem_stall_cycles, 0);
    }

    /// A memory that answers after a fixed latency relative to issue time.
    struct LatencyMem {
        next_id: RequestId,
        now: u64,
        latency: u64,
        inflight: Vec<(RequestId, u64)>,
    }

    impl LatencyMem {
        fn new(latency: u64) -> Self {
            LatencyMem {
                next_id: 0,
                now: 0,
                latency,
                inflight: Vec::new(),
            }
        }

        fn deliver_due(&mut self, now: u64) -> Vec<RequestId> {
            let mut out = Vec::new();
            self.inflight.retain(|&(id, due)| {
                if due <= now {
                    out.push(id);
                    false
                } else {
                    true
                }
            });
            out
        }

        fn next_due(&self) -> Option<u64> {
            self.inflight.iter().map(|&(_, due)| due).min()
        }
    }

    impl MemorySystem for LatencyMem {
        fn try_load(&mut self, _core: CoreId, _addr: u64) -> Option<RequestId> {
            self.next_id += 1;
            self.inflight.push((self.next_id, self.now + self.latency));
            Some(self.next_id)
        }

        fn try_store(&mut self, _core: CoreId, _addr: u64) -> bool {
            true
        }

        fn try_rng(&mut self, _core: CoreId) -> Option<RequestId> {
            self.next_id += 1;
            self.inflight.push((self.next_id, self.now + self.latency));
            Some(self.next_id)
        }
    }

    fn drive_reference(core: &mut Core, mem: &mut LatencyMem, cycles: u64) {
        for now in 0..cycles {
            mem.now = now;
            for id in mem.deliver_due(now) {
                core.complete(id);
            }
            core.tick(now, mem);
        }
    }

    fn drive_fast_forward(core: &mut Core, mem: &mut LatencyMem, cycles: u64) -> u64 {
        let mut skipped = 0;
        let mut now = 0;
        while now < cycles {
            mem.now = now;
            for id in mem.deliver_due(now) {
                core.complete(id);
            }
            let span_end = match core.next_ready_cycle(now) {
                None => mem.next_due().expect("stalled core has a request").min(cycles),
                Some(t) => t.min(cycles),
            };
            if span_end > now {
                core.skip_cycles(now, span_end - now);
                skipped += span_end - now;
                now = span_end;
            } else {
                core.tick(now, mem);
                now += 1;
            }
        }
        skipped
    }

    fn equivalence_trace(ops: Vec<TraceOp>, latency: u64, target: u64, cycles: u64) {
        let mk = |ops: &[TraceOp]| {
            Core::new(
                0,
                CoreConfig::paper_default(),
                Box::new(LoopTrace::new(ops.to_vec())),
                target,
            )
        };
        let mut reference = mk(&ops);
        let mut fast = mk(&ops);
        drive_reference(&mut reference, &mut LatencyMem::new(latency), cycles);
        let skipped = drive_fast_forward(&mut fast, &mut LatencyMem::new(latency), cycles);
        assert!(skipped > cycles / 2, "test must exercise skipping: {skipped}");
        assert_eq!(fast.stats(), reference.stats());
        assert_eq!(
            fast.finish().map(|f| (f.at_cycle, f.stats)),
            reference.finish().map(|f| (f.at_cycle, f.stats))
        );
    }

    #[test]
    fn skip_matches_per_cycle_for_compute_bound_trace() {
        equivalence_trace(vec![TraceOp::Load { gap: 2999, addr: 0 }], 0, 3000, 5000);
    }

    #[test]
    fn skip_matches_per_cycle_for_memory_stalled_trace() {
        equivalence_trace(vec![TraceOp::Load { gap: 9, addr: 0 }], 400, 2000, 20_000);
    }

    #[test]
    fn skip_matches_per_cycle_for_rng_stalled_trace() {
        equivalence_trace(vec![TraceOp::Rng { gap: 600 }], 900, 2000, 30_000);
    }

    #[test]
    fn skip_matches_per_cycle_across_finish_boundary() {
        // Target crossed mid pure-compute span: the snapshot cycle and
        // stats must match the per-cycle path exactly.
        equivalence_trace(vec![TraceOp::Load { gap: 4999, addr: 0 }], 10, 1234, 4000);
    }

    #[test]
    fn next_ready_cycle_reports_dormancy() {
        let trace = LoopTrace::new(vec![TraceOp::Rng { gap: 0 }]);
        let mut core = Core::new(0, CoreConfig::paper_default(), Box::new(trace), 100);
        let mut mem = LatencyMem::new(u64::MAX / 2);
        let mut now = 0;
        // Run until the window fills with the head stalled on the RNG op.
        while core.next_ready_cycle(now).is_some() {
            core.tick(now, &mut mem);
            now += 1;
            assert!(now < 1000, "core must reach the fully stalled state");
        }
        assert!(core.next_ready_cycle(now).is_none());
        let before = *core.stats();
        core.skip_cycles(now, 500);
        assert_eq!(core.stats().cycles, before.cycles + 500);
        assert_eq!(
            core.stats().rng_stall_cycles,
            before.rng_stall_cycles + 500
        );
    }

    #[test]
    fn mpki_matches_trace_shape() {
        // 1 load per 100 instructions → MPKI 10.
        let trace = LoopTrace::new(vec![TraceOp::Load { gap: 99, addr: 0 }]);
        let mut core = Core::new(0, CoreConfig::paper_default(), Box::new(trace), 10_000);
        let mut mem = MockMem::new(0);
        for now in 0..20_000 {
            for id in mem.ready_at(now) {
                core.complete(id);
            }
            core.tick(now, &mut mem);
            if core.is_finished() {
                break;
            }
        }
        let f = core.finish().expect("finished");
        let mpki = f.stats.mpki();
        assert!((mpki - 10.0).abs() < 1.0, "mpki = {mpki}");
    }
}
