//! Trace-driven out-of-order core model for the DR-STRaNGe reproduction.
//!
//! Implements the CPU side of the paper's simulated system (Table 1):
//! 4 GHz, 3-wide issue, 128-entry instruction window, in the style of
//! Ramulator's simplistic OoO core model extended with random-number
//! requests (the paper extends Ramulator's core model the same way,
//! Section 7).
//!
//! * [`TraceOp`] / [`TraceSource`] — the instruction-trace abstraction
//!   (loads, stores, RNG requests, separated by bubble instructions).
//! * [`InstructionWindow`] — the in-order-retire reorder buffer.
//! * [`Core`] — the per-cycle issue/retire machine with memory-stall (MCPI)
//!   and RNG-stall accounting.
//! * [`MemorySystem`] — the interface a memory hierarchy implements to
//!   accept loads/stores/RNG requests (implemented by `strange-core`'s
//!   `System`).
//!
//! # Examples
//!
//! Running a tiny compute-bound core against a memory that answers
//! instantly:
//!
//! ```
//! use strange_cpu::{Core, CoreConfig, LoopTrace, MemorySystem, TraceOp};
//! use strange_dram::{CoreId, RequestId};
//!
//! struct InstantMemory(RequestId, Vec<RequestId>);
//! impl MemorySystem for InstantMemory {
//!     fn try_load(&mut self, _c: CoreId, _a: u64) -> Option<RequestId> {
//!         self.0 += 1;
//!         self.1.push(self.0);
//!         Some(self.0)
//!     }
//!     fn try_store(&mut self, _c: CoreId, _a: u64) -> bool { true }
//!     fn try_rng(&mut self, _c: CoreId) -> Option<RequestId> { None }
//! }
//!
//! let trace = LoopTrace::new(vec![TraceOp::Load { gap: 9, addr: 0 }]);
//! let mut core = Core::new(0, CoreConfig::paper_default(), Box::new(trace), 1_000);
//! let mut mem = InstantMemory(0, Vec::new());
//! for now in 0..10_000 {
//!     for id in mem.1.drain(..).collect::<Vec<_>>() {
//!         core.complete(id);
//!     }
//!     core.tick(now, &mut mem);
//!     if core.is_finished() {
//!         break;
//!     }
//! }
//! assert!(core.is_finished());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod core;
mod stats;
mod trace;
mod window;

pub use crate::core::{Core, CoreConfig, MemorySystem};
pub use stats::{CoreStats, FinishSnapshot};
pub use trace::{LoopTrace, TraceOp, TraceSource};
pub use window::{InstructionWindow, PendingKind};
