//! Per-core execution statistics and the finish-line snapshot used for
//! equal-work performance comparisons.

/// Counters accumulated by a [`crate::Core`] while executing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// CPU cycles simulated.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Cycles in which nothing retired because the window head waited on a
    /// demand load.
    pub mem_stall_cycles: u64,
    /// Cycles in which nothing retired because the window head waited on a
    /// random-number request.
    pub rng_stall_cycles: u64,
    /// Cycles in which instruction issue was blocked by memory-controller
    /// queue back-pressure.
    pub issue_blocked_cycles: u64,
    /// Demand loads sent to memory.
    pub loads: u64,
    /// Writebacks sent to memory.
    pub stores: u64,
    /// Random-number requests issued.
    pub rng_requests: u64,
}

impl CoreStats {
    /// Instructions per cycle so far (0 when no cycles have elapsed).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Memory stall cycles per instruction, counting both demand-load and
    /// RNG stalls (the paper's MCPI, which for RNG applications includes
    /// time stalled on random number generation).
    pub fn mcpi(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            (self.mem_stall_cycles + self.rng_stall_cycles) as f64 / self.retired as f64
        }
    }

    /// Fraction of cycles stalled on RNG (the paper's "time spent in random
    /// number generation", up to 58.8% for 5 Gb/s RNG apps, Section 3).
    pub fn rng_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rng_stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Misses (loads) per kilo-instruction actually produced — used to
    /// sanity-check synthetic workloads against their target MPKI.
    pub fn mpki(&self) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            self.loads as f64 * 1000.0 / self.retired as f64
        }
    }
}

/// Statistics frozen at the moment a core retired its instruction target.
///
/// Cores keep executing after their target (to preserve contention for
/// co-runners), so end-of-simulation counters are not the right basis for
/// equal-work comparisons; this snapshot is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FinishSnapshot {
    /// CPU cycle at which the instruction target was reached.
    pub at_cycle: u64,
    /// Counter values at that moment.
    pub stats: CoreStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mcpi_zero_safe() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mcpi(), 0.0);
        assert_eq!(s.rng_stall_fraction(), 0.0);
        assert_eq!(s.mpki(), 0.0);
    }

    #[test]
    fn mcpi_counts_both_stall_kinds() {
        let s = CoreStats {
            retired: 100,
            mem_stall_cycles: 30,
            rng_stall_cycles: 20,
            ..CoreStats::default()
        };
        assert_eq!(s.mcpi(), 0.5);
    }

    #[test]
    fn mpki_scales_per_kilo_instruction() {
        let s = CoreStats {
            retired: 2000,
            loads: 50,
            ..CoreStats::default()
        };
        assert_eq!(s.mpki(), 25.0);
    }
}
