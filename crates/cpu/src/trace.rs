//! Instruction traces.
//!
//! The core model is trace-driven in the style of Ramulator's "simplistic
//! OoO" CPU: a trace is a stream of *memory events*, each preceded by a
//! number of non-memory (bubble) instructions. Synthetic generators in
//! `strange-workloads` implement [`TraceSource`]; fixed vectors are useful
//! in tests.

/// One trace event: a run of non-memory instructions followed by a memory
/// operation (or random-number request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// `gap` non-memory instructions, then a demand load of the cache line
    /// at flat line address `addr`. The load blocks retirement until data
    /// returns.
    Load {
        /// Non-memory instructions preceding the load.
        gap: u32,
        /// Flat cache-line address.
        addr: u64,
    },
    /// `gap` non-memory instructions, then a writeback of `addr`. Stores do
    /// not block retirement (post-commit writebacks) but do occupy write
    /// queue capacity.
    Store {
        /// Non-memory instructions preceding the store.
        gap: u32,
        /// Flat cache-line address.
        addr: u64,
    },
    /// `gap` non-memory instructions, then a blocking 64-bit random-number
    /// request (the paper's synthetic RNG benchmarks, Section 7).
    Rng {
        /// Non-memory instructions preceding the request.
        gap: u32,
    },
}

impl TraceOp {
    /// The bubble-instruction count preceding the memory event.
    pub fn gap(&self) -> u32 {
        match *self {
            TraceOp::Load { gap, .. } | TraceOp::Store { gap, .. } | TraceOp::Rng { gap } => gap,
        }
    }

    /// Total instructions this event accounts for (bubbles + the memory
    /// instruction itself).
    pub fn instructions(&self) -> u64 {
        self.gap() as u64 + 1
    }
}

/// An infinite stream of trace events.
///
/// Traces never end: generators loop or keep generating, because cores that
/// reach their instruction target keep executing to preserve memory
/// contention until every core in the workload finishes (standard
/// multi-programmed methodology).
pub trait TraceSource {
    /// Produces the next trace event.
    fn next_op(&mut self) -> TraceOp;
}

/// A trace that cycles through a fixed vector of events; handy for tests
/// and microbenchmarks.
///
/// # Examples
///
/// ```
/// use strange_cpu::{LoopTrace, TraceOp, TraceSource};
///
/// let mut t = LoopTrace::new(vec![TraceOp::Load { gap: 2, addr: 64 }]);
/// assert_eq!(t.next_op(), TraceOp::Load { gap: 2, addr: 64 });
/// assert_eq!(t.next_op(), TraceOp::Load { gap: 2, addr: 64 });
/// ```
#[derive(Debug, Clone)]
pub struct LoopTrace {
    ops: Vec<TraceOp>,
    pos: usize,
}

impl LoopTrace {
    /// Creates a looping trace over `ops`.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty (an empty trace cannot be an infinite
    /// stream).
    pub fn new(ops: Vec<TraceOp>) -> Self {
        assert!(!ops.is_empty(), "trace must contain at least one event");
        LoopTrace { ops, pos: 0 }
    }
}

impl TraceSource for LoopTrace {
    fn next_op(&mut self) -> TraceOp {
        let op = self.ops[self.pos];
        self.pos = (self.pos + 1) % self.ops.len();
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_op_accounting() {
        let op = TraceOp::Load { gap: 9, addr: 0 };
        assert_eq!(op.gap(), 9);
        assert_eq!(op.instructions(), 10);
        assert_eq!(TraceOp::Rng { gap: 0 }.instructions(), 1);
    }

    #[test]
    fn loop_trace_wraps() {
        let mut t = LoopTrace::new(vec![
            TraceOp::Load { gap: 0, addr: 1 },
            TraceOp::Store { gap: 1, addr: 2 },
        ]);
        assert_eq!(t.next_op(), TraceOp::Load { gap: 0, addr: 1 });
        assert_eq!(t.next_op(), TraceOp::Store { gap: 1, addr: 2 });
        assert_eq!(t.next_op(), TraceOp::Load { gap: 0, addr: 1 });
    }

    #[test]
    #[should_panic(expected = "at least one event")]
    fn empty_loop_trace_rejected() {
        LoopTrace::new(Vec::new());
    }
}
