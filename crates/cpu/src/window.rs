//! The instruction window (reorder-buffer abstraction).
//!
//! Follows Ramulator's simplistic OoO model: the window holds in-flight
//! instructions in program order; non-memory instructions are ready on
//! insertion, loads and RNG requests become ready when their data returns.
//! Retirement happens in order from the head, up to the issue width per
//! cycle; a not-ready head stalls the core.

use std::collections::VecDeque;

use strange_dram::RequestId;

/// Why a window entry is (or was) not ready.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingKind {
    /// Waiting on a demand load.
    Load,
    /// Waiting on a random-number request.
    Rng,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    ready: bool,
    pending: Option<(RequestId, PendingKind)>,
}

/// A fixed-capacity, in-order-retire instruction window.
///
/// # Examples
///
/// ```
/// use strange_cpu::{InstructionWindow, PendingKind};
///
/// let mut w = InstructionWindow::new(4);
/// w.insert_ready();
/// w.insert_pending(7, PendingKind::Load);
/// assert_eq!(w.retire(2), 1); // the load blocks the second retirement
/// w.complete(7);
/// assert_eq!(w.retire(2), 1);
/// assert!(w.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct InstructionWindow {
    capacity: usize,
    entries: VecDeque<Entry>,
    outstanding: usize,
}

impl InstructionWindow {
    /// Creates a window with `capacity` entries (paper Table 1: 128).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be nonzero");
        InstructionWindow {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            outstanding: 0,
        }
    }

    /// Number of in-flight instructions still waiting on a memory answer.
    /// Zero means every entry is ready — the window cannot receive a
    /// completion, so the core's evolution is a pure function of its trace.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Maximum number of in-flight instructions.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of in-flight instructions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the window holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether another instruction can be inserted.
    pub fn has_space(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Inserts a ready (non-memory or store) instruction.
    ///
    /// # Panics
    ///
    /// Panics if the window is full; callers must check
    /// [`InstructionWindow::has_space`] first.
    pub fn insert_ready(&mut self) {
        assert!(self.has_space(), "window overflow");
        self.entries.push_back(Entry {
            ready: true,
            pending: None,
        });
    }

    /// Inserts an instruction that waits on memory request `id`.
    ///
    /// # Panics
    ///
    /// Panics if the window is full.
    pub fn insert_pending(&mut self, id: RequestId, kind: PendingKind) {
        assert!(self.has_space(), "window overflow");
        self.entries.push_back(Entry {
            ready: false,
            pending: Some((id, kind)),
        });
        self.outstanding += 1;
    }

    /// Marks the instruction waiting on request `id` as ready. Returns true
    /// if a matching entry was found.
    pub fn complete(&mut self, id: RequestId) -> bool {
        for e in self.entries.iter_mut() {
            if let Some((rid, _)) = e.pending {
                if rid == id && !e.ready {
                    e.ready = true;
                    self.outstanding -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Fast-forward helper: retires `retired` entries and inserts
    /// `inserted` ready ones in bulk. Only valid while nothing is
    /// outstanding (every entry is an indistinguishable ready slot), which
    /// is exactly the regime `Core::skip_cycles` uses it in.
    ///
    /// # Panics
    ///
    /// Panics if an entry is outstanding, more entries would be retired
    /// than pass through, or the result would overflow the window.
    pub fn skip_ready(&mut self, retired: usize, inserted: usize) {
        assert_eq!(self.outstanding, 0, "bulk skip with outstanding entries");
        // Retirement draws from both the initial entries and the ones
        // inserted during the span, so only the net length must balance.
        assert!(
            retired <= self.entries.len() + inserted,
            "retiring more than pass through the window"
        );
        let new_len = self.entries.len() + inserted - retired;
        assert!(new_len <= self.capacity, "window overflow");
        self.entries.resize(
            new_len,
            Entry {
                ready: true,
                pending: None,
            },
        );
    }

    /// Retires up to `width` ready instructions from the head; returns how
    /// many retired.
    pub fn retire(&mut self, width: usize) -> usize {
        let mut n = 0;
        while n < width {
            match self.entries.front() {
                Some(e) if e.ready => {
                    self.entries.pop_front();
                    n += 1;
                }
                _ => break,
            }
        }
        n
    }

    /// If the head instruction is stalled on memory, the kind it waits on.
    pub fn head_pending(&self) -> Option<PendingKind> {
        match self.entries.front() {
            Some(e) if !e.ready => e.pending.map(|(_, k)| k),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retires_in_order_up_to_width() {
        let mut w = InstructionWindow::new(8);
        for _ in 0..5 {
            w.insert_ready();
        }
        assert_eq!(w.retire(3), 3);
        assert_eq!(w.retire(3), 2);
        assert!(w.is_empty());
    }

    #[test]
    fn pending_head_blocks_retirement_of_ready_followers() {
        let mut w = InstructionWindow::new(8);
        w.insert_pending(1, PendingKind::Load);
        w.insert_ready();
        w.insert_ready();
        assert_eq!(w.retire(3), 0);
        assert_eq!(w.head_pending(), Some(PendingKind::Load));
        assert!(w.complete(1));
        assert_eq!(w.retire(3), 3);
    }

    #[test]
    fn complete_unknown_id_returns_false() {
        let mut w = InstructionWindow::new(4);
        w.insert_pending(1, PendingKind::Rng);
        assert!(!w.complete(99));
        assert!(w.complete(1));
        assert!(!w.complete(1), "double completion is rejected");
    }

    #[test]
    fn rng_head_reports_rng_kind() {
        let mut w = InstructionWindow::new(4);
        w.insert_pending(5, PendingKind::Rng);
        assert_eq!(w.head_pending(), Some(PendingKind::Rng));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut w = InstructionWindow::new(2);
        w.insert_ready();
        w.insert_ready();
        assert!(!w.has_space());
    }

    #[test]
    #[should_panic(expected = "window overflow")]
    fn overflow_panics() {
        let mut w = InstructionWindow::new(1);
        w.insert_ready();
        w.insert_ready();
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn zero_capacity_rejected() {
        InstructionWindow::new(0);
    }
}
