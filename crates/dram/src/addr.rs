//! DRAM address geometry and physical-address mapping.
//!
//! The simulated system (paper Table 1) has 4 channels, 1 rank per channel,
//! 8 banks per rank, and 64K rows per bank. Addresses are managed at
//! cache-line (64 B) granularity; the default mapping is Ramulator's
//! `RoBaRaCoCh` (row : bank : rank : column : channel, MSB→LSB), which
//! interleaves consecutive cache lines across channels for bandwidth and
//! keeps a row's columns together for row-buffer locality.

use crate::ConfigError;

/// Cache-line size in bytes (the granularity of all simulated accesses).
pub const LINE_BYTES: u64 = 64;

/// DRAM geometry: how many channels/ranks/banks/rows/columns exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Number of independent memory channels.
    pub channels: u32,
    /// Ranks per channel.
    pub ranks: u32,
    /// Banks per rank.
    pub banks: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Cache-line-sized columns per row (128 × 64 B = 8 KiB row).
    pub cols: u32,
}

impl Geometry {
    /// The paper's Table 1 geometry: 4 channels × 1 rank × 8 banks × 64 K
    /// rows, with 8 KiB rows (128 cache lines).
    pub fn paper_default() -> Self {
        Geometry {
            channels: 4,
            ranks: 1,
            banks: 8,
            rows: 65_536,
            cols: 128,
        }
    }

    /// Validates that every dimension is nonzero.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] naming the first zero field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let fields: [(&'static str, u32); 5] = [
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("banks", self.banks),
            ("rows", self.rows),
            ("cols", self.cols),
        ];
        for (field, v) in fields {
            if v == 0 {
                return Err(ConfigError::InvalidParameter {
                    field,
                    constraint: "be nonzero",
                });
            }
        }
        Ok(())
    }

    /// Total capacity in cache lines.
    pub fn total_lines(&self) -> u64 {
        self.channels as u64 * self.ranks as u64 * self.banks as u64 * self.rows as u64
            * self.cols as u64
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_lines() * LINE_BYTES
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::paper_default()
    }
}

/// A fully decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramAddress {
    /// Channel index.
    pub channel: u32,
    /// Rank index within the channel.
    pub rank: u32,
    /// Bank index within the rank.
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Column (cache line) index within the row.
    pub col: u32,
}

/// Maps flat cache-line addresses to DRAM locations (`RoBaRaCoCh`).
///
/// # Examples
///
/// ```
/// use strange_dram::{AddressMapping, Geometry};
///
/// let map = AddressMapping::new(Geometry::paper_default()).unwrap();
/// // Consecutive cache lines land on consecutive channels.
/// let a = map.decode(0);
/// let b = map.decode(1);
/// assert_eq!(a.channel, 0);
/// assert_eq!(b.channel, 1);
/// // Round trip.
/// assert_eq!(map.encode(&a), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    geometry: Geometry,
}

impl AddressMapping {
    /// Creates a mapping over the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] when the geometry has a zero
    /// dimension.
    pub fn new(geometry: Geometry) -> Result<Self, ConfigError> {
        geometry.validate()?;
        Ok(AddressMapping { geometry })
    }

    /// The geometry this mapping was built over.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Decodes a flat cache-line address into a DRAM location.
    ///
    /// Addresses beyond the total capacity wrap (the generators produce
    /// in-range addresses; wrapping keeps the function total).
    pub fn decode(&self, line_addr: u64) -> DramAddress {
        let g = &self.geometry;
        let mut a = line_addr;
        let channel = (a % g.channels as u64) as u32;
        a /= g.channels as u64;
        let col = (a % g.cols as u64) as u32;
        a /= g.cols as u64;
        let rank = (a % g.ranks as u64) as u32;
        a /= g.ranks as u64;
        let bank = (a % g.banks as u64) as u32;
        a /= g.banks as u64;
        let row = (a % g.rows as u64) as u32;
        DramAddress {
            channel,
            rank,
            bank,
            row,
            col,
        }
    }

    /// Encodes a DRAM location back into a flat cache-line address.
    ///
    /// Inverse of [`AddressMapping::decode`] for in-range locations.
    pub fn encode(&self, addr: &DramAddress) -> u64 {
        let g = &self.geometry;
        let mut a = addr.row as u64;
        a = a * g.banks as u64 + addr.bank as u64;
        a = a * g.ranks as u64 + addr.rank as u64;
        a = a * g.cols as u64 + addr.col as u64;
        a = a * g.channels as u64 + addr.channel as u64;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_geometry_capacity_is_16gib() {
        // 4 ch × 1 rank × 8 banks × 64 Ki rows × 8 KiB rows = 16 GiB.
        let g = Geometry::paper_default();
        assert_eq!(g.total_bytes(), 16 * 1024 * 1024 * 1024);
    }

    #[test]
    fn zero_dimension_rejected() {
        let mut g = Geometry::paper_default();
        g.banks = 0;
        assert!(matches!(
            g.validate(),
            Err(ConfigError::InvalidParameter { field: "banks", .. })
        ));
    }

    #[test]
    fn channel_interleave_is_line_granular() {
        let map = AddressMapping::new(Geometry::paper_default()).unwrap();
        for i in 0..8u64 {
            assert_eq!(map.decode(i).channel, (i % 4) as u32);
        }
    }

    #[test]
    fn same_row_spans_consecutive_channel_strides() {
        let map = AddressMapping::new(Geometry::paper_default()).unwrap();
        // Lines 0 and 4 differ only in column (same channel 0).
        let a = map.decode(0);
        let b = map.decode(4);
        assert_eq!(a.channel, b.channel);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn decode_wraps_beyond_capacity() {
        let map = AddressMapping::new(Geometry::paper_default()).unwrap();
        let cap = map.geometry().total_lines();
        assert_eq!(map.decode(cap), map.decode(0));
    }

    proptest! {
        /// encode(decode(x)) == x for all in-range line addresses.
        #[test]
        fn roundtrip(line in 0u64..Geometry::paper_default().total_lines()) {
            let map = AddressMapping::new(Geometry::paper_default()).unwrap();
            let decoded = map.decode(line);
            prop_assert_eq!(map.encode(&decoded), line);
        }

        /// Decoded fields are always in range.
        #[test]
        fn fields_in_range(line in any::<u64>()) {
            let g = Geometry::paper_default();
            let map = AddressMapping::new(g).unwrap();
            let d = map.decode(line);
            prop_assert!(d.channel < g.channels);
            prop_assert!(d.rank < g.ranks);
            prop_assert!(d.bank < g.banks);
            prop_assert!(d.row < g.rows);
            prop_assert!(d.col < g.cols);
        }
    }
}
