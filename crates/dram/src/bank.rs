//! Bank, rank, and data-bus timing state machines.
//!
//! Each bank tracks its open row and the earliest cycle at which each
//! command class may next be issued to it; ranks add the cross-bank
//! activation constraints (tRRD, tFAW) and refresh locking; the per-channel
//! data bus adds column-command turnaround constraints (tCCD, tRTW,
//! write-to-read).

use crate::timing::TimingParams;

/// Per-bank state: the open row (if any) and next-allowed command cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bank {
    open_row: Option<u32>,
    next_act: u64,
    next_read: u64,
    next_write: u64,
    next_pre: u64,
}

impl Bank {
    /// A bank in the precharged state with no timing debts.
    pub fn new() -> Self {
        Bank {
            open_row: None,
            next_act: 0,
            next_read: 0,
            next_write: 0,
            next_pre: 0,
        }
    }

    /// The currently open row, if the bank is active.
    pub fn open_row(&self) -> Option<u32> {
        self.open_row
    }

    /// Whether `row` is open in this bank (a row-buffer hit).
    pub fn is_row_hit(&self, row: u32) -> bool {
        self.open_row == Some(row)
    }

    /// Whether the bank is precharged (no open row).
    pub fn is_precharged(&self) -> bool {
        self.open_row.is_none()
    }

    /// Earliest cycle an ACT can be issued (bank-local constraint only).
    pub fn next_act_allowed(&self) -> u64 {
        self.next_act
    }

    /// Earliest cycle a RD can be issued (requires the row to be open).
    pub fn next_read_allowed(&self) -> u64 {
        self.next_read
    }

    /// Earliest cycle a WR can be issued (requires the row to be open).
    pub fn next_write_allowed(&self) -> u64 {
        self.next_write
    }

    /// Earliest cycle a PRE can be issued.
    pub fn next_pre_allowed(&self) -> u64 {
        self.next_pre
    }

    /// Applies an ACT at cycle `now`, opening `row`.
    ///
    /// # Panics
    ///
    /// Debug-asserts the bank is precharged and `now` respects tRC.
    pub fn activate(&mut self, now: u64, row: u32, t: &TimingParams) {
        debug_assert!(self.is_precharged(), "ACT to an active bank");
        debug_assert!(now >= self.next_act, "ACT violates tRC/tRP");
        self.open_row = Some(row);
        self.next_read = now + t.trcd as u64;
        self.next_write = now + t.trcd as u64;
        self.next_pre = now + t.tras as u64;
        self.next_act = now + t.trc as u64;
    }

    /// Applies a RD at cycle `now`. Returns the cycle of the last data beat.
    ///
    /// # Panics
    ///
    /// Debug-asserts the row is open and `now` respects tRCD/tCCD debts.
    pub fn read(&mut self, now: u64, t: &TimingParams) -> u64 {
        debug_assert!(self.open_row.is_some(), "RD to a precharged bank");
        debug_assert!(now >= self.next_read, "RD violates tRCD");
        self.next_pre = self.next_pre.max(now + t.trtp as u64);
        now + (t.cl + t.tbl) as u64
    }

    /// Applies a WR at cycle `now`. Returns the cycle the write data (and
    /// recovery) completes.
    ///
    /// # Panics
    ///
    /// Debug-asserts the row is open and `now` respects tRCD debts.
    pub fn write(&mut self, now: u64, t: &TimingParams) -> u64 {
        debug_assert!(self.open_row.is_some(), "WR to a precharged bank");
        debug_assert!(now >= self.next_write, "WR violates tRCD");
        let done = now + (t.cwl + t.tbl + t.twr) as u64;
        self.next_pre = self.next_pre.max(done);
        done
    }

    /// Applies a PRE at cycle `now`, closing the row.
    ///
    /// # Panics
    ///
    /// Debug-asserts `now` respects tRAS/tRTP/tWR debts.
    pub fn precharge(&mut self, now: u64, t: &TimingParams) {
        debug_assert!(now >= self.next_pre, "PRE violates tRAS/tRTP/tWR");
        self.open_row = None;
        self.next_act = self.next_act.max(now + t.trp as u64);
    }

    /// Applies a refresh lock: the bank may not be activated until `until`.
    pub fn lock_until(&mut self, until: u64) {
        self.next_act = self.next_act.max(until);
    }
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

/// Per-rank activation bookkeeping: tRRD spacing and the tFAW window.
#[derive(Debug, Clone)]
pub struct RankTiming {
    next_act: u64,
    /// Cycle stamps of the last four ACTs (ring buffer) for tFAW.
    act_window: [u64; 4],
    act_head: usize,
}

impl RankTiming {
    /// A rank with no activation debts.
    pub fn new() -> Self {
        RankTiming {
            next_act: 0,
            act_window: [0; 4],
            act_head: 0,
        }
    }

    /// Earliest cycle an ACT to any bank of this rank may issue.
    pub fn next_act_allowed(&self, t: &TimingParams) -> u64 {
        // tFAW: the 4th-most-recent ACT must be at least tFAW ago.
        let oldest = self.act_window[self.act_head];
        let faw_ready = if oldest == 0 { 0 } else { oldest + t.tfaw as u64 };
        self.next_act.max(faw_ready)
    }

    /// Records an ACT at `now`.
    pub fn record_act(&mut self, now: u64, t: &TimingParams) {
        self.next_act = now + t.trrd as u64;
        self.act_window[self.act_head] = now;
        self.act_head = (self.act_head + 1) % self.act_window.len();
    }
}

impl Default for RankTiming {
    fn default() -> Self {
        RankTiming::new()
    }
}

/// Column-command classes for bus turnaround accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColKind {
    Read,
    Write,
}

/// Per-channel data-bus state: enforces tCCD and read/write turnaround.
#[derive(Debug, Clone, Copy)]
pub struct BusTiming {
    last: Option<(ColKind, u64)>,
}

impl BusTiming {
    /// A free bus.
    pub fn new() -> Self {
        BusTiming { last: None }
    }

    /// Earliest cycle a RD command may issue given the previous column
    /// command on this channel.
    pub fn next_read_allowed(&self, t: &TimingParams) -> u64 {
        match self.last {
            None => 0,
            Some((ColKind::Read, at)) => at + t.tccd as u64,
            // Write-to-read turnaround: write data must finish plus tWTR.
            Some((ColKind::Write, at)) => at + (t.cwl + t.tbl + t.twtr) as u64,
        }
    }

    /// Earliest cycle a WR command may issue.
    pub fn next_write_allowed(&self, t: &TimingParams) -> u64 {
        match self.last {
            None => 0,
            Some((ColKind::Read, at)) => at + t.trtw as u64,
            Some((ColKind::Write, at)) => at + t.tccd as u64,
        }
    }

    /// Records a RD issued at `now`.
    pub fn record_read(&mut self, now: u64) {
        self.last = Some((ColKind::Read, now));
    }

    /// Records a WR issued at `now`.
    pub fn record_write(&mut self, now: u64) {
        self.last = Some((ColKind::Write, now));
    }
}

impl Default for BusTiming {
    fn default() -> Self {
        BusTiming::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr3_1600()
    }

    #[test]
    fn activate_then_read_respects_trcd() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(0, 7, &timing);
        assert!(b.is_row_hit(7));
        assert_eq!(b.next_read_allowed(), timing.trcd as u64);
        let done = b.read(timing.trcd as u64, &timing);
        assert_eq!(done, (timing.trcd + timing.cl + timing.tbl) as u64);
    }

    #[test]
    fn precharge_closes_row_and_sets_trp() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(0, 7, &timing);
        let pre_at = b.next_pre_allowed();
        assert_eq!(pre_at, timing.tras as u64);
        b.precharge(pre_at, &timing);
        assert!(b.is_precharged());
        // next ACT limited by both tRC (from ACT) and tRP (from PRE).
        assert_eq!(
            b.next_act_allowed(),
            (timing.trc as u64).max(pre_at + timing.trp as u64)
        );
    }

    #[test]
    fn write_extends_precharge_point() {
        let timing = t();
        let mut b = Bank::new();
        b.activate(0, 1, &timing);
        let wr_at = b.next_write_allowed();
        let done = b.write(wr_at, &timing);
        assert_eq!(done, wr_at + (timing.cwl + timing.tbl + timing.twr) as u64);
        assert!(b.next_pre_allowed() >= done);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "RD to a precharged bank")]
    fn read_without_activate_panics_in_debug() {
        let timing = t();
        let mut b = Bank::new();
        b.read(100, &timing);
    }

    #[test]
    fn rank_trrd_spacing() {
        let timing = t();
        let mut r = RankTiming::new();
        assert_eq!(r.next_act_allowed(&timing), 0);
        r.record_act(10, &timing);
        assert_eq!(r.next_act_allowed(&timing), 10 + timing.trrd as u64);
    }

    #[test]
    fn rank_tfaw_limits_fifth_act() {
        let timing = t();
        let mut r = RankTiming::new();
        // Four ACTs spaced exactly tRRD apart starting at cycle 1.
        let mut now = 1;
        for _ in 0..4 {
            now = now.max(r.next_act_allowed(&timing));
            r.record_act(now, &timing);
            now += timing.trrd as u64;
        }
        // The 5th ACT must wait for the first ACT + tFAW.
        let first_act = 1u64;
        assert!(r.next_act_allowed(&timing) >= first_act + timing.tfaw as u64);
    }

    #[test]
    fn bus_read_to_read_is_tccd() {
        let timing = t();
        let mut bus = BusTiming::new();
        bus.record_read(100);
        assert_eq!(bus.next_read_allowed(&timing), 100 + timing.tccd as u64);
    }

    #[test]
    fn bus_write_to_read_turnaround() {
        let timing = t();
        let mut bus = BusTiming::new();
        bus.record_write(100);
        assert_eq!(
            bus.next_read_allowed(&timing),
            100 + (timing.cwl + timing.tbl + timing.twtr) as u64
        );
    }

    #[test]
    fn bus_read_to_write_turnaround() {
        let timing = t();
        let mut bus = BusTiming::new();
        bus.record_read(50);
        assert_eq!(bus.next_write_allowed(&timing), 50 + timing.trtw as u64);
    }

    #[test]
    fn refresh_lock_delays_act() {
        let timing = t();
        let mut b = Bank::new();
        b.lock_until(500);
        assert_eq!(b.next_act_allowed(), 500);
        b.activate(500, 3, &timing);
        assert!(b.is_row_hit(3));
    }
}
