//! The per-channel memory controller: request queues, command issue,
//! write-drain, refresh, and the hooks the DR-STRaNGe engine uses to run
//! RNG generation on a channel.
//!
//! One [`ChannelController`] owns the banks/ranks/bus of a single channel
//! and is ticked once per DRAM bus cycle. Each tick it issues at most one
//! DRAM command (command-bus constraint), chosen by:
//!
//! 1. the refresh state machine (drain + REF when a refresh is due),
//! 2. the write-drain policy (hysteresis watermarks on the write queue),
//! 3. the configured [`SchedulerPolicy`] over the read queue.
//!
//! RNG requests (when routed through the read queue, as in the
//! RNG-oblivious baseline) are *selected* like ordinary requests but not
//! issued as DRAM commands; they are returned to the caller, which switches
//! the system into RNG mode (see `strange-core`).
//!
//! # Fast-forward support
//!
//! The controller participates in event-driven fast-forward simulation
//! through two methods that the engine layer composes into a global
//! next-event bound:
//!
//! * [`ChannelController::next_event_at`] computes the earliest cycle at
//!   which a tick could do anything beyond linear bookkeeping — the head
//!   of the in-flight data heap, the end of an RNG blockade, the next
//!   refresh deadline, or the earliest bank/rank/bus readiness over the
//!   queued requests.
//! * [`ChannelController::skip_to`] bulk-applies the per-cycle accounting
//!   (cycle/idle/occupancy counters, idle-period tracking, scheduler
//!   catch-up) for a span the caller has proven dead, leaving the
//!   controller bit-identical to having ticked through it.
//!
//! # The O(1) probe cache
//!
//! The expensive part of a probe is the min over the serving queue of each
//! request's bank/rank/bus readiness. That minimum only changes when the
//! queue contents, the bank/rank/bus timing state, or the write-drain
//! decision change — all of which happen at a handful of well-defined
//! mutation points (enqueue, command issue, refresh activity, RNG mode
//! preparation, drain-flag flips). The controller therefore memoizes the
//! scan result in a [`Cell`] and invalidates it at exactly those points,
//! making repeated probes (and ticks on which nothing can issue) O(1)
//! instead of O(queue length). [`ChannelController::next_event_at_uncached`]
//! recomputes from scratch and serves as the invalidation-correctness
//! oracle for the property tests.
//!
//! # Dirty-tracked readiness
//!
//! Live ticks (cycles on which a command *can* issue) used to recompute
//! [`Readiness`] from scratch for every queued read — bank state, rank
//! ACT window, and bus turnaround per entry — even though at most one
//! command issues per cycle and so at most a handful of entries changed.
//! The controller now keeps a per-entry readiness cache, index-aligned
//! with the read queue, and versions each entry's timing inputs with
//! epoch counters ([`ReadinessEpochs`]):
//!
//! | command issued        | epochs bumped                   | entries invalidated            |
//! |-----------------------|---------------------------------|--------------------------------|
//! | PRE (incl. refresh drain) | that bank                   | same-bank                      |
//! | ACT                   | that bank + that rank           | same-bank, same-rank `Activate`s (tRRD/tFAW) |
//! | RD / WR               | that bank + the bus             | same-bank, every `Column` (tCCD/turnaround) |
//! | REF / RNG-mode precharge sweep | global                 | everything (rare, many banks touched) |
//!
//! Validation is lazy: an entry is recomputed at its next use iff one of
//! its recorded epochs moved. `ready_now` is *derived* per rebuild from
//! the cached `(next, ready_at)` plus the live `now`/`refresh_pending`,
//! so time passage and refresh edges invalidate nothing. Enqueues push a
//! stale slot and `swap_remove`s patch single slots, keeping alignment
//! O(1). Debug builds compare every derived entry against the fresh
//! [`CommandTiming::readiness_of`] scan (the probe-cache oracle pattern);
//! `tests/readiness_dirty.rs` drives the same oracle through random op
//! streams.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::addr::{AddressMapping, Geometry};
use crate::bank::{Bank, BusTiming, RankTiming};
use crate::error::EnqueueError;
use crate::request::{CompletedAccess, Request, RequestId, RequestKind};
use crate::sched::{age_key, frfcfs_best, Readiness, SchedulerPolicy};
use crate::stats::ChannelStats;
use crate::timing::TimingParams;

/// Default request-queue capacity (paper Table 1: 32-entry queues).
pub const DEFAULT_QUEUE_CAPACITY: usize = 32;

/// Write-drain high watermark: start draining when the write queue reaches
/// this occupancy.
const WRITE_DRAIN_HI: usize = 24;
/// Write-drain low watermark: stop draining at or below this occupancy.
const WRITE_DRAIN_LO: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    at: u64,
    request: Request,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.request.id).cmp(&(other.at, other.request.id))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The next DRAM command a request needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NextCommand {
    Precharge,
    Activate,
    Column,
}

/// One dirty-tracked readiness entry: the request's resolved next command
/// and its earliest issue cycle, stamped with the epochs of every timing
/// input that went into computing them. The entry is valid while those
/// epochs are unchanged.
#[derive(Debug, Clone, Copy)]
struct CachedReadiness {
    next: NextCommand,
    ready_at: u64,
    bank_ep: u64,
    rank_ep: u64,
    bus_ep: u64,
    global_ep: u64,
}

/// Epoch counters versioning the timing inputs of [`CachedReadiness`]
/// entries. Command-issue sites bump exactly the counters whose state
/// they mutate (see the module-level invalidation matrix); an entry whose
/// recorded epochs all still match is provably unaffected by every issue
/// since it was computed.
#[derive(Debug, Clone)]
struct ReadinessEpochs {
    bank: Vec<u64>,
    rank: Vec<u64>,
    bus: u64,
    global: u64,
}

impl ReadinessEpochs {
    fn new(nbanks: usize, nranks: usize) -> Self {
        ReadinessEpochs {
            bank: vec![0; nbanks],
            rank: vec![0; nranks],
            bus: 0,
            global: 0,
        }
    }

    fn touch_bank(&mut self, b: usize) {
        self.bank[b] = self.bank[b].wrapping_add(1);
    }

    fn touch_rank(&mut self, r: usize) {
        self.rank[r] = self.rank[r].wrapping_add(1);
    }

    fn touch_bus(&mut self) {
        self.bus = self.bus.wrapping_add(1);
    }

    fn touch_all(&mut self) {
        self.global = self.global.wrapping_add(1);
    }

    /// A cache slot guaranteed stale against the current epochs (the
    /// global epoch only moves forward, so a back-dated stamp never
    /// revalidates by accident).
    fn stale_entry(&self) -> CachedReadiness {
        CachedReadiness {
            next: NextCommand::Activate,
            ready_at: 0,
            bank_ep: 0,
            rank_ep: 0,
            bus_ep: 0,
            global_ep: self.global.wrapping_sub(1),
        }
    }
}

/// Revalidates one cached entry against the current epochs, recomputing
/// it from the timing state when any recorded input changed. Returns
/// whether a recompute happened. Entries needing an `Activate` depend on
/// the rank ACT window, entries needing a `Column` on the bus; a
/// `Precharge` depends on its bank alone.
fn revalidate_entry(
    ct: &CommandTiming,
    eps: &ReadinessEpochs,
    req: &Request,
    e: &mut CachedReadiness,
) -> bool {
    let bidx = ct.bank_index(req);
    let rank = req.addr.rank as usize;
    let valid = e.global_ep == eps.global
        && e.bank_ep == eps.bank[bidx]
        && match e.next {
            NextCommand::Activate => e.rank_ep == eps.rank[rank],
            NextCommand::Column => e.bus_ep == eps.bus,
            NextCommand::Precharge => true,
        };
    if valid {
        return false;
    }
    let next = ct.next_command(req);
    *e = CachedReadiness {
        next,
        ready_at: ct.ready_at_for(req, next),
        bank_ep: eps.bank[bidx],
        rank_ep: eps.rank[rank],
        bus_ep: eps.bus,
        global_ep: eps.global,
    };
    true
}

/// Derives a request's [`Readiness`] from its (revalidated) cache entry
/// and the live tick inputs. Mirrors [`CommandTiming::readiness_of`]:
/// a pending refresh gates new `Column`/`Activate` commands but not the
/// precharges the drain needs.
fn derive_readiness(now: u64, refresh_pending: bool, e: &CachedReadiness) -> Readiness {
    Readiness {
        ready_now: now >= e.ready_at && (e.next == NextCommand::Precharge || !refresh_pending),
        row_hit: e.next == NextCommand::Column,
    }
}

/// The command-timing state of one channel: banks, ranks, and the data
/// bus, plus the timing parameters that govern them.
///
/// Grouping these in one struct lets readiness computation borrow the
/// timing state immutably while the controller's scratch buffer is
/// borrowed mutably (no `mem::take` dance in the per-cycle hot path).
#[derive(Debug, Clone)]
struct CommandTiming {
    timing: TimingParams,
    geometry: Geometry,
    banks: Vec<Bank>,
    ranks: Vec<RankTiming>,
    bus: BusTiming,
}

impl CommandTiming {
    fn bank_index(&self, req: &Request) -> usize {
        (req.addr.rank * self.geometry.banks + req.addr.bank) as usize
    }

    fn next_command(&self, req: &Request) -> NextCommand {
        let bank = &self.banks[self.bank_index(req)];
        match bank.open_row() {
            Some(r) if r == req.addr.row => NextCommand::Column,
            Some(_) => NextCommand::Precharge,
            None => NextCommand::Activate,
        }
    }

    /// Earliest cycle the request's next required command could issue,
    /// considering bank, rank, and bus constraints (but not a pending
    /// refresh — callers handle refresh separately).
    fn ready_at(&self, req: &Request) -> u64 {
        if req.kind == RequestKind::Rng {
            // RNG requests are served by switching modes, not by a DRAM
            // command; they are always selectable.
            return 0;
        }
        self.ready_at_for(req, self.next_command(req))
    }

    /// [`CommandTiming::ready_at`] with the request's next command already
    /// resolved, so the per-cycle readiness path looks it up only once.
    fn ready_at_for(&self, req: &Request, next: NextCommand) -> u64 {
        let bank = &self.banks[self.bank_index(req)];
        match next {
            NextCommand::Column => match req.kind {
                RequestKind::Read => bank
                    .next_read_allowed()
                    .max(self.bus.next_read_allowed(&self.timing)),
                RequestKind::Write => bank
                    .next_write_allowed()
                    .max(self.bus.next_write_allowed(&self.timing)),
                RequestKind::Rng => unreachable!("RNG requests have no commands"),
            },
            NextCommand::Precharge => bank.next_pre_allowed(),
            NextCommand::Activate => {
                let rank = &self.ranks[req.addr.rank as usize];
                bank.next_act_allowed()
                    .max(rank.next_act_allowed(&self.timing))
            }
        }
    }

    fn readiness_of(&self, now: u64, req: &Request, refresh_pending: bool) -> Readiness {
        if req.kind == RequestKind::Rng {
            // Always selectable and never a row hit.
            return Readiness {
                ready_now: true,
                row_hit: false,
            };
        }
        let next = self.next_command(req);
        let t = self.ready_at_for(req, next);
        match next {
            // No new column or activate commands once a refresh is pending
            // (the controller drains toward the REF).
            NextCommand::Column => Readiness {
                ready_now: now >= t && !refresh_pending,
                row_hit: true,
            },
            NextCommand::Activate => Readiness {
                ready_now: now >= t && !refresh_pending,
                row_hit: false,
            },
            NextCommand::Precharge => Readiness {
                ready_now: now >= t,
                row_hit: false,
            },
        }
    }

    /// Recomputes readiness for every request in `queue` into `buf`.
    fn fill_readiness(
        &self,
        now: u64,
        queue: &[Request],
        refresh_pending: bool,
        buf: &mut Vec<Readiness>,
    ) {
        buf.clear();
        buf.extend(
            queue
                .iter()
                .map(|r| self.readiness_of(now, r, refresh_pending)),
        );
    }
}

/// A per-channel memory controller.
///
/// Generic over the read-queue [`SchedulerPolicy`] so that the different
/// designs (FR-FCFS+Cap, BLISS, DR-STRaNGe's RNG-aware policy) are
/// monomorphized rather than dynamically dispatched in the per-cycle path.
#[derive(Debug, Clone)]
pub struct ChannelController<P> {
    id: u32,
    ct: CommandTiming,
    mapping: AddressMapping,
    policy: P,
    read_q: Vec<Request>,
    write_q: Vec<Request>,
    queue_capacity: usize,
    in_write_drain: bool,
    next_refresh_due: u64,
    refresh_pending: bool,
    blocked_until: u64,
    open_banks: u32,
    act_owner: Vec<Option<RequestId>>,
    conflict_marked: Vec<RequestId>,
    pending: BinaryHeap<Reverse<Pending>>,
    cur_idle: u64,
    last_enqueued_line: u64,
    stats: ChannelStats,
    readiness_buf: Vec<Readiness>,
    /// Dirty-tracked readiness cache, index-aligned with `read_q` at all
    /// times (maintained even while `dirty_readiness` is off, so the
    /// toggle can flip mid-run). `RefCell` because the `&self` probe path
    /// refreshes stale entries in place too — without that, every
    /// post-issue probe rescan would pay the full recompute the tick path
    /// just avoided.
    read_cache: RefCell<Vec<CachedReadiness>>,
    eps: ReadinessEpochs,
    dirty_readiness: bool,
    /// Diagnostic rebuild/recompute counters (deliberately not in
    /// `ChannelStats`: rebuild counts legitimately differ between
    /// per-cycle and skipped execution, which the stats-equality tests
    /// would reject).
    read_rebuilds: u64,
    write_rebuilds: u64,
    readiness_recomputed: u64,
    readiness_scanned: u64,
    probe_cache_enabled: bool,
    /// Memoized earliest-ready cycle over the queue the controller would
    /// serve (`u64::MAX` when that queue is empty); `None` when stale.
    queue_ready_cache: Cell<Option<u64>>,
    /// Monotonic mutation counter, bumped at every probe-invalidation
    /// point. Engine-level probe caches key on the sum of these to detect
    /// channel-state changes with one pointer read per channel.
    probe_epoch: Cell<u64>,
}

impl<P: SchedulerPolicy> ChannelController<P> {
    /// Creates a controller for channel `id` with the given policy.
    pub fn new(id: u32, geometry: Geometry, timing: TimingParams, policy: P) -> Self {
        let nbanks = (geometry.ranks * geometry.banks) as usize;
        ChannelController {
            id,
            ct: CommandTiming {
                timing,
                geometry,
                banks: vec![Bank::new(); nbanks],
                ranks: vec![RankTiming::new(); geometry.ranks as usize],
                bus: BusTiming::new(),
            },
            mapping: AddressMapping::new(geometry).expect("valid geometry"),
            policy,
            read_q: Vec::with_capacity(DEFAULT_QUEUE_CAPACITY),
            write_q: Vec::with_capacity(DEFAULT_QUEUE_CAPACITY),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            in_write_drain: false,
            next_refresh_due: timing.trefi as u64,
            refresh_pending: false,
            blocked_until: 0,
            open_banks: 0,
            act_owner: vec![None; nbanks],
            conflict_marked: Vec::new(),
            pending: BinaryHeap::new(),
            cur_idle: 0,
            last_enqueued_line: 0,
            stats: ChannelStats::new(),
            readiness_buf: Vec::with_capacity(DEFAULT_QUEUE_CAPACITY),
            read_cache: RefCell::new(Vec::with_capacity(DEFAULT_QUEUE_CAPACITY)),
            eps: ReadinessEpochs::new(nbanks, geometry.ranks as usize),
            dirty_readiness: true,
            read_rebuilds: 0,
            write_rebuilds: 0,
            readiness_recomputed: 0,
            readiness_scanned: 0,
            probe_cache_enabled: true,
            queue_ready_cache: Cell::new(None),
            probe_epoch: Cell::new(0),
        }
    }

    /// Enables or disables the O(1) probe cache (enabled by default).
    /// Disabling forces every [`ChannelController::next_event_at`] call to
    /// re-scan the queues; results are identical either way — the switch
    /// exists so perf benchmarks can measure the cache's contribution.
    pub fn set_probe_cache(&mut self, enabled: bool) {
        self.probe_cache_enabled = enabled;
        self.queue_ready_cache.set(None);
    }

    /// Enables or disables dirty-tracked readiness for the read queue
    /// (enabled by default). Disabling forces every rebuild back to the
    /// fresh full rescan; results are identical either way — the switch
    /// exists so perf benchmarks can measure the cache's contribution.
    pub fn set_dirty_readiness(&mut self, enabled: bool) {
        self.dirty_readiness = enabled;
        // The cache stayed aligned (and its epochs truthful) while off,
        // so this re-stale is belt-and-braces, not correctness-bearing.
        let stale = self.eps.stale_entry();
        self.read_cache.get_mut().iter_mut().for_each(|e| *e = stale);
    }

    /// Whether dirty-tracked readiness is enabled.
    pub fn dirty_readiness(&self) -> bool {
        self.dirty_readiness
    }

    /// Diagnostic: times `tick` built the read-queue readiness buffer.
    pub fn read_readiness_rebuilds(&self) -> u64 {
        self.read_rebuilds
    }

    /// Diagnostic: times `tick` built the write-queue readiness buffer.
    /// Stays zero as long as write drain never becomes eligible — the
    /// write-gating regression tests assert exactly that.
    pub fn write_readiness_rebuilds(&self) -> u64 {
        self.write_rebuilds
    }

    /// Diagnostic: `(recomputed, visited)` cache-entry totals across read
    /// readiness rebuilds; `recomputed/visited` is the dirty fraction the
    /// sublinear-busy-tick claim rests on (1.0 when dirty tracking is
    /// off, since every visit is then a fresh compute).
    pub fn readiness_recompute_counts(&self) -> (u64, u64) {
        (self.readiness_recomputed, self.readiness_scanned)
    }

    /// Marks the memoized earliest-ready scan stale. Must be called by
    /// every mutation that can change which request could issue when:
    /// queue content changes, command issue (bank/rank/bus state), refresh
    /// activity, RNG mode preparation, and write-drain flag flips.
    fn invalidate_probe(&self) {
        self.queue_ready_cache.set(None);
        self.probe_epoch.set(self.probe_epoch.get().wrapping_add(1));
    }

    /// Monotonic counter of probe-relevant state mutations (queue content,
    /// command issue, refresh activity, RNG-mode preparation, drain-flag
    /// flips). Unchanged epoch ⇒ the channel's scheduling-relevant state
    /// is unchanged; higher layers key their own probe memoizations on it.
    pub fn probe_epoch(&self) -> u64 {
        self.probe_epoch.get()
    }

    /// Applies the write-drain hysteresis update from the current queue
    /// lengths (the once-per-cycle rule that `tick` enforces and `skip_to`
    /// replays), invalidating the probe cache when the flag flips. The
    /// single mutation point for `in_write_drain`, so an update can never
    /// forget the invalidation.
    fn update_write_drain(&mut self) {
        let before = self.in_write_drain;
        if self.write_q.len() >= WRITE_DRAIN_HI {
            self.in_write_drain = true;
        } else if self.write_q.len() <= WRITE_DRAIN_LO {
            self.in_write_drain = false;
        }
        if self.in_write_drain != before {
            self.invalidate_probe();
        }
    }

    /// This channel's index.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The timing parameters in force.
    pub fn timing(&self) -> &TimingParams {
        &self.ct.timing
    }

    /// Immutable view of the read queue (includes RNG requests in designs
    /// that route them through it). Not in arrival order — the controller
    /// removes serviced entries with `swap_remove` and orders by the
    /// requests' own `(arrival, id)` keys.
    pub fn read_queue(&self) -> &[Request] {
        &self.read_q
    }

    /// Immutable view of the write queue (not in arrival order).
    pub fn write_queue(&self) -> &[Request] {
        &self.write_q
    }

    /// Queue capacity per queue (reads and writes are separate queues).
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }

    /// Overrides the queue capacity (both queues).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn set_queue_capacity(&mut self, capacity: usize) {
        assert!(capacity > 0, "queue capacity must be nonzero");
        self.queue_capacity = capacity;
    }

    /// Whether a request of `kind` can currently be accepted.
    pub fn can_accept(&self, kind: RequestKind) -> bool {
        match kind {
            RequestKind::Write => self.write_q.len() < self.queue_capacity,
            RequestKind::Read | RequestKind::Rng => self.read_q.len() < self.queue_capacity,
        }
    }

    /// Enqueues a request at cycle `now`.
    ///
    /// # Errors
    ///
    /// Returns [`EnqueueError::QueueFull`] when the target queue is full;
    /// the caller (core model) must retry later, which is how queue
    /// back-pressure stalls cores.
    pub fn try_enqueue(&mut self, mut req: Request, now: u64) -> Result<(), EnqueueError> {
        if !self.can_accept(req.kind) {
            return Err(EnqueueError::QueueFull);
        }
        req.arrival = now;
        self.last_enqueued_line = self.mapping.encode(&req.addr);
        match req.kind {
            RequestKind::Write => self.write_q.push(req),
            RequestKind::Read | RequestKind::Rng => {
                self.read_q.push(req);
                let stale = self.eps.stale_entry();
                self.read_cache.get_mut().push(stale);
            }
        }
        self.invalidate_probe();
        Ok(())
    }

    /// Both request queues are empty (the paper's per-cycle idleness test).
    pub fn queues_empty(&self) -> bool {
        self.read_q.is_empty() && self.write_q.is_empty()
    }

    /// Number of queued read-queue requests (used by the low-utilization
    /// predictor threshold).
    pub fn read_queue_len(&self) -> usize {
        self.read_q.len()
    }

    /// Flat cache-line address of the most recently enqueued request (the
    /// simple predictor's table index source).
    pub fn last_enqueued_line(&self) -> u64 {
        self.last_enqueued_line
    }

    /// Arrival cycle and core of the oldest queued read, if any.
    pub fn oldest_read(&self) -> Option<&Request> {
        self.read_q.iter().min_by_key(|r| age_key(r))
    }

    /// Blocks the channel for RNG generation until `cycle` (exclusive).
    /// While blocked, no regular commands issue; in-flight read data still
    /// returns.
    pub fn block_until(&mut self, cycle: u64) {
        self.blocked_until = self.blocked_until.max(cycle);
    }

    /// The cycle until which the channel is blocked for RNG generation.
    pub fn blocked_until(&self) -> u64 {
        self.blocked_until
    }

    /// Whether the channel is currently blocked for RNG use.
    pub fn is_blocked(&self, now: u64) -> bool {
        now < self.blocked_until
    }

    /// Drains all RNG-kind requests out of the read queue (the baseline
    /// serves queued RNG requests together once one is selected).
    pub fn drain_rng_requests(&mut self) -> Vec<Request> {
        let mut out = Vec::new();
        self.read_q.retain(|r| {
            if r.kind == RequestKind::Rng {
                out.push(*r);
                false
            } else {
                true
            }
        });
        // `retain` reshuffles arbitrarily many slots; realign the cache
        // as all-stale rather than mirroring the removal pattern.
        let stale = self.eps.stale_entry();
        let cache = self.read_cache.get_mut();
        cache.clear();
        cache.resize(self.read_q.len(), stale);
        self.invalidate_probe();
        out
    }

    /// Prepares the channel for RNG mode at `now`: schedules precharges for
    /// every open bank and returns the cycle at which all banks are
    /// precharged and activations are permitted again — i.e. when reduced-
    /// timing RNG accesses may start. This is the mechanistic part of the
    /// mode-switch cost: expensive under load, nearly free when idle.
    pub fn prepare_rng_mode(&mut self, now: u64) -> u64 {
        let mut ready = now;
        let timing = self.ct.timing;
        for bank in &mut self.ct.banks {
            if !bank.is_precharged() {
                let t = now.max(bank.next_pre_allowed());
                bank.precharge(t, &timing);
                self.stats.pres += 1;
                self.stats.rng_pres += 1;
            }
            ready = ready.max(bank.next_act_allowed());
        }
        self.open_banks = 0;
        self.act_owner.iter_mut().for_each(|o| *o = None);
        // The precharge sweep can touch every bank: one global bump beats
        // per-bank bookkeeping for this rare event.
        self.eps.touch_all();
        self.invalidate_probe();
        ready
    }

    /// Accounts DRAM commands issued on this channel while in RNG mode
    /// (reduced-timing ACT/RD/PRE rounds driven by the TRNG mechanism).
    pub fn note_rng_commands(&mut self, acts: u64, reads: u64, pres: u64) {
        self.stats.rng_acts += acts;
        self.stats.rng_reads += reads;
        self.stats.rng_pres += pres;
    }

    /// Mutable access to the scheduling policy (e.g. to update BLISS
    /// parameters or inspect blacklists in tests).
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Shared access to the scheduling policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Whether every bank is precharged (used by tests and the engine).
    pub fn all_banks_precharged(&self) -> bool {
        self.open_banks == 0
    }

    /// The earliest cycle at or after `now` at which a tick of this
    /// controller could do anything beyond the linear per-cycle accounting
    /// that [`ChannelController::skip_to`] replays in bulk.
    ///
    /// The bound considers: the head of the in-flight data heap, the end
    /// of an RNG blockade, a due (or pending) refresh, and the earliest
    /// bank/rank/bus readiness over whichever queue the controller would
    /// serve. A return value of `now` means the controller must be ticked
    /// cycle by cycle; every cycle in `now..next_event_at(now)` is
    /// guaranteed dead.
    pub fn next_event_at(&self, now: u64) -> Option<u64> {
        self.next_event_with(now, self.queue_ready_at())
    }

    /// [`ChannelController::next_event_at`] recomputed from scratch,
    /// bypassing the probe cache. Identical to the cached path whenever
    /// invalidation is correct; the probe-cache property tests use it as
    /// the reference oracle.
    pub fn next_event_at_uncached(&self, now: u64) -> Option<u64> {
        self.next_event_with(now, self.queue_ready_scan())
    }

    fn next_event_with(&self, now: u64, queue_ready: u64) -> Option<u64> {
        let mut event = u64::MAX;
        if let Some(&Reverse(p)) = self.pending.peek() {
            event = event.min(p.at);
        }
        if now < self.blocked_until {
            // While blocked only data return happens; everything else
            // resumes when the blockade lifts.
            return Some(event.min(self.blocked_until).max(now));
        }
        if self.refresh_pending {
            // Refresh drain/REF issue spans only a handful of cycles; run
            // them per-cycle rather than modelling the drain here.
            return Some(now);
        }
        event = event.min(self.next_refresh_due);
        event = event.min(queue_ready);
        Some(event.max(now))
    }

    /// Which queue a tick would serve. Mirrors the tick-time write-drain
    /// hysteresis update, which is a pure function of the queue lengths
    /// and the current drain flag.
    fn would_serve_writes(&self) -> bool {
        let drain = if self.write_q.len() >= WRITE_DRAIN_HI {
            true
        } else if self.write_q.len() <= WRITE_DRAIN_LO {
            false
        } else {
            self.in_write_drain
        };
        drain || (self.read_q.is_empty() && !self.write_q.is_empty())
    }

    /// Earliest cycle at which any request in the serving queue could have
    /// its next command issued, memoized (`u64::MAX` when the queue is
    /// empty).
    fn queue_ready_at(&self) -> u64 {
        if self.probe_cache_enabled {
            if let Some(v) = self.queue_ready_cache.get() {
                return v;
            }
        }
        let v = self.queue_ready_scan();
        if self.probe_cache_enabled {
            self.queue_ready_cache.set(Some(v));
        }
        v
    }

    fn queue_ready_scan(&self) -> u64 {
        if self.would_serve_writes() {
            self.write_q
                .iter()
                .map(|r| self.ct.ready_at(r))
                .min()
                .unwrap_or(u64::MAX)
        } else {
            self.read_queue_ready_scan()
        }
    }

    /// Earliest `ready_at` over the read queue, through the dirty-tracked
    /// cache when enabled (refreshing stale entries in place — this runs
    /// on the `&self` probe path after every command issue, which is
    /// exactly where the post-issue rescan used to pay the full
    /// recompute).
    fn read_queue_ready_scan(&self) -> u64 {
        if !self.dirty_readiness {
            return self
                .read_q
                .iter()
                .map(|r| self.ct.ready_at(r))
                .min()
                .unwrap_or(u64::MAX);
        }
        let mut cache = self.read_cache.borrow_mut();
        debug_assert_eq!(cache.len(), self.read_q.len());
        let mut min = u64::MAX;
        for (req, e) in self.read_q.iter().zip(cache.iter_mut()) {
            let t = if req.kind == RequestKind::Rng {
                // Always selectable: served by a mode switch, not a command.
                0
            } else {
                revalidate_entry(&self.ct, &self.eps, req, e);
                e.ready_at
            };
            debug_assert_eq!(t, self.ct.ready_at(req), "dirty-tracked ready_at diverged");
            min = min.min(t);
        }
        min
    }

    /// Builds `readiness_buf` for the read queue at `now` — through the
    /// dirty-tracked cache when enabled, recomputing only entries whose
    /// epochs show a timing input changed; otherwise the fresh full scan.
    fn fill_read_readiness(&mut self, now: u64) {
        self.read_rebuilds += 1;
        if !self.dirty_readiness {
            self.readiness_recomputed += self.read_q.len() as u64;
            self.readiness_scanned += self.read_q.len() as u64;
            self.ct
                .fill_readiness(now, &self.read_q, self.refresh_pending, &mut self.readiness_buf);
            return;
        }
        let mut recomputed = 0u64;
        let cache = self.read_cache.get_mut();
        debug_assert_eq!(cache.len(), self.read_q.len());
        let ct = &self.ct;
        let eps = &self.eps;
        let refresh_pending = self.refresh_pending;
        let buf = &mut self.readiness_buf;
        buf.clear();
        for (req, e) in self.read_q.iter().zip(cache.iter_mut()) {
            let r = if req.kind == RequestKind::Rng {
                Readiness { ready_now: true, row_hit: false }
            } else {
                if revalidate_entry(ct, eps, req, e) {
                    recomputed += 1;
                }
                derive_readiness(now, refresh_pending, e)
            };
            debug_assert_eq!(
                r,
                ct.readiness_of(now, req, refresh_pending),
                "dirty-tracked readiness diverged from the fresh scan"
            );
            buf.push(r);
        }
        self.readiness_recomputed += recomputed;
        self.readiness_scanned += self.read_q.len() as u64;
    }

    /// Readiness of every read-queue entry at `now`, exactly as the
    /// dirty-tracked tick path would derive it (stale entries refresh in
    /// place). Oracle hook for the readiness property tests.
    pub fn read_readiness_cached(&self, now: u64) -> Vec<Readiness> {
        if !self.dirty_readiness {
            return self.read_readiness_fresh(now);
        }
        let mut cache = self.read_cache.borrow_mut();
        debug_assert_eq!(cache.len(), self.read_q.len());
        self.read_q
            .iter()
            .zip(cache.iter_mut())
            .map(|(req, e)| {
                if req.kind == RequestKind::Rng {
                    Readiness { ready_now: true, row_hit: false }
                } else {
                    revalidate_entry(&self.ct, &self.eps, req, e);
                    derive_readiness(now, self.refresh_pending, e)
                }
            })
            .collect()
    }

    /// Fresh full-rescan readiness for every read-queue entry at `now` —
    /// the reference the dirty-tracked derivation must match exactly.
    pub fn read_readiness_fresh(&self, now: u64) -> Vec<Readiness> {
        self.read_q
            .iter()
            .map(|r| self.ct.readiness_of(now, r, self.refresh_pending))
            .collect()
    }

    /// Bulk-applies the per-cycle accounting for the dead span
    /// `from..to`, leaving the controller in exactly the state that
    /// ticking it once per cycle would (the caller must guarantee
    /// `to <= next_event_at(from)`).
    pub fn skip_to(&mut self, from: u64, to: u64) {
        if to <= from {
            return;
        }
        debug_assert!(
            self.next_event_at(from).is_none_or(|e| e >= to),
            "skip_to past a channel event"
        );
        let n = to - from;
        self.policy.on_cycles_skipped(from, to);
        self.stats.cycles += n;
        self.stats.read_queue_occupancy_sum += self.read_q.len() as u64 * n;
        if self.open_banks == 0 {
            self.stats.all_precharged_cycles += n;
        }
        let blocked = from < self.blocked_until;
        if blocked {
            debug_assert!(to <= self.blocked_until, "skip across a blockade edge");
            self.stats.rng_blocked_cycles += n;
        } else {
            // Unblocked ticks update the write-drain hysteresis from the
            // (span-stable) queue lengths every cycle; replay it once so
            // `in_write_drain` does not go stale across the span.
            self.update_write_drain();
        }
        if self.queues_empty() && !blocked {
            self.cur_idle += n;
            self.stats.idle_cycles += n;
        } else if self.cur_idle > 0 {
            self.stats.record_idle_period(self.cur_idle);
            self.cur_idle = 0;
        }
    }

    /// Advances the controller by one DRAM bus cycle.
    ///
    /// Completed reads (and RNG requests served earlier) are appended to
    /// `completed`. If the scheduling policy selected an RNG request this
    /// cycle, it is removed from the queue and returned so the caller can
    /// switch the system into RNG mode.
    pub fn tick(&mut self, now: u64, completed: &mut Vec<CompletedAccess>) -> Option<Request> {
        self.stats.cycles += 1;
        self.stats.read_queue_occupancy_sum += self.read_q.len() as u64;
        if self.open_banks == 0 {
            self.stats.all_precharged_cycles += 1;
        }
        self.policy.on_cycle(now);

        // 1. Return data that has arrived.
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.at > now {
                break;
            }
            let Reverse(p) = self.pending.pop().expect("peeked");
            self.stats
                .record_read_latency(p.request.core, p.at.saturating_sub(p.request.arrival));
            completed.push(CompletedAccess {
                request: p.request,
                completed_at: p.at,
            });
        }

        // 2. Idle accounting (queue emptiness, as the paper defines it).
        let blocked = now < self.blocked_until;
        if blocked {
            self.stats.rng_blocked_cycles += 1;
        }
        if self.queues_empty() && !blocked {
            self.cur_idle += 1;
            self.stats.idle_cycles += 1;
        } else if self.cur_idle > 0 {
            self.stats.record_idle_period(self.cur_idle);
            self.cur_idle = 0;
        }

        if blocked {
            return None;
        }

        // 3. Refresh state machine: once a refresh is due, drain and REF.
        if self.refresh_step(now) {
            return None;
        }

        // 4. Choose the active queue: write drain with hysteresis, plus
        //    opportunistic writes when there is no read work.
        self.update_write_drain();
        let serve_writes =
            self.in_write_drain || (self.read_q.is_empty() && !self.write_q.is_empty());

        // Fast path: when the earliest-ready bound says no queued
        // request's next command can issue yet, the scheduler scan below
        // cannot select anything (`select` implementations are pure when
        // nothing is ready), so skip the O(queue) readiness fill entirely.
        // `queue_ready_at` memoizes, so a timing-gated stretch costs one
        // min-scan at its first tick and O(1) per tick thereafter. With
        // dirty tracking the unmemoized bound is cheap too, so the gate
        // also covers probe-cache-off runs — in particular it keeps the
        // write-queue rebuild below from running on serve attempts where
        // no write could issue anyway.
        if (self.probe_cache_enabled || self.dirty_readiness) && self.queue_ready_at() > now {
            return None;
        }

        if serve_writes {
            self.write_rebuilds += 1;
            self.ct
                .fill_readiness(now, &self.write_q, self.refresh_pending, &mut self.readiness_buf);
            let pick = frfcfs_best(&self.write_q, &self.readiness_buf, |_, r| r.row_hit);
            if let Some(i) = pick {
                self.issue_for(now, i, true);
            }
            return None;
        }

        if self.read_q.is_empty() {
            return None;
        }

        // 5. Policy-driven read scheduling.
        self.fill_read_readiness(now);
        let pick = self.policy.select(now, &self.read_q, &self.readiness_buf);
        let mut rng_selected = None;
        if let Some(i) = pick {
            debug_assert!(
                self.readiness_buf[i].ready_now,
                "policy selected a non-ready request"
            );
            if self.read_q[i].kind == RequestKind::Rng {
                rng_selected = Some(self.read_q.swap_remove(i));
                self.read_cache.get_mut().swap_remove(i);
                self.invalidate_probe();
            } else {
                self.issue_for(now, i, false);
            }
        }
        rng_selected
    }

    /// Flushes idle-period accounting (call at end of simulation so a final
    /// open idle period is recorded).
    pub fn finish(&mut self) {
        if self.cur_idle > 0 {
            self.stats.record_idle_period(self.cur_idle);
            self.cur_idle = 0;
        }
    }

    fn issue_for(&mut self, now: u64, idx: usize, writes: bool) {
        // Every branch mutates bank/rank/bus timing state or a queue.
        self.invalidate_probe();
        let req = if writes { self.write_q[idx] } else { self.read_q[idx] };
        let bidx = self.ct.bank_index(&req);
        let timing = self.ct.timing;
        match self.ct.next_command(&req) {
            NextCommand::Precharge => {
                self.ct.banks[bidx].precharge(now, &timing);
                self.eps.touch_bank(bidx);
                self.stats.pres += 1;
                self.open_banks -= 1;
                if !self.conflict_marked.contains(&req.id) {
                    self.conflict_marked.push(req.id);
                }
            }
            NextCommand::Activate => {
                self.ct.banks[bidx].activate(now, req.addr.row, &timing);
                self.ct.ranks[req.addr.rank as usize].record_act(now, &timing);
                self.eps.touch_bank(bidx);
                self.eps.touch_rank(req.addr.rank as usize);
                self.stats.acts += 1;
                self.open_banks += 1;
                self.act_owner[bidx] = Some(req.id);
            }
            NextCommand::Column => {
                let row_hit = self.act_owner[bidx] != Some(req.id);
                if row_hit {
                    self.stats.row_hits += 1;
                } else if let Some(pos) =
                    self.conflict_marked.iter().position(|&id| id == req.id)
                {
                    self.conflict_marked.swap_remove(pos);
                    self.stats.row_conflicts += 1;
                } else {
                    self.stats.row_misses += 1;
                }
                match req.kind {
                    RequestKind::Read => {
                        let done = self.ct.banks[bidx].read(now, &timing);
                        self.ct.bus.record_read(now);
                        self.eps.touch_bank(bidx);
                        self.eps.touch_bus();
                        self.stats.reads += 1;
                        self.policy.on_serviced(&req, row_hit);
                        self.read_q.swap_remove(idx);
                        self.read_cache.get_mut().swap_remove(idx);
                        self.pending.push(Reverse(Pending { at: done, request: req }));
                    }
                    RequestKind::Write => {
                        self.ct.banks[bidx].write(now, &timing);
                        self.ct.bus.record_write(now);
                        self.eps.touch_bank(bidx);
                        self.eps.touch_bus();
                        self.stats.writes += 1;
                        self.policy.on_serviced(&req, row_hit);
                        self.write_q.swap_remove(idx);
                    }
                    RequestKind::Rng => unreachable!("RNG requests never issue commands"),
                }
            }
        }
    }

    /// Refresh drain + REF issue. Returns true when the refresh machinery
    /// consumed this cycle's command slot (or is draining).
    fn refresh_step(&mut self, now: u64) -> bool {
        if !self.refresh_pending {
            if now >= self.next_refresh_due {
                self.refresh_pending = true;
            } else {
                return false;
            }
        }
        if self.open_banks == 0 {
            let ready = self
                .ct
                .banks
                .iter()
                .map(Bank::next_act_allowed)
                .max()
                .unwrap_or(0);
            if now >= ready {
                let until = now + self.ct.timing.trfc as u64;
                for bank in &mut self.ct.banks {
                    bank.lock_until(until);
                }
                // REF moves every bank's ACT fence at once.
                self.eps.touch_all();
                self.stats.refreshes += self.ct.geometry.ranks as u64;
                self.next_refresh_due += self.ct.timing.trefi as u64;
                self.refresh_pending = false;
                self.invalidate_probe();
            }
            return true;
        }
        // Precharge one open bank whose timing allows it.
        let timing = self.ct.timing;
        for (i, bank) in self.ct.banks.iter_mut().enumerate() {
            if !bank.is_precharged() && now >= bank.next_pre_allowed() {
                bank.precharge(now, &timing);
                self.eps.touch_bank(i);
                self.stats.pres += 1;
                self.open_banks -= 1;
                self.act_owner[i] = None;
                self.invalidate_probe();
                return true;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::DramAddress;
    use crate::sched::FrFcfs;

    fn controller() -> ChannelController<FrFcfs> {
        let g = Geometry::paper_default();
        ChannelController::new(0, g, TimingParams::ddr3_1600(), FrFcfs::with_cap(g, 16))
    }

    fn read_at(id: u64, bank: u32, row: u32, col: u32) -> Request {
        Request {
            id,
            core: 0,
            kind: RequestKind::Read,
            addr: DramAddress {
                channel: 0,
                rank: 0,
                bank,
                row,
                col,
            },
            arrival: 0,
        }
    }

    fn run_until_complete(
        ctrl: &mut ChannelController<FrFcfs>,
        start: u64,
        limit: u64,
    ) -> Vec<CompletedAccess> {
        let mut done = Vec::new();
        for now in start..start + limit {
            ctrl.tick(now, &mut done);
            if !done.is_empty() {
                break;
            }
        }
        done
    }

    #[test]
    fn cold_read_latency_is_act_plus_rcd_plus_cl_plus_burst() {
        let mut c = controller();
        let t = *c.timing();
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        let done = run_until_complete(&mut c, 0, 200);
        assert_eq!(done.len(), 1);
        // ACT at cycle 0, RD at tRCD, data at tRCD+CL+tBL.
        assert_eq!(done[0].completed_at, (t.trcd + t.cl + t.tbl) as u64);
    }

    #[test]
    fn row_hit_read_is_faster_than_cold_read() {
        let mut c = controller();
        let t = *c.timing();
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        let first = run_until_complete(&mut c, 0, 200)[0].completed_at;
        let start = first + 1;
        c.try_enqueue(read_at(2, 0, 5, 1), start).unwrap();
        let second = run_until_complete(&mut c, start, 200)[0].completed_at;
        let hit_latency = second - start;
        assert!(hit_latency < first, "hit {hit_latency} vs cold {first}");
        assert_eq!(hit_latency, (t.cl + t.tbl) as u64);
        assert_eq!(c.stats().row_hits, 1);
    }

    #[test]
    fn row_conflict_precharges_first() {
        let mut c = controller();
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        let first = run_until_complete(&mut c, 0, 200)[0].completed_at;
        let start = first + 1;
        c.try_enqueue(read_at(2, 0, 9, 0), start).unwrap();
        run_until_complete(&mut c, start, 300);
        assert_eq!(c.stats().row_conflicts, 1);
        assert!(c.stats().pres >= 1);
    }

    #[test]
    fn queue_full_backpressure() {
        let mut c = controller();
        for i in 0..DEFAULT_QUEUE_CAPACITY as u64 {
            c.try_enqueue(read_at(i, 0, 1, i as u32), 0).unwrap();
        }
        assert_eq!(
            c.try_enqueue(read_at(99, 0, 1, 0), 0),
            Err(EnqueueError::QueueFull)
        );
        assert!(!c.can_accept(RequestKind::Read));
        assert!(c.can_accept(RequestKind::Write));
    }

    #[test]
    fn writes_drain_opportunistically_when_no_reads() {
        let mut c = controller();
        let mut w = read_at(1, 0, 3, 0);
        w.kind = RequestKind::Write;
        c.try_enqueue(w, 0).unwrap();
        let mut done = Vec::new();
        for now in 0..100 {
            c.tick(now, &mut done);
        }
        assert_eq!(c.stats().writes, 1);
        assert!(c.write_queue().is_empty());
    }

    #[test]
    fn refresh_fires_near_trefi() {
        let mut c = controller();
        let t = *c.timing();
        let mut done = Vec::new();
        for now in 0..(t.trefi as u64 + t.trfc as u64 + 10) {
            c.tick(now, &mut done);
        }
        assert_eq!(c.stats().refreshes, 1);
    }

    #[test]
    fn refresh_blocks_reads_during_trfc() {
        let mut c = controller();
        let t = *c.timing();
        let mut done = Vec::new();
        // Run past the refresh point, then enqueue a read during tRFC.
        for now in 0..t.trefi as u64 + 2 {
            c.tick(now, &mut done);
        }
        let start = t.trefi as u64 + 2;
        c.try_enqueue(read_at(1, 0, 5, 0), start).unwrap();
        for now in start..start + 400 {
            c.tick(now, &mut done);
            if !done.is_empty() {
                break;
            }
        }
        assert_eq!(done.len(), 1);
        // The read cannot complete before the refresh lock expires.
        let cold = (t.trcd + t.cl + t.tbl) as u64;
        assert!(done[0].completed_at > start + cold);
    }

    #[test]
    fn rng_request_is_returned_not_issued() {
        let mut c = controller();
        let mut r = read_at(7, 0, 0, 0);
        r.kind = RequestKind::Rng;
        c.try_enqueue(r, 0).unwrap();
        let mut done = Vec::new();
        let got = c.tick(0, &mut done);
        assert_eq!(got.map(|r| r.id), Some(7));
        assert!(c.read_queue().is_empty());
        assert_eq!(c.stats().reads, 0);
    }

    #[test]
    fn rng_request_waits_behind_ready_row_hits() {
        let mut c = controller();
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        let first = run_until_complete(&mut c, 0, 200)[0].completed_at;
        let start = first + 1;
        // Row hit and an RNG request: hit is scheduled first.
        c.try_enqueue(read_at(2, 0, 5, 1), start).unwrap();
        let mut rng = read_at(3, 0, 0, 0);
        rng.kind = RequestKind::Rng;
        c.try_enqueue(rng, start).unwrap();
        let mut done = Vec::new();
        let sel = c.tick(start, &mut done);
        assert!(sel.is_none(), "row hit should be scheduled before RNG");
        assert_eq!(c.stats().reads, 2);
        // Next cycle, the RNG request is selected.
        let sel = c.tick(start + 1, &mut done);
        assert_eq!(sel.map(|r| r.id), Some(3));
    }

    #[test]
    fn drain_rng_requests_removes_only_rng() {
        let mut c = controller();
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        let mut rng = read_at(2, 0, 0, 0);
        rng.kind = RequestKind::Rng;
        c.try_enqueue(rng, 0).unwrap();
        let drained = c.drain_rng_requests();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].id, 2);
        assert_eq!(c.read_queue().len(), 1);
    }

    #[test]
    fn idle_periods_recorded_between_requests() {
        let mut c = controller();
        let mut done = Vec::new();
        // 50 idle cycles, then a request, then idle again.
        for now in 0..50 {
            c.tick(now, &mut done);
        }
        c.try_enqueue(read_at(1, 0, 5, 0), 50).unwrap();
        for now in 50..200 {
            c.tick(now, &mut done);
        }
        c.finish();
        assert!(!c.stats().idle_periods.is_empty());
        assert_eq!(c.stats().idle_periods[0], 50);
    }

    #[test]
    fn block_until_freezes_regular_service() {
        let mut c = controller();
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        c.block_until(100);
        let mut done = Vec::new();
        for now in 0..100 {
            c.tick(now, &mut done);
        }
        assert!(done.is_empty(), "no service while blocked");
        assert_eq!(c.stats().rng_blocked_cycles, 100);
        for now in 100..300 {
            c.tick(now, &mut done);
        }
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn prepare_rng_mode_precharges_open_banks() {
        let mut c = controller();
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        let mut done = Vec::new();
        for now in 0..30 {
            c.tick(now, &mut done);
        }
        assert!(!c.all_banks_precharged());
        let ready = c.prepare_rng_mode(30);
        assert!(c.all_banks_precharged());
        assert!(ready > 30, "precharge + tRP must take time");
        // Idle channel: preparation is (nearly) free.
        let mut idle = controller();
        let ready_idle = idle.prepare_rng_mode(30);
        assert_eq!(ready_idle, 30);
    }

    #[test]
    fn read_latency_stats_match_completions() {
        let mut c = controller();
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        let done = run_until_complete(&mut c, 0, 200);
        let lat = done[0].completed_at;
        assert_eq!(c.stats().per_core[0].latency_sum, lat);
        assert_eq!(c.stats().per_core[0].reads, 1);
    }

    #[test]
    fn write_drain_hysteresis_engages_at_high_watermark() {
        let mut c = controller();
        // Fill write queue past the high watermark while a read stream runs.
        for i in 0..WRITE_DRAIN_HI as u64 {
            let mut w = read_at(100 + i, (i % 8) as u32, 1, i as u32);
            w.kind = RequestKind::Write;
            c.try_enqueue(w, 0).unwrap();
        }
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        let mut done = Vec::new();
        for now in 0..2000 {
            c.tick(now, &mut done);
            if c.write_queue().len() <= WRITE_DRAIN_LO {
                break;
            }
        }
        assert!(c.write_queue().len() <= WRITE_DRAIN_LO);
        // The read is served only after the drain drops below the low mark.
        assert!(c.stats().writes >= (WRITE_DRAIN_HI - WRITE_DRAIN_LO) as u64);
    }

    /// Drives a reference clone per-cycle and a fast-forward clone with
    /// skip_to over the same dead span, asserting identical state — both
    /// right after the span and after 500 further live ticks, so latent
    /// divergence (e.g. stale hysteresis) surfaces too.
    fn assert_skip_matches_ticks(c: &ChannelController<FrFcfs>, from: u64) {
        let event = c.next_event_at(from).unwrap_or(u64::MAX);
        assert!(event > from, "span must be dead to compare");
        let to = event.min(from + 5000);
        let mut reference = c.clone();
        let mut scratch = Vec::new();
        for now in from..to {
            let sel = reference.tick(now, &mut scratch);
            assert!(sel.is_none(), "dead span must not select requests");
        }
        // Completions in the dead span would have been lost.
        assert!(scratch.is_empty(), "dead span must not complete requests");
        let mut fast = c.clone();
        fast.skip_to(from, to);
        assert_eq!(fast.stats(), reference.stats());
        assert_eq!(fast.cur_idle, reference.cur_idle);
        assert_eq!(fast.in_write_drain, reference.in_write_drain);
        // Continue both live and require them to stay in lockstep.
        let mut ref_done = Vec::new();
        let mut fast_done = Vec::new();
        for now in to..to + 500 {
            reference.tick(now, &mut ref_done);
            fast.tick(now, &mut fast_done);
        }
        assert_eq!(fast.stats(), reference.stats(), "post-span divergence");
        assert_eq!(fast_done.len(), ref_done.len());
    }

    #[test]
    fn next_event_on_quiet_channel_is_refresh_deadline() {
        let c = controller();
        let t = *c.timing();
        assert_eq!(c.next_event_at(0), Some(t.trefi as u64));
        assert_skip_matches_ticks(&c, 0);
    }

    #[test]
    fn next_event_during_blockade_is_blockade_end() {
        let mut c = controller();
        c.block_until(500);
        assert_eq!(c.next_event_at(0), Some(500));
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        // Still 500: queued work cannot start while blocked.
        assert_eq!(c.next_event_at(10), Some(500));
        assert_skip_matches_ticks(&c, 10);
    }

    #[test]
    fn next_event_sees_pending_data_return() {
        let mut c = controller();
        let t = *c.timing();
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        let mut done = Vec::new();
        // Tick through ACT and RD; data is then in flight.
        for now in 0..=(t.trcd as u64) {
            c.tick(now, &mut done);
        }
        let due = (t.trcd + t.cl + t.tbl) as u64;
        assert_eq!(c.next_event_at(t.trcd as u64 + 1), Some(due));
        assert_skip_matches_ticks(&c, t.trcd as u64 + 1);
    }

    #[test]
    fn next_event_sees_bank_timing_readiness() {
        let mut c = controller();
        let t = *c.timing();
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        let mut done = Vec::new();
        c.tick(0, &mut done); // ACT at cycle 0
        // The RD cannot issue before tRCD: the next event is exactly that.
        assert_eq!(c.next_event_at(1), Some(t.trcd as u64));
        assert_skip_matches_ticks(&c, 1);
    }

    #[test]
    fn next_event_is_now_when_request_ready() {
        let mut c = controller();
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        assert_eq!(c.next_event_at(0), Some(0), "ACT can issue immediately");
    }

    #[test]
    fn skip_preserves_open_idle_period() {
        let mut c = controller();
        let mut done = Vec::new();
        for now in 0..50 {
            c.tick(now, &mut done);
        }
        let event = c.next_event_at(50).unwrap();
        c.skip_to(50, event.min(1000));
        let mut reference = controller();
        for now in 0..event.min(1000) {
            reference.tick(now, &mut done);
        }
        assert_eq!(c.cur_idle, reference.cur_idle);
        assert_eq!(c.stats().idle_cycles, reference.stats().idle_cycles);
    }

    #[test]
    fn skip_replays_write_drain_hysteresis() {
        // Engage the write drain, let it drop into the hysteresis band,
        // then compare skip vs per-cycle across the next dead span (and
        // beyond): the skipped clone must not keep a stale drain flag.
        let mut c = controller();
        for i in 0..WRITE_DRAIN_HI as u64 {
            let mut w = read_at(100 + i, (i % 8) as u32, 1, i as u32);
            w.kind = RequestKind::Write;
            c.try_enqueue(w, 0).unwrap();
        }
        c.try_enqueue(read_at(1, 0, 5, 0), 0).unwrap();
        let mut done = Vec::new();
        let mut now = 0;
        // Drain until the flag would clear on the next update.
        while c.write_queue().len() > WRITE_DRAIN_LO {
            c.tick(now, &mut done);
            now += 1;
        }
        assert!(c.in_write_drain, "flag still set at the issuing tick");
        // Find the next dead span and compare the two paths through it.
        loop {
            let event = c.next_event_at(now).unwrap();
            if event > now {
                assert_skip_matches_ticks(&c, now);
                break;
            }
            c.tick(now, &mut done);
            now += 1;
            assert!(now < 10_000, "a dead span must appear");
        }
    }

    #[test]
    fn swap_remove_keeps_age_order_semantics() {
        // Three same-bank reads to distinct rows: they are serviced oldest
        // first despite swap_remove scrambling queue positions.
        let mut c = controller();
        c.try_enqueue(read_at(1, 0, 1, 0), 0).unwrap();
        c.try_enqueue(read_at(2, 0, 2, 0), 1).unwrap();
        c.try_enqueue(read_at(3, 0, 3, 0), 2).unwrap();
        let mut done = Vec::new();
        for now in 0..1000 {
            c.tick(now, &mut done);
            if done.len() == 3 {
                break;
            }
        }
        let order: Vec<u64> = done.iter().map(|d| d.request.id).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }
}
