use std::error::Error;
use std::fmt;

/// Error returned when a request cannot be accepted by a memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EnqueueError {
    /// The target request queue has no free entry; the requester must retry
    /// (this is how queue back-pressure stalls the core model).
    QueueFull,
}

impl fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnqueueError::QueueFull => write!(f, "memory request queue is full"),
        }
    }
}

impl Error for EnqueueError {}

/// Error returned for invalid simulator configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A geometry or timing field was zero or otherwise out of range.
    InvalidParameter {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidParameter { field, constraint } => {
                write!(f, "invalid configuration: {field} must {constraint}")
            }
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_error_displays() {
        assert_eq!(EnqueueError::QueueFull.to_string(), "memory request queue is full");
    }

    #[test]
    fn config_error_displays_field() {
        let e = ConfigError::InvalidParameter {
            field: "channels",
            constraint: "be nonzero",
        };
        assert!(e.to_string().contains("channels"));
    }
}
