//! Cycle-level DDR3 DRAM and memory-controller simulation substrate for the
//! DR-STRaNGe reproduction.
//!
//! The paper evaluates DR-STRaNGe on a modified Ramulator; this crate is the
//! from-scratch Rust equivalent of the parts of Ramulator the paper relies
//! on:
//!
//! * [`Geometry`] / [`AddressMapping`] — the simulated DRAM organization
//!   (paper Table 1: 4 channels × 1 rank × 8 banks × 64 K rows) and the
//!   `RoBaRaCoCh` physical-address mapping.
//! * [`TimingParams`] — DDR3-1600 timing parameters in bus cycles.
//! * [`Bank`], [`RankTiming`], [`BusTiming`] — the command-timing state
//!   machines (tRCD/tRP/tRAS/tRC/tRRD/tFAW/tCCD/turnarounds/refresh).
//! * [`ChannelController`] — the per-channel memory controller: 32-entry
//!   read/write queues, write-drain, refresh, and pluggable scheduling via
//!   [`SchedulerPolicy`]; plus the hooks DR-STRaNGe uses to run RNG
//!   generation on a channel (mode blocking, precharge-drain, RNG command
//!   accounting).
//! * [`FrFcfs`] (with the column cap of 16) and [`Bliss`] — the baseline
//!   scheduling policies the paper compares against.
//!
//! The CPU model lives in `strange-cpu`; the DR-STRaNGe machinery (random
//! number buffer, idleness predictors, RNG-aware scheduling) lives in
//! `strange-core`.
//!
//! # Examples
//!
//! ```
//! use strange_dram::{
//!     ChannelController, DramAddress, FrFcfs, Geometry, Request, RequestKind, TimingParams,
//! };
//!
//! let geometry = Geometry::paper_default();
//! let mut ctrl = ChannelController::new(
//!     0,
//!     geometry,
//!     TimingParams::ddr3_1600(),
//!     FrFcfs::with_cap(geometry, 16),
//! );
//! ctrl.try_enqueue(
//!     Request {
//!         id: 1,
//!         core: 0,
//!         kind: RequestKind::Read,
//!         addr: DramAddress { channel: 0, rank: 0, bank: 0, row: 7, col: 3 },
//!         arrival: 0,
//!     },
//!     0,
//! )?;
//! let mut completed = Vec::new();
//! for now in 0..100 {
//!     ctrl.tick(now, &mut completed);
//! }
//! assert_eq!(completed.len(), 1);
//! # Ok::<(), strange_dram::EnqueueError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod bank;
mod channel;
mod error;
mod request;
mod sched;
mod stats;
mod timing;

pub use addr::{AddressMapping, DramAddress, Geometry, LINE_BYTES};
pub use bank::{Bank, BusTiming, RankTiming};
pub use channel::{ChannelController, DEFAULT_QUEUE_CAPACITY};
pub use error::{ConfigError, EnqueueError};
pub use request::{CompletedAccess, CoreId, Request, RequestId, RequestKind};
pub use sched::{Bliss, FrFcfs, Readiness, SchedulerPolicy};
pub use stats::{ChannelStats, CoreLatency};
pub use timing::{TimingParams, CPU_CYCLES_PER_MEM_CYCLE, CPU_GHZ, TCK_NS};
