//! Memory requests as seen by the controller.

use crate::addr::DramAddress;

/// Identifier of the core (hardware context) that issued a request.
pub type CoreId = usize;

/// Monotonic request identifier, unique within a simulation.
pub type RequestId = u64;

/// The kind of a memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Demand read (blocks the issuing core's instruction window entry).
    Read,
    /// Writeback (does not block the core).
    Write,
    /// Random-number request. In the RNG-oblivious baseline these share the
    /// read queue; under DR-STRaNGe they live in the separate RNG queue.
    Rng,
}

/// One memory request.
///
/// Passive data carried between the core model, the controller queues, and
/// the DR-STRaNGe engine; fields are public by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Unique id (used to match completions back to window slots).
    pub id: RequestId,
    /// Issuing core.
    pub core: CoreId,
    /// Read / write / RNG.
    pub kind: RequestKind,
    /// Decoded target location. For RNG requests the address is a
    /// placeholder (RNG uses reserved rows picked by the mechanism).
    pub addr: DramAddress,
    /// Memory cycle at which the request entered the controller.
    pub arrival: u64,
}

/// A completed read (or RNG service) returned to the core model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletedAccess {
    /// The request that finished.
    pub request: Request,
    /// Memory cycle at which the last data beat arrived.
    pub completed_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> DramAddress {
        DramAddress {
            channel: 0,
            rank: 0,
            bank: 3,
            row: 42,
            col: 7,
        }
    }

    #[test]
    fn request_is_copy_and_comparable() {
        let r = Request {
            id: 1,
            core: 0,
            kind: RequestKind::Read,
            addr: addr(),
            arrival: 10,
        };
        let s = r;
        assert_eq!(r, s);
    }

    #[test]
    fn kinds_are_distinct() {
        assert_ne!(RequestKind::Read, RequestKind::Rng);
        assert_ne!(RequestKind::Read, RequestKind::Write);
    }
}
