//! The BLISS (Blacklisting) memory scheduler.
//!
//! BLISS (Subramanian et al., ICCD'14 / TPDS'16) observes that
//! interference-causing applications are the ones whose requests are
//! serviced in long back-to-back streaks. It keeps one bit per application:
//! when an application receives `blacklist_threshold` consecutive request
//! services, it is blacklisted; blacklisted applications lose priority to
//! non-blacklisted ones. All blacklist bits are cleared every
//! `clearing_interval` cycles. Within a priority group the usual
//! row-hit-first, then oldest order applies.
//!
//! The paper (Section 8.5 footnote) uses a blacklisting threshold of 4 and a
//! clearing interval of 10 000 cycles.

use crate::request::Request;
use crate::sched::{age_key, frfcfs_best, Readiness, SchedulerPolicy};

/// BLISS scheduling policy.
///
/// # Examples
///
/// ```
/// let policy = strange_dram::Bliss::paper_default();
/// assert_eq!(policy.blacklist_threshold(), 4);
/// assert_eq!(policy.clearing_interval(), 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct Bliss {
    blacklist_threshold: u32,
    clearing_interval: u64,
    blacklisted: Vec<bool>,
    last_core: Option<usize>,
    streak: u32,
    next_clear: u64,
}

impl Bliss {
    /// Creates a BLISS policy with the given threshold and interval.
    ///
    /// # Panics
    ///
    /// Panics if `blacklist_threshold` is zero or `clearing_interval` is
    /// zero.
    pub fn new(blacklist_threshold: u32, clearing_interval: u64) -> Self {
        assert!(blacklist_threshold > 0, "blacklist threshold must be nonzero");
        assert!(clearing_interval > 0, "clearing interval must be nonzero");
        Bliss {
            blacklist_threshold,
            clearing_interval,
            blacklisted: Vec::new(),
            last_core: None,
            streak: 0,
            next_clear: clearing_interval,
        }
    }

    /// The paper's configuration: threshold 4, clearing interval 10 000.
    pub fn paper_default() -> Self {
        Bliss::new(4, 10_000)
    }

    /// Configured blacklisting threshold.
    pub fn blacklist_threshold(&self) -> u32 {
        self.blacklist_threshold
    }

    /// Configured clearing interval in memory cycles.
    pub fn clearing_interval(&self) -> u64 {
        self.clearing_interval
    }

    /// Whether `core` is currently blacklisted.
    pub fn is_blacklisted(&self, core: usize) -> bool {
        self.blacklisted.get(core).copied().unwrap_or(false)
    }

    fn mark(&mut self, core: usize) {
        if self.blacklisted.len() <= core {
            self.blacklisted.resize(core + 1, false);
        }
        self.blacklisted[core] = true;
    }
}

impl SchedulerPolicy for Bliss {
    fn select(&mut self, _now: u64, queue: &[Request], readiness: &[Readiness]) -> Option<usize> {
        // frfcfs_best has no notion of the blacklist, so do the grouping
        // here: scan for the best ready request among non-blacklisted apps
        // first; fall back to all requests only when that yields nothing.
        let mut best: Option<(usize, bool)> = None;
        for (i, (req, r)) in queue.iter().zip(readiness).enumerate() {
            if !r.ready_now || self.is_blacklisted(req.core) {
                continue;
            }
            best = match best {
                None => Some((i, r.row_hit)),
                Some((b, bh)) => {
                    let ih = r.row_hit;
                    if (ih && !bh) || (ih == bh && age_key(req) < age_key(&queue[b])) {
                        Some((i, ih))
                    } else {
                        Some((b, bh))
                    }
                }
            };
        }
        best.map(|(i, _)| i)
            .or_else(|| frfcfs_best(queue, readiness, |_, r| r.row_hit))
    }

    fn on_serviced(&mut self, req: &Request, _row_hit: bool) {
        if self.last_core == Some(req.core) {
            self.streak += 1;
        } else {
            self.last_core = Some(req.core);
            self.streak = 1;
        }
        if self.streak >= self.blacklist_threshold {
            self.mark(req.core);
        }
    }

    fn on_cycle(&mut self, now: u64) {
        if now >= self.next_clear {
            self.blacklisted.iter_mut().for_each(|b| *b = false);
            self.next_clear = now + self.clearing_interval;
        }
    }

    fn on_cycles_skipped(&mut self, from: u64, to: u64) {
        // Replicates per-cycle `on_cycle` over `from..to` in closed form:
        // the first cycle at or past `next_clear` clears the blacklist (no
        // services happen in a skipped span, so later clears are no-ops),
        // and subsequent triggers land exactly every `clearing_interval`.
        let first = from.max(self.next_clear);
        if from >= to || first >= to {
            return;
        }
        self.blacklisted.iter_mut().for_each(|b| *b = false);
        let triggers = (to - 1 - first) / self.clearing_interval;
        self.next_clear = first + (triggers + 1) * self.clearing_interval;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::read_req;

    fn ready(hit: bool) -> Readiness {
        Readiness {
            ready_now: true,
            row_hit: hit,
        }
    }

    #[test]
    fn streak_blacklists_at_threshold() {
        let mut p = Bliss::new(4, 10_000);
        let req = read_req(0, 2, 0, 1, 0);
        for _ in 0..3 {
            p.on_serviced(&req, true);
            assert!(!p.is_blacklisted(2));
        }
        p.on_serviced(&req, true);
        assert!(p.is_blacklisted(2));
    }

    #[test]
    fn other_core_breaks_streak() {
        let mut p = Bliss::new(3, 10_000);
        let a = read_req(0, 0, 0, 1, 0);
        let b = read_req(1, 1, 0, 1, 1);
        p.on_serviced(&a, true);
        p.on_serviced(&a, true);
        p.on_serviced(&b, true); // breaks core 0's streak
        p.on_serviced(&a, true);
        p.on_serviced(&a, true);
        assert!(!p.is_blacklisted(0));
        p.on_serviced(&a, true);
        assert!(p.is_blacklisted(0));
    }

    #[test]
    fn non_blacklisted_beats_blacklisted_hit() {
        let mut p = Bliss::new(1, 10_000);
        let bl = read_req(0, 0, 0, 1, 0);
        p.on_serviced(&bl, true); // threshold 1: core 0 blacklisted
        assert!(p.is_blacklisted(0));
        // core 0 has a row hit; core 1 a miss — core 1 still wins.
        let queue = vec![read_req(1, 0, 0, 1, 0), read_req(2, 1, 1, 2, 3)];
        let readiness = vec![ready(true), ready(false)];
        assert_eq!(p.select(0, &queue, &readiness), Some(1));
    }

    #[test]
    fn falls_back_to_blacklisted_when_alone() {
        let mut p = Bliss::new(1, 10_000);
        let bl = read_req(0, 0, 0, 1, 0);
        p.on_serviced(&bl, true);
        let queue = vec![read_req(1, 0, 0, 1, 0)];
        let readiness = vec![ready(true)];
        assert_eq!(p.select(0, &queue, &readiness), Some(0));
    }

    #[test]
    fn clearing_interval_resets_blacklist() {
        let mut p = Bliss::new(1, 100);
        let req = read_req(0, 3, 0, 1, 0);
        p.on_serviced(&req, true);
        assert!(p.is_blacklisted(3));
        p.on_cycle(99);
        assert!(p.is_blacklisted(3));
        p.on_cycle(100);
        assert!(!p.is_blacklisted(3));
    }

    #[test]
    #[should_panic(expected = "threshold must be nonzero")]
    fn zero_threshold_rejected() {
        Bliss::new(0, 100);
    }
}
