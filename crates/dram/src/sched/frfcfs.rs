//! FR-FCFS with a column-access cap.
//!
//! First-Ready First-Come-First-Serve maximizes row-buffer hit rate by
//! servicing ready row hits before older row misses, breaking ties by age.
//! Unbounded reordering starves low-locality applications, so the paper's
//! baseline (following Mutlu & Moscibroda, MICRO'07) caps the number of
//! *consecutive* row hits a bank may service while older requests wait; once
//! a bank has serviced `cap` consecutive hits, its hits lose their priority
//! until a non-hit is serviced on that bank.

use crate::addr::Geometry;
use crate::request::Request;
use crate::sched::{frfcfs_best, Readiness, SchedulerPolicy};

/// FR-FCFS scheduling policy with a column-access cap.
///
/// # Examples
///
/// ```
/// use strange_dram::{FrFcfs, Geometry};
/// let policy = FrFcfs::with_cap(Geometry::paper_default(), 16);
/// assert_eq!(policy.cap(), Some(16));
/// ```
#[derive(Debug, Clone)]
pub struct FrFcfs {
    geometry: Geometry,
    cap: Option<u32>,
    consecutive_hits: Vec<u32>,
}

impl FrFcfs {
    /// Pure FR-FCFS with no column cap.
    pub fn new(geometry: Geometry) -> Self {
        FrFcfs {
            geometry,
            cap: None,
            consecutive_hits: vec![0; (geometry.ranks * geometry.banks) as usize],
        }
    }

    /// FR-FCFS with a column-access cap (the paper uses 16).
    pub fn with_cap(geometry: Geometry, cap: u32) -> Self {
        FrFcfs {
            cap: Some(cap),
            ..FrFcfs::new(geometry)
        }
    }

    /// The configured cap, if any.
    pub fn cap(&self) -> Option<u32> {
        self.cap
    }

    fn bank_index(&self, req: &Request) -> usize {
        (req.addr.rank * self.geometry.banks + req.addr.bank) as usize
    }

    fn hit_allowed(&self, req: &Request) -> bool {
        match self.cap {
            None => true,
            Some(cap) => self.consecutive_hits[self.bank_index(req)] < cap,
        }
    }
}

impl SchedulerPolicy for FrFcfs {
    fn select(&mut self, _now: u64, queue: &[Request], readiness: &[Readiness]) -> Option<usize> {
        frfcfs_best(queue, readiness, |req, r| r.row_hit && self.hit_allowed(req))
    }

    fn on_serviced(&mut self, req: &Request, row_hit: bool) {
        let idx = self.bank_index(req);
        if row_hit {
            self.consecutive_hits[idx] = self.consecutive_hits[idx].saturating_add(1);
        } else {
            self.consecutive_hits[idx] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::testutil::read_req;

    fn ready_hit() -> Readiness {
        Readiness {
            ready_now: true,
            row_hit: true,
        }
    }

    fn ready_miss() -> Readiness {
        Readiness {
            ready_now: true,
            row_hit: false,
        }
    }

    #[test]
    fn prefers_hit_over_older_miss() {
        let mut p = FrFcfs::with_cap(Geometry::paper_default(), 16);
        let queue = vec![read_req(0, 0, 0, 1, 0), read_req(1, 0, 0, 2, 5)];
        let readiness = vec![ready_miss(), ready_hit()];
        assert_eq!(p.select(0, &queue, &readiness), Some(1));
    }

    #[test]
    fn cap_restores_age_order_after_streak() {
        let mut p = FrFcfs::with_cap(Geometry::paper_default(), 4);
        let hit_req = read_req(1, 0, 0, 2, 5);
        // Four consecutive hits on bank 0 exhaust the cap.
        for _ in 0..4 {
            p.on_serviced(&hit_req, true);
        }
        let queue = vec![read_req(0, 0, 0, 1, 0), hit_req];
        let readiness = vec![ready_miss(), ready_hit()];
        // Hit no longer has priority: oldest ready wins.
        assert_eq!(p.select(0, &queue, &readiness), Some(0));
    }

    #[test]
    fn non_hit_service_resets_streak() {
        let mut p = FrFcfs::with_cap(Geometry::paper_default(), 2);
        let hit_req = read_req(1, 0, 0, 2, 5);
        p.on_serviced(&hit_req, true);
        p.on_serviced(&hit_req, true);
        p.on_serviced(&hit_req, false); // streak broken
        let queue = vec![read_req(0, 0, 0, 1, 0), hit_req];
        let readiness = vec![ready_miss(), ready_hit()];
        assert_eq!(p.select(0, &queue, &readiness), Some(1));
    }

    #[test]
    fn cap_is_per_bank() {
        let mut p = FrFcfs::with_cap(Geometry::paper_default(), 1);
        let bank0 = read_req(1, 0, 0, 2, 5);
        p.on_serviced(&bank0, true); // bank 0 capped
        // A hit on bank 1 is still prioritized.
        let queue = vec![read_req(0, 0, 0, 1, 0), read_req(2, 0, 1, 2, 9)];
        let readiness = vec![ready_miss(), ready_hit()];
        assert_eq!(p.select(0, &queue, &readiness), Some(1));
    }

    #[test]
    fn uncapped_never_loses_hit_priority() {
        let mut p = FrFcfs::new(Geometry::paper_default());
        let hit_req = read_req(1, 0, 0, 2, 5);
        for _ in 0..1000 {
            p.on_serviced(&hit_req, true);
        }
        let queue = vec![read_req(0, 0, 0, 1, 0), hit_req];
        let readiness = vec![ready_miss(), ready_hit()];
        assert_eq!(p.select(0, &queue, &readiness), Some(1));
    }
}
