//! Memory request scheduling policies.
//!
//! The controller computes, for every queued request, whether its *next
//! required DRAM command* (PRE, ACT, or the column command) could issue this
//! cycle and whether the request is a row-buffer hit; a
//! [`SchedulerPolicy`] then picks which request to advance. This mirrors how
//! Ramulator separates policy (request ordering) from mechanism (command
//! issue and timing).
//!
//! Provided policies:
//!
//! * [`FrFcfs`] — First-Ready First-Come-First-Serve with a column-access
//!   cap (the paper's baseline scheduler, "FR-FCFS+Cap" with cap 16).
//! * [`Bliss`] — the Blacklisting memory scheduler (Section 8.4 comparison).
//!
//! The DR-STRaNGe RNG-aware scheduler builds on these in the
//! `strange-core` crate: per-channel regular scheduling stays FR-FCFS+Cap,
//! while the RNG-vs-regular arbitration happens in the DR-STRaNGe engine.

mod bliss;
mod frfcfs;

pub use bliss::Bliss;
pub use frfcfs::FrFcfs;

use crate::request::Request;

/// Readiness of one queued request, computed by the controller each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Readiness {
    /// The request's next required command can issue *this* cycle.
    pub ready_now: bool,
    /// The request targets the currently open row of its bank.
    pub row_hit: bool,
}

/// A memory request scheduling policy.
///
/// Implementations select the queue index of the request whose next command
/// the controller should issue. They may keep history (e.g. BLISS streak
/// counters) via the `on_serviced` / `on_cycle` hooks.
pub trait SchedulerPolicy {
    /// Chooses a request from `queue`. Must return an index whose
    /// `readiness[i].ready_now` is true, or `None` when nothing can issue.
    fn select(&mut self, now: u64, queue: &[Request], readiness: &[Readiness]) -> Option<usize>;

    /// Called when a request's column command issues (the request is
    /// serviced). `row_hit` tells whether it hit the open row.
    fn on_serviced(&mut self, req: &Request, row_hit: bool) {
        let _ = (req, row_hit);
    }

    /// Called once per memory cycle (e.g. for BLISS's clearing interval).
    fn on_cycle(&mut self, now: u64) {
        let _ = now;
    }

    /// Fast-forward catch-up: must leave the policy in exactly the state
    /// that calling [`SchedulerPolicy::on_cycle`] once for every cycle in
    /// `from..to` would, given that no request is serviced in that span.
    /// Policies without per-cycle state need not override this.
    fn on_cycles_skipped(&mut self, from: u64, to: u64) {
        let _ = (from, to);
    }
}

/// Age ordering key for a request: arrival cycle, with the globally
/// monotone request id as the tie-break. Queues are not kept in arrival
/// order (the controller uses `swap_remove`), so age comparisons must use
/// this key rather than queue position.
pub(crate) fn age_key(req: &Request) -> (u64, u64) {
    (req.arrival, req.id)
}

/// Baseline FR-FCFS ordering over `(ready, hit, age)`, shared by policies
/// and by the controller's internal write-drain scheduling.
///
/// `effective_hit` is evaluated on the request and its readiness entry
/// directly (no re-indexing into the slices), at most once per candidate:
/// the incumbent's hit bit is carried in the loop state.
///
/// Returns the index of the best request, or `None` if none is ready.
pub(crate) fn frfcfs_best(
    queue: &[Request],
    readiness: &[Readiness],
    effective_hit: impl Fn(&Request, Readiness) -> bool,
) -> Option<usize> {
    debug_assert_eq!(queue.len(), readiness.len());
    let mut best: Option<(usize, bool)> = None;
    for (i, (req, &r)) in queue.iter().zip(readiness).enumerate() {
        if !r.ready_now {
            continue;
        }
        match best {
            None => best = Some((i, effective_hit(req, r))),
            Some((b, bh)) => {
                let ih = effective_hit(req, r);
                // Prefer row hits; ties broken by age.
                if (ih && !bh) || (ih == bh && age_key(req) < age_key(&queue[b])) {
                    best = Some((i, ih));
                }
            }
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::addr::DramAddress;
    use crate::request::{CoreId, Request, RequestKind};

    /// Builds a read request for tests; `bank`/`row` select the location.
    pub fn read_req(id: u64, core: CoreId, bank: u32, row: u32, arrival: u64) -> Request {
        Request {
            id,
            core,
            kind: RequestKind::Read,
            addr: DramAddress {
                channel: 0,
                rank: 0,
                bank,
                row,
                col: 0,
            },
            arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::read_req;
    use super::*;

    #[test]
    fn frfcfs_best_prefers_ready_hit_then_age() {
        let queue = vec![
            read_req(0, 0, 0, 1, 0), // oldest, not ready
            read_req(1, 0, 0, 2, 1), // ready, miss
            read_req(2, 0, 1, 3, 2), // ready, hit
        ];
        let readiness = vec![
            Readiness { ready_now: false, row_hit: true },
            Readiness { ready_now: true, row_hit: false },
            Readiness { ready_now: true, row_hit: true },
        ];
        let got = frfcfs_best(&queue, &readiness, |_, r| r.row_hit);
        assert_eq!(got, Some(2));
    }

    #[test]
    fn frfcfs_best_falls_back_to_oldest_ready() {
        let queue = vec![read_req(0, 0, 0, 1, 0), read_req(1, 0, 0, 2, 1)];
        let readiness = vec![
            Readiness { ready_now: true, row_hit: false },
            Readiness { ready_now: true, row_hit: false },
        ];
        assert_eq!(frfcfs_best(&queue, &readiness, |_, r| r.row_hit), Some(0));
    }

    #[test]
    fn frfcfs_best_none_when_nothing_ready() {
        let queue = vec![read_req(0, 0, 0, 1, 0)];
        let readiness = vec![Readiness { ready_now: false, row_hit: false }];
        assert_eq!(frfcfs_best(&queue, &readiness, |_, r| r.row_hit), None);
    }
}
