//! Per-channel statistics: command counts, row-buffer outcomes, idle-period
//! tracking (Figures 5 and 18), occupancy, and per-core read latencies.

/// Cap on individually recorded idle periods, to bound memory on very long
/// runs. Periods past the cap still count toward the totals.
const MAX_RECORDED_IDLE_PERIODS: usize = 4_000_000;

/// Per-core read latency accumulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreLatency {
    /// Sum of read service latencies (memory cycles, enqueue to data).
    pub latency_sum: u64,
    /// Number of completed reads.
    pub reads: u64,
}

impl CoreLatency {
    /// Average read latency in memory cycles (0 if no reads completed).
    pub fn average(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.reads as f64
        }
    }
}

/// Statistics collected by one channel controller.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// ACT commands issued for regular requests.
    pub acts: u64,
    /// PRE commands issued (including refresh-drain precharges).
    pub pres: u64,
    /// RD commands issued for regular requests.
    pub reads: u64,
    /// WR commands issued.
    pub writes: u64,
    /// REF commands issued.
    pub refreshes: u64,
    /// ACT-equivalents issued in RNG mode (reduced-timing activations).
    pub rng_acts: u64,
    /// RD-equivalents issued in RNG mode.
    pub rng_reads: u64,
    /// PRE-equivalents issued in RNG mode.
    pub rng_pres: u64,
    /// Column commands that hit the open row.
    pub row_hits: u64,
    /// Column commands that required activating a closed bank.
    pub row_misses: u64,
    /// Column commands that required closing a different row first.
    pub row_conflicts: u64,
    /// Total ticks observed.
    pub cycles: u64,
    /// Ticks with empty queues and no RNG-mode occupancy.
    pub idle_cycles: u64,
    /// Ticks during which every bank was precharged.
    pub all_precharged_cycles: u64,
    /// Ticks spent blocked for RNG generation (on-demand or buffer fill).
    pub rng_blocked_cycles: u64,
    /// Completed idle periods, in cycles (for Figures 5 and 18).
    pub idle_periods: Vec<u32>,
    /// Idle periods not individually recorded due to the memory cap.
    pub idle_periods_dropped: u64,
    /// Sum of read-queue occupancy over all ticks (average = /cycles).
    pub read_queue_occupancy_sum: u64,
    /// Per-core read latency accumulators (indexed by core id).
    pub per_core: Vec<CoreLatency>,
}

impl ChannelStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        ChannelStats::default()
    }

    /// Records a completed idle period of `len` cycles.
    pub fn record_idle_period(&mut self, len: u64) {
        if self.idle_periods.len() < MAX_RECORDED_IDLE_PERIODS {
            self.idle_periods.push(len.min(u32::MAX as u64) as u32);
        } else {
            self.idle_periods_dropped += 1;
        }
    }

    /// Records a completed read for `core` with the given service latency.
    pub fn record_read_latency(&mut self, core: usize, latency: u64) {
        if self.per_core.len() <= core {
            self.per_core.resize(core + 1, CoreLatency::default());
        }
        let c = &mut self.per_core[core];
        c.latency_sum += latency;
        c.reads += 1;
    }

    /// Row-hit rate over all serviced column commands.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Average read-queue occupancy.
    pub fn avg_read_queue_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.read_queue_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Fraction of ticks the channel was idle (queue-empty, not RNG-blocked).
    pub fn idle_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.idle_cycles as f64 / self.cycles as f64
        }
    }

    /// Merges another channel's statistics into this one (used for
    /// system-level aggregates; idle periods are concatenated).
    pub fn merge(&mut self, other: &ChannelStats) {
        self.acts += other.acts;
        self.pres += other.pres;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.rng_acts += other.rng_acts;
        self.rng_reads += other.rng_reads;
        self.rng_pres += other.rng_pres;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
        self.cycles += other.cycles;
        self.idle_cycles += other.idle_cycles;
        self.all_precharged_cycles += other.all_precharged_cycles;
        self.rng_blocked_cycles += other.rng_blocked_cycles;
        for &p in &other.idle_periods {
            self.record_idle_period(p as u64);
        }
        self.idle_periods_dropped += other.idle_periods_dropped;
        self.read_queue_occupancy_sum += other.read_queue_occupancy_sum;
        if self.per_core.len() < other.per_core.len() {
            self.per_core.resize(other.per_core.len(), CoreLatency::default());
        }
        for (i, c) in other.per_core.iter().enumerate() {
            self.per_core[i].latency_sum += c.latency_sum;
            self.per_core[i].reads += c.reads;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_latency_average() {
        let c = CoreLatency {
            latency_sum: 100,
            reads: 4,
        };
        assert_eq!(c.average(), 25.0);
        assert_eq!(CoreLatency::default().average(), 0.0);
    }

    #[test]
    fn row_hit_rate_handles_zero() {
        assert_eq!(ChannelStats::new().row_hit_rate(), 0.0);
    }

    #[test]
    fn record_read_latency_grows_per_core() {
        let mut s = ChannelStats::new();
        s.record_read_latency(3, 50);
        assert_eq!(s.per_core.len(), 4);
        assert_eq!(s.per_core[3].reads, 1);
        assert_eq!(s.per_core[0].reads, 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ChannelStats::new();
        a.acts = 5;
        a.record_idle_period(10);
        a.record_read_latency(0, 30);
        let mut b = ChannelStats::new();
        b.acts = 7;
        b.record_idle_period(20);
        b.record_read_latency(1, 40);
        a.merge(&b);
        assert_eq!(a.acts, 12);
        assert_eq!(a.idle_periods, vec![10, 20]);
        assert_eq!(a.per_core[1].latency_sum, 40);
    }

    #[test]
    fn idle_fraction_basic() {
        let mut s = ChannelStats::new();
        s.cycles = 10;
        s.idle_cycles = 4;
        assert_eq!(s.idle_fraction(), 0.4);
    }
}
