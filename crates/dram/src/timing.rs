//! DDR3 timing parameters.
//!
//! All values are in DRAM bus cycles (tCK = 1.25 ns for DDR3-1600, bus
//! frequency 800 MHz as in paper Table 1). The defaults follow a standard
//! DDR3-1600 11-11-11 part (Micron 2 Gb ×8 class), which is also what
//! Ramulator's DDR3 model and DRAMPower assume.

use crate::ConfigError;

/// DDR3 timing parameters in bus cycles.
///
/// # Examples
///
/// ```
/// let t = strange_dram::TimingParams::ddr3_1600();
/// assert_eq!(t.cl, 11);
/// assert_eq!(t.read_latency(), 11 + 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// CAS latency: RD command to first data beat.
    pub cl: u32,
    /// CAS write latency: WR command to first data beat.
    pub cwl: u32,
    /// ACT to internal RD/WR delay.
    pub trcd: u32,
    /// PRE to ACT delay on the same bank.
    pub trp: u32,
    /// ACT to PRE minimum on the same bank.
    pub tras: u32,
    /// ACT to ACT minimum on the same bank (`tras + trp`).
    pub trc: u32,
    /// Burst length on the bus (BL8 → 4 bus cycles).
    pub tbl: u32,
    /// Column command to column command minimum.
    pub tccd: u32,
    /// RD to PRE minimum.
    pub trtp: u32,
    /// Write recovery: end of write data to PRE.
    pub twr: u32,
    /// End of write data to RD command (same rank).
    pub twtr: u32,
    /// ACT to ACT minimum across banks of the same rank.
    pub trrd: u32,
    /// Four-activate window: at most 4 ACTs per rank in this window.
    pub tfaw: u32,
    /// Average refresh interval (one REF owed per `trefi`).
    pub trefi: u32,
    /// Refresh cycle time: rank is busy this long after REF.
    pub trfc: u32,
    /// RD command to WR command bus turnaround.
    pub trtw: u32,
}

impl TimingParams {
    /// DDR3-1600 11-11-11 (tCK = 1.25 ns) parameters, the paper's DRAM.
    pub fn ddr3_1600() -> Self {
        TimingParams {
            cl: 11,
            cwl: 8,
            trcd: 11,
            trp: 11,
            tras: 28,
            trc: 39,
            tbl: 4,
            tccd: 4,
            trtp: 6,
            twr: 12,
            twtr: 6,
            trrd: 5,
            tfaw: 24,
            trefi: 6240,
            trfc: 128,
            trtw: 9,
        }
    }

    /// Total read latency (command to last data beat).
    pub fn read_latency(&self) -> u32 {
        self.cl + self.tbl
    }

    /// Total write occupancy (command to end of write recovery).
    pub fn write_latency(&self) -> u32 {
        self.cwl + self.tbl + self.twr
    }

    /// Validates internal consistency (e.g. `trc >= tras + trp`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] for the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cl == 0 || self.trcd == 0 || self.trp == 0 || self.tbl == 0 {
            return Err(ConfigError::InvalidParameter {
                field: "cl/trcd/trp/tbl",
                constraint: "be nonzero",
            });
        }
        if self.trc < self.tras + self.trp {
            return Err(ConfigError::InvalidParameter {
                field: "trc",
                constraint: "be at least tras + trp",
            });
        }
        if self.tfaw < self.trrd {
            return Err(ConfigError::InvalidParameter {
                field: "tfaw",
                constraint: "be at least trrd",
            });
        }
        if self.trefi <= self.trfc {
            return Err(ConfigError::InvalidParameter {
                field: "trefi",
                constraint: "exceed trfc",
            });
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::ddr3_1600()
    }
}

/// DRAM bus clock period in nanoseconds for DDR3-1600.
pub const TCK_NS: f64 = 1.25;

/// CPU clock frequency in GHz (paper Table 1).
pub const CPU_GHZ: f64 = 4.0;

/// CPU cycles per DRAM bus cycle (4 GHz / 800 MHz).
pub const CPU_CYCLES_PER_MEM_CYCLE: u64 = 5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr3_defaults_are_consistent() {
        TimingParams::ddr3_1600().validate().unwrap();
    }

    #[test]
    fn trc_constraint_enforced() {
        let mut t = TimingParams::ddr3_1600();
        t.trc = 10;
        assert!(t.validate().is_err());
    }

    #[test]
    fn trefi_must_exceed_trfc() {
        let mut t = TimingParams::ddr3_1600();
        t.trefi = t.trfc;
        assert!(t.validate().is_err());
    }

    #[test]
    fn read_latency_is_cl_plus_burst() {
        let t = TimingParams::ddr3_1600();
        assert_eq!(t.read_latency(), t.cl + t.tbl);
    }

    #[test]
    fn clock_domain_ratio_is_five() {
        assert_eq!(CPU_CYCLES_PER_MEM_CYCLE, 5);
        assert!((CPU_GHZ * TCK_NS - 5.0).abs() < 1e-12);
    }
}
