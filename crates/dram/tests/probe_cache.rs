//! Property tests for the channel controller's O(1) next-event probe
//! cache: under random request streams and controller activity, the cached
//! probe must agree with a from-scratch scan — in particular it must
//! **never report an event later than the reference** (a late event would
//! let the fast-forward loop skip over real work; an early one only costs
//! a wasted probe).

use proptest::prelude::*;

use strange_dram::{
    ChannelController, DramAddress, FrFcfs, Geometry, Request, RequestKind, TimingParams,
};

fn controller() -> ChannelController<FrFcfs> {
    let g = Geometry::paper_default();
    ChannelController::new(0, g, TimingParams::ddr3_1600(), FrFcfs::with_cap(g, 16))
}

fn request(id: u64, kind: RequestKind, raw: u64) -> Request {
    let g = Geometry::paper_default();
    Request {
        id,
        core: (raw % 4) as usize,
        kind,
        addr: DramAddress {
            channel: 0,
            rank: (raw % g.ranks as u64) as u32,
            bank: ((raw >> 3) % g.banks as u64) as u32,
            row: ((raw >> 7) % g.rows as u64) as u32,
            col: ((raw >> 19) % g.cols as u64) as u32,
        },
        arrival: 0,
    }
}

/// The cached probe and the reference scan must agree exactly (equality is
/// stronger than the required "never later").
fn assert_probe_consistent(c: &ChannelController<FrFcfs>, now: u64) {
    let cached = c.next_event_at(now);
    let reference = c.next_event_at_uncached(now);
    assert!(
        cached <= reference,
        "cached probe {cached:?} later than reference {reference:?} at {now}"
    );
    assert_eq!(cached, reference, "probe cache stale at {now}");
}

proptest! {
    /// Drive a controller through a random stream of enqueues, ticks,
    /// blockades, RNG-mode preparations, and dead-span skips; the cached
    /// probe must track the reference scan through every mutation.
    #[test]
    fn cached_probe_matches_reference_scan(
        ops in proptest::collection::vec((0u8..6, any::<u64>(), 1u32..96), 1..120),
    ) {
        let mut c = controller();
        let mut now = 0u64;
        let mut next_id = 1u64;
        let mut completed = Vec::new();
        for (op, raw, span) in ops {
            match op {
                // Enqueue a read / write / RNG request (when accepted).
                0..=2 => {
                    let kind = match op {
                        0 => RequestKind::Read,
                        1 => RequestKind::Write,
                        _ => RequestKind::Rng,
                    };
                    if c.can_accept(kind) {
                        c.try_enqueue(request(next_id, kind, raw), now).unwrap();
                        next_id += 1;
                    }
                }
                // Tick a handful of live cycles.
                3 => {
                    for _ in 0..span.min(48) {
                        c.tick(now, &mut completed);
                        now += 1;
                        assert_probe_consistent(&c, now);
                    }
                }
                // An RNG blockade plus mode preparation.
                4 => {
                    let ready = c.prepare_rng_mode(now);
                    c.block_until(ready + span as u64);
                }
                // Skip a dead span, exactly as the fast-forward loop would.
                5 => {
                    let event = c.next_event_at(now).unwrap_or(u64::MAX);
                    if event > now {
                        let to = event.min(now + span as u64);
                        c.skip_to(now, to);
                        now = to;
                    } else {
                        c.tick(now, &mut completed);
                        now += 1;
                    }
                }
                _ => unreachable!(),
            }
            assert_probe_consistent(&c, now);
        }
    }

    /// With the cache disabled, results are identical to the reference
    /// scan by construction — and a cached controller driven through the
    /// same tick stream produces the same command schedule and stats.
    #[test]
    fn cache_does_not_change_tick_behavior(
        ops in proptest::collection::vec((0u8..3, any::<u64>(), 1u32..64), 1..60),
    ) {
        let mut cached = controller();
        let mut uncached = controller();
        uncached.set_probe_cache(false);
        let mut now = 0u64;
        let mut next_id = 1u64;
        let (mut done_a, mut done_b) = (Vec::new(), Vec::new());
        for (op, raw, span) in ops {
            if op < 2 {
                let kind = if op == 0 { RequestKind::Read } else { RequestKind::Write };
                if cached.can_accept(kind) {
                    cached.try_enqueue(request(next_id, kind, raw), now).unwrap();
                    uncached.try_enqueue(request(next_id, kind, raw), now).unwrap();
                    next_id += 1;
                }
            } else {
                for _ in 0..span {
                    let a = cached.tick(now, &mut done_a);
                    let b = uncached.tick(now, &mut done_b);
                    prop_assert_eq!(a.map(|r| r.id), b.map(|r| r.id));
                    now += 1;
                }
            }
        }
        prop_assert_eq!(cached.stats(), uncached.stats());
        prop_assert_eq!(done_a.len(), done_b.len());
    }
}
