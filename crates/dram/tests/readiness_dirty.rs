//! Property tests for the channel controller's dirty-tracked readiness
//! cache: under random request streams, issues, refreshes, and RNG
//! blockades, the epoch-validated cache must agree entry-for-entry with a
//! from-scratch readiness scan — and enabling the cache must not change a
//! single scheduling decision or statistic.

use proptest::prelude::*;

use strange_dram::{
    ChannelController, DramAddress, FrFcfs, Geometry, Request, RequestKind, TimingParams,
};

fn controller() -> ChannelController<FrFcfs> {
    let g = Geometry::paper_default();
    ChannelController::new(0, g, TimingParams::ddr3_1600(), FrFcfs::with_cap(g, 16))
}

fn request(id: u64, kind: RequestKind, raw: u64) -> Request {
    let g = Geometry::paper_default();
    Request {
        id,
        core: (raw % 4) as usize,
        kind,
        addr: DramAddress {
            channel: 0,
            rank: (raw % g.ranks as u64) as u32,
            bank: ((raw >> 3) % g.banks as u64) as u32,
            row: ((raw >> 7) % g.rows as u64) as u32,
            col: ((raw >> 19) % g.cols as u64) as u32,
        },
        arrival: 0,
    }
}

/// Every cached entry must match the fresh per-request scan exactly: same
/// `ready_now`, same `row_hit`, in queue order.
fn assert_readiness_consistent(c: &ChannelController<FrFcfs>, now: u64) {
    let cached = c.read_readiness_cached(now);
    let fresh = c.read_readiness_fresh(now);
    assert_eq!(
        cached, fresh,
        "dirty-tracked readiness diverged from the fresh scan at {now}"
    );
}

proptest! {
    /// Drive a controller through a random stream of enqueues, ticks
    /// (which issue ACT/PRE/RD/WR and cross refresh edges), RNG blockades,
    /// and dead-span skips; the epoch-validated cache must track the
    /// fresh scan through every mutation.
    #[test]
    fn dirty_readiness_matches_fresh_scan(
        ops in proptest::collection::vec((0u8..6, any::<u64>(), 1u32..96), 1..120),
    ) {
        let mut c = controller();
        let mut now = 0u64;
        let mut next_id = 1u64;
        let mut completed = Vec::new();
        for (op, raw, span) in ops {
            match op {
                // Enqueue a read / write / RNG request (when accepted).
                0..=2 => {
                    let kind = match op {
                        0 => RequestKind::Read,
                        1 => RequestKind::Write,
                        _ => RequestKind::Rng,
                    };
                    if c.can_accept(kind) {
                        c.try_enqueue(request(next_id, kind, raw), now).unwrap();
                        next_id += 1;
                    }
                }
                // Tick a handful of live cycles; each tick may issue a
                // command (bank/rank/bus invalidations) or drain a refresh.
                3 => {
                    for _ in 0..span.min(48) {
                        c.tick(now, &mut completed);
                        now += 1;
                        assert_readiness_consistent(&c, now);
                    }
                }
                // An RNG blockade plus mode preparation (global sweep).
                4 => {
                    let ready = c.prepare_rng_mode(now);
                    c.block_until(ready + span as u64);
                }
                // Skip a dead span, exactly as the fast-forward loop would.
                5 => {
                    let event = c.next_event_at(now).unwrap_or(u64::MAX);
                    if event > now {
                        let to = event.min(now + span as u64);
                        c.skip_to(now, to);
                        now = to;
                    } else {
                        c.tick(now, &mut completed);
                        now += 1;
                    }
                }
                _ => unreachable!(),
            }
            assert_readiness_consistent(&c, now);
        }
    }

    /// A dirty-tracking controller and a full-rescan controller driven
    /// through the same op stream must produce the same command schedule,
    /// RNG selections, completions, and statistics.
    #[test]
    fn dirty_tracking_does_not_change_tick_behavior(
        ops in proptest::collection::vec((0u8..4, any::<u64>(), 1u32..64), 1..60),
    ) {
        let mut dirty = controller();
        let mut rescan = controller();
        rescan.set_dirty_readiness(false);
        let mut now = 0u64;
        let mut next_id = 1u64;
        let (mut done_a, mut done_b) = (Vec::new(), Vec::new());
        for (op, raw, span) in ops {
            if op < 3 {
                let kind = match op {
                    0 => RequestKind::Read,
                    1 => RequestKind::Write,
                    _ => RequestKind::Rng,
                };
                if dirty.can_accept(kind) {
                    dirty.try_enqueue(request(next_id, kind, raw), now).unwrap();
                    rescan.try_enqueue(request(next_id, kind, raw), now).unwrap();
                    next_id += 1;
                }
            } else {
                for _ in 0..span {
                    let a = dirty.tick(now, &mut done_a);
                    let b = rescan.tick(now, &mut done_b);
                    prop_assert_eq!(a.map(|r| r.id), b.map(|r| r.id));
                    now += 1;
                }
            }
        }
        prop_assert_eq!(dirty.stats(), rescan.stats());
        prop_assert_eq!(done_a.len(), done_b.len());
        for (a, b) in done_a.iter().zip(&done_b) {
            prop_assert_eq!(a.request.id, b.request.id);
            prop_assert_eq!(a.completed_at, b.completed_at);
        }
    }

    /// Toggling dirty tracking mid-run is safe: cache alignment and epoch
    /// bumps are maintained unconditionally, so a controller that flips
    /// the feature every few ticks still matches an always-on one.
    #[test]
    fn toggling_mid_run_is_safe(
        ops in proptest::collection::vec((0u8..4, any::<u64>(), 1u32..48), 1..50),
    ) {
        let mut flipper = controller();
        let mut steady = controller();
        let mut enabled = true;
        let mut now = 0u64;
        let mut next_id = 1u64;
        let (mut done_a, mut done_b) = (Vec::new(), Vec::new());
        for (op, raw, span) in ops {
            if op < 3 {
                let kind = match op {
                    0 => RequestKind::Read,
                    1 => RequestKind::Write,
                    _ => RequestKind::Rng,
                };
                if flipper.can_accept(kind) {
                    flipper.try_enqueue(request(next_id, kind, raw), now).unwrap();
                    steady.try_enqueue(request(next_id, kind, raw), now).unwrap();
                    next_id += 1;
                }
            } else {
                enabled = !enabled;
                flipper.set_dirty_readiness(enabled);
                for _ in 0..span {
                    let a = flipper.tick(now, &mut done_a);
                    let b = steady.tick(now, &mut done_b);
                    prop_assert_eq!(a.map(|r| r.id), b.map(|r| r.id));
                    now += 1;
                }
            }
        }
        prop_assert_eq!(flipper.stats(), steady.stats());
        prop_assert_eq!(done_a.len(), done_b.len());
    }
}

/// Regression for the write-drain gate: while reads are being served and
/// the write queue sits below the drain threshold, the per-tick write
/// readiness rebuild must never run — only read rebuilds may.
#[test]
fn write_queue_scans_gated_while_reads_served() {
    let mut c = controller();
    let mut completed = Vec::new();
    for i in 0..12u64 {
        c.try_enqueue(request(i + 1, RequestKind::Read, i * 0x9e37), 0)
            .unwrap();
    }
    // A handful of writes, well below the drain-high threshold.
    for i in 0..4u64 {
        c.try_enqueue(request(100 + i, RequestKind::Write, i * 0x517c), 0)
            .unwrap();
    }
    let mut now = 0u64;
    while c.read_queue_len() > 0 {
        c.tick(now, &mut completed);
        now += 1;
        assert!(now < 1_000_000, "reads must drain");
    }
    assert_eq!(
        c.write_readiness_rebuilds(),
        0,
        "write-queue readiness was rebuilt while reads were being served"
    );
    assert!(
        c.read_readiness_rebuilds() > 0,
        "read service must have rebuilt read readiness"
    );
    // Once the read queue is empty, opportunistic write drain kicks in
    // and the write rebuild counter starts moving.
    let before = now;
    while !c.write_queue().is_empty() {
        c.tick(now, &mut completed);
        now += 1;
        assert!(now < before + 1_000_000, "writes must drain");
    }
    assert!(
        c.write_readiness_rebuilds() > 0,
        "opportunistic write drain must rebuild write readiness"
    );
}

/// The recompute counters demonstrate the sublinear claim directly: over
/// a busy stretch, dirty tracking revalidates far fewer entries than the
/// full-rescan path touches.
#[test]
fn dirty_tracking_recomputes_less_than_rescan() {
    let run = |enabled: bool| {
        let mut c = controller();
        c.set_dirty_readiness(enabled);
        let mut completed = Vec::new();
        let mut now = 0u64;
        let mut next_id = 1u64;
        for _ in 0..200u64 {
            while c.can_accept(RequestKind::Read) && c.read_queue_len() < 24 {
                c.try_enqueue(request(next_id, RequestKind::Read, next_id * 0x9e37), now)
                    .unwrap();
                next_id += 1;
            }
            for _ in 0..32 {
                c.tick(now, &mut completed);
                now += 1;
            }
        }
        c.readiness_recompute_counts()
    };
    let (recomputed_on, scanned_on) = run(true);
    let (recomputed_off, scanned_off) = run(false);
    assert_eq!(
        scanned_on, scanned_off,
        "both paths must scan the same rebuild footprint"
    );
    assert_eq!(
        recomputed_off, scanned_off,
        "full rescan recomputes every scanned entry"
    );
    assert!(
        recomputed_on * 2 < recomputed_off,
        "dirty tracking must recompute less than half of what a full \
         rescan does on a busy stretch (got {recomputed_on} vs {recomputed_off})"
    );
}
