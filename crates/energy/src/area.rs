//! CACTI-style SRAM area model at 22 nm.
//!
//! The paper models the DR-STRaNGe structures (random number buffer, RNG
//! request queue, idleness predictor tables) with CACTI 6.0 at 22 nm and
//! reports 0.0022 mm² for the simple-predictor configuration and
//! 0.012 mm² for the RL-predictor configuration (Section 8.9). This module
//! uses a two-parameter linear model — per-bit array area plus a fixed
//! periphery/control overhead — fitted to exactly those two published
//! points, which it reproduces by construction; the value of the model is
//! that it lets the area bench sweep *other* configurations (buffer sizes,
//! table sizes) on the same scale.

/// Effective SRAM bit area at 22 nm, periphery included (µm² per bit).
pub const BIT_AREA_UM2: f64 = 0.154_4;

/// Fixed controller/periphery overhead (µm²).
pub const FIXED_OVERHEAD_UM2: f64 = 1409.7;

/// Reference core area the paper normalizes against (Intel Cascade Lake,
/// via WikiChip): 0.0022 mm² is quoted as 0.00048 % of a core, implying
/// ≈458 mm² of reference area.
pub const CASCADE_LAKE_REFERENCE_MM2: f64 = 458.3;

/// Storage bit counts of the DR-STRaNGe structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureBits {
    /// Random number buffer bits (entries × 64).
    pub buffer: u64,
    /// RNG request queue bits (entries × entry width).
    pub rng_queue: u64,
    /// Idleness predictor bits (all channels).
    pub predictor: u64,
}

impl StructureBits {
    /// The paper's Table 1 configuration with the simple predictor:
    /// 16-entry buffer, 32-entry RNG queue, 256-entry 2-bit table per
    /// channel on 4 channels.
    pub fn paper_simple() -> Self {
        StructureBits {
            buffer: 16 * 64,
            rng_queue: 32 * 64,
            predictor: 4 * 256 * 2,
        }
    }

    /// The paper's RL configuration: the Q-learning agent needs 8 KiB
    /// (1024 states × 2 actions × 4-byte Q-values).
    pub fn paper_rl() -> Self {
        StructureBits {
            predictor: 8 * 1024 * 8,
            ..StructureBits::paper_simple()
        }
    }

    /// Total bits.
    pub fn total(&self) -> u64 {
        self.buffer + self.rng_queue + self.predictor
    }
}

/// Area in mm² of a structure set under the fitted 22 nm model.
///
/// # Examples
///
/// ```
/// use strange_energy::{area_mm2, StructureBits};
///
/// // Reproduces the paper's two published numbers.
/// let simple = area_mm2(StructureBits::paper_simple());
/// assert!((simple - 0.0022).abs() < 0.0002);
/// let rl = area_mm2(StructureBits::paper_rl());
/// assert!((rl - 0.012).abs() < 0.001);
/// ```
pub fn area_mm2(bits: StructureBits) -> f64 {
    (bits.total() as f64 * BIT_AREA_UM2 + FIXED_OVERHEAD_UM2) * 1e-6
}

/// Area as a percentage of the reference Cascade Lake core area.
pub fn area_percent_of_core(bits: StructureBits) -> f64 {
    area_mm2(bits) / CASCADE_LAKE_REFERENCE_MM2 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_simple_area_reproduced() {
        let a = area_mm2(StructureBits::paper_simple());
        assert!((a - 0.0022).abs() / 0.0022 < 0.05, "got {a}");
    }

    #[test]
    fn paper_rl_area_reproduced() {
        let a = area_mm2(StructureBits::paper_rl());
        assert!((a - 0.012).abs() / 0.012 < 0.05, "got {a}");
    }

    #[test]
    fn paper_core_percentage_reproduced() {
        let p = area_percent_of_core(StructureBits::paper_simple());
        assert!((p - 0.00048).abs() / 0.00048 < 0.08, "got {p}");
    }

    #[test]
    fn area_grows_with_buffer_size() {
        let small = StructureBits {
            buffer: 64,
            ..StructureBits::paper_simple()
        };
        let large = StructureBits {
            buffer: 64 * 64,
            ..StructureBits::paper_simple()
        };
        assert!(area_mm2(large) > area_mm2(small));
    }

    #[test]
    fn bit_accounting() {
        let b = StructureBits::paper_simple();
        assert_eq!(b.buffer, 1024);
        assert_eq!(b.predictor, 2048); // 0.0625 KiB × 4 channels
        assert_eq!(b.total(), 1024 + 2048 + 2048);
    }
}
