//! Energy and area models for the DR-STRaNGe reproduction (paper
//! Section 8.9).
//!
//! * [`channel_energy`] / [`system_energy`] — a DRAMPower-style DDR3
//!   energy model (IDD-current equations over command and cycle counts)
//!   standing in for DRAMPower itself, which the paper feeds with
//!   Ramulator traces.
//! * [`area_mm2`] — a CACTI-style SRAM area model at 22 nm fitted to the
//!   paper's two published area numbers (0.0022 mm² simple / 0.012 mm²
//!   RL), used to sweep other structure sizes on the same scale.
//!
//! # Examples
//!
//! ```
//! use strange_energy::{area_mm2, StructureBits};
//!
//! let mm2 = area_mm2(StructureBits::paper_simple());
//! assert!(mm2 < 0.003); // tiny next to a CPU core
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
mod power;

pub use area::{
    area_mm2, area_percent_of_core, StructureBits, BIT_AREA_UM2, CASCADE_LAKE_REFERENCE_MM2,
    FIXED_OVERHEAD_UM2,
};
pub use power::{channel_energy, system_energy, Ddr3PowerParams, EnergyBreakdown};
