//! DRAMPower-style DDR3 energy model.
//!
//! The paper feeds Ramulator's command traces into DRAMPower (Section 8.9);
//! this module implements the same IDD-current-based energy equations over
//! our simulator's command and cycle counts:
//!
//! * ACT+PRE pair energy from IDD0 net of the standby currents,
//! * RD/WR burst energy from IDD4R/IDD4W net of active standby,
//! * REF energy from IDD5B over tRFC,
//! * background energy split between active standby (any bank open,
//!   IDD3N) and precharge standby (all banks closed, IDD2N).
//!
//! RNG-mode rounds issue real ACT/RD/PRE commands with reduced timing;
//! they are charged at the regular per-command energies (the reduced tRCD
//! changes latency, not charge moved per command, to first order).
//!
//! Default currents follow a Micron 2 Gb ×8 DDR3-1600 datasheet; a rank is
//! eight such devices.

use strange_dram::{ChannelStats, TimingParams, TCK_NS};

/// IDD currents and voltage for one DRAM device, plus rank composition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ddr3PowerParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Active-precharge current, one bank cycling (mA).
    pub idd0: f64,
    /// Precharge standby current (mA).
    pub idd2n: f64,
    /// Active standby current (mA).
    pub idd3n: f64,
    /// Read burst current (mA).
    pub idd4r: f64,
    /// Write burst current (mA).
    pub idd4w: f64,
    /// Refresh burst current (mA).
    pub idd5b: f64,
    /// Devices per rank (×8 devices on a 64-bit channel).
    pub devices_per_rank: f64,
    /// Energy of a reduced-timing RNG activation relative to a full
    /// ACT-PRE pair. D-RaNGe's reduced-tRCD accesses truncate the
    /// activation (the row never fully opens before the column read
    /// samples the sense amplifiers), moving a fraction of the charge of a
    /// nominal activation.
    pub rng_act_factor: f64,
}

impl Ddr3PowerParams {
    /// Micron 2 Gb ×8 DDR3-1600 datasheet-typical values.
    pub fn micron_2gb_x8() -> Self {
        Ddr3PowerParams {
            vdd: 1.5,
            idd0: 95.0,
            idd2n: 42.0,
            idd3n: 45.0,
            idd4r: 180.0,
            idd4w: 185.0,
            idd5b: 215.0,
            devices_per_rank: 8.0,
            rng_act_factor: 0.3,
        }
    }
}

impl Default for Ddr3PowerParams {
    fn default() -> Self {
        Ddr3PowerParams::micron_2gb_x8()
    }
}

/// Energy consumed by one channel (or a merged set of channels), in
/// nanojoules, broken down by source.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// ACT+PRE pair energy (includes RNG-mode activations).
    pub act_pre_nj: f64,
    /// Read burst energy (includes RNG-mode reads).
    pub read_nj: f64,
    /// Write burst energy.
    pub write_nj: f64,
    /// Refresh energy.
    pub refresh_nj: f64,
    /// Background (standby) energy.
    pub background_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.act_pre_nj + self.read_nj + self.write_nj + self.refresh_nj + self.background_nj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_nj() * 1e-6
    }

    /// Adds another breakdown (channel aggregation).
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.act_pre_nj += other.act_pre_nj;
        self.read_nj += other.read_nj;
        self.write_nj += other.write_nj;
        self.refresh_nj += other.refresh_nj;
        self.background_nj += other.background_nj;
    }
}

/// Computes the energy of one channel's activity.
///
/// # Examples
///
/// ```
/// use strange_dram::{ChannelStats, TimingParams};
/// use strange_energy::{channel_energy, Ddr3PowerParams};
///
/// let mut stats = ChannelStats::new();
/// stats.cycles = 1_000_000;
/// stats.all_precharged_cycles = 900_000;
/// stats.acts = 10_000;
/// stats.reads = 10_000;
/// let e = channel_energy(&stats, &TimingParams::ddr3_1600(), &Ddr3PowerParams::default());
/// assert!(e.total_nj() > 0.0);
/// assert!(e.background_nj > e.read_nj, "idle channel: background dominates");
/// ```
pub fn channel_energy(
    stats: &ChannelStats,
    timing: &TimingParams,
    params: &Ddr3PowerParams,
) -> EnergyBreakdown {
    // mA × V × ns = pJ; scale to nJ with 1e-3.
    let scale = params.vdd * params.devices_per_rank * TCK_NS * 1e-3;

    let trc = timing.trc as f64;
    let tras = timing.tras as f64;
    // Net charge of one ACT-PRE pair above the standby floor it displaces.
    let e_act_pre = (params.idd0 * trc - (params.idd3n * tras + params.idd2n * (trc - tras)))
        .max(0.0)
        * scale;
    let e_read = (params.idd4r - params.idd3n).max(0.0) * timing.tbl as f64 * scale;
    let e_write = (params.idd4w - params.idd3n).max(0.0) * timing.tbl as f64 * scale;
    let e_ref = (params.idd5b - params.idd3n).max(0.0) * timing.trfc as f64 * scale;

    let acts = stats.acts as f64 + stats.rng_acts as f64 * params.rng_act_factor;
    let reads = (stats.reads + stats.rng_reads) as f64;
    let writes = stats.writes as f64;
    let refs = stats.refreshes as f64;

    let pre_cycles = stats.all_precharged_cycles as f64;
    let act_cycles = (stats.cycles.saturating_sub(stats.all_precharged_cycles)) as f64;
    let background = (params.idd3n * act_cycles + params.idd2n * pre_cycles) * scale;

    EnergyBreakdown {
        act_pre_nj: acts * e_act_pre,
        read_nj: reads * e_read,
        write_nj: writes * e_write,
        refresh_nj: refs * e_ref,
        background_nj: background,
    }
}

/// Computes the energy of a whole run: the sum over per-channel stats.
pub fn system_energy(
    channels: &[ChannelStats],
    timing: &TimingParams,
    params: &Ddr3PowerParams,
) -> EnergyBreakdown {
    let mut total = EnergyBreakdown::default();
    for ch in channels {
        total.add(&channel_energy(ch, timing, params));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(cycles: u64, pre: u64) -> ChannelStats {
        let mut s = ChannelStats::new();
        s.cycles = cycles;
        s.all_precharged_cycles = pre;
        s
    }

    #[test]
    fn zero_activity_has_only_background() {
        let e = channel_energy(
            &stats(1000, 1000),
            &TimingParams::ddr3_1600(),
            &Ddr3PowerParams::default(),
        );
        assert_eq!(e.act_pre_nj, 0.0);
        assert_eq!(e.read_nj, 0.0);
        assert!(e.background_nj > 0.0);
    }

    #[test]
    fn active_standby_costs_more_than_precharged() {
        let t = TimingParams::ddr3_1600();
        let p = Ddr3PowerParams::default();
        let all_pre = channel_energy(&stats(1000, 1000), &t, &p);
        let all_act = channel_energy(&stats(1000, 0), &t, &p);
        assert!(all_act.background_nj > all_pre.background_nj);
    }

    #[test]
    fn commands_add_energy_monotonically() {
        let t = TimingParams::ddr3_1600();
        let p = Ddr3PowerParams::default();
        let mut s = stats(10_000, 5_000);
        let base = channel_energy(&s, &t, &p).total_nj();
        s.acts = 100;
        s.reads = 100;
        s.writes = 50;
        s.refreshes = 2;
        let busy = channel_energy(&s, &t, &p).total_nj();
        assert!(busy > base);
    }

    #[test]
    fn rng_commands_are_charged() {
        let t = TimingParams::ddr3_1600();
        let p = Ddr3PowerParams::default();
        let mut s = stats(10_000, 5_000);
        let before = channel_energy(&s, &t, &p).total_nj();
        s.rng_acts = 100;
        s.rng_reads = 100;
        let after = channel_energy(&s, &t, &p).total_nj();
        assert!(after > before, "RNG rounds consume DRAM energy");
    }

    #[test]
    fn shorter_run_uses_less_energy() {
        // The paper's 21% saving comes mostly from finishing in fewer
        // cycles: same commands, fewer background cycles.
        let t = TimingParams::ddr3_1600();
        let p = Ddr3PowerParams::default();
        let mut long = stats(1_000_000, 800_000);
        long.acts = 10_000;
        long.reads = 10_000;
        let mut short = stats(800_000, 640_000);
        short.acts = 10_000;
        short.reads = 10_000;
        let el = channel_energy(&long, &t, &p).total_nj();
        let es = channel_energy(&short, &t, &p).total_nj();
        assert!(es < el);
        assert!((el - es) / el > 0.1, "background dominates the gap");
    }

    #[test]
    fn system_energy_sums_channels() {
        let t = TimingParams::ddr3_1600();
        let p = Ddr3PowerParams::default();
        let s = stats(1000, 500);
        let one = channel_energy(&s, &t, &p).total_nj();
        let four = system_energy(&[s.clone(), s.clone(), s.clone(), s.clone()], &t, &p).total_nj();
        assert!((four - 4.0 * one).abs() < 1e-9);
    }

    #[test]
    fn read_energy_order_of_magnitude() {
        // One RD burst on a DDR3-1600 rank ≈ a few nJ (sanity against
        // published DRAMPower numbers).
        let t = TimingParams::ddr3_1600();
        let p = Ddr3PowerParams::default();
        let mut s = stats(0, 0);
        s.reads = 1;
        let e = channel_energy(&s, &t, &p);
        assert!(e.read_nj > 0.5 && e.read_nj < 20.0, "got {}", e.read_nj);
    }
}
