//! Box-and-whiskers statistics for the paper's distribution figures.
//!
//! Figures 2, 5, and 18 show interquartile boxes with Tukey whiskers
//! (1.5 × IQR) and outlier markers. [`BoxStats::from_samples`] computes those
//! quantities with linear-interpolation quantiles (matplotlib's default), so
//! the bench harness can print the same box/median/whisker/outlier series
//! the paper plots.

use crate::MetricsError;

/// Summary statistics for one box of a box-and-whiskers plot.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxStats {
    min: f64,
    q1: f64,
    median: f64,
    q3: f64,
    max: f64,
    lower_whisker: f64,
    upper_whisker: f64,
    outliers: Vec<f64>,
    len: usize,
}

impl BoxStats {
    /// Computes box statistics from unsorted samples.
    ///
    /// Quartiles use linear interpolation between order statistics; whiskers
    /// extend to the most extreme sample within 1.5 × IQR of the box, and
    /// samples beyond the whiskers are reported as outliers (the paper's "×"
    /// marks in Figure 2).
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::EmptyInput`] for an empty slice and
    /// [`MetricsError::InvalidSample`] when any sample is non-finite.
    ///
    /// # Examples
    ///
    /// ```
    /// # fn main() -> Result<(), strange_metrics::MetricsError> {
    /// let stats = strange_metrics::BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0, 100.0])?;
    /// assert_eq!(stats.median(), 3.0);
    /// assert_eq!(stats.outliers(), &[100.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_samples(samples: &[f64]) -> Result<Self, MetricsError> {
        if samples.is_empty() {
            return Err(MetricsError::EmptyInput);
        }
        if samples.iter().any(|x| !x.is_finite()) {
            return Err(MetricsError::InvalidSample);
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples compare"));

        let q1 = quantile_sorted(&sorted, 0.25);
        let median = quantile_sorted(&sorted, 0.5);
        let q3 = quantile_sorted(&sorted, 0.75);
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;

        let lower_whisker = sorted
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(sorted[0]);
        let upper_whisker = sorted
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(sorted[sorted.len() - 1]);
        let outliers = sorted
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();

        Ok(BoxStats {
            min: sorted[0],
            q1,
            median,
            q3,
            max: sorted[sorted.len() - 1],
            lower_whisker,
            upper_whisker,
            outliers,
            len: sorted.len(),
        })
    }

    /// Smallest sample.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// First quartile (25th percentile).
    pub fn q1(&self) -> f64 {
        self.q1
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.median
    }

    /// Third quartile (75th percentile).
    pub fn q3(&self) -> f64 {
        self.q3
    }

    /// Largest sample — the value the paper annotates above each box.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Lower whisker position (most extreme sample within 1.5 IQR below Q1).
    pub fn lower_whisker(&self) -> f64 {
        self.lower_whisker
    }

    /// Upper whisker position (most extreme sample within 1.5 IQR above Q3).
    pub fn upper_whisker(&self) -> f64 {
        self.upper_whisker
    }

    /// Samples outside the whisker fences, ascending.
    pub fn outliers(&self) -> &[f64] {
        &self.outliers
    }

    /// Interquartile range `Q3 - Q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Number of samples summarized.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the box summarizes zero samples (never true for a
    /// successfully constructed value).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One-line rendering `q1/median/q3 [whisker..whisker] max` used by the
    /// bench harness tables.
    pub fn summary(&self) -> String {
        format!(
            "q1={:.2} med={:.2} q3={:.2} whisk=[{:.2},{:.2}] max={:.2} n={}",
            self.q1, self.median, self.q3, self.lower_whisker, self.upper_whisker, self.max,
            self.len
        )
    }
}

/// Linear-interpolation quantile of an already-sorted slice, `q` in `[0,1]`.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn median_of_odd_count() {
        let s = BoxStats::from_samples(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.median(), 2.0);
    }

    #[test]
    fn median_of_even_count_interpolates() {
        let s = BoxStats::from_samples(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median(), 2.5);
    }

    #[test]
    fn quartiles_of_known_sequence() {
        // 0..=100: q1 = 25, q3 = 75 with linear interpolation.
        let v: Vec<f64> = (0..=100).map(f64::from).collect();
        let s = BoxStats::from_samples(&v).unwrap();
        assert_eq!(s.q1(), 25.0);
        assert_eq!(s.q3(), 75.0);
        assert_eq!(s.iqr(), 50.0);
    }

    #[test]
    fn outliers_detected_beyond_fences() {
        let mut v: Vec<f64> = (0..20).map(f64::from).collect();
        v.push(1000.0);
        let s = BoxStats::from_samples(&v).unwrap();
        assert_eq!(s.outliers(), &[1000.0]);
        assert!(s.upper_whisker() <= 19.0);
        assert_eq!(s.max(), 1000.0);
    }

    #[test]
    fn single_sample_box_is_degenerate() {
        let s = BoxStats::from_samples(&[5.0]).unwrap();
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.median(), 5.0);
        assert_eq!(s.max(), 5.0);
        assert!(s.outliers().is_empty());
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_rejected() {
        assert_eq!(BoxStats::from_samples(&[]), Err(MetricsError::EmptyInput));
    }

    #[test]
    fn non_finite_rejected() {
        assert_eq!(
            BoxStats::from_samples(&[1.0, f64::NAN]),
            Err(MetricsError::InvalidSample)
        );
    }

    #[test]
    fn summary_is_nonempty() {
        let s = BoxStats::from_samples(&[1.0, 2.0]).unwrap();
        assert!(s.summary().contains("med="));
    }

    proptest! {
        /// Order invariants: min <= whisker <= q1 <= median <= q3 <= whisker <= max.
        #[test]
        fn ordering_invariants(samples in proptest::collection::vec(-1e6f64..1e6, 1..256)) {
            let s = BoxStats::from_samples(&samples).unwrap();
            prop_assert!(s.min() <= s.lower_whisker() + 1e-9);
            prop_assert!(s.lower_whisker() <= s.q1() + 1e-9);
            prop_assert!(s.q1() <= s.median() + 1e-9);
            prop_assert!(s.median() <= s.q3() + 1e-9);
            prop_assert!(s.q3() <= s.upper_whisker() + 1e-9);
            prop_assert!(s.upper_whisker() <= s.max() + 1e-9);
        }

        /// Every outlier lies strictly outside the whisker fences, and the
        /// count of outliers plus in-fence samples equals the input length.
        #[test]
        fn outliers_partition(samples in proptest::collection::vec(-1e3f64..1e3, 4..128)) {
            let s = BoxStats::from_samples(&samples).unwrap();
            let lo_fence = s.q1() - 1.5 * s.iqr();
            let hi_fence = s.q3() + 1.5 * s.iqr();
            for &o in s.outliers() {
                prop_assert!(o < lo_fence || o > hi_fence);
            }
            let inside = samples.iter().filter(|&&x| x >= lo_fence && x <= hi_fence).count();
            prop_assert_eq!(inside + s.outliers().len(), samples.len());
        }

        /// Box stats are invariant under sample order.
        #[test]
        fn order_invariance(mut samples in proptest::collection::vec(-50.0f64..50.0, 2..64)) {
            let a = BoxStats::from_samples(&samples).unwrap();
            samples.reverse();
            let b = BoxStats::from_samples(&samples).unwrap();
            prop_assert_eq!(a, b);
        }
    }
}
