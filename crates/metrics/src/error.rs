use std::error::Error;
use std::fmt;

/// Error returned by metric computations on malformed inputs.
///
/// All metrics in this crate are total functions except where an empty input
/// or a division by zero would make the result meaningless; those cases
/// return `Err(MetricsError)` instead of producing `NaN`/`inf` silently.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MetricsError {
    /// The input slice was empty but the metric needs at least one sample.
    EmptyInput,
    /// A denominator (e.g. an "alone" baseline) was zero or non-finite.
    InvalidBaseline,
    /// A sample was negative or non-finite where that is not meaningful.
    InvalidSample,
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::EmptyInput => write!(f, "metric input is empty"),
            MetricsError::InvalidBaseline => {
                write!(f, "baseline value is zero or non-finite")
            }
            MetricsError::InvalidSample => {
                write!(f, "sample value is negative or non-finite")
            }
        }
    }
}

impl Error for MetricsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_period() {
        for err in [
            MetricsError::EmptyInput,
            MetricsError::InvalidBaseline,
            MetricsError::InvalidSample,
        ] {
            let s = err.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }
}
