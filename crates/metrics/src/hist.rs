//! Latency histograms and percentile estimation for the service layer.
//!
//! The `getrandom()` service layer records one end-to-end latency per
//! request. Two complementary tools summarize those:
//!
//! * [`Histogram`] — a constant-memory log₂-bucketed histogram for
//!   long-running load experiments (tail quantiles are approximate, with
//!   relative error bounded by the bucket width);
//! * [`percentile_sorted`] — exact percentiles over a sorted sample vector
//!   (the service keeps the full latency log at bench scales, so reports
//!   use the exact path and the histogram cross-checks it).

/// Number of log₂ buckets: covers the full `u64` range (bucket *i* holds
/// values whose bit length is *i*, i.e. `[2^(i-1), 2^i)` for `i >= 1`).
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples (latencies in cycles).
///
/// # Examples
///
/// ```
/// use strange_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [10, 20, 40, 80, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.min(), Some(10));
/// assert_eq!(h.max(), Some(1000));
/// // The median falls in the bucket containing 40.
/// let p50 = h.quantile(0.50).unwrap();
/// assert!((32..64).contains(&p50), "p50 bucket estimate: {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Arithmetic mean of the samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.total > 0).then(|| self.sum as f64 / self.total as f64)
    }

    /// Approximate `q`-quantile (`0.0..=1.0`): the midpoint of the bucket
    /// containing the quantile rank, clamped to the observed min/max so
    /// single-bucket distributions report exactly. `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        // Rank of the quantile sample, nearest-rank convention.
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                let hi = match i {
                    0 => 0,
                    // Bucket 64 holds values with the top bit set; its
                    // upper edge is u64::MAX (1 << 64 would overflow).
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                let mid = lo + (hi - lo) / 2;
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact `q`-quantile of an ascending-sorted sample slice, nearest-rank
/// convention. `None` when empty.
///
/// # Panics
///
/// Panics if `q` is outside `0.0..=1.0` or `sorted` is not ascending
/// (debug builds only for the ordering check).
///
/// # Examples
///
/// ```
/// use strange_metrics::percentile_sorted;
///
/// let xs = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
/// assert_eq!(percentile_sorted(&xs, 0.50), Some(5));
/// assert_eq!(percentile_sorted(&xs, 0.99), Some(10));
/// assert_eq!(percentile_sorted(&xs, 0.0), Some(1));
/// ```
pub fn percentile_sorted(sorted: &[u64], q: f64) -> Option<u64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    if sorted.is_empty() {
        return None;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_is_inert() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn single_value_quantiles_are_exact() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(37);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(37));
        }
        assert_eq!(h.mean(), Some(37.0));
    }

    #[test]
    fn top_bucket_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(1u64 << 63);
        assert_eq!(h.max(), Some(u64::MAX));
        let q = h.quantile(0.99).unwrap();
        assert!(q >= 1u64 << 63, "top-bucket quantile in range: {q}");
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(100);
        let mut b = Histogram::new();
        b.record(5000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(5000));
    }

    #[test]
    fn percentile_sorted_nearest_rank() {
        assert_eq!(percentile_sorted(&[], 0.5), None);
        assert_eq!(percentile_sorted(&[7], 0.5), Some(7));
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_sorted(&xs, 0.50), Some(50));
        assert_eq!(percentile_sorted(&xs, 0.95), Some(95));
        assert_eq!(percentile_sorted(&xs, 0.99), Some(99));
        assert_eq!(percentile_sorted(&xs, 1.0), Some(100));
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn out_of_range_quantile_rejected() {
        let mut h = Histogram::new();
        h.record(1);
        h.quantile(1.5);
    }

    proptest! {
        /// The histogram quantile brackets the exact percentile to within
        /// its bucket (a factor-of-2 band).
        #[test]
        fn quantile_brackets_exact(mut xs in proptest::collection::vec(1u64..1_000_000, 1..200)) {
            let mut h = Histogram::new();
            for &x in &xs {
                h.record(x);
            }
            xs.sort_unstable();
            for q in [0.5, 0.95, 0.99] {
                let exact = percentile_sorted(&xs, q).unwrap();
                let approx = h.quantile(q).unwrap();
                prop_assert!(approx <= exact * 2, "approx {approx} exact {exact}");
                prop_assert!(exact <= approx.saturating_mul(2).max(1), "approx {approx} exact {exact}");
            }
        }

        /// Count/sum/extremes are exact regardless of bucketing.
        #[test]
        fn counts_are_exact(xs in proptest::collection::vec(any::<u64>(), 1..100)) {
            let mut h = Histogram::new();
            for &x in &xs {
                h.record(x);
            }
            prop_assert_eq!(h.count(), xs.len() as u64);
            prop_assert_eq!(h.min(), xs.iter().copied().min());
            prop_assert_eq!(h.max(), xs.iter().copied().max());
        }
    }
}
