//! Performance, fairness, and distribution metrics used throughout the
//! DR-STRaNGe reproduction.
//!
//! The paper (Section 7, "Metrics") evaluates designs with:
//!
//! * **Normalized execution time / slowdown** of an application running in a
//!   multi-programmed workload relative to running alone ([`slowdown`]).
//! * **Weighted speedup** for multi-core throughput ([`weighted_speedup`]),
//!   following Snavely & Tullsen.
//! * The **unfairness index**: the ratio of the maximum to the minimum
//!   memory-related slowdown (MCPI shared / MCPI alone) across the
//!   applications of a workload ([`unfairness_index`], [`MemSlowdown`]).
//! * **Buffer serve rate** and **predictor accuracy**, simple ratios
//!   ([`Ratio`], [`ConfusionCounts`]).
//! * **Service-latency distributions** for the `getrandom()` service layer:
//!   log₂-bucketed [`Histogram`]s and exact percentiles
//!   ([`percentile_sorted`]) for p50/p95/p99 reporting.
//!
//! Figures 2, 5, and 18 are box-and-whiskers plots; [`boxplot`] computes the
//! interquartile statistics (median, quartiles, whiskers, outliers) with the
//! Tukey convention the paper's plots use.
//!
//! # Examples
//!
//! ```
//! use strange_metrics::{unfairness_index, MemSlowdown};
//!
//! let slowdowns = [
//!     MemSlowdown::from_mcpi(2.0, 1.0), // 2x memory slowdown
//!     MemSlowdown::from_mcpi(1.2, 1.0), // 1.2x
//! ];
//! let unfairness = unfairness_index(&slowdowns).unwrap();
//! assert!((unfairness - 2.0 / 1.2).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boxplot;
pub mod table;

mod error;
mod hist;
mod means;
mod perf;

pub use boxplot::BoxStats;
pub use error::MetricsError;
pub use hist::{percentile_sorted, Histogram};
pub use means::{arithmetic_mean, geometric_mean, harmonic_mean};
pub use perf::{
    accuracy, jain_index, normalized_value, slowdown, unfairness_index, weighted_speedup,
    ConfusionCounts, MemSlowdown, Ratio,
};
pub use table::{fmt_row, fmt_series, Table};
