use crate::MetricsError;

/// Arithmetic mean of the samples.
///
/// Used for the paper's per-figure "AVG" bars over per-workload slowdowns.
///
/// # Errors
///
/// Returns [`MetricsError::EmptyInput`] when `samples` is empty and
/// [`MetricsError::InvalidSample`] when any sample is non-finite.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), strange_metrics::MetricsError> {
/// let avg = strange_metrics::arithmetic_mean(&[1.0, 2.0, 3.0])?;
/// assert_eq!(avg, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn arithmetic_mean(samples: &[f64]) -> Result<f64, MetricsError> {
    validate(samples)?;
    Ok(samples.iter().sum::<f64>() / samples.len() as f64)
}

/// Geometric mean of the samples.
///
/// The paper reports GMEAN for multi-core workload groups (Figures 7, 8, 12,
/// 14). Computed in log space for numerical stability.
///
/// # Errors
///
/// Returns [`MetricsError::EmptyInput`] when `samples` is empty and
/// [`MetricsError::InvalidSample`] when any sample is non-finite or
/// non-positive (the geometric mean of a non-positive sample is undefined).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), strange_metrics::MetricsError> {
/// let gm = strange_metrics::geometric_mean(&[1.0, 4.0])?;
/// assert!((gm - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn geometric_mean(samples: &[f64]) -> Result<f64, MetricsError> {
    validate(samples)?;
    if samples.iter().any(|&x| x <= 0.0) {
        return Err(MetricsError::InvalidSample);
    }
    let log_sum: f64 = samples.iter().map(|&x| x.ln()).sum();
    Ok((log_sum / samples.len() as f64).exp())
}

/// Harmonic mean of the samples.
///
/// Provided for completeness (harmonic speedup is a common companion metric
/// to weighted speedup in the scheduling literature the paper builds on).
///
/// # Errors
///
/// Returns [`MetricsError::EmptyInput`] when `samples` is empty and
/// [`MetricsError::InvalidSample`] when any sample is non-finite or
/// non-positive.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), strange_metrics::MetricsError> {
/// let hm = strange_metrics::harmonic_mean(&[1.0, 1.0])?;
/// assert_eq!(hm, 1.0);
/// # Ok(())
/// # }
/// ```
pub fn harmonic_mean(samples: &[f64]) -> Result<f64, MetricsError> {
    validate(samples)?;
    if samples.iter().any(|&x| x <= 0.0) {
        return Err(MetricsError::InvalidSample);
    }
    let recip_sum: f64 = samples.iter().map(|&x| 1.0 / x).sum();
    Ok(samples.len() as f64 / recip_sum)
}

fn validate(samples: &[f64]) -> Result<(), MetricsError> {
    if samples.is_empty() {
        return Err(MetricsError::EmptyInput);
    }
    if samples.iter().any(|x| !x.is_finite()) {
        return Err(MetricsError::InvalidSample);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arithmetic_mean_of_single_sample_is_sample() {
        assert_eq!(arithmetic_mean(&[7.25]).unwrap(), 7.25);
    }

    #[test]
    fn empty_input_is_rejected() {
        assert_eq!(arithmetic_mean(&[]), Err(MetricsError::EmptyInput));
        assert_eq!(geometric_mean(&[]), Err(MetricsError::EmptyInput));
        assert_eq!(harmonic_mean(&[]), Err(MetricsError::EmptyInput));
    }

    #[test]
    fn non_finite_is_rejected() {
        assert_eq!(
            arithmetic_mean(&[1.0, f64::NAN]),
            Err(MetricsError::InvalidSample)
        );
        assert_eq!(
            geometric_mean(&[1.0, f64::INFINITY]),
            Err(MetricsError::InvalidSample)
        );
    }

    #[test]
    fn geometric_mean_rejects_zero() {
        assert_eq!(geometric_mean(&[0.0, 1.0]), Err(MetricsError::InvalidSample));
    }

    #[test]
    fn harmonic_mean_rejects_negative() {
        assert_eq!(harmonic_mean(&[-1.0, 1.0]), Err(MetricsError::InvalidSample));
    }

    proptest! {
        /// AM >= GM >= HM for positive samples (classical inequality).
        #[test]
        fn mean_inequality(samples in proptest::collection::vec(0.01f64..100.0, 1..32)) {
            let am = arithmetic_mean(&samples).unwrap();
            let gm = geometric_mean(&samples).unwrap();
            let hm = harmonic_mean(&samples).unwrap();
            prop_assert!(am >= gm - 1e-9, "am={am} gm={gm}");
            prop_assert!(gm >= hm - 1e-9, "gm={gm} hm={hm}");
        }

        /// All means lie between min and max of the samples.
        #[test]
        fn means_bounded_by_extremes(samples in proptest::collection::vec(0.01f64..100.0, 1..32)) {
            let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            for mean in [
                arithmetic_mean(&samples).unwrap(),
                geometric_mean(&samples).unwrap(),
                harmonic_mean(&samples).unwrap(),
            ] {
                prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
            }
        }

        /// Means are invariant under permutation.
        #[test]
        fn permutation_invariance(mut samples in proptest::collection::vec(0.01f64..100.0, 2..16)) {
            let before = geometric_mean(&samples).unwrap();
            samples.reverse();
            let after = geometric_mean(&samples).unwrap();
            prop_assert!((before - after).abs() < 1e-9);
        }
    }
}
