use crate::MetricsError;

/// Slowdown of an application: shared execution time over alone execution
/// time for the same number of retired instructions (Section 7).
///
/// A slowdown of 1.0 means no interference; values below 1.0 are possible for
/// RNG applications under DR-STRaNGe because the buffer serves random numbers
/// faster than the alone (on-demand) baseline (Figure 6, bottom).
///
/// # Errors
///
/// Returns [`MetricsError::InvalidBaseline`] when `alone_cycles` is zero.
///
/// # Examples
///
/// ```
/// let s = strange_metrics::slowdown(150, 100).unwrap();
/// assert_eq!(s, 1.5);
/// ```
pub fn slowdown(shared_cycles: u64, alone_cycles: u64) -> Result<f64, MetricsError> {
    if alone_cycles == 0 {
        return Err(MetricsError::InvalidBaseline);
    }
    Ok(shared_cycles as f64 / alone_cycles as f64)
}

/// Normalizes `value` to `baseline` (`value / baseline`), used for the
/// "normalized weighted speedup" and "normalized execution time" series.
///
/// # Errors
///
/// Returns [`MetricsError::InvalidBaseline`] when `baseline` is zero or
/// non-finite and [`MetricsError::InvalidSample`] when `value` is non-finite.
pub fn normalized_value(value: f64, baseline: f64) -> Result<f64, MetricsError> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(MetricsError::InvalidBaseline);
    }
    if !value.is_finite() {
        return Err(MetricsError::InvalidSample);
    }
    Ok(value / baseline)
}

/// Weighted speedup of a multi-programmed workload: `Σ IPC_shared / IPC_alone`
/// (Snavely & Tullsen), the paper's job-throughput metric for non-RNG
/// applications in multi-core workloads (Figures 7 and 12).
///
/// Each element of `ipc_pairs` is `(ipc_shared, ipc_alone)` for one
/// application.
///
/// # Errors
///
/// Returns [`MetricsError::EmptyInput`] for an empty slice,
/// [`MetricsError::InvalidBaseline`] when any alone IPC is zero or
/// non-finite, and [`MetricsError::InvalidSample`] when any shared IPC is
/// negative or non-finite.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), strange_metrics::MetricsError> {
/// // Two apps, each running at 80% of its alone IPC.
/// let ws = strange_metrics::weighted_speedup(&[(0.8, 1.0), (1.6, 2.0)])?;
/// assert!((ws - 1.6).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn weighted_speedup(ipc_pairs: &[(f64, f64)]) -> Result<f64, MetricsError> {
    if ipc_pairs.is_empty() {
        return Err(MetricsError::EmptyInput);
    }
    let mut sum = 0.0;
    for &(shared, alone) in ipc_pairs {
        if alone <= 0.0 || !alone.is_finite() {
            return Err(MetricsError::InvalidBaseline);
        }
        if shared < 0.0 || !shared.is_finite() {
            return Err(MetricsError::InvalidSample);
        }
        sum += shared / alone;
    }
    Ok(sum)
}

/// Memory-related slowdown of one application, the building block of the
/// unfairness index (Section 7):
///
/// `MemSlowdown_i = MCPI_shared_i / MCPI_alone_i`
///
/// where MCPI is memory stall cycles per instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemSlowdown {
    value: f64,
}

impl MemSlowdown {
    /// Builds the slowdown from shared and alone MCPI values.
    ///
    /// Degenerate baselines are handled the way the scheduling literature
    /// does for compute-bound applications: when the application has
    /// (near-)zero memory stall when running alone, its memory slowdown is
    /// defined by treating the alone MCPI as a small epsilon floor, so a
    /// compute-bound app that starts stalling under sharing still registers
    /// a slowdown rather than an infinity.
    ///
    /// # Examples
    ///
    /// ```
    /// let ms = strange_metrics::MemSlowdown::from_mcpi(0.4, 0.2);
    /// assert_eq!(ms.value(), 2.0);
    /// ```
    pub fn from_mcpi(mcpi_shared: f64, mcpi_alone: f64) -> Self {
        const EPSILON_MCPI: f64 = 1e-4;
        let shared = mcpi_shared.max(0.0);
        let alone = mcpi_alone.max(EPSILON_MCPI);
        // An app cannot be *helped* by interference below parity in this
        // model; the literature clamps at 1.0 so unfairness >= 1 always.
        let value = (shared / alone).max(1.0);
        MemSlowdown { value }
    }

    /// Builds a slowdown from a raw ratio, clamped at 1.0.
    pub fn from_ratio(ratio: f64) -> Self {
        MemSlowdown {
            value: if ratio.is_finite() { ratio.max(1.0) } else { 1.0 },
        }
    }

    /// The slowdown ratio (>= 1.0).
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// Unfairness index of a workload (Section 7):
///
/// `Unfairness = max_i MemSlowdown_i / min_i MemSlowdown_i`
///
/// An index of 1 means all applications suffer equally; larger values mean
/// the memory scheduler unfairly prioritizes some application.
///
/// # Errors
///
/// Returns [`MetricsError::EmptyInput`] when `slowdowns` is empty.
///
/// # Examples
///
/// ```
/// use strange_metrics::{unfairness_index, MemSlowdown};
/// let u = unfairness_index(&[
///     MemSlowdown::from_ratio(3.0),
///     MemSlowdown::from_ratio(1.5),
/// ]).unwrap();
/// assert_eq!(u, 2.0);
/// ```
pub fn unfairness_index(slowdowns: &[MemSlowdown]) -> Result<f64, MetricsError> {
    if slowdowns.is_empty() {
        return Err(MetricsError::EmptyInput);
    }
    let max = slowdowns
        .iter()
        .map(MemSlowdown::value)
        .fold(f64::NEG_INFINITY, f64::max);
    let min = slowdowns
        .iter()
        .map(MemSlowdown::value)
        .fold(f64::INFINITY, f64::min);
    Ok(max / min)
}

/// Jain's fairness index of an allocation:
///
/// `J(x) = (Σ xᵢ)² / (n · Σ xᵢ²)`
///
/// Ranges over `(0, 1]`: 1 means every tenant receives an equal share,
/// `1/n` means one tenant receives everything. Used by the fairness-policy
/// sweeps over per-tenant served throughput (Mb/s).
///
/// # Errors
///
/// Returns [`MetricsError::EmptyInput`] when `shares` is empty or sums to
/// zero (no served throughput to compare).
///
/// # Examples
///
/// ```
/// use strange_metrics::jain_index;
/// assert_eq!(jain_index(&[10.0, 10.0, 10.0]).unwrap(), 1.0);
/// // One tenant starved to nothing out of two: J = 1/2.
/// assert_eq!(jain_index(&[5.0, 0.0]).unwrap(), 0.5);
/// ```
pub fn jain_index(shares: &[f64]) -> Result<f64, MetricsError> {
    if shares.is_empty() {
        return Err(MetricsError::EmptyInput);
    }
    let sum: f64 = shares.iter().sum();
    let sq_sum: f64 = shares.iter().map(|x| x * x).sum();
    if sq_sum == 0.0 {
        return Err(MetricsError::EmptyInput);
    }
    Ok(sum * sum / (shares.len() as f64 * sq_sum))
}

/// Ratio counter for "x out of y" statistics: buffer serve rate (Figure 10)
/// and similar. Avoids ad-hoc float pairs at call sites.
///
/// # Examples
///
/// ```
/// let mut served = strange_metrics::Ratio::new();
/// served.record(true);
/// served.record(false);
/// served.record(true);
/// assert_eq!(served.rate(), 2.0 / 3.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio (rate reported as 0).
    pub fn new() -> Self {
        Ratio::default()
    }

    /// Records one event; `hit` selects the numerator.
    pub fn record(&mut self, hit: bool) {
        self.hits += u64::from(hit);
        self.total += 1;
    }

    /// Records `n` events at once, `hits` of which are numerator events.
    ///
    /// # Panics
    ///
    /// Panics if `hits > n`.
    pub fn record_many(&mut self, hits: u64, n: u64) {
        assert!(hits <= n, "hits ({hits}) must not exceed total ({n})");
        self.hits += hits;
        self.total += n;
    }

    /// Numerator count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The ratio; 0.0 when nothing has been recorded.
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Merges another ratio into this one.
    pub fn merge(&mut self, other: Ratio) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

/// Confusion-matrix counts for the DRAM idleness predictors (Section 5.1.2).
///
/// * true positive: predicted long, period was long (RNG opportunity used)
/// * true negative: predicted short, period was short
/// * false positive: predicted long, period was short (extra interference)
/// * false negative: predicted short, period was long (wasted opportunity)
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Predicted long and the idle period was long.
    pub true_positive: u64,
    /// Predicted short and the idle period was short.
    pub true_negative: u64,
    /// Predicted long but the idle period was short.
    pub false_positive: u64,
    /// Predicted short but the idle period was long.
    pub false_negative: u64,
}

impl ConfusionCounts {
    /// Creates zeroed counts.
    pub fn new() -> Self {
        ConfusionCounts::default()
    }

    /// Records one prediction outcome.
    pub fn record(&mut self, predicted_long: bool, was_long: bool) {
        match (predicted_long, was_long) {
            (true, true) => self.true_positive += 1,
            (false, false) => self.true_negative += 1,
            (true, false) => self.false_positive += 1,
            (false, true) => self.false_negative += 1,
        }
    }

    /// Total number of predictions recorded.
    pub fn total(&self) -> u64 {
        self.true_positive + self.true_negative + self.false_positive + self.false_negative
    }

    /// Merges another set of counts into this one.
    pub fn merge(&mut self, other: ConfusionCounts) {
        self.true_positive += other.true_positive;
        self.true_negative += other.true_negative;
        self.false_positive += other.false_positive;
        self.false_negative += other.false_negative;
    }
}

/// Predictor accuracy `(TP + TN) / total` as reported in Figure 14.
///
/// Returns 0.0 when no predictions were recorded (an idle-free workload).
///
/// # Examples
///
/// ```
/// use strange_metrics::{accuracy, ConfusionCounts};
/// let mut c = ConfusionCounts::new();
/// c.record(true, true);
/// c.record(false, true);
/// assert_eq!(accuracy(&c), 0.5);
/// ```
pub fn accuracy(counts: &ConfusionCounts) -> f64 {
    let total = counts.total();
    if total == 0 {
        0.0
    } else {
        (counts.true_positive + counts.true_negative) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn slowdown_of_equal_times_is_one() {
        assert_eq!(slowdown(100, 100).unwrap(), 1.0);
    }

    #[test]
    fn jain_index_spans_equal_to_starved() {
        assert_eq!(jain_index(&[7.0]).unwrap(), 1.0);
        assert!((jain_index(&[4.0, 4.0, 4.0, 4.0]).unwrap() - 1.0).abs() < 1e-12);
        // One of four tenants takes everything: J = 1/4.
        assert!((jain_index(&[12.0, 0.0, 0.0, 0.0]).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(jain_index(&[]), Err(MetricsError::EmptyInput));
        assert_eq!(jain_index(&[0.0, 0.0]), Err(MetricsError::EmptyInput));
    }

    #[test]
    fn slowdown_rejects_zero_baseline() {
        assert_eq!(slowdown(100, 0), Err(MetricsError::InvalidBaseline));
    }

    #[test]
    fn weighted_speedup_alone_equals_core_count() {
        // Each app running at its alone IPC contributes exactly 1.
        let ws = weighted_speedup(&[(1.0, 1.0), (2.0, 2.0), (0.5, 0.5)]).unwrap();
        assert!((ws - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_speedup_rejects_zero_alone_ipc() {
        assert_eq!(
            weighted_speedup(&[(1.0, 0.0)]),
            Err(MetricsError::InvalidBaseline)
        );
    }

    #[test]
    fn mem_slowdown_clamps_below_one() {
        let ms = MemSlowdown::from_mcpi(0.1, 0.5);
        assert_eq!(ms.value(), 1.0);
    }

    #[test]
    fn mem_slowdown_epsilon_floors_compute_bound_alone() {
        // An app with zero alone MCPI that stalls under sharing gets a large
        // but finite slowdown.
        let ms = MemSlowdown::from_mcpi(0.5, 0.0);
        assert!(ms.value().is_finite());
        assert!(ms.value() > 1.0);
    }

    #[test]
    fn unfairness_of_identical_slowdowns_is_one() {
        let s = [MemSlowdown::from_ratio(2.5), MemSlowdown::from_ratio(2.5)];
        assert_eq!(unfairness_index(&s).unwrap(), 1.0);
    }

    #[test]
    fn unfairness_empty_rejected() {
        assert_eq!(unfairness_index(&[]), Err(MetricsError::EmptyInput));
    }

    #[test]
    fn ratio_counts_and_merges() {
        let mut a = Ratio::new();
        a.record_many(3, 10);
        let mut b = Ratio::new();
        b.record_many(2, 10);
        a.merge(b);
        assert_eq!(a.hits(), 5);
        assert_eq!(a.total(), 20);
        assert_eq!(a.rate(), 0.25);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn ratio_record_many_validates() {
        Ratio::new().record_many(2, 1);
    }

    #[test]
    fn empty_ratio_rate_is_zero() {
        assert_eq!(Ratio::new().rate(), 0.0);
    }

    #[test]
    fn confusion_accuracy_perfect_predictor() {
        let mut c = ConfusionCounts::new();
        for _ in 0..10 {
            c.record(true, true);
            c.record(false, false);
        }
        assert_eq!(accuracy(&c), 1.0);
    }

    #[test]
    fn confusion_accuracy_empty_is_zero() {
        assert_eq!(accuracy(&ConfusionCounts::new()), 0.0);
    }

    proptest! {
        /// Unfairness is always >= 1 for MemSlowdown inputs (which clamp).
        #[test]
        fn unfairness_at_least_one(ratios in proptest::collection::vec(0.1f64..50.0, 1..16)) {
            let slowdowns: Vec<_> = ratios.iter().map(|&r| MemSlowdown::from_ratio(r)).collect();
            let u = unfairness_index(&slowdowns).unwrap();
            prop_assert!(u >= 1.0 - 1e-12);
        }

        /// Unfairness is scale-invariant: multiplying every slowdown by a
        /// constant does not change the index.
        #[test]
        fn unfairness_scale_invariant(
            ratios in proptest::collection::vec(1.0f64..10.0, 2..8),
            scale in 1.0f64..5.0,
        ) {
            let a: Vec<_> = ratios.iter().map(|&r| MemSlowdown::from_ratio(r)).collect();
            let b: Vec<_> = ratios.iter().map(|&r| MemSlowdown::from_ratio(r * scale)).collect();
            let ua = unfairness_index(&a).unwrap();
            let ub = unfairness_index(&b).unwrap();
            prop_assert!((ua - ub).abs() < 1e-9);
        }

        /// Accuracy is within [0, 1] for any outcome mix.
        #[test]
        fn accuracy_bounded(outcomes in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..64)) {
            let mut c = ConfusionCounts::new();
            for (p, a) in outcomes {
                c.record(p, a);
            }
            let acc = accuracy(&c);
            prop_assert!((0.0..=1.0).contains(&acc));
        }

        /// Ratio::rate is within [0, 1] and consistent with counts.
        #[test]
        fn ratio_rate_bounded(events in proptest::collection::vec(any::<bool>(), 0..64)) {
            let mut r = Ratio::new();
            for e in &events {
                r.record(*e);
            }
            prop_assert!((0.0..=1.0).contains(&r.rate()));
            prop_assert_eq!(r.total(), events.len() as u64);
        }
    }
}
