//! Plain-text table rendering for the experiment harness.
//!
//! Every figure/table bench target prints its results as aligned text rows
//! (`paper` column next to `measured` column). This module holds the small
//! formatter so the harness output stays uniform across all experiments.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// let mut t = strange_metrics::Table::new(&["workload", "slowdown"]);
/// t.row(&["mcf".to_string(), "1.93".to_string()]);
/// let s = t.render();
/// assert!(s.contains("workload"));
/// assert!(s.contains("mcf"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are padded with empty
    /// cells; longer rows extend the table width.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Convenience for rows of `&str`.
    pub fn row_str(&mut self, cells: &[&str]) {
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with column alignment and a header separator.
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        };
        measure(&mut widths, &self.header);
        for r in &self.rows {
            measure(&mut widths, r);
        }

        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(out, "{cell:<w$}");
                if i + 1 != widths.len() {
                    out.push_str("  ");
                }
            }
            // Trim trailing spaces from padded last cells.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header, &widths);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total.max(1)));
        out.push('\n');
        for r in &self.rows {
            render_row(&mut out, r, &widths);
        }
        out
    }
}

/// Formats a labelled numeric row `label: v1 v2 v3 ...` with fixed decimals.
///
/// # Examples
///
/// ```
/// let s = strange_metrics::fmt_row("avg", &[1.0, 2.5], 2);
/// assert_eq!(s, "avg: 1.00 2.50");
/// ```
pub fn fmt_row(label: &str, values: &[f64], decimals: usize) -> String {
    let mut out = format!("{label}:");
    for v in values {
        let _ = write!(out, " {v:.decimals$}");
    }
    out
}

/// Formats an `(x, y)` series as `label: x1=y1 x2=y2 ...`.
///
/// # Examples
///
/// ```
/// let s = strange_metrics::fmt_series("sweep", &[(2.0, 7.3), (4.0, 4.6)], 1);
/// assert_eq!(s, "sweep: 2=7.3 4=4.6");
/// ```
pub fn fmt_series(label: &str, points: &[(f64, f64)], decimals: usize) -> String {
    let mut out = format!("{label}:");
    for (x, y) in points {
        if (x.fract()).abs() < f64::EPSILON {
            let _ = write!(out, " {}={y:.decimals$}", *x as i64);
        } else {
            let _ = write!(out, " {x}={y:.decimals$}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row_str(&["xxxx", "y"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        // 'bbbb' starts at same offset as 'y'.
        assert_eq!(lines[0].find("bbbb"), lines[2].find('y'));
    }

    #[test]
    fn table_pads_short_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row_str(&["1"]);
        let rendered = t.render();
        assert!(rendered.lines().count() == 3);
    }

    #[test]
    fn table_len_tracks_rows() {
        let mut t = Table::new(&["a"]);
        assert!(t.is_empty());
        t.row_str(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_row_rounds() {
        assert_eq!(fmt_row("x", &[1.234], 1), "x: 1.2");
    }

    #[test]
    fn fmt_series_integral_x() {
        assert_eq!(fmt_series("s", &[(1.0, 0.5)], 2), "s: 1=0.50");
    }

    #[test]
    fn fmt_series_fractional_x() {
        assert_eq!(fmt_series("s", &[(1.5, 0.5)], 2), "s: 1.5=0.50");
    }
}
