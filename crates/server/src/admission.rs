//! Closed-loop overload protection for the RNG server: admission
//! control, request deadlines, and client-side retry backoff.
//!
//! A DRAM TRNG is a *rate-limited* entropy source — the paper's Figure 10
//! buffer only hides bursts up to its 16-word capacity, after which every
//! extra request queues behind a ~`demand_latency` generation episode.
//! Under a flash crowd the RNG queue (and every tenant's tail latency)
//! grows without bound. The admission layer bounds it by gating arrivals
//! *before* they enter the simulated system:
//!
//! * **Per-tenant token buckets** throttle individually abusive sessions
//!   ([`ShedReason::TenantThrottle`]).
//! * **Global watermarks** over the engine's RNG queue depth and buffer
//!   occupancy (the same signals [`crate::Snapshot`] exports) first
//!   *defer* arrivals — re-scheduling them a fixed number of cycles
//!   later — and past a harder watermark *shed* them outright
//!   ([`ShedReason::QueueOverload`]).
//!
//! Every decision is a pure function of simulated state at the arrival's
//! virtual cycle, so admission preserves the server's determinism
//! contract: under [`crate::Pacing::Virtual`] a fixed submission schedule
//! produces bit-identical accept/defer/shed decisions no matter how many
//! OS threads submit.
//!
//! Requests may also carry a **deadline** (cycles from first scheduled
//! arrival to completion). A request whose deadline passes — either
//! because deferrals pushed it too late or because the simulated service
//! latency exceeded it — resolves to [`SubmitOutcome::TimedOut`].
//!
//! [`Backoff`] is the client half of the loop: seeded-jitter exponential
//! backoff for resubmitting shed requests without synchronized retry
//! storms.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use strange_core::ServedRequest;

/// Why an arrival was refused (carried in [`RetryAfter`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The session's token bucket was empty: this tenant individually
    /// exceeds its provisioned request rate.
    TenantThrottle,
    /// Global overload: the engine RNG queue sat at or above the shed
    /// watermark (or the arrival exhausted its defer budget).
    QueueOverload,
}

/// Server hint accompanying a shed: when the refused tenant should try
/// again, and why it was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryAfter {
    /// Suggested wait in CPU cycles before resubmitting (for
    /// [`ShedReason::TenantThrottle`], the exact time until the bucket
    /// mints the next token).
    pub cycles: u64,
    /// Why the arrival was refused.
    pub reason: ShedReason,
}

/// The resolution of one submitted request.
#[derive(Debug, Clone)]
pub enum SubmitOutcome {
    /// The request was admitted, simulated, and served within its
    /// deadline.
    Served(ServedRequest),
    /// Admission control refused the request; the payload says when to
    /// retry. Nothing entered the simulated system.
    Shed(RetryAfter),
    /// The deadline elapsed: either deferrals pushed the arrival past it,
    /// or the simulated service latency exceeded it (the words were
    /// generated but are discarded — a deadline-expired `getrandom()`
    /// caller is no longer waiting).
    TimedOut {
        /// Cycles from first scheduled arrival until resolution.
        waited_cycles: u64,
    },
}

impl SubmitOutcome {
    /// The served result, or `None` for sheds and timeouts.
    pub fn served(self) -> Option<ServedRequest> {
        match self {
            SubmitOutcome::Served(r) => Some(r),
            _ => None,
        }
    }
}

/// Admission-control knobs. [`AdmissionConfig::disabled`] (the
/// [`Default`]) accepts everything — the pre-admission server behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Master switch; `false` short-circuits every check to Accept.
    pub enabled: bool,
    /// Token-bucket burst capacity per session, in requests. 0 disables
    /// per-tenant throttling.
    pub bucket_capacity: u32,
    /// CPU cycles to mint one token. 0 disables per-tenant throttling
    /// (an infinitely fast refill).
    pub cycles_per_token: u64,
    /// Defer arrivals while the RNG queue is at/above this depth *and*
    /// the buffer is at/below [`AdmissionConfig::buffer_low_words`].
    pub defer_queue_depth: usize,
    /// Shed arrivals outright at/above this RNG-queue depth.
    pub shed_queue_depth: usize,
    /// The buffer-occupancy watermark (in 64-bit words) below which the
    /// defer watermark engages: a deep queue with a healthy buffer is a
    /// transient, not an overload.
    pub buffer_low_words: usize,
    /// How many times one arrival may be deferred before being shed.
    pub max_defers: u32,
    /// How far (CPU cycles) each deferral pushes the arrival back.
    pub defer_cycles: u64,
}

impl AdmissionConfig {
    /// Admission control off: every arrival is accepted (the backward-
    /// compatible default).
    pub fn disabled() -> Self {
        AdmissionConfig {
            enabled: false,
            bucket_capacity: 0,
            cycles_per_token: 0,
            defer_queue_depth: usize::MAX,
            shed_queue_depth: usize::MAX,
            buffer_low_words: 0,
            max_defers: 0,
            defer_cycles: 0,
        }
    }

    /// A protective default tuned to the paper's system point (16-entry
    /// buffer, ~100 µs D-RaNGe demand episode at 4 GHz): defer at queue
    /// depth 8 with a dry buffer, shed at 32, push deferrals back half an
    /// episode, and cap tenants at `burst` requests refilled every
    /// `cycles_per_token` cycles.
    pub fn protective(burst: u32, cycles_per_token: u64) -> Self {
        AdmissionConfig {
            enabled: true,
            bucket_capacity: burst,
            cycles_per_token,
            defer_queue_depth: 8,
            shed_queue_depth: 32,
            buffer_low_words: 2,
            max_defers: 4,
            defer_cycles: 200_000,
        }
    }

    /// Derates the global watermarks for a system running on `healthy`
    /// of `total` TRNG channels (the rest quarantined by the entropy
    /// watchdog). A quarantined channel generates nothing for the buffer
    /// and stretches every demand episode, so the same queue depth
    /// represents proportionally more work: queue watermarks scale down
    /// by `healthy/total` (floored at 1 so a single arrival can still
    /// pass), and the buffer-low watermark scales up by `total/healthy`
    /// (the remaining channels refill it that much slower). With every
    /// channel quarantined the config turns maximally cautious: any
    /// queued work defers, and the buffer always reads as low. Watermarks
    /// at `usize::MAX` (disabled) and per-tenant bucket knobs pass
    /// through untouched; so does the whole config when nothing is
    /// quarantined.
    pub fn derated(self, healthy: usize, total: usize) -> Self {
        if total == 0 || healthy >= total {
            return self;
        }
        let scale_down = |d: usize| -> usize {
            if d == usize::MAX {
                return d;
            }
            ((d as u128 * healthy as u128 / total as u128) as usize).max(1)
        };
        let scale_up = |w: usize| -> usize {
            if healthy == 0 {
                return usize::MAX;
            }
            (w as u128 * total as u128 / healthy as u128).min(usize::MAX as u128) as usize
        };
        AdmissionConfig {
            defer_queue_depth: scale_down(self.defer_queue_depth),
            shed_queue_depth: scale_down(self.shed_queue_depth),
            buffer_low_words: scale_up(self.buffer_low_words),
            ..self
        }
    }
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::disabled()
    }
}

/// Counters summarizing the admission layer's work over a server run
/// (part of [`crate::ServerReport`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Arrivals admitted into the simulated system.
    pub accepted: u64,
    /// Deferral events (one arrival deferred N times counts N).
    pub deferred: u64,
    /// Sheds due to an empty per-tenant token bucket.
    pub shed_tenant_throttle: u64,
    /// Sheds due to the global queue watermark or defer-budget
    /// exhaustion.
    pub shed_queue_overload: u64,
    /// Requests resolved [`SubmitOutcome::TimedOut`] (pre-injection and
    /// post-serve deadline misses combined).
    pub timed_out: u64,
}

impl AdmissionStats {
    /// Total requests refused (sheds of either kind, not timeouts).
    pub fn shed(&self) -> u64 {
        self.shed_tenant_throttle + self.shed_queue_overload
    }

    /// Fraction of resolved requests that were shed:
    /// `shed / (accepted + shed)`. Zero-safe.
    pub fn shed_fraction(&self) -> f64 {
        let resolved = self.accepted + self.shed();
        if resolved == 0 {
            0.0
        } else {
            self.shed() as f64 / resolved as f64
        }
    }
}

/// Per-session token-bucket state (driver-side).
#[derive(Debug, Clone, Copy)]
pub(crate) struct TokenBucket {
    tokens: u32,
    /// Cycle up to which refills have been credited.
    credited: u64,
}

impl TokenBucket {
    pub(crate) fn new(now: u64, cfg: &AdmissionConfig) -> Self {
        TokenBucket {
            tokens: cfg.bucket_capacity,
            credited: now,
        }
    }

    /// Credits tokens minted since the last refill (integer math: one
    /// token per `cycles_per_token`, capped at capacity, remainder
    /// cycles carried forward).
    fn refill(&mut self, now: u64, cfg: &AdmissionConfig) {
        if cfg.cycles_per_token == 0 {
            return;
        }
        let minted = (now.saturating_sub(self.credited)) / cfg.cycles_per_token;
        if minted > 0 {
            self.tokens = self
                .tokens
                .saturating_add(minted.min(u64::from(u32::MAX)) as u32)
                .min(cfg.bucket_capacity);
            self.credited += minted * cfg.cycles_per_token;
        }
        // A full bucket stops accruing: restart the mint clock so a long
        // idle tenant cannot bank more than one capacity of burst.
        if self.tokens == cfg.bucket_capacity {
            self.credited = now;
        }
    }

    /// Takes one token if available; on failure returns the cycles until
    /// the next token mints.
    pub(crate) fn try_take(&mut self, now: u64, cfg: &AdmissionConfig) -> Result<(), u64> {
        if cfg.cycles_per_token == 0 || cfg.bucket_capacity == 0 {
            return Ok(());
        }
        self.refill(now, cfg);
        if self.tokens > 0 {
            self.tokens -= 1;
            Ok(())
        } else {
            Err((self.credited + cfg.cycles_per_token).saturating_sub(now))
        }
    }
}

/// Seeded-jitter exponential backoff for resubmitting shed requests.
///
/// Each attempt waits `max(server hint, base << attempt)` plus a random
/// jitter of up to half that span, drawn from a deterministic per-client
/// seed — so retries are reproducible in tests yet de-synchronized
/// across tenants (no thundering-herd resubmission).
///
/// # Examples
///
/// ```
/// use strange_server::{Backoff, RetryAfter, ShedReason};
///
/// let mut b = Backoff::new(7, 1_000, 64_000, 4);
/// let hint = RetryAfter { cycles: 500, reason: ShedReason::QueueOverload };
/// let first = b.next_delay(&hint).expect("attempts remain");
/// assert!(first >= 1_000 && first < 1_500 + 1_000);
/// for _ in 0..3 {
///     b.next_delay(&hint);
/// }
/// assert!(b.next_delay(&hint).is_none(), "budget exhausted");
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base: u64,
    max: u64,
    attempts: u32,
    max_attempts: u32,
    rng: SmallRng,
}

impl Backoff {
    /// Creates a backoff policy: delays start at `base` cycles, double
    /// per attempt, saturate at `max`, and give up after `max_attempts`.
    pub fn new(seed: u64, base: u64, max: u64, max_attempts: u32) -> Self {
        Backoff {
            base: base.max(1),
            max: max.max(1),
            attempts: 0,
            max_attempts,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Attempts consumed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// The delay before the next retry, honoring the server's hint, or
    /// `None` when the retry budget is exhausted.
    pub fn next_delay(&mut self, hint: &RetryAfter) -> Option<u64> {
        if self.attempts >= self.max_attempts {
            return None;
        }
        let exp = self
            .base
            .saturating_mul(1u64 << self.attempts.min(32))
            .min(self.max);
        self.attempts += 1;
        let floor = exp.max(hint.cycles);
        let jitter = self.rng.gen_range(0..=floor / 2);
        Some(floor + jitter)
    }

    /// Resets the attempt counter (call after a successful submission).
    pub fn reset(&mut self) {
        self.attempts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(burst: u32, cpt: u64) -> AdmissionConfig {
        AdmissionConfig {
            enabled: true,
            bucket_capacity: burst,
            cycles_per_token: cpt,
            ..AdmissionConfig::protective(burst, cpt)
        }
    }

    #[test]
    fn bucket_mints_on_schedule() {
        let c = cfg(2, 100);
        let mut b = TokenBucket::new(0, &c);
        assert!(b.try_take(0, &c).is_ok());
        assert!(b.try_take(0, &c).is_ok());
        // Empty: next token at cycle 100.
        assert_eq!(b.try_take(10, &c), Err(90));
        assert!(b.try_take(100, &c).is_ok());
        assert_eq!(b.try_take(150, &c), Err(50));
    }

    #[test]
    fn bucket_caps_idle_accrual_at_capacity() {
        let c = cfg(2, 100);
        let mut b = TokenBucket::new(0, &c);
        // A long idle span banks exactly `capacity` tokens, no more.
        for _ in 0..2 {
            assert!(b.try_take(1_000_000, &c).is_ok());
        }
        assert!(b.try_take(1_000_000, &c).is_err());
    }

    #[test]
    fn zero_rate_bucket_is_transparent() {
        let c = cfg(0, 0);
        let mut b = TokenBucket::new(0, &c);
        for _ in 0..1000 {
            assert!(b.try_take(0, &c).is_ok());
        }
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_grows() {
        let hint = RetryAfter {
            cycles: 0,
            reason: ShedReason::QueueOverload,
        };
        let mut a = Backoff::new(42, 100, 10_000, 8);
        let mut b = Backoff::new(42, 100, 10_000, 8);
        let da: Vec<u64> = std::iter::from_fn(|| a.next_delay(&hint)).collect();
        let db: Vec<u64> = std::iter::from_fn(|| b.next_delay(&hint)).collect();
        assert_eq!(da, db, "same seed, same delays");
        assert_eq!(da.len(), 8);
        // Exponential floor: attempt k waits at least base << k (capped).
        for (k, d) in da.iter().enumerate() {
            assert!(*d >= (100u64 << k).min(10_000));
        }
    }

    #[test]
    fn backoff_honors_server_hint() {
        let hint = RetryAfter {
            cycles: 50_000,
            reason: ShedReason::TenantThrottle,
        };
        let mut b = Backoff::new(1, 10, 1_000_000, 3);
        assert!(b.next_delay(&hint).unwrap() >= 50_000);
    }

    #[test]
    fn derating_scales_watermarks_by_healthy_fraction() {
        let base = AdmissionConfig::protective(4, 1_000);
        // Nothing quarantined: untouched.
        assert_eq!(base.derated(4, 4), base);
        // Half the channels gone: queue watermarks halve, buffer-low
        // doubles, tenant knobs pass through.
        let half = base.derated(2, 4);
        assert_eq!(half.defer_queue_depth, 4);
        assert_eq!(half.shed_queue_depth, 16);
        assert_eq!(half.buffer_low_words, 4);
        assert_eq!(half.bucket_capacity, base.bucket_capacity);
        assert_eq!(half.max_defers, base.max_defers);
        // Deep derating floors the queue watermarks at 1.
        let deep = base.derated(1, 64);
        assert_eq!(deep.defer_queue_depth, 1);
        assert_eq!(deep.shed_queue_depth, 1);
        // All channels quarantined: maximal caution.
        let none = base.derated(0, 4);
        assert_eq!(none.buffer_low_words, usize::MAX);
        assert_eq!(none.defer_queue_depth, 1);
        // Disabled (MAX) watermarks stay disabled.
        let off = AdmissionConfig::disabled().derated(1, 2);
        assert_eq!(off.defer_queue_depth, usize::MAX);
        assert_eq!(off.shed_queue_depth, usize::MAX);
    }

    #[test]
    fn shed_fraction_is_zero_safe() {
        let mut s = AdmissionStats::default();
        assert_eq!(s.shed_fraction(), 0.0);
        s.accepted = 3;
        s.shed_queue_overload = 1;
        assert_eq!(s.shed_fraction(), 0.25);
    }
}
