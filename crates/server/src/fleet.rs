//! Sharded multi-[`System`] fleet: a router front-end over N independent
//! shards, one driver per shard, with fleet-level aggregated
//! observability.
//!
//! One `System` — one DRAM channel set, one TRNG engine — saturates near
//! its mechanism ceiling (~620 Mb/s D-RaNGe, ~2.7 Gb/s QUAC). Real
//! deployments scale past a single memory controller by adding
//! sockets/nodes; this module is that scale-out layer for the simulated
//! server: a [`ShardRouter`] distributes `open_session`/`getrandom`
//! traffic across shards, each shard advances virtual time on its own
//! host thread, and [`FleetSnapshot`] / [`FleetStats`] aggregate the
//! per-shard views back into one fleet readout.
//!
//! # Determinism contract
//!
//! Routing decisions are pure functions of routing history and the
//! session key — never of host timing — so the induced per-shard session
//! sets are reproducible. Because shards share no simulated state, the
//! fleet inherits shard-local determinism wholesale:
//!
//! * per shard, `SimMode::Reference` ≡ `SimMode::FastForward` bit
//!   identity holds exactly as for a single system;
//! * an N-shard run under [`RoutePolicy::SessionHash`] is bit-identical
//!   to N separate single-shard runs of the induced per-shard session
//!   sets (asserted in `tests/fleet.rs` and in `cargo bench --bench
//!   fleet`);
//! * [`run_shards`] (parallel, one thread per shard) produces exactly
//!   the results of [`run_shards_sequential`].
//!
//! # Aggregation semantics
//!
//! Every global session lives on exactly one shard, so per-tenant fleet
//! percentiles are *exact* — a tenant's fleet p50/p99 is its shard-local
//! p50/p99, looked up through the session map, not an approximation.
//! Fleet-wide scalars (offered/completed/bytes) are sums; the fleet
//! latency distribution is the merge of the shard logs; the fleet Jain
//! index is computed across shards over bytes served (how evenly the
//! fleet is utilized). Admission stays shard-local — each shard's
//! ladder sees only its own queue depth and buffer — while
//! [`FleetReport::admission`] exposes the fleet-wide shed/defer
//! counters.

use std::sync::mpsc::{channel, Receiver, TryRecvError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use strange_core::{ClientSpec, RunResult, ServiceStats, System};
use strange_metrics::{jain_index, percentile_sorted};

use crate::{
    AdmissionConfig, AdmissionStats, Pacing, RngServer, ServerReport, SessionHandle, Snapshot,
};

/// Fleet shard count from `STRANGE_SHARDS` (default 4, minimum 1) —
/// threaded like `STRANGE_THREADS` in the bench runner, so CI and
/// 1-CPU containers can scale fleet scenarios down.
pub fn shard_count() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::env::var("STRANGE_SHARDS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(4)
    })
}

/// SplitMix64 finalizer: the session-key mixer behind
/// [`RoutePolicy::SessionHash`]. Deterministic and host-independent.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// How the [`ShardRouter`] picks a shard for a new session. All three
/// policies are pure functions of simulated/routing state, so fleet
/// runs stay reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Cycle through the candidate shards in order.
    RoundRobin,
    /// Hash the session key (salted) onto a shard: sticky per key,
    /// independent of arrival order — the policy whose induced
    /// partition is asserted bit-identical to single-shard runs.
    SessionHash {
        /// Salt mixed into every key (lets two fleets disagree).
        salt: u64,
    },
    /// Pick the candidate shard with the fewest open sessions (ties go
    /// to the lower index). Load is the router's own open-session
    /// accounting — simulated state, not host state.
    LeastLoaded,
}

/// The fleet front-end's routing state: open-session accounting per
/// shard plus the pluggable [`RoutePolicy`].
///
/// The optional per-shard *mechanism labels* are the hook for the
/// heterogeneous-fleet follow-on: [`ShardRouter::route_session`] takes
/// a preferred mechanism, and when any shard carries that label the
/// candidate set narrows to those shards before the policy picks.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    policy: RoutePolicy,
    labels: Vec<String>,
    open: Vec<usize>,
    rr: usize,
    routed: u64,
}

impl ShardRouter {
    /// A router over `shards` unlabeled shards.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet.
    pub fn new(policy: RoutePolicy, shards: usize) -> Self {
        assert!(shards >= 1, "fleet of zero shards");
        ShardRouter {
            policy,
            labels: vec![String::new(); shards],
            open: vec![0; shards],
            rr: 0,
            routed: 0,
        }
    }

    /// A router whose shards carry mechanism labels (e.g. `"D-RaNGe"`,
    /// `"QUAC-TRNG"`) for mechanism-aware routing.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet.
    pub fn with_labels(policy: RoutePolicy, labels: Vec<String>) -> Self {
        assert!(!labels.is_empty(), "fleet of zero shards");
        let shards = labels.len();
        ShardRouter {
            policy,
            labels,
            open: vec![0; shards],
            rr: 0,
            routed: 0,
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.open.len()
    }

    /// Sessions currently open on `shard` (router accounting).
    pub fn open_count(&self, shard: usize) -> usize {
        self.open[shard]
    }

    /// Total sessions routed over the router's lifetime.
    pub fn routed(&self) -> u64 {
        self.routed
    }

    /// Routes a new session identified by `key` and returns its shard,
    /// counting it open there. `prefer_mechanism` narrows the candidate
    /// set to shards carrying that label when at least one does; an
    /// unknown label falls back to the whole fleet, so a mono-mechanism
    /// fleet ignores preferences entirely.
    pub fn route_session(&mut self, key: u64, prefer_mechanism: Option<&str>) -> usize {
        let candidates: Vec<usize> = match prefer_mechanism {
            Some(m) if self.labels.iter().any(|l| l == m) => (0..self.open.len())
                .filter(|&i| self.labels[i] == m)
                .collect(),
            _ => (0..self.open.len()).collect(),
        };
        let pick = match self.policy {
            RoutePolicy::RoundRobin => {
                let i = candidates[self.rr % candidates.len()];
                self.rr += 1;
                i
            }
            RoutePolicy::SessionHash { salt } => {
                let h = splitmix64(salt ^ splitmix64(key));
                candidates[(h % candidates.len() as u64) as usize]
            }
            RoutePolicy::LeastLoaded => *candidates
                .iter()
                .min_by_key(|&&i| (self.open[i], i))
                .expect("non-empty fleet"),
        };
        self.open[pick] += 1;
        self.routed += 1;
        pick
    }

    /// Counts a session on `shard` closed (the [`RoutePolicy::LeastLoaded`]
    /// load signal).
    pub fn release(&mut self, shard: usize) {
        self.open[shard] = self.open[shard].saturating_sub(1);
    }
}

/// Partitions a session population across the router's shards: spec `i`
/// is routed with key `i`, yielding the per-shard session sets (batch
/// mode) plus the global→shard assignment. With
/// [`RoutePolicy::SessionHash`] the induced partition is what the
/// N-shard ≡ union-of-single-shard bit-identity contract quantifies
/// over.
pub fn partition_sessions(
    router: &mut ShardRouter,
    specs: &[ClientSpec],
) -> (Vec<Vec<ClientSpec>>, Vec<usize>) {
    let mut per_shard: Vec<Vec<ClientSpec>> = vec![Vec::new(); router.shards()];
    let mut assignment = Vec::with_capacity(specs.len());
    for (i, spec) in specs.iter().enumerate() {
        let shard = router.route_session(i as u64, None);
        per_shard[shard].push(spec.clone());
        assignment.push(shard);
    }
    (per_shard, assignment)
}

/// Runs every shard to completion, one host thread per shard (the PR 2
/// worker discipline: scoped threads, no shared simulated state), and
/// returns each shard's result *and* its final `System` — arrival logs
/// and captured words stay inspectable. Bit-identical to
/// [`run_shards_sequential`] because shards are independent.
///
/// # Panics
///
/// Panics if a shard thread panics.
pub fn run_shards(shards: Vec<System>) -> Vec<(RunResult, System)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|mut sys| {
                scope.spawn(move || {
                    let res = sys.run();
                    (res, sys)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect()
    })
}

/// [`run_shards`] on the calling thread, in shard order — the sequential
/// half of the parallel ≡ sequential assertion.
pub fn run_shards_sequential(shards: Vec<System>) -> Vec<(RunResult, System)> {
    shards
        .into_iter()
        .map(|mut sys| {
            let res = sys.run();
            (res, sys)
        })
        .collect()
}

/// Fleet-level aggregate of per-shard [`ServiceStats`]: sums for the
/// scalars, a merged latency distribution, and the per-shard byte
/// shares the fleet Jain index is computed over. Pure function of the
/// shard stats — `cargo bench --bench fleet` asserts it equals the
/// union of the shard-local views.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetStats {
    /// Requests offered across the fleet.
    pub requests_offered: u64,
    /// Requests completed across the fleet.
    pub requests_completed: u64,
    /// Bytes served across the fleet.
    pub bytes_served: u64,
    /// Merged (sorted ascending) per-request latency log of every shard.
    pub latency_log: Vec<u64>,
    /// Bytes served per shard — the shares behind [`FleetStats::jain`].
    pub shard_bytes: Vec<u64>,
}

impl FleetStats {
    /// Aggregates the per-shard service statistics.
    pub fn aggregate(shards: &[ServiceStats]) -> FleetStats {
        let mut latency_log: Vec<u64> =
            shards.iter().flat_map(|s| s.latency_log.iter().copied()).collect();
        latency_log.sort_unstable();
        FleetStats {
            requests_offered: shards.iter().map(|s| s.requests_offered).sum(),
            requests_completed: shards.iter().map(|s| s.requests_completed).sum(),
            bytes_served: shards.iter().map(|s| s.bytes_served).sum(),
            latency_log,
            shard_bytes: shards.iter().map(|s| s.bytes_served).collect(),
        }
    }

    /// Exact fleet-wide latency percentile (`None` before any
    /// completion).
    pub fn latency_percentile(&self, q: f64) -> Option<u64> {
        percentile_sorted(&self.latency_log, q)
    }

    /// Jain fairness index across shards over bytes served: 1.0 when
    /// load spreads evenly, → 1/N when one shard serves everything.
    /// `None` when no shard served bytes.
    pub fn jain(&self) -> Option<f64> {
        let shares: Vec<f64> = self.shard_bytes.iter().map(|&b| b as f64).collect();
        jain_index(&shares).ok()
    }
}

/// A fleet-level [`Snapshot`] aggregate: per-shard raw views (queue
/// depth, buffer occupancy, quarantined channels) plus fleet scalars,
/// exact per-tenant fleet percentiles, and the fleet Jain index.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// The per-shard snapshots this aggregate was computed from, in
    /// shard order — per-shard queue depth / buffer occupancy /
    /// quarantine counts read directly from here.
    pub shards: Vec<Snapshot>,
    /// Max simulated cycle across shards (shards advance independently).
    pub cpu_cycles: u64,
    /// Requests offered across the fleet.
    pub requests_offered: u64,
    /// Requests completed across the fleet.
    pub requests_completed: u64,
    /// Bytes served across the fleet.
    pub bytes_served: u64,
    /// Requests in flight across the fleet.
    pub in_flight: usize,
    /// Channels excluded by the entropy-health watchdog, fleet-wide.
    pub quarantined_channels: usize,
    /// Per *global* session fleet p50 — exact, looked up on the
    /// session's home shard through the session map.
    pub tenant_p50: Vec<Option<u64>>,
    /// Per global session fleet p99 (same indexing as `tenant_p50`).
    pub tenant_p99: Vec<Option<u64>>,
    /// Jain index across shards over bytes served so far.
    pub jain: Option<f64>,
}

impl FleetSnapshot {
    /// Aggregates per-shard snapshots. `sessions` maps each global
    /// session to `(shard, local client index)`; because a session
    /// lives on exactly one shard, its fleet percentile *is* its
    /// shard-local percentile.
    pub fn aggregate(shards: Vec<Snapshot>, sessions: &[(usize, usize)]) -> FleetSnapshot {
        let tenant_p50 = sessions
            .iter()
            .map(|&(s, c)| shards[s].tenant_p50.get(c).copied().flatten())
            .collect();
        let tenant_p99 = sessions
            .iter()
            .map(|&(s, c)| shards[s].tenant_p99.get(c).copied().flatten())
            .collect();
        let shares: Vec<f64> = shards.iter().map(|s| s.bytes_served as f64).collect();
        FleetSnapshot {
            cpu_cycles: shards.iter().map(|s| s.cpu_cycles).max().unwrap_or(0),
            requests_offered: shards.iter().map(|s| s.requests_offered).sum(),
            requests_completed: shards.iter().map(|s| s.requests_completed).sum(),
            bytes_served: shards.iter().map(|s| s.bytes_served).sum(),
            in_flight: shards.iter().map(|s| s.in_flight).sum(),
            quarantined_channels: shards.iter().map(|s| s.quarantined_channels).sum(),
            tenant_p50,
            tenant_p99,
            jain: jain_index(&shares).ok(),
            shards,
        }
    }
}

/// One open fleet session: the shard-local [`SessionHandle`] plus fleet
/// bookkeeping. Derefs to the handle, so `getrandom`, `submit_after`,
/// `recv_outcome`, pipelined submits, … all work unchanged.
pub struct FleetSession {
    /// The shard this session was routed to.
    pub shard: usize,
    /// The fleet-wide session index (position in the session map).
    pub global: usize,
    handle: SessionHandle,
    router: Arc<Mutex<ShardRouter>>,
}

impl FleetSession {
    /// Closes the session and releases its router load accounting.
    pub fn close(self) {
        self.router
            .lock()
            .expect("router lock poisoned")
            .release(self.shard);
        self.handle.close();
    }
}

impl std::ops::Deref for FleetSession {
    type Target = SessionHandle;
    fn deref(&self) -> &SessionHandle {
        &self.handle
    }
}

impl std::ops::DerefMut for FleetSession {
    fn deref_mut(&mut self) -> &mut SessionHandle {
        &mut self.handle
    }
}

/// Final accounting of a fleet run, returned by
/// [`FleetServer::shutdown`].
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-shard server reports, in shard order.
    pub shards: Vec<ServerReport>,
    /// The session map: global session → `(shard, local client index)`.
    pub sessions: Vec<(usize, usize)>,
    /// Fleet-wide admission counters (sum of the shard-local ladders).
    pub admission: AdmissionStats,
}

impl FleetReport {
    /// The fleet-level service aggregate.
    pub fn fleet_stats(&self) -> FleetStats {
        let stats: Vec<ServiceStats> = self.shards.iter().map(|r| r.stats.clone()).collect();
        FleetStats::aggregate(&stats)
    }
}

/// The live fleet front-end: N per-shard [`RngServer`]s (one driver
/// thread each), a shared [`ShardRouter`], and the global session map.
/// Sessions opened through the fleet land on exactly one shard and keep
/// the full [`SessionHandle`] API.
pub struct FleetServer {
    servers: Vec<RngServer>,
    router: Arc<Mutex<ShardRouter>>,
    sessions: Arc<Mutex<Vec<(usize, usize)>>>,
    aggregator: Option<JoinHandle<()>>,
}

impl FleetServer {
    /// Starts one server per system, routing with `policy`.
    pub fn start(systems: Vec<System>, policy: RoutePolicy, pacing: Pacing) -> FleetServer {
        FleetServer::start_inner(systems, policy, pacing, AdmissionConfig::disabled(), None)
    }

    /// Starts a fleet whose shards each run the admission ladder
    /// (shard-local decisions; fleet-wide counters in the report).
    pub fn start_with_admission(
        systems: Vec<System>,
        policy: RoutePolicy,
        pacing: Pacing,
        admission: AdmissionConfig,
    ) -> FleetServer {
        FleetServer::start_inner(systems, policy, pacing, admission, None)
    }

    /// Starts an *observed* fleet: each shard streams [`Snapshot`]s and
    /// an aggregator thread folds them into [`FleetSnapshot`]s on the
    /// returned channel (latest-per-shard semantics; one final
    /// aggregate as the fleet winds down). Dropping the receiver stops
    /// the stream.
    pub fn start_observed(
        systems: Vec<System>,
        policy: RoutePolicy,
        pacing: Pacing,
        every: Duration,
    ) -> (FleetServer, Receiver<FleetSnapshot>) {
        let (tx, rx) = channel();
        let fleet = FleetServer::start_inner(
            systems,
            policy,
            pacing,
            AdmissionConfig::disabled(),
            Some((tx, every)),
        );
        (fleet, rx)
    }

    fn start_inner(
        systems: Vec<System>,
        policy: RoutePolicy,
        pacing: Pacing,
        admission: AdmissionConfig,
        observe: Option<(std::sync::mpsc::Sender<FleetSnapshot>, Duration)>,
    ) -> FleetServer {
        assert!(!systems.is_empty(), "fleet of zero shards");
        let shards = systems.len();
        let sessions = Arc::new(Mutex::new(Vec::new()));
        let mut servers = Vec::with_capacity(shards);
        let mut snap_rxs = Vec::with_capacity(shards);
        for sys in systems {
            match &observe {
                Some((_, every)) => {
                    let (server, rx) = RngServer::start_observed(sys, pacing, *every);
                    servers.push(server);
                    snap_rxs.push(rx);
                }
                None => {
                    servers.push(if admission.enabled {
                        RngServer::start_with_admission(sys, pacing, admission)
                    } else {
                        RngServer::start(sys, pacing)
                    });
                }
            }
        }
        let aggregator = observe.map(|(tx, _)| {
            let map = Arc::clone(&sessions);
            std::thread::Builder::new()
                .name("strange-fleet-aggregator".into())
                .spawn(move || aggregate_stream(snap_rxs, map, tx))
                .expect("spawn aggregator thread")
        });
        FleetServer {
            servers,
            router: Arc::new(Mutex::new(ShardRouter::new(policy, shards))),
            sessions,
            aggregator,
        }
    }

    /// Shards in the fleet.
    pub fn shards(&self) -> usize {
        self.servers.len()
    }

    /// Opens a session routed by its global index (round-robin and
    /// least-loaded ignore the key anyway; session-hash gets a stable
    /// per-session key).
    pub fn open_session(&self, spec: ClientSpec) -> FleetSession {
        let key = self.sessions.lock().expect("session map poisoned").len() as u64;
        self.open_session_with(spec, key, None)
    }

    /// Opens a session with an explicit routing key and an optional
    /// preferred mechanism label (the heterogeneous-fleet hook).
    pub fn open_session_with(
        &self,
        spec: ClientSpec,
        key: u64,
        prefer_mechanism: Option<&str>,
    ) -> FleetSession {
        let shard = self
            .router
            .lock()
            .expect("router lock poisoned")
            .route_session(key, prefer_mechanism);
        let handle = self.servers[shard].open_session(spec);
        let mut map = self.sessions.lock().expect("session map poisoned");
        let global = map.len();
        map.push((shard, handle.id()));
        drop(map);
        FleetSession {
            shard,
            global,
            handle,
            router: Arc::clone(&self.router),
        }
    }

    /// Stops every shard (draining in-flight requests) and returns the
    /// fleet accounting.
    ///
    /// # Panics
    ///
    /// Panics if a shard driver or the aggregator thread panicked.
    pub fn shutdown(mut self) -> FleetReport {
        let shards: Vec<ServerReport> = self
            .servers
            .drain(..)
            .map(RngServer::shutdown)
            .collect();
        if let Some(agg) = self.aggregator.take() {
            agg.join().expect("aggregator thread panicked");
        }
        let sessions = self
            .sessions
            .lock()
            .expect("session map poisoned")
            .clone();
        let mut admission = AdmissionStats::default();
        for r in &shards {
            admission.accepted += r.admission.accepted;
            admission.deferred += r.admission.deferred;
            admission.shed_tenant_throttle += r.admission.shed_tenant_throttle;
            admission.shed_queue_overload += r.admission.shed_queue_overload;
            admission.timed_out += r.admission.timed_out;
        }
        FleetReport {
            shards,
            sessions,
            admission,
        }
    }
}

/// The aggregator loop: folds per-shard snapshot streams into
/// [`FleetSnapshot`]s with latest-per-shard semantics, emits one final
/// aggregate when every shard stream has ended, and exits. Reused
/// buffers throughout — per emission it allocates only the outgoing
/// aggregate itself.
fn aggregate_stream(
    rxs: Vec<Receiver<Snapshot>>,
    sessions: Arc<Mutex<Vec<(usize, usize)>>>,
    tx: std::sync::mpsc::Sender<FleetSnapshot>,
) {
    let shards = rxs.len();
    let mut latest: Vec<Option<Snapshot>> = vec![None; shards];
    let mut done = vec![false; shards];
    loop {
        let mut fresh = false;
        for (i, rx) in rxs.iter().enumerate() {
            loop {
                match rx.try_recv() {
                    Ok(snap) => {
                        latest[i] = Some(snap);
                        fresh = true;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        done[i] = true;
                        break;
                    }
                }
            }
        }
        let all_done = done.iter().all(|&d| d);
        if fresh && latest.iter().all(|s| s.is_some()) {
            let shard_snaps: Vec<Snapshot> = latest.iter().map(|s| s.clone().expect("all some")).collect();
            let map = sessions.lock().expect("session map poisoned").clone();
            if tx
                .send(FleetSnapshot::aggregate(shard_snaps, &map))
                .is_err()
            {
                return;
            }
        }
        if all_done {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

impl Drop for FleetServer {
    fn drop(&mut self) {
        // Shard servers shut themselves down on drop; the aggregator
        // exits once their snapshot senders disconnect.
        self.servers.clear();
        if let Some(agg) = self.aggregator.take() {
            let _ = agg.join();
        }
    }
}
