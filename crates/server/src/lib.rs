//! Host-concurrent RNG server front-end over the cycle-accurate
//! DR-STRaNGe service core.
//!
//! The synchronous service layer (`strange_core::service`) simulates
//! clients *inside* the simulation loop; this crate turns the simulated
//! system into a **server**: many real OS threads open sessions and
//! submit `getrandom(bytes)` requests against one shared [`System`],
//! while a single *driver* thread owns the simulation, advances virtual
//! time in [`System::advance_until`] spans, injects arrivals at their
//! exact cycles, and drains completions back to the blocked or polling
//! submitters over per-session channels.
//!
//! # Threading model
//!
//! ```text
//!  submitter threads                    driver thread
//!  ┌──────────────┐  Ctl::Submit   ┌──────────────────────┐
//!  │SessionHandle │ ─────────────▶ │  schedule (min-heap)  │
//!  │  .getrandom  │                │  System::advance_until│
//!  │  .recv ◀──────────────────────│  take_service_        │
//!  └──────────────┘  ServedRequest │     completion()      │
//!        × N          per-session  └──────────────────────┘
//!                     channel
//! ```
//!
//! The driver is the only owner of the [`System`]; submitters never touch
//! simulation state, so no lock guards the hot loop.
//!
//! # Pacing and the determinism contract
//!
//! * [`Pacing::Virtual`] — virtual time is **data-driven**: it advances
//!   only to the next scheduled arrival or pending completion, and never
//!   while an open interactive session owes the driver its next decision
//!   (submit or close). A request's arrival cycle is
//!   `max(previous completion cycle + delay, now)` — host scheduling
//!   cannot perturb it — so a fixed submission schedule (sessions opened
//!   in a fixed order, each running a seeded request sequence) produces
//!   **bit-for-bit** the results of the equivalent synchronous
//!   `ServiceConfig` run, no matter how many OS threads submit or how
//!   they interleave (asserted in `tests/facade.rs`). Because a
//!   completion is observed one cycle after it lands, a post-completion
//!   delay of 0 behaves as 1; the equivalent synchronous closed loop is
//!   one with `think >= 1`.
//! * [`Pacing::WallClock`] — virtual time is pegged to the host clock at
//!   a configurable rate for interactive load tests; arrivals are
//!   stamped when the driver receives them, so results are *not*
//!   reproducible across runs.
//!
//! Sessions carry a [`strange_core::QosClass`]; the Section 5.2
//! arbitration and the service issue path see the tenant priority, so
//! high-QoS sessions observe lower tail latency under contention.
//!
//! Autonomous sessions (non-manual [`ClientSpec`]s — Poisson, bursty,
//! trace replay) may also be opened as *background load generators*:
//! they run inside the simulation without per-request channel traffic.
//! Under [`Pacing::Virtual`] they do not gate time — they generate load
//! only while interactive traffic (or wall-clock pacing) advances it.
//!
//! Two observability hooks close the load-testing loop:
//! [`RngServer::start_observed`] streams periodic [`Snapshot`]s
//! (per-tenant latency percentiles, RNG queue depth, buffer occupancy)
//! from the driver during wall-clock runs, and — when the system was
//! built with `ServiceConfig::record_arrivals` — the final
//! [`ServerReport::arrival_logs`] carry every session's arrival trace,
//! so a wall-clock load test can be re-run deterministically through
//! `ArrivalProcess::TraceReplay`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use strange_core::{ArrivalProcess, ClientSpec, ServedRequest, ServiceStats, System};

/// CPU-cycle budget per driver advance while waiting on a completion;
/// generously above any realistic request latency, so exhausting it
/// without progress indicates an internal bug.
const DRIVE_SLICE: u64 = 50_000_000;

/// How the driver maps virtual (simulated) time onto host time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Deterministic virtual time: advance only as far as the submitted
    /// work requires (see the crate docs for the determinism contract).
    Virtual,
    /// Wall-clock-paced load testing: virtual time tracks the host clock
    /// at `cycles_per_ms` simulated CPU cycles per host millisecond
    /// (4 000 000 ≈ real time for the paper's 4 GHz clock).
    WallClock {
        /// Simulated CPU cycles per host millisecond.
        cycles_per_ms: u64,
    },
}

/// Control messages from session handles to the driver.
enum Ctl {
    Open {
        spec: ClientSpec,
        completions: Sender<ServedRequest>,
        reply: Sender<usize>,
    },
    Submit {
        session: usize,
        bytes: usize,
        delay: u64,
    },
    Close {
        session: usize,
    },
    Shutdown,
}

/// Final accounting of a server run, returned by [`RngServer::shutdown`].
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// The service layer's aggregate statistics (per-request latency log,
    /// per-session latency split, fast/slow path counts).
    pub stats: ServiceStats,
    /// Served words in completion order (only populated when the system
    /// was configured with `capture_values`).
    pub captured: Vec<u64>,
    /// Per-session arrival traces: the absolute CPU cycle of every
    /// request each session (client index) injected, in arrival order.
    /// Populated when the system was configured with
    /// `ServiceConfig::record_arrivals`; the `strange-workloads`
    /// arrival-trace writer (`emit_arrival_trace`) turns each entry into
    /// the on-disk format, and replaying them through
    /// `ArrivalProcess::TraceReplay` reproduces a virtual-paced run bit
    /// for bit (and re-runs a wall-clock load test deterministically).
    pub arrival_logs: Vec<Vec<u64>>,
    /// Total simulated CPU cycles.
    pub cpu_cycles: u64,
    /// Sessions opened over the server's lifetime.
    pub sessions: usize,
}

/// A periodic progress snapshot emitted by the driver thread of an
/// observed wall-clock server ([`RngServer::start_observed`]): the
/// in-progress view a live load-test dashboard consumes instead of
/// waiting for the final [`ServerReport`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Simulated CPU cycles at the snapshot.
    pub cpu_cycles: u64,
    /// Requests offered so far (all sessions).
    pub requests_offered: u64,
    /// Requests fully served so far.
    pub requests_completed: u64,
    /// Requests currently in flight inside the simulation.
    pub in_flight: usize,
    /// Current depth of the engine's global RNG request queue.
    pub rng_queue_len: usize,
    /// 64-bit words currently available in the random number buffer.
    pub buffer_words: usize,
    /// In-progress per-tenant p50 latency (CPU cycles; `None` before a
    /// tenant's first completion). Indexed by service client — session
    /// ids land at their client index, i.e. offset by any service
    /// clients configured at `System` construction.
    pub tenant_p50: Vec<Option<u64>>,
    /// In-progress per-tenant p99 latency (same indexing as
    /// [`Snapshot::tenant_p50`]).
    pub tenant_p99: Vec<Option<u64>>,
}

/// A cloneable connection to a running [`RngServer`]: hand one to each
/// submitter thread so it can open its own sessions.
#[derive(Clone)]
pub struct ServerClient {
    ctl: Sender<Ctl>,
}

impl ServerClient {
    /// Opens a session and returns its handle. Interactive sessions use
    /// a manual [`ClientSpec`] (e.g. `ClientSpec::manual(bytes)`, with a
    /// QoS class via [`ClientSpec::with_qos`]); non-manual specs become
    /// autonomous background load generators whose handle never receives
    /// completions.
    ///
    /// # Panics
    ///
    /// Panics if the server has shut down, or if the spec is invalid
    /// ([`ClientSpec::validate`] — checked here so the error surfaces in
    /// the calling thread, not the driver).
    pub fn open_session(&self, spec: ClientSpec) -> SessionHandle {
        if let Err(e) = spec.validate() {
            panic!("open_session: invalid session spec: {e}");
        }
        let (completions, rx) = channel();
        let (reply, reply_rx) = channel();
        self.ctl
            .send(Ctl::Open {
                spec,
                completions,
                reply,
            })
            .expect("server is running");
        let id = reply_rx.recv().expect("server is running");
        SessionHandle {
            id,
            ctl: self.ctl.clone(),
            rx,
            outstanding: 0,
            first: true,
        }
    }
}

/// One open session: the submitting thread's endpoint.
///
/// Requests submitted through the handle are served in order; results
/// arrive on the session's private channel via [`SessionHandle::recv`]
/// (blocking) or [`SessionHandle::try_recv`] (polling).
pub struct SessionHandle {
    id: usize,
    ctl: Sender<Ctl>,
    rx: Receiver<ServedRequest>,
    outstanding: usize,
    first: bool,
}

impl SessionHandle {
    /// The session id (also its client index in
    /// [`ServiceStats::latency_by_client`]).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Requests currently submitted but not yet received.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Submits a `getrandom(bytes)` request without blocking. Under
    /// [`Pacing::Virtual`] the request arrives `delay` cycles after the
    /// session's previous completion (its open cycle for the first
    /// request); under [`Pacing::WallClock`] `delay` is a minimum gap and
    /// the arrival is otherwise stamped on receipt.
    pub fn submit_after(&mut self, bytes: usize, delay: u64) {
        assert!(bytes > 0, "getrandom of zero bytes");
        self.ctl
            .send(Ctl::Submit {
                session: self.id,
                bytes,
                delay,
            })
            .expect("server is running");
        self.outstanding += 1;
    }

    /// Blocks until the next completion for this session arrives.
    ///
    /// # Panics
    ///
    /// Panics if the server shut down with the request still in flight,
    /// or when nothing is outstanding.
    pub fn recv(&mut self) -> ServedRequest {
        assert!(self.outstanding > 0, "recv with no outstanding request");
        let served = self.rx.recv().expect("server dropped the session");
        self.outstanding -= 1;
        served
    }

    /// Returns the next completion if one is already available.
    ///
    /// # Panics
    ///
    /// Panics if the server shut down with requests still in flight
    /// (mirrors [`SessionHandle::recv`] — a polling submitter must not
    /// spin forever on a dead driver).
    pub fn try_recv(&mut self) -> Option<ServedRequest> {
        match self.rx.try_recv() {
            Ok(served) => {
                self.outstanding -= 1;
                Some(served)
            }
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => panic!("server dropped the session"),
        }
    }

    /// Fills `out` with true-random bytes, blocking until the simulated
    /// system serves the request, and returns the served result (timing
    /// class + latency). `think` is the virtual-time gap between the
    /// previous completion and this arrival (the closed-loop think time;
    /// the first call arrives at the session's open cycle) — equivalent
    /// to `ArrivalProcess::ClosedLoop { think }` for `think >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is empty.
    pub fn getrandom(&mut self, out: &mut [u8], think: u64) -> ServedRequest {
        let delay = if self.first { 0 } else { think };
        self.first = false;
        self.submit_after(out.len(), delay);
        let served = self.recv();
        for (chunk, word) in out.chunks_mut(8).zip(&served.words) {
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        served
    }

    /// Closes the session. Submits not yet injected into the simulation
    /// are discarded; requests already in flight drain inside the
    /// simulation and their results are dropped.
    pub fn close(self) {
        let _ = self.ctl.send(Ctl::Close { session: self.id });
    }
}

/// The server: owns the driver thread that owns the simulated [`System`].
pub struct RngServer {
    ctl: Sender<Ctl>,
    driver: Option<JoinHandle<ServerReport>>,
}

impl RngServer {
    /// Starts a server over `system`. Build the system with
    /// `SystemConfig::service.sessions = true` (and `capture_values` if
    /// the caller consumes the bytes); trace cores are allowed and run
    /// alongside the served sessions as background memory traffic.
    pub fn start(system: System, pacing: Pacing) -> RngServer {
        RngServer::spawn(system, pacing, None)
    }

    /// Starts an *observed* server: the driver thread additionally emits
    /// a [`Snapshot`] on the returned channel roughly every `every` of
    /// host time while the simulation is being paced against the wall
    /// clock, plus one final snapshot as the driver winds down (under
    /// any pacing). Dropping the receiver silently stops the stream.
    /// *Periodic* snapshots only flow under [`Pacing::WallClock`] — a
    /// virtual-paced run is deterministic and fully described by its
    /// final report, so it emits just the parting snapshot.
    pub fn start_observed(
        system: System,
        pacing: Pacing,
        every: Duration,
    ) -> (RngServer, Receiver<Snapshot>) {
        let (tx, rx) = channel();
        (RngServer::spawn(system, pacing, Some(Observer::new(tx, every))), rx)
    }

    fn spawn(system: System, pacing: Pacing, observer: Option<Observer>) -> RngServer {
        let (ctl, ctl_rx) = channel();
        let driver = std::thread::Builder::new()
            .name("strange-server-driver".into())
            .spawn(move || Driver::new(system, ctl_rx, pacing, observer).run())
            .expect("spawn driver thread");
        RngServer {
            ctl,
            driver: Some(driver),
        }
    }

    /// A cloneable connection for submitter threads.
    pub fn client(&self) -> ServerClient {
        ServerClient {
            ctl: self.ctl.clone(),
        }
    }

    /// Opens a session directly (see [`ServerClient::open_session`]).
    pub fn open_session(&self, spec: ClientSpec) -> SessionHandle {
        self.client().open_session(spec)
    }

    /// Stops the server after draining every in-flight request and
    /// returns the final accounting.
    ///
    /// # Panics
    ///
    /// Panics if the driver thread panicked.
    pub fn shutdown(mut self) -> ServerReport {
        let _ = self.ctl.send(Ctl::Shutdown);
        self.driver
            .take()
            .expect("driver present until shutdown")
            .join()
            .expect("driver thread panicked")
    }
}

impl Drop for RngServer {
    fn drop(&mut self) {
        if let Some(driver) = self.driver.take() {
            let _ = self.ctl.send(Ctl::Shutdown);
            let _ = driver.join();
        }
    }
}

/// Driver-side session state.
struct Sess {
    tx: Sender<ServedRequest>,
    /// Cycle the session last became free: its open cycle, then the
    /// completion cycle of each served request.
    release: u64,
    /// Requests injected into the simulation and not yet completed.
    in_flight: usize,
    /// Requests scheduled in the arrival heap but not yet injected.
    scheduled: usize,
    /// Submits queued behind earlier ones (virtual pacing keeps one
    /// request committed per interactive session; the rest chain off its
    /// completion in FIFO order, so host message timing cannot reorder
    /// or re-time them).
    pending: VecDeque<(usize, u64)>,
    /// Virtual pacing: the driver must hear from this session (submit or
    /// close) before time may advance.
    awaiting: bool,
    interactive: bool,
    closed: bool,
}

impl Sess {
    /// Whether the session already has a committed request (scheduled or
    /// in flight) that later submits must chain behind.
    fn busy(&self) -> bool {
        self.in_flight > 0 || self.scheduled > 0 || !self.pending.is_empty()
    }
}

/// Snapshot-emission state of an observed server.
struct Observer {
    tx: Sender<Snapshot>,
    every: Duration,
    last: Instant,
}

impl Observer {
    fn new(tx: Sender<Snapshot>, every: Duration) -> Self {
        Observer {
            tx,
            every,
            // Emit the first snapshot one interval in, not immediately.
            last: Instant::now(),
        }
    }
}

/// The driver loop: sole owner of the simulated system.
struct Driver {
    sys: System,
    ctl: Receiver<Ctl>,
    pacing: Pacing,
    observer: Option<Observer>,
    /// Driver-opened sessions, indexed by `session_id - id_base` (a
    /// system built with configured service clients hands out ids
    /// starting past them).
    sessions: Vec<Sess>,
    /// Service client id of the first driver-opened session.
    id_base: Option<usize>,
    /// Scheduled arrivals: `(cycle, session, bytes)` min-heap. The
    /// session-id tiebreak makes same-cycle injection order independent
    /// of host message order.
    schedule: BinaryHeap<Reverse<(u64, usize, usize)>>,
    /// `(session, seq)` → arrival cycle of every in-flight request.
    inflight: HashMap<(usize, u64), u64>,
    shutdown: bool,
}

impl Driver {
    fn new(sys: System, ctl: Receiver<Ctl>, pacing: Pacing, observer: Option<Observer>) -> Self {
        Driver {
            sys,
            ctl,
            pacing,
            observer,
            sessions: Vec::new(),
            id_base: None,
            schedule: BinaryHeap::new(),
            inflight: HashMap::new(),
            shutdown: false,
        }
    }

    fn virtual_pacing(&self) -> bool {
        self.pacing == Pacing::Virtual
    }

    /// Driver slot of a session id (ids from handles are service client
    /// indices, offset by any clients configured at construction).
    fn slot(&self, session: usize) -> usize {
        let base = self.id_base.expect("no session opened yet");
        debug_assert!(session >= base, "message for a non-driver session");
        session - base
    }

    fn handle(&mut self, msg: Ctl) {
        match msg {
            Ctl::Open {
                spec,
                completions,
                reply,
            } => {
                let interactive = matches!(spec.arrival, ArrivalProcess::Manual);
                let id = self.sys.open_session(spec);
                let base = *self.id_base.get_or_insert(id);
                debug_assert_eq!(id, base + self.sessions.len(), "driver-contiguous ids");
                self.sessions.push(Sess {
                    tx: completions,
                    release: self.sys.cpu_cycles(),
                    in_flight: 0,
                    scheduled: 0,
                    pending: VecDeque::new(),
                    awaiting: interactive && self.virtual_pacing(),
                    interactive,
                    closed: false,
                });
                let _ = reply.send(id);
            }
            Ctl::Submit {
                session,
                bytes,
                delay,
            } => {
                let now = self.sys.cpu_cycles();
                let virtual_pacing = self.virtual_pacing();
                let slot = self.slot(session);
                let sess = &mut self.sessions[slot];
                assert!(!sess.closed, "submit on a closed session");
                sess.awaiting = false;
                // Virtual pacing: a session with any committed request
                // chains later submits behind it in FIFO order — whether
                // the driver has drained one or two control messages when
                // a pipelined pair arrives must not change any arrival
                // cycle.
                if virtual_pacing && sess.busy() {
                    sess.pending.push_back((bytes, delay));
                } else {
                    let arrival = (sess.release + delay).max(now);
                    sess.scheduled += 1;
                    self.schedule.push(Reverse((arrival, session, bytes)));
                }
            }
            Ctl::Close { session } => self.close_session(session),
            Ctl::Shutdown => self.shutdown = true,
        }
    }

    /// Closes a session: discards its queued and scheduled-but-not-yet
    /// injected submits, stops the service-side client (in-flight
    /// requests drain normally; their completions are discarded if the
    /// handle is gone), and never again gates virtual time on it.
    fn close_session(&mut self, session: usize) {
        let slot = self.slot(session);
        let sess = &mut self.sessions[slot];
        if sess.closed {
            return;
        }
        sess.closed = true;
        sess.awaiting = false;
        sess.pending.clear();
        if sess.scheduled > 0 {
            sess.scheduled = 0;
            let entries = std::mem::take(&mut self.schedule).into_vec();
            self.schedule = entries
                .into_iter()
                .filter(|Reverse((_, s, _))| *s != session)
                .collect();
        }
        self.sys.close_session(session);
    }

    /// Injects every scheduled arrival due at the current cycle.
    fn inject_due(&mut self) {
        let now = self.sys.cpu_cycles();
        while let Some(&Reverse((cycle, session, bytes))) = self.schedule.peek() {
            if cycle > now {
                break;
            }
            self.schedule.pop();
            let seq = self.sys.service_submit(session, bytes);
            self.inflight.insert((session, seq), now);
            let slot = self.slot(session);
            let sess = &mut self.sessions[slot];
            sess.scheduled -= 1;
            sess.in_flight += 1;
        }
    }

    /// Drains every pending completion to its session channel, chaining
    /// queued submits. A send failure means the handle was dropped
    /// without closing; treating the session as closed right here is
    /// what keeps the virtual-time barrier from waiting forever on a
    /// submitter that no longer exists.
    fn deliver(&mut self) {
        while let Some((session, seq, served)) = self.sys.take_service_completion() {
            let arrival = self
                .inflight
                .remove(&(session, seq))
                .expect("every in-flight request is tracked");
            let done_at = arrival + served.latency_cycles;
            let virtual_pacing = self.virtual_pacing();
            let now = self.sys.cpu_cycles();
            let slot = self.slot(session);
            let sess = &mut self.sessions[slot];
            sess.in_flight -= 1;
            sess.release = done_at;
            let receiver_alive = sess.tx.send(served).is_ok();
            if !receiver_alive {
                self.close_session(session);
                continue;
            }
            if let Some((bytes, delay)) = sess.pending.pop_front() {
                let arrival = (sess.release + delay).max(now);
                sess.scheduled += 1;
                self.schedule.push(Reverse((arrival, session, bytes)));
            } else if sess.interactive && !sess.closed {
                sess.awaiting = virtual_pacing;
            }
        }
    }

    /// Builds the current in-progress snapshot.
    fn snapshot(&self) -> Snapshot {
        let svc = self.sys.service();
        let stats = svc.map(|s| s.stats());
        let tenants = stats.map_or(0, |s| s.latency_by_client.len());
        let pct = |q: f64| -> Vec<Option<u64>> {
            stats.map_or_else(Vec::new, |s| {
                (0..tenants).map(|i| s.client_latency_percentile(i, q)).collect()
            })
        };
        Snapshot {
            cpu_cycles: self.sys.cpu_cycles(),
            requests_offered: stats.map_or(0, |s| s.requests_offered),
            requests_completed: stats.map_or(0, |s| s.requests_completed),
            in_flight: svc.map_or(0, |s| s.in_flight()),
            rng_queue_len: self.sys.mem().rng_queue_len(),
            buffer_words: self.sys.mem().buffer().available_words(),
            tenant_p50: pct(0.50),
            tenant_p99: pct(0.99),
        }
    }

    /// Emits a snapshot if the observation interval elapsed (`force`
    /// skips the interval check — the driver's parting snapshot). A
    /// dropped receiver ends the stream.
    fn observe(&mut self, force: bool) {
        let Some(obs) = &mut self.observer else {
            return;
        };
        if !force && obs.last.elapsed() < obs.every {
            return;
        }
        obs.last = Instant::now();
        let snap = self.snapshot();
        if self
            .observer
            .as_ref()
            .expect("checked above")
            .tx
            .send(snap)
            .is_err()
        {
            self.observer = None;
        }
    }

    fn run(mut self) -> ServerReport {
        match self.pacing {
            Pacing::Virtual => self.run_virtual(),
            Pacing::WallClock { cycles_per_ms } => self.run_wallclock(cycles_per_ms),
        }
        self.observe(true);
        let stats = self
            .sys
            .service()
            .map(|s| s.stats().clone())
            .unwrap_or_default();
        let captured = self
            .sys
            .service()
            .map(|s| s.captured_words().to_vec())
            .unwrap_or_default();
        let arrival_logs = self.sys.service().map_or_else(Vec::new, |s| {
            (0..s.clients()).map(|i| s.arrival_log(i).to_vec()).collect()
        });
        ServerReport {
            stats,
            captured,
            arrival_logs,
            cpu_cycles: self.sys.cpu_cycles(),
            sessions: self.sessions.len(),
        }
    }

    /// One blocking control receive; returns false when the channel is
    /// disconnected (treated as shutdown).
    fn recv_blocking(&mut self) -> bool {
        match self.ctl.recv() {
            Ok(msg) => {
                self.handle(msg);
                true
            }
            Err(_) => {
                self.shutdown = true;
                false
            }
        }
    }

    fn drain_ctl(&mut self) {
        loop {
            match self.ctl.try_recv() {
                Ok(msg) => self.handle(msg),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.shutdown = true;
                    break;
                }
            }
        }
    }

    fn run_virtual(&mut self) {
        loop {
            self.drain_ctl();
            let drained = self.schedule.is_empty() && self.inflight.is_empty();
            if self.shutdown && drained {
                break;
            }
            // Time may not advance while an interactive session owes the
            // driver its next decision — that barrier is what makes the
            // interleaving independent of host thread scheduling.
            if !self.shutdown && self.sessions.iter().any(|s| s.awaiting) {
                self.recv_blocking();
                continue;
            }
            if drained {
                if self.shutdown {
                    break;
                }
                self.recv_blocking();
                continue;
            }
            if self.sys.service_completions_pending() > 0 {
                self.deliver();
                continue;
            }
            if let Some(&Reverse((cycle, _, _))) = self.schedule.peek() {
                let now = self.sys.cpu_cycles();
                debug_assert!(cycle >= now, "arrivals are never scheduled in the past");
                if cycle > now {
                    self.sys
                        .advance_until(cycle - now, |s| s.service_completions_pending() > 0);
                }
                if self.sys.service_completions_pending() == 0 {
                    self.inject_due();
                    continue;
                }
            } else {
                let before = self.sys.cpu_cycles();
                self.sys
                    .advance_until(DRIVE_SLICE, |s| s.service_completions_pending() > 0);
                assert!(
                    self.sys.service_completions_pending() > 0
                        || self.sys.cpu_cycles() > before,
                    "driver stuck: in-flight requests but no progress"
                );
            }
            self.deliver();
        }
    }

    fn run_wallclock(&mut self, cycles_per_ms: u64) {
        let start = Instant::now();
        loop {
            self.drain_ctl();
            self.observe(false);
            let drained = self.schedule.is_empty() && self.inflight.is_empty();
            if self.shutdown {
                if drained {
                    break;
                }
                // Drain outstanding work at full simulation speed.
                self.catch_up(u64::MAX);
                continue;
            }
            let target = start.elapsed().as_micros() as u64 * cycles_per_ms / 1000;
            let now = self.sys.cpu_cycles();
            if target <= now {
                if drained {
                    match self.ctl.recv_timeout(Duration::from_millis(1)) {
                        Ok(msg) => self.handle(msg),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => self.shutdown = true,
                    }
                } else {
                    // Simulation ahead of the host clock: let it catch up.
                    std::thread::sleep(Duration::from_micros(100));
                }
                continue;
            }
            self.catch_up(target);
        }
    }

    /// Advances the simulation toward `target`, stopping at scheduled
    /// arrivals and completions on the way.
    fn catch_up(&mut self, target: u64) {
        let now = self.sys.cpu_cycles();
        let bound = match self.schedule.peek() {
            Some(&Reverse((cycle, _, _))) if cycle < target => cycle.max(now),
            _ => target,
        };
        if bound > now {
            let span = (bound - now).min(DRIVE_SLICE);
            self.sys
                .advance_until(span, |s| s.service_completions_pending() > 0);
        }
        self.inject_due();
        self.deliver();
    }
}
