//! Host-concurrent RNG server front-end over the cycle-accurate
//! DR-STRaNGe service core.
//!
//! The synchronous service layer (`strange_core::service`) simulates
//! clients *inside* the simulation loop; this crate turns the simulated
//! system into a **server**: many real OS threads open sessions and
//! submit `getrandom(bytes)` requests against one shared [`System`],
//! while a single *driver* thread owns the simulation, advances virtual
//! time in [`System::advance_until`] spans, injects arrivals at their
//! exact cycles, and drains completions back to the blocked or polling
//! submitters over per-session channels.
//!
//! # Threading model
//!
//! ```text
//!  submitter threads                    driver thread
//!  ┌──────────────┐  Ctl::Submit   ┌──────────────────────┐
//!  │SessionHandle │ ─────────────▶ │  schedule (min-heap)  │
//!  │  .getrandom  │                │  System::advance_until│
//!  │  .recv ◀──────────────────────│  take_service_        │
//!  └──────────────┘  ServedRequest │     completion()      │
//!        × N          per-session  └──────────────────────┘
//!                     channel
//! ```
//!
//! The driver is the only owner of the [`System`]; submitters never touch
//! simulation state, so no lock guards the hot loop.
//!
//! # Pacing and the determinism contract
//!
//! * [`Pacing::Virtual`] — virtual time is **data-driven**: it advances
//!   only to the next scheduled arrival or pending completion, and never
//!   while an open interactive session owes the driver its next decision
//!   (submit or close). A request's arrival cycle is
//!   `max(previous completion cycle + delay, now)` — host scheduling
//!   cannot perturb it — so a fixed submission schedule (sessions opened
//!   in a fixed order, each running a seeded request sequence) produces
//!   **bit-for-bit** the results of the equivalent synchronous
//!   `ServiceConfig` run, no matter how many OS threads submit or how
//!   they interleave (asserted in `tests/facade.rs`). Because a
//!   completion is observed one cycle after it lands, a post-completion
//!   delay of 0 behaves as 1; the equivalent synchronous closed loop is
//!   one with `think >= 1`.
//! * [`Pacing::WallClock`] — virtual time is pegged to the host clock at
//!   a configurable rate for interactive load tests; arrivals are
//!   stamped when the driver receives them, so results are *not*
//!   reproducible across runs.
//!
//! Sessions carry a [`strange_core::QosClass`]; the Section 5.2
//! arbitration and the service issue path see the tenant priority, so
//! high-QoS sessions observe lower tail latency under contention.
//!
//! Autonomous sessions (non-manual [`ClientSpec`]s — Poisson, bursty,
//! trace replay) may also be opened as *background load generators*:
//! they run inside the simulation without per-request channel traffic.
//! Under [`Pacing::Virtual`] they do not gate time — they generate load
//! only while interactive traffic (or wall-clock pacing) advances it.
//!
//! # Overload protection
//!
//! The [`admission`] layer closes the loop against flash crowds: an
//! [`AdmissionConfig`] gates every arrival at its virtual cycle — token
//! buckets per tenant, defer/shed watermarks over the RNG queue depth
//! and buffer occupancy — so a session observes
//! [`SubmitOutcome::Shed`] / [`SubmitOutcome::TimedOut`] instead of
//! unbounded queueing. Requests may carry deadlines
//! ([`SessionHandle::submit_with_deadline`]), open-loop bursts offer
//! load that does not slow down with the server
//! ([`SessionHandle::submit_burst`]), and [`Backoff`] gives clients
//! seeded-jitter retry. Decisions are pure functions of simulated state,
//! so the Virtual-pacing determinism contract carries over unchanged.
//!
//! Two observability hooks close the load-testing loop:
//! [`RngServer::start_observed`] streams periodic [`Snapshot`]s
//! (per-tenant latency percentiles, RNG queue depth, buffer occupancy)
//! from the driver during wall-clock runs, and — when the system was
//! built with `ServiceConfig::record_arrivals` — the final
//! [`ServerReport::arrival_logs`] carry every session's arrival trace,
//! so a wall-clock load test can be re-run deterministically through
//! `ArrivalProcess::TraceReplay`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod fleet;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use strange_core::{ArrivalProcess, ClientSpec, ServedRequest, ServiceStats, System, SystemStats};
use strange_metrics::percentile_sorted;

use admission::TokenBucket;
pub use admission::{
    AdmissionConfig, AdmissionStats, Backoff, RetryAfter, ShedReason, SubmitOutcome,
};

/// CPU-cycle budget per driver advance while waiting on a completion;
/// generously above any realistic request latency, so exhausting it
/// without progress indicates an internal bug.
const DRIVE_SLICE: u64 = 50_000_000;

/// How the driver maps virtual (simulated) time onto host time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Deterministic virtual time: advance only as far as the submitted
    /// work requires (see the crate docs for the determinism contract).
    Virtual,
    /// Wall-clock-paced load testing: virtual time tracks the host clock
    /// at `cycles_per_ms` simulated CPU cycles per host millisecond
    /// (4 000 000 ≈ real time for the paper's 4 GHz clock).
    WallClock {
        /// Simulated CPU cycles per host millisecond.
        cycles_per_ms: u64,
    },
}

/// Control messages from session handles to the driver.
enum Ctl {
    Open {
        spec: ClientSpec,
        completions: Sender<SubmitOutcome>,
        reply: Sender<usize>,
    },
    Submit {
        session: usize,
        bytes: usize,
        delay: u64,
        /// Cycles from scheduled arrival to completion before the
        /// request times out (`u64::MAX` = none).
        deadline: u64,
    },
    /// Open-loop burst: `count` arrivals at a fixed `gap`, anchored at
    /// the session's release (or, while the session is busy, its latest
    /// scheduled arrival) — offered load that does not slow down with
    /// the server.
    SubmitBurst {
        session: usize,
        bytes: usize,
        start_delay: u64,
        gap: u64,
        count: usize,
        deadline: u64,
    },
    /// Pipelined open-loop submit: `count` arrivals chained off the
    /// session's previous *arrival* (`arrival = prev arrival + gap`),
    /// independent of completions. Marks the session pipelined: every
    /// delivery then owes the driver one client reaction (another
    /// chained submit, an ack, or a close) before virtual time may
    /// advance, so each chained arrival is computed at a deterministic
    /// simulated cycle.
    SubmitChained {
        session: usize,
        bytes: usize,
        gap: u64,
        count: usize,
        deadline: u64,
    },
    /// Releases a pipelined session's per-delivery barrier without
    /// extending the pipeline (the client consumed a completion and
    /// declines to chain another request).
    Ack {
        session: usize,
    },
    Close {
        session: usize,
    },
    Shutdown,
}

/// One scheduled arrival: `(cycle, session, bytes, first_cycle,
/// deadline_at, defers)`. Ordering (the min-heap key) is dominated by
/// `(cycle, session, bytes)` — the session tiebreak keeps same-cycle
/// injection order independent of host message order; the trailing
/// fields only break exact duplicates and are themselves deterministic.
type SchedEntry = (u64, usize, usize, u64, u64, u32);

/// Final accounting of a server run, returned by [`RngServer::shutdown`].
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// The service layer's aggregate statistics (per-request latency log,
    /// per-session latency split, fast/slow path counts).
    pub stats: ServiceStats,
    /// Served words in completion order (only populated when the system
    /// was configured with `capture_values`).
    pub captured: Vec<u64>,
    /// Per-session arrival traces: the absolute CPU cycle of every
    /// request each session (client index) injected, in arrival order.
    /// Populated when the system was configured with
    /// `ServiceConfig::record_arrivals`; the `strange-workloads`
    /// arrival-trace writer (`emit_arrival_trace`) turns each entry into
    /// the on-disk format, and replaying them through
    /// `ArrivalProcess::TraceReplay` reproduces a virtual-paced run bit
    /// for bit (and re-runs a wall-clock load test deterministically).
    pub arrival_logs: Vec<Vec<u64>>,
    /// Total simulated CPU cycles.
    pub cpu_cycles: u64,
    /// Sessions opened over the server's lifetime.
    pub sessions: usize,
    /// Admission-control accounting (all zeros when admission was off).
    pub admission: AdmissionStats,
    /// The engine's final counters (buffer serve rate, fault and
    /// entropy-health accounting) — the server-side view of the
    /// watchdog's quarantines, probe rounds, and re-admissions.
    pub system: SystemStats,
}

/// A periodic progress snapshot emitted by the driver thread of an
/// observed wall-clock server ([`RngServer::start_observed`]): the
/// in-progress view a live load-test dashboard consumes instead of
/// waiting for the final [`ServerReport`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Simulated CPU cycles at the snapshot.
    pub cpu_cycles: u64,
    /// Requests offered so far (all sessions).
    pub requests_offered: u64,
    /// Requests fully served so far.
    pub requests_completed: u64,
    /// Bytes delivered to clients so far (requested bytes of completed
    /// calls) — the numerator of a served-throughput readout, and what
    /// fleet aggregation weighs shards by.
    pub bytes_served: u64,
    /// Requests currently in flight inside the simulation.
    pub in_flight: usize,
    /// Current depth of the engine's global RNG request queue.
    pub rng_queue_len: usize,
    /// 64-bit words currently available in the random number buffer.
    pub buffer_words: usize,
    /// In-progress per-tenant p50 latency (CPU cycles; `None` before a
    /// tenant's first completion). Indexed by service client — session
    /// ids land at their client index, i.e. offset by any service
    /// clients configured at `System` construction.
    pub tenant_p50: Vec<Option<u64>>,
    /// In-progress per-tenant p99 latency (same indexing as
    /// [`Snapshot::tenant_p50`]).
    pub tenant_p99: Vec<Option<u64>>,
    /// TRNG channels currently excluded by the entropy-health watchdog
    /// (in `Quarantined` or `Probation` state). Zero when the watchdog
    /// is disabled.
    pub quarantined_channels: usize,
    /// Entropy-health quality windows tested so far (live + probe).
    pub health_windows_tested: u64,
    /// Watchdog transitions into quarantine so far.
    pub health_quarantines: u64,
    /// Probe rounds run on excluded channels so far.
    pub health_probe_rounds: u64,
    /// Channels re-admitted after a probation pass streak so far.
    pub health_readmissions: u64,
    /// Words drawn by probe rounds and discarded after testing.
    pub health_tainted_discarded: u64,
}

/// A cloneable connection to a running [`RngServer`]: hand one to each
/// submitter thread so it can open its own sessions.
#[derive(Clone)]
pub struct ServerClient {
    ctl: Sender<Ctl>,
}

impl ServerClient {
    /// Opens a session and returns its handle. Interactive sessions use
    /// a manual [`ClientSpec`] (e.g. `ClientSpec::manual(bytes)`, with a
    /// QoS class via [`ClientSpec::with_qos`]); non-manual specs become
    /// autonomous background load generators whose handle never receives
    /// completions.
    ///
    /// # Panics
    ///
    /// Panics if the server has shut down, or if the spec is invalid
    /// ([`ClientSpec::validate`] — checked here so the error surfaces in
    /// the calling thread, not the driver).
    pub fn open_session(&self, spec: ClientSpec) -> SessionHandle {
        if let Err(e) = spec.validate() {
            panic!("open_session: invalid session spec: {e}");
        }
        let (completions, rx) = channel();
        let (reply, reply_rx) = channel();
        self.ctl
            .send(Ctl::Open {
                spec,
                completions,
                reply,
            })
            .expect("server is running");
        let id = reply_rx.recv().expect("server is running");
        SessionHandle {
            id,
            ctl: self.ctl.clone(),
            rx,
            outstanding: 0,
            first: true,
        }
    }
}

/// One open session: the submitting thread's endpoint.
///
/// Requests submitted through the handle are served in order; results
/// arrive on the session's private channel via [`SessionHandle::recv`]
/// (blocking) or [`SessionHandle::try_recv`] (polling).
pub struct SessionHandle {
    id: usize,
    ctl: Sender<Ctl>,
    rx: Receiver<SubmitOutcome>,
    outstanding: usize,
    first: bool,
}

impl SessionHandle {
    /// The session id (also its client index in
    /// [`ServiceStats::latency_by_client`]).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Requests currently submitted but not yet received.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Submits a `getrandom(bytes)` request without blocking. Under
    /// [`Pacing::Virtual`] the request arrives `delay` cycles after the
    /// session's previous completion (its open cycle for the first
    /// request); under [`Pacing::WallClock`] `delay` is a minimum gap and
    /// the arrival is otherwise stamped on receipt.
    pub fn submit_after(&mut self, bytes: usize, delay: u64) {
        self.submit_with_deadline(bytes, delay, u64::MAX);
    }

    /// Like [`SessionHandle::submit_after`], with a completion deadline:
    /// if more than `deadline` cycles elapse between the request's first
    /// scheduled arrival and its completion — because admission deferrals
    /// pushed it back, or because service itself was slow — the outcome
    /// is [`SubmitOutcome::TimedOut`] instead of `Served`.
    pub fn submit_with_deadline(&mut self, bytes: usize, delay: u64, deadline: u64) {
        assert!(bytes > 0, "getrandom of zero bytes");
        self.ctl
            .send(Ctl::Submit {
                session: self.id,
                bytes,
                delay,
                deadline,
            })
            .expect("server is running");
        self.outstanding += 1;
    }

    /// Submits `count` open-loop arrivals of `bytes` each, the first
    /// `start_delay` cycles after the session's release and the rest at
    /// a fixed `gap` — offered load whose arrival times do *not* stretch
    /// when the server slows down (the flash-crowd shape; contrast the
    /// closed-loop [`SessionHandle::submit_after`], which chains off
    /// completions). Outcomes arrive in arrival order via
    /// [`SessionHandle::recv_outcome`].
    ///
    /// Under [`Pacing::Virtual`], back-to-back bursts stay deterministic:
    /// a burst submitted while earlier requests are outstanding anchors
    /// at the session's latest scheduled arrival instead of "now".
    pub fn submit_burst(
        &mut self,
        bytes: usize,
        start_delay: u64,
        gap: u64,
        count: usize,
        deadline: u64,
    ) {
        assert!(bytes > 0, "getrandom of zero bytes");
        assert!(count > 0, "empty burst");
        self.first = false;
        self.ctl
            .send(Ctl::SubmitBurst {
                session: self.id,
                bytes,
                start_delay,
                gap,
                count,
                deadline,
            })
            .expect("server is running");
        self.outstanding += count;
    }

    /// Submits `count` pipelined open-loop arrivals of `bytes` each,
    /// chained off the session's previous *arrival*: request *i* arrives
    /// `gap` cycles after request *i−1*'s arrival (the session's open
    /// cycle before any), regardless of completions — so a k-deep
    /// pipeline keeps k requests in flight without the closed-loop
    /// serialization of [`SessionHandle::submit_after`].
    ///
    /// The first call (typically with `count = k`, the pipeline fill) is
    /// one atomic control message, so the whole fill anchors off one
    /// deterministic state. From then on the session is **pipelined**:
    /// under [`Pacing::Virtual`] every received outcome must be answered
    /// with exactly one `submit_pipelined`, [`SessionHandle::ack`], or
    /// [`SessionHandle::close`] — virtual time halts until the driver
    /// hears the decision, which is what keeps each chained arrival
    /// independent of host scheduling. Mixing with `submit_after` /
    /// `submit_burst` on the same session panics in the driver.
    pub fn submit_pipelined(&mut self, bytes: usize, gap: u64, count: usize, deadline: u64) {
        assert!(bytes > 0, "getrandom of zero bytes");
        assert!(count > 0, "empty pipeline");
        self.first = false;
        self.ctl
            .send(Ctl::SubmitChained {
                session: self.id,
                bytes,
                gap,
                count,
                deadline,
            })
            .expect("server is running");
        self.outstanding += count;
    }

    /// Releases a pipelined session's per-delivery barrier without
    /// chaining another request: call once per received outcome when the
    /// pipeline should drain rather than extend.
    pub fn ack(&mut self) {
        self.ctl
            .send(Ctl::Ack { session: self.id })
            .expect("server is running");
    }

    /// Blocks until the next completion for this session arrives.
    ///
    /// # Panics
    ///
    /// Panics if the server shut down with the request still in flight,
    /// when nothing is outstanding, or if the outcome was a shed or
    /// timeout (requests submitted under admission control or with
    /// deadlines must be received via [`SessionHandle::recv_outcome`]).
    pub fn recv(&mut self) -> ServedRequest {
        match self.recv_outcome() {
            SubmitOutcome::Served(served) => served,
            other => panic!("non-served outcome {other:?}: use recv_outcome"),
        }
    }

    /// Blocks until the next outcome for this session arrives: served,
    /// shed by admission control, or timed out.
    ///
    /// # Panics
    ///
    /// Panics if the server shut down with the request still in flight,
    /// or when nothing is outstanding.
    pub fn recv_outcome(&mut self) -> SubmitOutcome {
        assert!(self.outstanding > 0, "recv with no outstanding request");
        let outcome = self.rx.recv().expect("server dropped the session");
        self.outstanding -= 1;
        outcome
    }

    /// Returns the next completion if one is already available.
    ///
    /// # Panics
    ///
    /// Panics if the server shut down with requests still in flight
    /// (mirrors [`SessionHandle::recv`] — a polling submitter must not
    /// spin forever on a dead driver), or on a non-served outcome.
    pub fn try_recv(&mut self) -> Option<ServedRequest> {
        self.try_recv_outcome().map(|o| match o {
            SubmitOutcome::Served(served) => served,
            other => panic!("non-served outcome {other:?}: use try_recv_outcome"),
        })
    }

    /// Returns the next outcome if one is already available.
    ///
    /// # Panics
    ///
    /// Panics if the server shut down with requests still in flight.
    pub fn try_recv_outcome(&mut self) -> Option<SubmitOutcome> {
        match self.rx.try_recv() {
            Ok(outcome) => {
                self.outstanding -= 1;
                Some(outcome)
            }
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => panic!("server dropped the session"),
        }
    }

    /// Fills `out` with true-random bytes, blocking until the simulated
    /// system serves the request, and returns the served result (timing
    /// class + latency). `think` is the virtual-time gap between the
    /// previous completion and this arrival (the closed-loop think time;
    /// the first call arrives at the session's open cycle) — equivalent
    /// to `ArrivalProcess::ClosedLoop { think }` for `think >= 1`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is empty.
    pub fn getrandom(&mut self, out: &mut [u8], think: u64) -> ServedRequest {
        let delay = if self.first { 0 } else { think };
        self.first = false;
        self.submit_after(out.len(), delay);
        let served = self.recv();
        for (chunk, word) in out.chunks_mut(8).zip(&served.words) {
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        served
    }

    /// [`SessionHandle::getrandom`] with overload handling: submits with
    /// `deadline`, and on [`SubmitOutcome::Shed`] resubmits after the
    /// backoff policy's next delay (which honors the server's
    /// [`RetryAfter`] hint) until served, timed out, or the retry budget
    /// is exhausted — the returned outcome is whatever ended the loop.
    /// Fills `out` only when served.
    pub fn getrandom_with_retry(
        &mut self,
        out: &mut [u8],
        think: u64,
        deadline: u64,
        backoff: &mut Backoff,
    ) -> SubmitOutcome {
        let mut delay = if self.first { 0 } else { think };
        self.first = false;
        loop {
            self.submit_with_deadline(out.len(), delay, deadline);
            match self.recv_outcome() {
                SubmitOutcome::Served(served) => {
                    for (chunk, word) in out.chunks_mut(8).zip(&served.words) {
                        chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
                    }
                    backoff.reset();
                    return SubmitOutcome::Served(served);
                }
                SubmitOutcome::Shed(hint) => match backoff.next_delay(&hint) {
                    Some(wait) => delay = wait,
                    None => return SubmitOutcome::Shed(hint),
                },
                timed_out @ SubmitOutcome::TimedOut { .. } => return timed_out,
            }
        }
    }

    /// Closes the session. Submits not yet injected into the simulation
    /// are discarded; requests already in flight drain inside the
    /// simulation and their results are dropped.
    pub fn close(self) {
        let _ = self.ctl.send(Ctl::Close { session: self.id });
    }
}

/// A session handle is itself a [`rand::RngCore`] generator: each
/// `next_u64` is one blocking 8-byte `getrandom()` against the simulated
/// system (think time 0), so any consumer written against the `rand`
/// traits — `Rng::gen`, `gen_range`, `SliceRandom::choose` — can draw
/// its randomness from the cycle-accurate DRAM TRNG unchanged.
///
/// # Panics
///
/// Panics like [`SessionHandle::recv`] on a non-served outcome: drive a
/// server with admission control through
/// [`SessionHandle::getrandom_with_retry`] instead, where shed and
/// timeout outcomes can be surfaced to the caller.
impl rand::RngCore for SessionHandle {
    fn next_u64(&mut self) -> u64 {
        let mut out = [0u8; 8];
        self.getrandom(&mut out, 0);
        u64::from_le_bytes(out)
    }
}

/// The server: owns the driver thread that owns the simulated [`System`].
pub struct RngServer {
    ctl: Sender<Ctl>,
    driver: Option<JoinHandle<ServerReport>>,
}

impl RngServer {
    /// Starts a server over `system`. Build the system with
    /// `SystemConfig::service.sessions = true` (and `capture_values` if
    /// the caller consumes the bytes); trace cores are allowed and run
    /// alongside the served sessions as background memory traffic.
    pub fn start(system: System, pacing: Pacing) -> RngServer {
        RngServer::spawn(system, pacing, None, AdmissionConfig::disabled())
    }

    /// Starts a server with overload protection: every arrival passes
    /// the [`AdmissionConfig`] gate (token buckets, defer/shed
    /// watermarks) before entering the simulation. Sessions should drain
    /// results via [`SessionHandle::recv_outcome`], since requests may
    /// now resolve [`SubmitOutcome::Shed`] or
    /// [`SubmitOutcome::TimedOut`].
    pub fn start_with_admission(
        system: System,
        pacing: Pacing,
        admission: AdmissionConfig,
    ) -> RngServer {
        RngServer::spawn(system, pacing, None, admission)
    }

    /// Starts an *observed* server: the driver thread additionally emits
    /// a [`Snapshot`] on the returned channel roughly every `every` of
    /// host time while the simulation is being paced against the wall
    /// clock, plus one final snapshot as the driver winds down (under
    /// any pacing). Dropping the receiver silently stops the stream.
    /// *Periodic* snapshots only flow under [`Pacing::WallClock`] — a
    /// virtual-paced run is deterministic and fully described by its
    /// final report, so it emits just the parting snapshot.
    pub fn start_observed(
        system: System,
        pacing: Pacing,
        every: Duration,
    ) -> (RngServer, Receiver<Snapshot>) {
        let (tx, rx) = channel();
        let spawned = RngServer::spawn(
            system,
            pacing,
            Some(Observer::new(tx, every)),
            AdmissionConfig::disabled(),
        );
        (spawned, rx)
    }

    fn spawn(
        system: System,
        pacing: Pacing,
        observer: Option<Observer>,
        admission: AdmissionConfig,
    ) -> RngServer {
        let (ctl, ctl_rx) = channel();
        let driver = std::thread::Builder::new()
            .name("strange-server-driver".into())
            .spawn(move || Driver::new(system, ctl_rx, pacing, observer, admission).run())
            .expect("spawn driver thread");
        RngServer {
            ctl,
            driver: Some(driver),
        }
    }

    /// A cloneable connection for submitter threads.
    pub fn client(&self) -> ServerClient {
        ServerClient {
            ctl: self.ctl.clone(),
        }
    }

    /// Opens a session directly (see [`ServerClient::open_session`]).
    pub fn open_session(&self, spec: ClientSpec) -> SessionHandle {
        self.client().open_session(spec)
    }

    /// Stops the server after draining every in-flight request and
    /// returns the final accounting.
    ///
    /// # Panics
    ///
    /// Panics if the driver thread panicked.
    pub fn shutdown(mut self) -> ServerReport {
        let _ = self.ctl.send(Ctl::Shutdown);
        self.driver
            .take()
            .expect("driver present until shutdown")
            .join()
            .expect("driver thread panicked")
    }
}

impl Drop for RngServer {
    fn drop(&mut self) {
        if let Some(driver) = self.driver.take() {
            let _ = self.ctl.send(Ctl::Shutdown);
            let _ = driver.join();
        }
    }
}

/// Driver-side session state.
struct Sess {
    tx: Sender<SubmitOutcome>,
    /// Cycle the session last became free: its open cycle, then the
    /// resolution cycle of each request (completion, shed, or timeout).
    release: u64,
    /// Requests injected into the simulation and not yet completed.
    in_flight: usize,
    /// Requests scheduled in the arrival heap but not yet injected.
    scheduled: usize,
    /// Submits queued behind earlier ones (virtual pacing keeps one
    /// closed-loop request committed per interactive session; the rest
    /// chain off its resolution in FIFO order, so host message timing
    /// cannot reorder or re-time them). `(bytes, delay, deadline)`.
    pending: VecDeque<(usize, u64, u64)>,
    /// Latest scheduled arrival cycle — the deterministic anchor for a
    /// burst submitted while the session is busy.
    last_arrival: u64,
    /// Per-tenant admission token bucket.
    bucket: TokenBucket,
    /// Virtual pacing: the driver must hear from this session (submit or
    /// close) before time may advance.
    awaiting: bool,
    /// The session entered the pipelined (arrival-chained) discipline via
    /// [`Ctl::SubmitChained`]; closed-loop/burst submits now panic.
    pipelined: bool,
    /// Pipelined per-delivery barrier: outcomes delivered to the session
    /// whose client reaction (chained submit, ack, or close) the driver
    /// has not yet heard. A counter, not a flag — one delivery batch can
    /// hand several completions to the same k-deep session. Virtual time
    /// halts while any session owes a reaction.
    owed: u32,
    interactive: bool,
    closed: bool,
}

impl Sess {
    /// Whether the session already has a committed request (scheduled or
    /// in flight) that later submits must chain behind.
    fn busy(&self) -> bool {
        self.in_flight > 0 || self.scheduled > 0 || !self.pending.is_empty()
    }
}

/// Reusable scratch for the observed-stream driver's per-tenant
/// percentile extraction: one sort buffer serves every tenant and both
/// quantiles of a [`Snapshot`], so steady-state snapshots do no
/// per-snapshot percentile allocation (the old path cloned and sorted
/// each tenant's latency log once *per quantile*). The counters make
/// the claim testable, PR 8-style: `grows` must go flat once the buffer
/// has seen the largest log.
#[derive(Debug, Default)]
pub struct PercentileScratch {
    sorted: Vec<u64>,
    sorts: u64,
    grows: u64,
}

impl PercentileScratch {
    /// Exact nearest-rank `(p50, p99)` of `log` — same semantics as
    /// [`ServiceStats::client_latency_percentile`] at 0.50 / 0.99, but
    /// one copy into the reused buffer and one sort for both quantiles.
    /// `(None, None)` on an empty log.
    pub fn p50_p99(&mut self, log: &[u64]) -> (Option<u64>, Option<u64>) {
        if log.len() > self.sorted.capacity() {
            self.grows += 1;
        }
        self.sorted.clear();
        self.sorted.extend_from_slice(log);
        self.sorted.sort_unstable();
        self.sorts += 1;
        (
            percentile_sorted(&self.sorted, 0.50),
            percentile_sorted(&self.sorted, 0.99),
        )
    }

    /// Sorts performed (exactly one per [`PercentileScratch::p50_p99`]
    /// call — the old path did two per tenant per snapshot).
    pub fn sorts(&self) -> u64 {
        self.sorts
    }

    /// Times the incoming log exceeded the reused buffer's capacity and
    /// forced a reallocation. Flat at steady state.
    pub fn grows(&self) -> u64 {
        self.grows
    }
}

/// Snapshot-emission state of an observed server.
struct Observer {
    tx: Sender<Snapshot>,
    every: Duration,
    last: Instant,
}

impl Observer {
    fn new(tx: Sender<Snapshot>, every: Duration) -> Self {
        Observer {
            tx,
            every,
            // Emit the first snapshot one interval in, not immediately.
            last: Instant::now(),
        }
    }
}

/// Arrival bookkeeping of one in-flight (injected) request.
struct Flight {
    /// Injection cycle (arrival inside the simulation).
    arrival: u64,
    /// First scheduled arrival cycle (deadline epoch — deferrals do not
    /// move it).
    first: u64,
    /// Absolute deadline cycle (`u64::MAX` = none).
    deadline_at: u64,
}

/// The driver loop: sole owner of the simulated system.
struct Driver {
    sys: System,
    ctl: Receiver<Ctl>,
    pacing: Pacing,
    observer: Option<Observer>,
    /// Driver-opened sessions, indexed by `session_id - id_base` (a
    /// system built with configured service clients hands out ids
    /// starting past them).
    sessions: Vec<Sess>,
    /// Service client id of the first driver-opened session.
    id_base: Option<usize>,
    /// Scheduled arrivals min-heap (see [`SchedEntry`]).
    schedule: BinaryHeap<Reverse<SchedEntry>>,
    /// `(session, seq)` → arrival bookkeeping of every in-flight request.
    inflight: HashMap<(usize, u64), Flight>,
    admission: AdmissionConfig,
    adm_stats: AdmissionStats,
    /// Reused percentile sort buffer for the snapshot hot path.
    scratch: PercentileScratch,
    shutdown: bool,
}

impl Driver {
    fn new(
        sys: System,
        ctl: Receiver<Ctl>,
        pacing: Pacing,
        observer: Option<Observer>,
        admission: AdmissionConfig,
    ) -> Self {
        Driver {
            sys,
            ctl,
            pacing,
            observer,
            sessions: Vec::new(),
            id_base: None,
            schedule: BinaryHeap::new(),
            inflight: HashMap::new(),
            admission,
            adm_stats: AdmissionStats::default(),
            scratch: PercentileScratch::default(),
            shutdown: false,
        }
    }

    fn virtual_pacing(&self) -> bool {
        self.pacing == Pacing::Virtual
    }

    /// Driver slot of a session id (ids from handles are service client
    /// indices, offset by any clients configured at construction).
    fn slot(&self, session: usize) -> usize {
        let base = self.id_base.expect("no session opened yet");
        debug_assert!(session >= base, "message for a non-driver session");
        session - base
    }

    fn handle(&mut self, msg: Ctl) {
        match msg {
            Ctl::Open {
                spec,
                completions,
                reply,
            } => {
                let interactive = matches!(spec.arrival, ArrivalProcess::Manual);
                let id = self.sys.open_session(spec);
                let base = *self.id_base.get_or_insert(id);
                debug_assert_eq!(id, base + self.sessions.len(), "driver-contiguous ids");
                let now = self.sys.cpu_cycles();
                self.sessions.push(Sess {
                    tx: completions,
                    release: now,
                    in_flight: 0,
                    scheduled: 0,
                    pending: VecDeque::new(),
                    last_arrival: now,
                    bucket: TokenBucket::new(now, &self.admission),
                    awaiting: interactive && self.virtual_pacing(),
                    pipelined: false,
                    owed: 0,
                    interactive,
                    closed: false,
                });
                let _ = reply.send(id);
            }
            Ctl::Submit {
                session,
                bytes,
                delay,
                deadline,
            } => {
                let now = self.sys.cpu_cycles();
                let virtual_pacing = self.virtual_pacing();
                let slot = self.slot(session);
                let sess = &mut self.sessions[slot];
                assert!(!sess.closed, "submit on a closed session");
                assert!(!sess.pipelined, "closed-loop submit on a pipelined session");
                sess.awaiting = false;
                // Virtual pacing: a session with any committed request
                // chains later submits behind it in FIFO order — whether
                // the driver has drained one or two control messages when
                // a pipelined pair arrives must not change any arrival
                // cycle.
                if virtual_pacing && sess.busy() {
                    sess.pending.push_back((bytes, delay, deadline));
                } else {
                    let arrival = (sess.release + delay).max(now);
                    self.schedule_arrival(slot, arrival, bytes, deadline);
                }
            }
            Ctl::SubmitBurst {
                session,
                bytes,
                start_delay,
                gap,
                count,
                deadline,
            } => {
                let now = self.sys.cpu_cycles();
                let virtual_pacing = self.virtual_pacing();
                let slot = self.slot(session);
                let sess = &mut self.sessions[slot];
                assert!(!sess.closed, "submit on a closed session");
                assert!(!sess.pipelined, "burst submit on a pipelined session");
                sess.awaiting = false;
                // Anchor the burst deterministically: a free session is
                // behind the virtual-time barrier (now is a pure function
                // of prior simulated work), a busy one anchors at its
                // latest scheduled arrival so host timing can't re-time
                // the burst.
                let first = if virtual_pacing && sess.busy() {
                    sess.last_arrival + start_delay
                } else {
                    (sess.release + start_delay).max(now)
                };
                for i in 0..count as u64 {
                    self.schedule_arrival(slot, first + i * gap, bytes, deadline);
                }
            }
            Ctl::SubmitChained {
                session,
                bytes,
                gap,
                count,
                deadline,
            } => {
                let now = self.sys.cpu_cycles();
                let virtual_pacing = self.virtual_pacing();
                let slot = self.slot(session);
                let sess = &mut self.sessions[slot];
                assert!(!sess.closed, "submit on a closed session");
                assert!(
                    sess.interactive,
                    "pipelined submit on an autonomous session"
                );
                sess.awaiting = false;
                sess.owed = sess.owed.saturating_sub(1);
                sess.pipelined = true;
                // Chain off the previous *arrival* (the open cycle before
                // any): an arithmetic arrival series independent of
                // completions — this is what distinguishes the pipeline
                // from the closed loop. Under virtual pacing the chained
                // cycle is a pure function of prior arrivals, so it may
                // legitimately lie in the simulated past of a backlogged
                // pipeline; injection stamps the scheduled arrival either
                // way. WallClock clamps to now like every other path.
                let mut arrival = sess.last_arrival + gap;
                for _ in 0..count {
                    if !virtual_pacing {
                        arrival = arrival.max(now);
                    }
                    self.schedule_arrival(slot, arrival, bytes, deadline);
                    arrival = self.sessions[slot].last_arrival + gap;
                }
            }
            Ctl::Ack { session } => {
                let slot = self.slot(session);
                let sess = &mut self.sessions[slot];
                sess.awaiting = false;
                sess.owed = sess.owed.saturating_sub(1);
            }
            Ctl::Close { session } => self.close_session(session),
            Ctl::Shutdown => self.shutdown = true,
        }
    }

    /// Commits one arrival at `cycle` for the session in `slot`.
    fn schedule_arrival(&mut self, slot: usize, cycle: u64, bytes: usize, deadline: u64) {
        let sess = &mut self.sessions[slot];
        let session = self.id_base.expect("session open implies base") + slot;
        let deadline_at = cycle.saturating_add(deadline);
        sess.scheduled += 1;
        sess.last_arrival = sess.last_arrival.max(cycle);
        self.schedule
            .push(Reverse((cycle, session, bytes, cycle, deadline_at, 0)));
    }

    /// Closes a session: discards its queued and scheduled-but-not-yet
    /// injected submits, stops the service-side client (in-flight
    /// requests drain normally; their completions are discarded if the
    /// handle is gone), and never again gates virtual time on it.
    fn close_session(&mut self, session: usize) {
        let slot = self.slot(session);
        let sess = &mut self.sessions[slot];
        if sess.closed {
            return;
        }
        sess.closed = true;
        sess.awaiting = false;
        sess.owed = 0;
        sess.pending.clear();
        if sess.scheduled > 0 {
            sess.scheduled = 0;
            let entries = std::mem::take(&mut self.schedule).into_vec();
            self.schedule = entries
                .into_iter()
                .filter(|Reverse((_, s, ..))| *s != session)
                .collect();
        }
        self.sys.close_session(session);
    }

    /// Injects every scheduled arrival due at the current cycle, gating
    /// each through admission control. Decisions read only simulated
    /// state (RNG queue depth, buffer occupancy, virtual-cycle token
    /// buckets), so they are deterministic under Virtual pacing.
    fn inject_due(&mut self) {
        let now = self.sys.cpu_cycles();
        while let Some(&Reverse((cycle, session, bytes, first, deadline_at, defers))) =
            self.schedule.peek()
        {
            if cycle > now {
                break;
            }
            self.schedule.pop();
            let slot = self.slot(session);
            if self.admission.enabled {
                let queue_depth = self.sys.mem().rng_queue_len();
                let buffer_words = self.sys.mem().buffer().available_words();
                // Derate the global watermarks by the quarantined
                // fraction: the watchdog's exclusions shrink generation
                // capacity, so overload sets in at shallower queues and
                // higher buffer levels. Both inputs are simulated state,
                // so the decision stays deterministic.
                let total = self.sys.mem().channels().len();
                let healthy = total.saturating_sub(self.sys.mem().quarantined_channels());
                let cfg = self.admission.derated(healthy, total);
                // Hard watermark: shed outright.
                if queue_depth >= cfg.shed_queue_depth {
                    self.adm_stats.shed_queue_overload += 1;
                    self.resolve_rejected(
                        slot,
                        SubmitOutcome::Shed(RetryAfter {
                            cycles: cfg.defer_cycles.max(1),
                            reason: ShedReason::QueueOverload,
                        }),
                    );
                    continue;
                }
                // Soft watermark (deep queue *and* dry buffer): defer —
                // re-examine a bounded number of cycles later.
                if queue_depth >= cfg.defer_queue_depth && buffer_words <= cfg.buffer_low_words {
                    let retry_at = now + cfg.defer_cycles.max(1);
                    if retry_at > deadline_at {
                        self.adm_stats.timed_out += 1;
                        self.resolve_rejected(
                            slot,
                            SubmitOutcome::TimedOut {
                                waited_cycles: now.saturating_sub(first),
                            },
                        );
                    } else if defers >= cfg.max_defers {
                        self.adm_stats.shed_queue_overload += 1;
                        self.resolve_rejected(
                            slot,
                            SubmitOutcome::Shed(RetryAfter {
                                cycles: cfg.defer_cycles.max(1),
                                reason: ShedReason::QueueOverload,
                            }),
                        );
                    } else {
                        self.adm_stats.deferred += 1;
                        self.schedule.push(Reverse((
                            retry_at,
                            session,
                            bytes,
                            first,
                            deadline_at,
                            defers + 1,
                        )));
                    }
                    continue;
                }
                // Per-tenant rate limit.
                if let Err(until_token) = self.sessions[slot].bucket.try_take(now, &cfg) {
                    self.adm_stats.shed_tenant_throttle += 1;
                    self.resolve_rejected(
                        slot,
                        SubmitOutcome::Shed(RetryAfter {
                            cycles: until_token.max(1),
                            reason: ShedReason::TenantThrottle,
                        }),
                    );
                    continue;
                }
                self.adm_stats.accepted += 1;
            }
            // Stamp the *scheduled* cycle, not "now": a backlogged
            // pipelined session's chained arrivals can be due in the
            // simulated past, and their queueing delay must charge to
            // latency (and fairness aging) from the scheduled arrival.
            // On every other path cycle == now, so this changes nothing.
            let seq = self.sys.service_submit_at(session, bytes, cycle);
            self.inflight.insert(
                (session, seq),
                Flight {
                    arrival: cycle,
                    first,
                    deadline_at,
                },
            );
            let sess = &mut self.sessions[slot];
            sess.scheduled -= 1;
            sess.in_flight += 1;
        }
    }

    /// Resolves a request that never entered the simulation (shed or
    /// pre-injection timeout): delivers the outcome, releases the
    /// session at the current cycle, and chains its next pending submit
    /// — the same continuation a completion runs, so closed-loop tenants
    /// keep flowing through refusals.
    fn resolve_rejected(&mut self, slot: usize, outcome: SubmitOutcome) {
        let now = self.sys.cpu_cycles();
        let virtual_pacing = self.virtual_pacing();
        let session = self.id_base.expect("session open implies base") + slot;
        let sess = &mut self.sessions[slot];
        sess.scheduled -= 1;
        sess.release = now;
        if sess.tx.send(outcome).is_err() {
            self.close_session(session);
            return;
        }
        if sess.pipelined {
            // Pipelined per-delivery barrier: the client owes one
            // reaction (chained submit, ack, or close) per outcome.
            if virtual_pacing {
                sess.owed += 1;
            }
        } else if let Some((bytes, delay, deadline)) = sess.pending.pop_front() {
            let arrival = (sess.release + delay).max(now);
            self.schedule_arrival(slot, arrival, bytes, deadline);
        } else if sess.interactive && !sess.closed && !sess.busy() {
            sess.awaiting = virtual_pacing;
        }
    }

    /// Drains every pending completion to its session channel, chaining
    /// queued submits. A send failure means the handle was dropped
    /// without closing; treating the session as closed right here is
    /// what keeps the virtual-time barrier from waiting forever on a
    /// submitter that no longer exists.
    fn deliver(&mut self) {
        while let Some((session, seq, served)) = self.sys.take_service_completion() {
            let flight = self
                .inflight
                .remove(&(session, seq))
                .expect("every in-flight request is tracked");
            let done_at = flight.arrival + served.latency_cycles;
            let virtual_pacing = self.virtual_pacing();
            let now = self.sys.cpu_cycles();
            let slot = self.slot(session);
            let sess = &mut self.sessions[slot];
            sess.in_flight -= 1;
            sess.release = done_at;
            // The deadline epoch is the *first* scheduled arrival, so
            // admission deferrals eat into the budget too.
            let outcome = if done_at > flight.deadline_at {
                self.adm_stats.timed_out += 1;
                SubmitOutcome::TimedOut {
                    waited_cycles: done_at - flight.first,
                }
            } else {
                SubmitOutcome::Served(served)
            };
            let receiver_alive = sess.tx.send(outcome).is_ok();
            if !receiver_alive {
                self.close_session(session);
                continue;
            }
            if sess.pipelined {
                if virtual_pacing {
                    sess.owed += 1;
                }
            } else if let Some((bytes, delay, deadline)) = sess.pending.pop_front() {
                let arrival = (sess.release + delay).max(now);
                self.schedule_arrival(slot, arrival, bytes, deadline);
            } else if sess.interactive && !sess.closed && !sess.busy() {
                sess.awaiting = virtual_pacing;
            }
        }
    }

    /// Builds the current in-progress snapshot. `&mut self` for the
    /// reused percentile scratch — one sort per tenant serves both
    /// quantiles, no per-snapshot allocation at steady state.
    fn snapshot(&mut self) -> Snapshot {
        let sys = &self.sys;
        let scratch = &mut self.scratch;
        let svc = sys.service();
        let stats = svc.map(|s| s.stats());
        let tenants = stats.map_or(0, |s| s.latency_by_client.len());
        let mut tenant_p50 = Vec::with_capacity(tenants);
        let mut tenant_p99 = Vec::with_capacity(tenants);
        if let Some(s) = stats {
            for log in &s.latency_by_client {
                let (p50, p99) = scratch.p50_p99(log);
                tenant_p50.push(p50);
                tenant_p99.push(p99);
            }
        }
        Snapshot {
            cpu_cycles: sys.cpu_cycles(),
            requests_offered: stats.map_or(0, |s| s.requests_offered),
            requests_completed: stats.map_or(0, |s| s.requests_completed),
            bytes_served: stats.map_or(0, |s| s.bytes_served),
            in_flight: svc.map_or(0, |s| s.in_flight()),
            rng_queue_len: sys.mem().rng_queue_len(),
            buffer_words: sys.mem().buffer().available_words(),
            tenant_p50,
            tenant_p99,
            quarantined_channels: sys.mem().quarantined_channels(),
            health_windows_tested: sys.mem().stats().windows_tested,
            health_quarantines: sys.mem().stats().quarantines,
            health_probe_rounds: sys.mem().stats().probe_rounds,
            health_readmissions: sys.mem().stats().readmissions,
            health_tainted_discarded: sys.mem().stats().tainted_words_discarded,
        }
    }

    /// Emits a snapshot if the observation interval elapsed (`force`
    /// skips the interval check — the driver's parting snapshot). A
    /// dropped receiver ends the stream.
    fn observe(&mut self, force: bool) {
        let Some(obs) = &mut self.observer else {
            return;
        };
        if !force && obs.last.elapsed() < obs.every {
            return;
        }
        obs.last = Instant::now();
        let snap = self.snapshot();
        if self
            .observer
            .as_ref()
            .expect("checked above")
            .tx
            .send(snap)
            .is_err()
        {
            self.observer = None;
        }
    }

    fn run(mut self) -> ServerReport {
        match self.pacing {
            Pacing::Virtual => self.run_virtual(),
            Pacing::WallClock { cycles_per_ms } => self.run_wallclock(cycles_per_ms),
        }
        self.observe(true);
        let stats = self
            .sys
            .service()
            .map(|s| s.stats().clone())
            .unwrap_or_default();
        let captured = self
            .sys
            .service()
            .map(|s| s.captured_words().to_vec())
            .unwrap_or_default();
        let arrival_logs = self.sys.service().map_or_else(Vec::new, |s| {
            (0..s.clients()).map(|i| s.arrival_log(i).to_vec()).collect()
        });
        ServerReport {
            stats,
            captured,
            arrival_logs,
            cpu_cycles: self.sys.cpu_cycles(),
            sessions: self.sessions.len(),
            admission: self.adm_stats,
            system: self.sys.mem().stats().clone(),
        }
    }

    /// One blocking control receive; returns false when the channel is
    /// disconnected (treated as shutdown).
    fn recv_blocking(&mut self) -> bool {
        match self.ctl.recv() {
            Ok(msg) => {
                self.handle(msg);
                true
            }
            Err(_) => {
                self.shutdown = true;
                false
            }
        }
    }

    fn drain_ctl(&mut self) {
        loop {
            match self.ctl.try_recv() {
                Ok(msg) => self.handle(msg),
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    self.shutdown = true;
                    break;
                }
            }
        }
    }

    fn run_virtual(&mut self) {
        loop {
            self.drain_ctl();
            let drained = self.schedule.is_empty() && self.inflight.is_empty();
            if self.shutdown && drained {
                break;
            }
            // Time may not advance while an interactive session owes the
            // driver its next decision — that barrier is what makes the
            // interleaving independent of host thread scheduling.
            if !self.shutdown && self.sessions.iter().any(|s| s.awaiting || s.owed > 0) {
                self.recv_blocking();
                continue;
            }
            if drained {
                if self.shutdown {
                    break;
                }
                self.recv_blocking();
                continue;
            }
            if self.sys.service_completions_pending() > 0 {
                self.deliver();
                continue;
            }
            if let Some(&Reverse((cycle, ..))) = self.schedule.peek() {
                // A backlogged pipelined session may chain arrivals into
                // the simulated past (`cycle < now`); they inject
                // immediately, stamped with the scheduled cycle.
                let now = self.sys.cpu_cycles();
                if cycle > now {
                    self.sys
                        .advance_until(cycle - now, |s| s.service_completions_pending() > 0);
                }
                if self.sys.service_completions_pending() == 0 {
                    self.inject_due();
                    continue;
                }
            } else {
                let before = self.sys.cpu_cycles();
                self.sys
                    .advance_until(DRIVE_SLICE, |s| s.service_completions_pending() > 0);
                assert!(
                    self.sys.service_completions_pending() > 0
                        || self.sys.cpu_cycles() > before,
                    "driver stuck: in-flight requests but no progress"
                );
            }
            self.deliver();
        }
    }

    fn run_wallclock(&mut self, cycles_per_ms: u64) {
        let start = Instant::now();
        loop {
            self.drain_ctl();
            self.observe(false);
            let drained = self.schedule.is_empty() && self.inflight.is_empty();
            if self.shutdown {
                if drained {
                    break;
                }
                // Drain outstanding work at full simulation speed.
                self.catch_up(u64::MAX);
                continue;
            }
            let target = start.elapsed().as_micros() as u64 * cycles_per_ms / 1000;
            let now = self.sys.cpu_cycles();
            if target <= now {
                if drained {
                    match self.ctl.recv_timeout(Duration::from_millis(1)) {
                        Ok(msg) => self.handle(msg),
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => self.shutdown = true,
                    }
                } else {
                    // Simulation ahead of the host clock: let it catch up.
                    std::thread::sleep(Duration::from_micros(100));
                }
                continue;
            }
            self.catch_up(target);
        }
    }

    /// Advances the simulation toward `target`, stopping at scheduled
    /// arrivals and completions on the way.
    fn catch_up(&mut self, target: u64) {
        let now = self.sys.cpu_cycles();
        let bound = match self.schedule.peek() {
            Some(&Reverse((cycle, ..))) if cycle < target => cycle.max(now),
            _ => target,
        };
        if bound > now {
            let span = (bound - now).min(DRIVE_SLICE);
            self.sys
                .advance_until(span, |s| s.service_completions_pending() > 0);
        }
        self.inject_due();
        self.deliver();
    }
}
