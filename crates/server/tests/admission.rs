//! Overload-protection behavior of the server facade: admission
//! decisions are deterministic and thread-count invariant, deadlines
//! resolve to timeouts, shed tenants can retry with backoff, and
//! sessions that close (or vanish) with deferred/shed requests
//! outstanding drain cleanly instead of freezing the virtual-time
//! barrier.

use std::thread;

use strange_core::{ClientSpec, ServiceConfig, System, SystemConfig};
use strange_server::{
    AdmissionConfig, Backoff, Pacing, RngServer, ServerReport, ShedReason, SubmitOutcome,
};
use strange_trng::DRange;

const TRNG_SEED: u64 = 17;

fn server_system() -> System {
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        capture_values: true,
        sessions: true,
        ..ServiceConfig::default()
    });
    System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED))).expect("valid configuration")
}

/// Watermark-only admission: tenant throttling off, defer at queue
/// depth 4 (the 16-word buffer never disables the check), shed at 24.
/// Deferrals retry after 20k cycles — well inside a congestion episode,
/// so a sustained overload exhausts the 2-defer budget and sheds.
fn watermark_admission() -> AdmissionConfig {
    AdmissionConfig {
        enabled: true,
        bucket_capacity: 0,
        cycles_per_token: 0,
        defer_queue_depth: 4,
        shed_queue_depth: 24,
        buffer_low_words: 16,
        max_defers: 2,
        defer_cycles: 20_000,
    }
}

/// Throttle-only admission: watermarks effectively off.
fn throttle_admission(burst: u32, cycles_per_token: u64) -> AdmissionConfig {
    AdmissionConfig {
        enabled: true,
        bucket_capacity: burst,
        cycles_per_token,
        defer_queue_depth: usize::MAX,
        shed_queue_depth: usize::MAX,
        buffer_low_words: 0,
        max_defers: 0,
        defer_cycles: 1_000,
    }
}

/// Offers a 3-session flash crowd (open-loop bursts far above the
/// generation rate) over `threads` host threads and returns the report
/// plus per-outcome counts observed client-side.
fn flash_crowd(threads: usize) -> (ServerReport, [u64; 3]) {
    const SESSIONS: usize = 3;
    const REQUESTS: usize = 50;
    let server = RngServer::start_with_admission(
        server_system(),
        Pacing::Virtual,
        watermark_admission(),
    );
    let handles: Vec<_> = (0..SESSIONS)
        .map(|_| server.open_session(ClientSpec::manual(32)))
        .collect();
    let mut lanes: Vec<Vec<_>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, h) in handles.into_iter().enumerate() {
        lanes[i % threads].push(h);
    }
    let workers: Vec<_> = lanes
        .into_iter()
        .map(|lane| {
            thread::spawn(move || {
                let mut sessions: Vec<_> = lane
                    .into_iter()
                    .map(|mut h| {
                        // Far beyond saturation: 4 words every 500
                        // cycles per session against ~100k-cycle
                        // generation episodes.
                        h.submit_burst(32, 0, 500, REQUESTS, u64::MAX);
                        (Some(h), 0usize)
                    })
                    .collect();
                let mut counts = [0u64; 3]; // served, shed, timed out
                let mut open = sessions.len();
                while open > 0 {
                    let mut progressed = false;
                    for (handle, done) in &mut sessions {
                        let Some(h) = handle.as_mut() else { continue };
                        while let Some(outcome) = h.try_recv_outcome() {
                            progressed = true;
                            match outcome {
                                SubmitOutcome::Served(_) => counts[0] += 1,
                                SubmitOutcome::Shed(_) => counts[1] += 1,
                                SubmitOutcome::TimedOut { .. } => counts[2] += 1,
                            }
                            *done += 1;
                        }
                        if *done == REQUESTS {
                            handle.take().expect("present").close();
                            open -= 1;
                        }
                    }
                    if !progressed {
                        thread::yield_now();
                    }
                }
                counts
            })
        })
        .collect();
    let mut totals = [0u64; 3];
    for w in workers {
        let c = w.join().expect("worker panicked");
        for (t, v) in totals.iter_mut().zip(c) {
            *t += v;
        }
    }
    (server.shutdown(), totals)
}

#[test]
fn flash_crowd_is_bounded_and_thread_count_invariant() {
    let (one, counts_one) = flash_crowd(1);
    assert!(one.admission.accepted > 0, "some requests must get through");
    assert!(
        one.admission.shed() > 0,
        "a 5-10x overload must shed: {:?}",
        one.admission
    );
    assert!(one.admission.deferred > 0, "soft watermark engages first");
    assert!(one.admission.shed_fraction() < 1.0);
    // Client-observed outcomes match the server's accounting.
    assert_eq!(counts_one[0], one.stats.requests_completed);
    assert_eq!(counts_one[1], one.admission.shed());

    // The admission decisions are functions of simulated state only:
    // spreading the same offered schedule over 3 host threads reproduces
    // them bit for bit.
    let (three, counts_three) = flash_crowd(3);
    assert_eq!(one.admission, three.admission);
    assert_eq!(counts_one, counts_three);
    assert_eq!(one.stats.requests_completed, three.stats.requests_completed);
    assert_eq!(one.stats.latency_log, three.stats.latency_log);
    assert_eq!(one.captured, three.captured);
    assert_eq!(one.cpu_cycles, three.cpu_cycles);
}

#[test]
fn token_bucket_sheds_individually_abusive_tenants() {
    let server = RngServer::start_with_admission(
        server_system(),
        Pacing::Virtual,
        throttle_admission(2, 1_000_000_000),
    );
    let mut h = server.open_session(ClientSpec::manual(8));
    h.submit_burst(8, 0, 100, 5, u64::MAX);
    let mut served = 0;
    let mut shed = 0;
    for _ in 0..5 {
        match h.recv_outcome() {
            SubmitOutcome::Served(_) => served += 1,
            SubmitOutcome::Shed(hint) => {
                assert_eq!(hint.reason, ShedReason::TenantThrottle);
                assert!(hint.cycles > 0, "hint says when the next token mints");
                shed += 1;
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    h.close();
    let report = server.shutdown();
    assert_eq!(served, 2, "burst capacity admits exactly the bucket");
    assert_eq!(shed, 3);
    assert_eq!(report.admission.shed_tenant_throttle, 3);
    assert_eq!(report.admission.shed_queue_overload, 0);
}

#[test]
fn deadlines_resolve_to_timeouts() {
    let server = RngServer::start_with_admission(
        server_system(),
        Pacing::Virtual,
        AdmissionConfig::disabled(),
    );
    let mut h = server.open_session(ClientSpec::manual(8));
    // No real request completes within 1 cycle.
    h.submit_with_deadline(8, 0, 1);
    match h.recv_outcome() {
        SubmitOutcome::TimedOut { waited_cycles } => assert!(waited_cycles > 1),
        other => panic!("expected timeout, got {other:?}"),
    }
    // A generous deadline is met.
    h.submit_with_deadline(8, 10, 1_000_000_000);
    assert!(matches!(h.recv_outcome(), SubmitOutcome::Served(_)));
    h.close();
    let report = server.shutdown();
    assert_eq!(report.admission.timed_out, 1);
}

#[test]
fn backoff_retry_rides_out_tenant_throttle() {
    let server = RngServer::start_with_admission(
        server_system(),
        Pacing::Virtual,
        throttle_admission(1, 500_000),
    );
    let mut h = server.open_session(ClientSpec::manual(8));
    let mut backoff = Backoff::new(3, 10_000, 10_000_000, 6);
    let mut buf = [0u8; 8];
    // First call takes the only token; the second is shed, then retried
    // with the server's mint-time hint until a fresh token admits it.
    for _ in 0..2 {
        match h.getrandom_with_retry(&mut buf, 1_000, u64::MAX, &mut backoff) {
            SubmitOutcome::Served(_) => {}
            other => panic!("retry loop should end served, got {other:?}"),
        }
    }
    assert_eq!(backoff.attempts(), 0, "success resets the budget");
    h.close();
    let report = server.shutdown();
    assert_eq!(report.stats.requests_completed, 2);
    assert!(
        report.admission.shed_tenant_throttle >= 1,
        "the second call was shed at least once: {:?}",
        report.admission
    );
}

#[test]
fn closing_with_deferred_and_scheduled_requests_drains_cleanly() {
    let server = RngServer::start_with_admission(
        server_system(),
        Pacing::Virtual,
        watermark_admission(),
    );
    let mut burster = server.open_session(ClientSpec::manual(16));
    burster.submit_burst(16, 0, 1_000, 30, u64::MAX);
    // Take a couple of outcomes (some of the burst is by now deferred or
    // still scheduled), then walk away mid-burst: the close must discard
    // the rest without freezing the virtual-time barrier.
    let _ = burster.recv_outcome();
    let _ = burster.recv_outcome();
    burster.close();
    // A session opened after the close still gets served — the closed
    // session's scheduled and deferred arrivals were discarded, not left
    // gating time (retry rides out any residual congestion they caused).
    let mut bystander = server.open_session(ClientSpec::manual(8));
    let mut backoff = Backoff::new(11, 50_000, 10_000_000, 10);
    let mut buf = [0u8; 8];
    for _ in 0..3 {
        match bystander.getrandom_with_retry(&mut buf, 5_000, u64::MAX, &mut backoff) {
            SubmitOutcome::Served(served) => assert!(served.latency_cycles > 0),
            other => panic!("bystander should be served, got {other:?}"),
        }
    }
    bystander.close();
    let report = server.shutdown();
    assert!(report.stats.requests_completed >= 3);
}

#[test]
fn dead_receiver_under_shed_load_does_not_freeze_the_barrier() {
    let server = RngServer::start_with_admission(
        server_system(),
        Pacing::Virtual,
        watermark_admission(),
    );
    let mut vanishing = server.open_session(ClientSpec::manual(16));
    let mut survivor = server.open_session(ClientSpec::manual(8));
    vanishing.submit_burst(16, 0, 1_000, 30, u64::MAX);
    // Drop the handle without closing: the driver notices the dead
    // receiver at the next outcome delivery and auto-closes the session,
    // discarding its remaining flood.
    drop(vanishing);
    let mut backoff = Backoff::new(23, 50_000, 10_000_000, 10);
    let mut buf = [0u8; 8];
    for _ in 0..3 {
        match survivor.getrandom_with_retry(&mut buf, 5_000, u64::MAX, &mut backoff) {
            SubmitOutcome::Served(served) => assert!(served.latency_cycles > 0),
            other => panic!("survivor should be served, got {other:?}"),
        }
    }
    survivor.close();
    let report = server.shutdown();
    assert!(report.stats.requests_completed >= 3);
    assert_eq!(report.sessions, 2);
}
