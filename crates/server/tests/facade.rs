//! The server facade's determinism contract: N host threads submitting
//! through the async session API in virtual-time pacing must reproduce
//! the synchronous `ServiceConfig` run **bit for bit** — same per-request
//! latency log, same per-session latencies, same served words — no
//! matter how the OS schedules the submitter threads.

use std::thread;

use strange_core::{ClientSpec, QosClass, ServiceConfig, ServiceStats, System, SystemConfig};
use strange_server::{Pacing, RngServer};
use strange_trng::DRange;

/// (bytes, think, requests) per session — a fixed seeded schedule.
const SESSIONS: [(usize, u64, u64); 4] = [(8, 211, 25), (24, 467, 25), (32, 123, 25), (16, 934, 25)];
const TRNG_SEED: u64 = 9;

fn sync_reference() -> (ServiceStats, Vec<u64>) {
    let clients = SESSIONS
        .iter()
        .map(|&(bytes, think, requests)| ClientSpec::closed_loop(bytes, think, requests))
        .collect();
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        clients,
        capture_values: true,
        ..ServiceConfig::default()
    });
    let mut sys = System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED)))
        .expect("valid configuration");
    let res = sys.run();
    assert!(!res.hit_cycle_limit);
    let captured = sys.service().expect("service").captured_words().to_vec();
    (res.service.expect("service stats"), captured)
}

fn server_system() -> System {
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        capture_values: true,
        sessions: true,
        ..ServiceConfig::default()
    });
    System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED))).expect("valid configuration")
}

/// Runs the 4-session schedule over `threads` host threads (sessions are
/// dealt round-robin to threads) and returns the final report.
///
/// A thread owning several sessions multiplexes them with non-blocking
/// polls: under virtual pacing the driver freezes time until every open
/// interactive session reacts to its last completion, so a client thread
/// must never block on one session while it owes another a decision.
fn server_run(pacing: Pacing, threads: usize) -> strange_server::ServerReport {
    let server = RngServer::start(server_system(), pacing);
    // Open sessions in a fixed order (session ids must be deterministic).
    let handles: Vec<_> = SESSIONS
        .iter()
        .map(|&(bytes, _, _)| server.open_session(ClientSpec::manual(bytes)))
        .collect();
    let mut workers = Vec::new();
    let mut lanes: Vec<Vec<_>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, h) in handles.into_iter().enumerate() {
        lanes[i % threads].push((h, SESSIONS[i]));
    }
    for lane in lanes {
        workers.push(thread::spawn(move || {
            struct Sess {
                handle: Option<strange_server::SessionHandle>,
                bytes: usize,
                think: u64,
                left: u64,
            }
            let mut sessions: Vec<Sess> = lane
                .into_iter()
                .map(|(mut handle, (bytes, think, requests))| {
                    handle.submit_after(bytes, 0); // first request: arrival = open cycle
                    Sess {
                        handle: Some(handle),
                        bytes,
                        think,
                        left: requests - 1,
                    }
                })
                .collect();
            let mut open = sessions.len();
            while open > 0 {
                let mut progressed = false;
                for s in &mut sessions {
                    let Some(handle) = s.handle.as_mut() else {
                        continue;
                    };
                    if let Some(served) = handle.try_recv() {
                        progressed = true;
                        assert!(served.latency_cycles > 0);
                        assert_eq!(served.words.len(), s.bytes.div_ceil(8));
                        if s.left > 0 {
                            s.left -= 1;
                            handle.submit_after(s.bytes, s.think);
                        } else {
                            s.handle.take().expect("present").close();
                            open -= 1;
                        }
                    }
                }
                if !progressed {
                    thread::yield_now();
                }
            }
        }));
    }
    for w in workers {
        w.join().expect("worker panicked");
    }
    server.shutdown()
}

#[test]
fn four_host_threads_virtual_time_is_bit_identical_to_sync() {
    let (sync_stats, sync_captured) = sync_reference();
    let report = server_run(Pacing::Virtual, 4);
    assert_eq!(report.sessions, SESSIONS.len());
    assert_eq!(
        report.stats, sync_stats,
        "async facade must reproduce the synchronous service run \
         (stats incl. latency log + per-session latencies)"
    );
    assert_eq!(
        report.captured, sync_captured,
        "served words must match bit for bit"
    );
}

#[test]
fn thread_count_does_not_change_results() {
    // 1 thread serializes every session on one submitter; 2 threads split
    // them; results must be identical to each other (and, transitively
    // via the test above, to the synchronous run).
    let a = server_run(Pacing::Virtual, 1);
    let b = server_run(Pacing::Virtual, 2);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.captured, b.captured);
    assert_eq!(a.cpu_cycles, b.cpu_cycles);
}

#[test]
fn wall_clock_pacing_serves_every_request() {
    // Wall-clock pacing is not deterministic, but it must serve all
    // offered requests and advance virtual time.
    let report = server_run(
        Pacing::WallClock {
            cycles_per_ms: 40_000_000,
        },
        2,
    );
    let offered: u64 = SESSIONS.iter().map(|&(_, _, r)| r).sum();
    assert_eq!(report.stats.requests_offered, offered);
    assert_eq!(report.stats.requests_completed, offered);
    assert!(report.cpu_cycles > 0);
}

#[test]
fn qos_session_priority_reaches_the_service() {
    // A High-QoS session registers its priority with the engine and the
    // per-session latency split tracks it separately. Sessions run one
    // after the other: under virtual pacing a single thread must not
    // block on one session while another open one sits idle.
    let server = RngServer::start(server_system(), Pacing::Virtual);
    let mut buf = [0u8; 16];
    for qos in [QosClass::High, QosClass::Low] {
        let mut h = server.open_session(ClientSpec::manual(16).with_qos(qos));
        for _ in 0..8 {
            h.getrandom(&mut buf, 64);
        }
        h.close();
    }
    let report = server.shutdown();
    assert_eq!(report.stats.latency_by_client.len(), 2);
    assert_eq!(report.stats.latency_by_client[0].len(), 8);
    assert_eq!(report.stats.latency_by_client[1].len(), 8);
}

#[test]
fn background_sessions_generate_load_while_interactive_traffic_drives_time() {
    let server = RngServer::start(server_system(), Pacing::Virtual);
    // An autonomous Poisson tenant: no channel traffic, pure load.
    let bg = server.open_session(ClientSpec::poisson(32, 2_000, 100_000, 42));
    let mut fg = server.open_session(ClientSpec::manual(8));
    let mut buf = [0u8; 8];
    for _ in 0..20 {
        fg.getrandom(&mut buf, 50_000);
    }
    fg.close();
    // Autonomous sessions are not closed — dropping the handle leaves the
    // tenant running inside the simulation.
    drop(bg);
    let report = server.shutdown();
    // ~1M cycles of virtual time at a 2k-cycle mean gap: plenty of
    // background arrivals beyond the 20 interactive requests.
    assert!(
        report.stats.requests_offered > 100,
        "background tenant must have offered load (got {})",
        report.stats.requests_offered
    );
}

#[test]
fn configured_clients_offset_session_ids_correctly() {
    // A system built with configured service clients AND dynamic
    // sessions: driver-opened ids start past the configured clients, and
    // the driver must address its own slots through that offset.
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        clients: vec![ClientSpec::poisson(16, 4_000, 2_000, 3)],
        capture_values: true,
        sessions: true,
        ..ServiceConfig::default()
    });
    let sys = System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED)))
        .expect("valid configuration");
    let server = RngServer::start(sys, Pacing::Virtual);
    let mut h = server.open_session(ClientSpec::manual(8));
    assert_eq!(h.id(), 1, "configured client takes id 0");
    let mut buf = [0u8; 8];
    for _ in 0..10 {
        h.getrandom(&mut buf, 5_000);
    }
    h.close();
    let report = server.shutdown();
    assert_eq!(report.stats.latency_by_client.len(), 2);
    assert_eq!(report.stats.latency_by_client[1].len(), 10);
}

#[test]
fn pipelined_submits_chain_deterministically() {
    // Back-to-back submits must serve in FIFO order with arrivals
    // chained off completions, independent of how many control messages
    // the driver drains per batch — two runs must agree bit for bit.
    let run = || {
        let server = RngServer::start(server_system(), Pacing::Virtual);
        let mut h = server.open_session(ClientSpec::manual(8));
        h.submit_after(8, 0);
        for _ in 0..9 {
            h.submit_after(8, 250); // pipelined: queued behind the previous
        }
        let mut latencies = Vec::new();
        for _ in 0..10 {
            latencies.push(h.recv().latency_cycles);
        }
        h.close();
        (latencies, server.shutdown())
    };
    let (lat_a, rep_a) = run();
    let (lat_b, rep_b) = run();
    assert_eq!(lat_a, lat_b, "pipelined latencies must be deterministic");
    assert_eq!(rep_a.stats, rep_b.stats);
    assert_eq!(rep_a.captured, rep_b.captured);
    assert_eq!(rep_a.cpu_cycles, rep_b.cpu_cycles);
}

#[test]
fn dropping_the_server_does_not_hang() {
    let server = RngServer::start(server_system(), Pacing::Virtual);
    let mut h = server.open_session(ClientSpec::manual(8));
    let mut buf = [0u8; 8];
    h.getrandom(&mut buf, 10);
    drop(h);
    drop(server); // Drop impl shuts the driver down
}

#[test]
fn close_with_submits_still_queued_does_not_panic_the_driver() {
    // A submit followed immediately by close: the scheduled-but-not-yet
    // injected arrival must be discarded, not injected into a closed
    // service client (which would panic the driver thread).
    let server = RngServer::start(server_system(), Pacing::Virtual);
    let mut h = server.open_session(ClientSpec::manual(8));
    h.submit_after(8, 1_000);
    h.close();
    // The driver is still healthy: a fresh session works end to end.
    let mut h2 = server.open_session(ClientSpec::manual(8));
    let mut buf = [0u8; 8];
    h2.getrandom(&mut buf, 10);
    h2.close();
    let report = server.shutdown();
    assert_eq!(report.sessions, 2);
}

#[test]
fn closing_a_busy_background_session_is_safe() {
    // Closing an autonomous tenant (kept below saturation — a
    // saturating equal-priority backlog would starve the interactive
    // tenant by strict priority) stops its arrivals; whatever it has in
    // flight drains inside the simulation.
    let server = RngServer::start(server_system(), Pacing::Virtual);
    let bg = server.open_session(ClientSpec::poisson(32, 4_000, 10_000, 5));
    let mut fg = server.open_session(ClientSpec::manual(8).with_qos(QosClass::High));
    let mut buf = [0u8; 8];
    for _ in 0..5 {
        fg.getrandom(&mut buf, 20_000);
    }
    bg.close();
    for _ in 0..5 {
        fg.getrandom(&mut buf, 20_000);
    }
    fg.close();
    let report = server.shutdown();
    assert_eq!(report.stats.latency_by_client[1].len(), 10);
}

#[test]
fn dropped_handle_mid_run_does_not_freeze_other_sessions() {
    // A submitter thread that vanishes with a request still in flight
    // (handle dropped without close) must not pin virtual time: the
    // failed completion send closes the session, and later sessions keep
    // being served.
    let server = RngServer::start(server_system(), Pacing::Virtual);
    let mut doomed = server.open_session(ClientSpec::manual(8));
    let mut buf = [0u8; 8];
    doomed.getrandom(&mut buf, 100);
    doomed.submit_after(8, 100); // in flight when the handle dies
    drop(doomed);
    let mut survivor = server.open_session(ClientSpec::manual(8));
    for _ in 0..10 {
        // Without the dead-receiver close, the doomed session's delivered
        // completion would set `awaiting` forever and freeze time here.
        survivor.getrandom(&mut buf, 100);
    }
    survivor.close();
    let report = server.shutdown();
    assert_eq!(report.stats.latency_by_client[1].len(), 10);
}
