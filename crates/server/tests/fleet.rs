//! Fleet determinism contract: routing is a pure function of routing
//! history, shards share no simulated state, so (1) an N-shard run is
//! bit-identical to N separate single-shard runs of the induced session
//! sets, (2) parallel shard drivers ≡ sequential, (3) shard results are
//! invariant to startup order, (4) per-shard Reference ≡ FastForward,
//! and (5) a 10⁴-session flash-crowd fleet records and replays
//! reproducibly end-to-end (`STRANGE_FLEET_SESSIONS` scales it).

use std::thread;

use strange_core::{ClientSpec, ServiceStats, SimMode, System, SystemConfig};
use strange_server::fleet::{
    partition_sessions, run_shards, run_shards_sequential, shard_count, FleetServer, FleetSnapshot,
    RoutePolicy, ShardRouter,
};
use strange_server::Pacing;
use strange_trng::DRange;
use strange_workloads::{
    fleet_flash_crowd, fleet_session_count, fleet_shard_seed, fleet_shard_service,
};

const FLEET_SEED: u64 = 2022;

fn shard_system(specs: Vec<ClientSpec>, seed: u64, mode: SimMode) -> System {
    let mut svc = fleet_shard_service(specs);
    svc.capture_values = true;
    let cfg = SystemConfig::dr_strange(0)
        .with_sim_mode(mode)
        .with_service(svc);
    System::new(cfg, Vec::new(), Box::new(DRange::new(seed))).expect("valid configuration")
}

/// A small mixed population: a flash-crowd ramp with varied request
/// sizes so shards see different work.
fn population(sessions: usize) -> Vec<ClientSpec> {
    fleet_flash_crowd(sessions, 8, 700)
        .into_iter()
        .enumerate()
        .map(|(i, mut spec)| {
            spec.bytes = [8, 16, 32][i % 3];
            spec
        })
        .collect()
}

fn shard_systems(shards: usize, specs: &[ClientSpec], mode: SimMode) -> (Vec<System>, Vec<usize>) {
    let mut router = ShardRouter::new(RoutePolicy::SessionHash { salt: FLEET_SEED }, shards);
    let (per_shard, assignment) = partition_sessions(&mut router, specs);
    let systems = per_shard
        .into_iter()
        .enumerate()
        .map(|(s, subset)| shard_system(subset, fleet_shard_seed(FLEET_SEED, s), mode))
        .collect();
    (systems, assignment)
}

#[test]
fn nshard_run_is_bitidentical_to_single_shard_runs() {
    let specs = population(48);
    let (systems, assignment) = shard_systems(4, &specs, SimMode::FastForward);
    assert!(
        (0..4).all(|s| assignment.contains(&s)),
        "hash partition left a shard empty; pick a different salt"
    );
    let fleet = run_shards(systems);
    // Re-run each induced per-shard session set as its own single-shard
    // run, sequentially and independently.
    let (solo_systems, _) = shard_systems(4, &specs, SimMode::FastForward);
    for (s, ((fleet_res, fleet_sys), mut solo)) in
        fleet.into_iter().zip(solo_systems).enumerate()
    {
        let solo_res = solo.run();
        assert_eq!(
            fleet_res.service, solo_res.service,
            "shard {s}: fleet-run stats differ from the single-shard run"
        );
        assert_eq!(
            fleet_sys.service().expect("service").captured_words(),
            solo.service().expect("service").captured_words(),
            "shard {s}: served words differ"
        );
        assert_eq!(fleet_res.cpu_cycles, solo_res.cpu_cycles);
    }
}

#[test]
fn parallel_shard_drivers_equal_sequential() {
    let specs = population(32);
    let (par_systems, _) = shard_systems(3, &specs, SimMode::FastForward);
    let (seq_systems, _) = shard_systems(3, &specs, SimMode::FastForward);
    let par = run_shards(par_systems);
    let seq = run_shards_sequential(seq_systems);
    for (s, ((pr, ps), (sr, ss))) in par.into_iter().zip(seq).enumerate() {
        assert_eq!(pr.service, sr.service, "shard {s} stats diverge");
        assert_eq!(
            ps.service().expect("service").captured_words(),
            ss.service().expect("service").captured_words(),
            "shard {s} words diverge"
        );
    }
}

/// Satellite: per-shard seeds derive from (fleet seed, shard index), so
/// building and running the shards in any order yields the same
/// per-shard results.
#[test]
fn shard_results_invariant_to_startup_order() {
    let specs = population(32);
    let mut router = ShardRouter::new(RoutePolicy::SessionHash { salt: FLEET_SEED }, 4);
    let (per_shard, _) = partition_sessions(&mut router, &specs);

    let build = |s: usize, subset: &[ClientSpec]| {
        shard_system(
            subset.to_vec(),
            fleet_shard_seed(FLEET_SEED, s),
            SimMode::FastForward,
        )
    };
    // Forward startup order.
    let forward: Vec<ServiceStats> =
        run_shards((0..4).map(|s| build(s, &per_shard[s])).collect())
            .into_iter()
            .map(|(r, _)| r.service.expect("service stats"))
            .collect();
    // Scrambled startup order, results mapped back to shard index.
    let order = [2usize, 0, 3, 1];
    let scrambled = run_shards(order.iter().map(|&s| build(s, &per_shard[s])).collect());
    for (&s, (res, _)) in order.iter().zip(scrambled) {
        assert_eq!(
            forward[s],
            res.service.expect("service stats"),
            "shard {s} depends on startup order"
        );
    }
}

#[test]
fn per_shard_reference_equals_fastforward() {
    let specs = population(24);
    let (ref_systems, _) = shard_systems(2, &specs, SimMode::Reference);
    let (ff_systems, _) = shard_systems(2, &specs, SimMode::FastForward);
    let reference = run_shards(ref_systems);
    let fast = run_shards(ff_systems);
    for (s, ((rr, rs), (fr, fs))) in reference.into_iter().zip(fast).enumerate() {
        assert_eq!(
            rr.service, fr.service,
            "shard {s}: FastForward diverges from Reference"
        );
        assert_eq!(
            rs.service().expect("service").captured_words(),
            fs.service().expect("service").captured_words(),
            "shard {s}: served words diverge across sim modes"
        );
    }
}

/// Acceptance: a 10⁴+-session flash-crowd fleet scenario end to end —
/// partition, parallel run, then record→replay bit-identity from the
/// recorded arrival logs.
#[test]
fn flash_crowd_fleet_records_and_replays() {
    let sessions = fleet_session_count();
    let shards = shard_count();
    let specs = fleet_flash_crowd(sessions, 8, 100);
    let mut router = ShardRouter::new(RoutePolicy::SessionHash { salt: FLEET_SEED }, shards);
    let (per_shard, _) = partition_sessions(&mut router, &specs);
    let systems: Vec<System> = per_shard
        .iter()
        .enumerate()
        .map(|(s, subset)| {
            shard_system(subset.clone(), fleet_shard_seed(FLEET_SEED, s), SimMode::FastForward)
        })
        .collect();
    let first = run_shards(systems);
    let completed: u64 = first
        .iter()
        .map(|(r, _)| r.service.as_ref().expect("service stats").requests_completed)
        .sum();
    assert_eq!(completed, sessions as u64, "every session must be served");

    // Record → replay: rebuild each shard from its recorded arrival
    // logs and re-run; the replay must reproduce the run bit for bit.
    let mut replay_systems = Vec::with_capacity(first.len());
    for (s, (_, sys)) in first.iter().enumerate() {
        let svc = sys.service().expect("service");
        let replay_specs: Vec<ClientSpec> = (0..svc.clients())
            .map(|c| ClientSpec::trace_replay(per_shard[s][c].bytes, svc.arrival_log(c).to_vec()))
            .collect();
        replay_systems.push(shard_system(
            replay_specs,
            fleet_shard_seed(FLEET_SEED, s),
            SimMode::FastForward,
        ));
    }
    let replay = run_shards(replay_systems);
    for (s, ((ar, asys), (br, bsys))) in first.into_iter().zip(replay).enumerate() {
        assert_eq!(ar.service, br.service, "shard {s}: replay diverges");
        assert_eq!(
            asys.service().expect("service").captured_words(),
            bsys.service().expect("service").captured_words(),
            "shard {s}: replayed words diverge"
        );
    }
}

/// Live fleet front-end: sessions route across shards, the report
/// aggregates shard-locally-exact stats, and the final [`FleetSnapshot`]
/// agrees with the report. Runs twice to assert reproducibility.
#[test]
fn live_fleet_server_routes_and_aggregates() {
    let live_system = |s: usize| {
        let cfg = SystemConfig::dr_strange(0).with_service(strange_core::ServiceConfig {
            sessions: true,
            ..strange_core::ServiceConfig::default()
        });
        System::new(
            cfg,
            Vec::new(),
            Box::new(DRange::new(fleet_shard_seed(FLEET_SEED, s))),
        )
        .expect("valid configuration")
    };
    let run = || {
        let systems: Vec<System> = (0..2).map(live_system).collect();
        let (fleet, snapshots) = FleetServer::start_observed(
            systems,
            RoutePolicy::RoundRobin,
            Pacing::Virtual,
            std::time::Duration::from_millis(5),
        );
        assert_eq!(fleet.shards(), 2);
        let handles: Vec<_> = (0..4)
            .map(|_| fleet.open_session(ClientSpec::manual(16)))
            .collect();
        // Round-robin: global session i lands on shard i % 2.
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(h.shard, i % 2);
            assert_eq!(h.global, i);
        }
        let workers: Vec<_> = handles
            .into_iter()
            .map(|mut h| {
                thread::spawn(move || {
                    let mut buf = [0u8; 16];
                    for _ in 0..12 {
                        h.getrandom(&mut buf, 2_000);
                    }
                    h.close();
                })
            })
            .collect();
        for w in workers {
            w.join().expect("session thread panicked");
        }
        let report = fleet.shutdown();
        let snaps: Vec<FleetSnapshot> = snapshots.try_iter().collect();
        let stats = report.fleet_stats();
        assert_eq!(stats.requests_completed, 4 * 12);
        assert_eq!(stats.bytes_served, 4 * 12 * 16);
        assert_eq!(report.sessions.len(), 4);
        assert_eq!(report.shards.len(), 2);
        // Fleet aggregate ≡ union of the shard-local views.
        let by_shard: u64 = report
            .shards
            .iter()
            .map(|r| r.stats.requests_completed)
            .sum();
        assert_eq!(stats.requests_completed, by_shard);
        assert_eq!(
            stats.latency_log.len() as u64,
            by_shard,
            "merged latency log must carry every completion"
        );
        let jain = stats.jain().expect("both shards served bytes");
        assert!(jain > 0.99, "balanced round-robin fleet, jain={jain}");
        // The final fleet snapshot agrees with the final report, and
        // per-tenant fleet percentiles are the exact shard-local ones.
        let last: &FleetSnapshot = snaps.last().expect("parting fleet snapshot");
        assert_eq!(last.requests_completed, stats.requests_completed);
        assert_eq!(last.bytes_served, stats.bytes_served);
        assert_eq!(last.tenant_p50.len(), 4);
        for (g, &(s, c)) in report.sessions.iter().enumerate() {
            assert_eq!(last.tenant_p50[g], last.shards[s].tenant_p50[c]);
            assert_eq!(last.tenant_p99[g], last.shards[s].tenant_p99[c]);
        }
        report
    };
    let a = run();
    let b = run();
    for (s, (ra, rb)) in a.shards.iter().zip(&b.shards).enumerate() {
        assert_eq!(ra.stats, rb.stats, "shard {s} not reproducible");
    }
}

#[test]
fn router_policies_are_deterministic_and_mechanism_aware() {
    // LeastLoaded follows the open-session accounting.
    let mut ll = ShardRouter::new(RoutePolicy::LeastLoaded, 3);
    assert_eq!(ll.route_session(0, None), 0);
    assert_eq!(ll.route_session(1, None), 1);
    assert_eq!(ll.route_session(2, None), 2);
    assert_eq!(ll.route_session(3, None), 0);
    ll.release(1);
    assert_eq!(ll.route_session(4, None), 1, "released shard is least loaded");

    // SessionHash is sticky per key and independent of call order.
    let mut h1 = ShardRouter::new(RoutePolicy::SessionHash { salt: 7 }, 4);
    let mut h2 = ShardRouter::new(RoutePolicy::SessionHash { salt: 7 }, 4);
    let keys = [3u64, 11, 3, 42, 3];
    let a: Vec<usize> = keys.iter().map(|&k| h1.route_session(k, None)).collect();
    let b: Vec<usize> = keys.iter().rev().map(|&k| h2.route_session(k, None)).collect();
    assert_eq!(a[0], a[2]);
    assert_eq!(a[0], a[4]);
    assert_eq!(a, b.into_iter().rev().collect::<Vec<_>>());

    // The mechanism-aware hook narrows candidates when a label matches
    // and falls back to the whole fleet when none does.
    let mut labeled = ShardRouter::with_labels(
        RoutePolicy::RoundRobin,
        vec!["D-RaNGe".into(), "QUAC-TRNG".into(), "QUAC-TRNG".into()],
    );
    for _ in 0..4 {
        let s = labeled.route_session(0, Some("QUAC-TRNG"));
        assert!(s == 1 || s == 2, "preference must stick to QUAC shards");
    }
    // An unknown label falls back to the whole fleet (round-robin
    // cursor is at 4 after four routes → candidate index 4 % 3 = 1).
    assert_eq!(labeled.route_session(0, Some("no-such-mechanism")), 1);
    assert_eq!(labeled.routed(), 5);
}
