//! Wall-clock observability: an observed server streams periodic
//! [`strange_server::Snapshot`]s from the driver thread so a live
//! dashboard can watch per-tenant latency percentiles, RNG queue depth,
//! and buffer occupancy instead of waiting for the final report.

use std::thread;
use std::time::Duration;

use strange_core::{ClientSpec, QosClass, ServiceConfig, System, SystemConfig};
use strange_server::{Pacing, RngServer, Snapshot};
use strange_trng::DRange;

fn observed_system() -> System {
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        sessions: true,
        ..ServiceConfig::default()
    });
    System::new(cfg, Vec::new(), Box::new(DRange::new(7))).expect("valid configuration")
}

#[test]
fn wall_clock_snapshots_stream_progress() {
    let (server, snapshots) = RngServer::start_observed(
        observed_system(),
        Pacing::WallClock {
            cycles_per_ms: 2_000_000,
        },
        Duration::from_millis(1),
    );
    let mut high = server.open_session(ClientSpec::manual(32).with_qos(QosClass::High));
    let mut low = server.open_session(ClientSpec::manual(32).with_qos(QosClass::Low));
    let worker = thread::spawn(move || {
        let mut buf = [0u8; 32];
        for _ in 0..40 {
            high.getrandom(&mut buf, 10_000);
            low.getrandom(&mut buf, 10_000);
        }
        high.close();
        low.close();
    });
    worker.join().expect("worker");
    let report = server.shutdown();
    let snaps: Vec<Snapshot> = snapshots.try_iter().collect();
    assert!(
        !snaps.is_empty(),
        "an observed wall-clock run must emit at least the final snapshot"
    );
    // Snapshots are monotone in simulated time and completions.
    for pair in snaps.windows(2) {
        assert!(pair[1].cpu_cycles >= pair[0].cpu_cycles);
        assert!(pair[1].requests_completed >= pair[0].requests_completed);
    }
    let last = snaps.last().expect("non-empty");
    assert_eq!(last.requests_completed, report.stats.requests_completed);
    assert_eq!(last.cpu_cycles, report.cpu_cycles);
    assert_eq!(last.tenant_p50.len(), 2, "one percentile slot per session");
    assert_eq!(last.tenant_p99.len(), 2);
    for session in 0..2 {
        let p50 = last.tenant_p50[session].expect("session has completions");
        let p99 = last.tenant_p99[session].expect("session has completions");
        assert!(p50 > 0 && p99 >= p50);
    }
    // Queue/buffer gauges are plausible: the buffer never exceeds the
    // configured 16 entries.
    assert!(last.buffer_words <= 16);
}

#[test]
fn dropping_the_snapshot_receiver_does_not_stall_the_server() {
    let (server, snapshots) = RngServer::start_observed(
        observed_system(),
        Pacing::WallClock {
            cycles_per_ms: 2_000_000,
        },
        Duration::from_micros(100),
    );
    drop(snapshots); // dashboard went away; the server must not care
    let mut h = server.open_session(ClientSpec::manual(8));
    let mut buf = [0u8; 8];
    for _ in 0..20 {
        h.getrandom(&mut buf, 1_000);
    }
    h.close();
    let report = server.shutdown();
    assert_eq!(report.stats.requests_completed, 20);
}

/// Snapshot hot path (PR 10 satellite): the reused percentile scratch
/// must match the per-call clone-and-sort oracle exactly, sort once per
/// call, and stop reallocating once it has seen the largest log.
#[test]
fn percentile_scratch_matches_oracle_without_reallocating() {
    use strange_core::ServiceStats;
    use strange_server::PercentileScratch;

    let logs: Vec<Vec<u64>> = vec![
        vec![42],
        vec![5, 3, 9, 1, 7],
        (0..500).map(|i| (i * 37) % 1000).collect(),
        vec![],
        (0..100).rev().collect(),
    ];
    let mut scratch = PercentileScratch::default();
    let mut stats = ServiceStats::default();
    for log in &logs {
        stats.latency_by_client.push(log.clone());
    }
    for (i, log) in logs.iter().enumerate() {
        let (p50, p99) = scratch.p50_p99(log);
        assert_eq!(p50, stats.client_latency_percentile(i, 0.50), "client {i} p50");
        assert_eq!(p99, stats.client_latency_percentile(i, 0.99), "client {i} p99");
    }
    assert_eq!(scratch.sorts(), logs.len() as u64, "one sort per call");
    let grows_after_warmup = scratch.grows();
    // Sizes run 1 → 5 → 500 (then smaller), so at most three calls saw
    // a log beyond capacity.
    assert!(grows_after_warmup <= 3, "only growing logs may reallocate");
    // Steady state: same-size (or smaller) logs never grow the buffer.
    for _ in 0..50 {
        for log in &logs {
            scratch.p50_p99(log);
        }
    }
    assert_eq!(
        scratch.grows(),
        grows_after_warmup,
        "steady-state snapshots must not reallocate the sort buffer"
    );
    assert_eq!(scratch.sorts(), (51 * logs.len()) as u64);
}

/// The final snapshot's served-byte gauge (what fleet aggregation weighs
/// shards by) matches the report.
#[test]
fn snapshot_reports_bytes_served() {
    let (server, snapshots) = RngServer::start_observed(
        observed_system(),
        Pacing::Virtual,
        Duration::from_millis(1),
    );
    let mut h = server.open_session(ClientSpec::manual(32));
    let mut buf = [0u8; 32];
    for _ in 0..10 {
        h.getrandom(&mut buf, 1_000);
    }
    h.close();
    let report = server.shutdown();
    let last = snapshots.try_iter().last().expect("parting snapshot");
    assert_eq!(last.bytes_served, 10 * 32);
    assert_eq!(last.bytes_served, report.stats.bytes_served);
}
