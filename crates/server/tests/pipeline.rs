//! Pipelined interactive sessions (k-deep in-flight, virtual pacing):
//! the arrival-chaining contract. A pipelined session's request *i*
//! arrives at `open + i × gap` — chained off the previous *arrival*,
//! never off completions — so the arrival schedule is an arithmetic
//! series independent of pipeline depth and service speed. With a
//! generous gap a k-deep pipeline is **bit-identical** to the k=1 chain
//! and to the synchronous trace-replay run; with a tight gap the k-deep
//! pipeline overlaps service (earlier completions, lower latency) while
//! the arrival logs stay identical.

use strange_core::{ClientSpec, ServiceConfig, ServiceStats, System, SystemConfig};
use strange_server::{Pacing, RngServer, ServerReport};
use strange_trng::DRange;

const TRNG_SEED: u64 = 41;
const BYTES: usize = 16;
const REQUESTS: usize = 30;

fn server_system() -> System {
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        capture_values: true,
        record_arrivals: true,
        sessions: true,
        ..ServiceConfig::default()
    });
    System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED))).expect("valid configuration")
}

/// Runs one pipelined session: fills the pipeline k deep, chains one
/// request per received outcome until `n` have been submitted, then
/// acks the tail as the pipeline drains.
fn pipelined_run(n: usize, k: usize, gap: u64) -> ServerReport {
    assert!(k <= n);
    let server = RngServer::start(server_system(), Pacing::Virtual);
    let mut h = server.open_session(ClientSpec::manual(BYTES));
    h.submit_pipelined(BYTES, gap, k, u64::MAX);
    let mut submitted = k;
    for _ in 0..n {
        let served = h.recv();
        assert_eq!(served.words.len(), BYTES / 8);
        if submitted < n {
            h.submit_pipelined(BYTES, gap, 1, u64::MAX);
            submitted += 1;
        } else {
            h.ack();
        }
    }
    h.close();
    server.shutdown()
}

/// The synchronous reference: the same arithmetic arrival series as an
/// open-loop trace replay inside the simulation loop.
fn sync_trace_reference(n: usize, gap: u64) -> (ServiceStats, Vec<u64>, Vec<Vec<u64>>) {
    let schedule: Vec<u64> = (1..=n as u64).map(|i| i * gap).collect();
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        clients: vec![ClientSpec::trace_replay(BYTES, schedule)],
        capture_values: true,
        record_arrivals: true,
        ..ServiceConfig::default()
    });
    let mut sys =
        System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED))).expect("valid configuration");
    let res = sys.run();
    assert!(!res.hit_cycle_limit);
    let svc = sys.service().expect("service");
    let captured = svc.captured_words().to_vec();
    let logs = vec![svc.arrival_log(0).to_vec()];
    (res.service.expect("service stats"), captured, logs)
}

/// Generous gap: far above any request latency, so even a deep pipeline
/// never actually overlaps and every variant must agree bit for bit.
const WIDE_GAP: u64 = 400_000;
/// Tight gap: far below the per-request service latency, so a deep
/// pipeline genuinely overlaps service.
const TIGHT_GAP: u64 = 100;

#[test]
fn k1_pipeline_matches_synchronous_trace_replay() {
    let report = pipelined_run(REQUESTS, 1, WIDE_GAP);
    let (sync_stats, sync_words, sync_logs) = sync_trace_reference(REQUESTS, WIDE_GAP);
    assert_eq!(
        report.stats, sync_stats,
        "k=1 pipeline must be bit-identical to the synchronous trace replay"
    );
    assert_eq!(report.captured, sync_words);
    assert_eq!(report.arrival_logs, sync_logs);
}

#[test]
fn k_deep_equals_k1_under_generous_gap() {
    let k1 = pipelined_run(REQUESTS, 1, WIDE_GAP);
    for k in [2, 4, 8] {
        let kd = pipelined_run(REQUESTS, k, WIDE_GAP);
        assert_eq!(
            kd.stats, k1.stats,
            "k={k} pipeline must match k=1 bit for bit under a generous gap"
        );
        assert_eq!(kd.captured, k1.captured);
        assert_eq!(kd.arrival_logs, k1.arrival_logs);
    }
}

#[test]
fn tight_gap_pipeline_overlaps_service_with_identical_arrivals() {
    let k1 = pipelined_run(REQUESTS, 1, TIGHT_GAP);
    let k4 = pipelined_run(REQUESTS, 4, TIGHT_GAP);
    // The contract: the arrival schedule is the same arithmetic series
    // regardless of depth...
    assert_eq!(
        k4.arrival_logs, k1.arrival_logs,
        "arrival chaining must not depend on pipeline depth"
    );
    let expected: Vec<u64> = (1..=REQUESTS as u64).map(|i| i * TIGHT_GAP).collect();
    assert_eq!(k1.arrival_logs[0], expected);
    // ...but the deep pipeline keeps requests in flight, so it finishes
    // sooner and its latency (charged from the scheduled arrival) is no
    // worse.
    assert_eq!(k4.stats.requests_completed, k1.stats.requests_completed);
    assert!(
        k4.cpu_cycles < k1.cpu_cycles,
        "4-deep pipeline must finish before the serialized k=1 chain \
         ({} vs {} cycles)",
        k4.cpu_cycles,
        k1.cpu_cycles
    );
    let (p99_k4, p99_k1) = (
        k4.stats.latency_percentile(0.99).expect("completions"),
        k1.stats.latency_percentile(0.99).expect("completions"),
    );
    assert!(
        p99_k4 <= p99_k1,
        "overlap must not worsen tail latency ({p99_k4} vs {p99_k1})"
    );
}

#[test]
fn pipelined_runs_are_reproducible() {
    let a = pipelined_run(REQUESTS, 4, TIGHT_GAP);
    let b = pipelined_run(REQUESTS, 4, TIGHT_GAP);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.captured, b.captured);
    assert_eq!(a.arrival_logs, b.arrival_logs);
    assert_eq!(a.cpu_cycles, b.cpu_cycles);
}

/// Mixing closed-loop submits into a pipelined session is a driver
/// panic ("closed-loop submit on a pipelined session"); the client
/// observes it as the dropped session channel.
#[test]
#[should_panic(expected = "server dropped the session")]
fn mixing_closed_loop_into_a_pipeline_panics() {
    let server = RngServer::start(server_system(), Pacing::Virtual);
    let mut h = server.open_session(ClientSpec::manual(BYTES));
    h.submit_pipelined(BYTES, 1_000, 2, u64::MAX);
    let _ = h.recv();
    h.submit_after(BYTES, 10);
    let _ = h.recv();
    let _ = h.recv();
}
