//! Server-side trace recording: a server run with
//! `ServiceConfig::record_arrivals` dumps every session's arrival trace
//! into the final report, and feeding those traces back through
//! `ArrivalProcess::TraceReplay` reproduces the run — bit for bit for a
//! virtual-paced server, and deterministically (replay ≡ replay) for a
//! wall-clock load test whose original timing was host-dependent.

use std::thread;

use strange_core::{ClientSpec, QosClass, ServiceConfig, System, SystemConfig};
use strange_server::{Pacing, RngServer, ServerReport};
use strange_trng::DRange;
use strange_workloads::{emit_arrival_trace, parse_arrival_trace};

const TRNG_SEED: u64 = 2026;
/// (bytes, think, requests, qos) per interactive session.
const SESSIONS: [(usize, u64, u64, QosClass); 3] = [
    (32, 400, 30, QosClass::High),
    (16, 900, 30, QosClass::Normal),
    (24, 1_300, 30, QosClass::Low),
];
/// The autonomous background tenant: below D-RaNGe saturation and short
/// enough that its arrivals (and completions) land while interactive
/// traffic is still driving virtual time — a virtual-paced background
/// session is frozen once the interactive sessions close, so a tenant
/// sized past that point would be cut off mid-run and the report would
/// not round-trip.
const BACKGROUND: (usize, u64, u64) = (32, 2_500, 25); // (bytes, mean gap, requests)

fn recording_system() -> System {
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        capture_values: true,
        record_arrivals: true,
        sessions: true,
        ..ServiceConfig::default()
    });
    System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED))).expect("valid configuration")
}

/// Runs the fixed interactive schedule plus a Poisson background tenant
/// and returns the report (arrival logs included).
fn recorded_run(pacing: Pacing) -> ServerReport {
    let server = RngServer::start(recording_system(), pacing);
    // Session 0: autonomous background load (its arrivals are recorded
    // too — a replay must reproduce the whole tenant mix).
    let (bg_bytes, bg_gap, bg_requests) = BACKGROUND;
    let _bg = server.open_session(ClientSpec::poisson(bg_bytes, bg_gap, bg_requests, 11));
    let workers: Vec<_> = SESSIONS
        .iter()
        .map(|&(bytes, think, requests, qos)| {
            let mut h = server.open_session(ClientSpec::manual(bytes).with_qos(qos));
            thread::spawn(move || {
                let mut buf = vec![0u8; bytes];
                for _ in 0..requests {
                    h.getrandom(&mut buf, think);
                }
                h.close();
            })
        })
        .collect();
    for w in workers {
        w.join().expect("session thread");
    }
    server.shutdown()
}

/// Replays a report's recorded arrival traces as a synchronous
/// `TraceReplay` run (round-tripping each trace through the on-disk text
/// format) and returns the run result.
fn replay(report: &ServerReport) -> (strange_core::ServiceStats, Vec<u64>) {
    let bytes_of = |session: usize| match session {
        0 => BACKGROUND.0,
        s => SESSIONS[s - 1].0,
    };
    let qos_of = |session: usize| match session {
        0 => QosClass::Normal,
        s => SESSIONS[s - 1].3,
    };
    let clients: Vec<ClientSpec> = report
        .arrival_logs
        .iter()
        .enumerate()
        .map(|(session, log)| {
            let round_tripped =
                parse_arrival_trace(&emit_arrival_trace(log)).expect("well-formed trace");
            assert_eq!(&round_tripped, log, "text format must round-trip");
            ClientSpec::trace_replay(bytes_of(session), round_tripped).with_qos(qos_of(session))
        })
        .collect();
    let cfg = SystemConfig::dr_strange(0).with_service(ServiceConfig {
        clients,
        capture_values: true,
        ..ServiceConfig::default()
    });
    let mut sys =
        System::new(cfg, Vec::new(), Box::new(DRange::new(TRNG_SEED))).expect("valid configuration");
    let res = sys.run();
    assert!(!res.hit_cycle_limit, "replay must drain");
    let captured = sys.service().expect("service").captured_words().to_vec();
    (res.service.expect("service stats"), captured)
}

#[test]
fn virtual_run_replays_bit_identically_from_recorded_traces() {
    let report = recorded_run(Pacing::Virtual);
    assert_eq!(report.arrival_logs.len(), 4, "one trace per session");
    assert_eq!(
        report.arrival_logs[0].len(),
        BACKGROUND.2 as usize,
        "every background arrival recorded"
    );
    for (i, &(_, _, requests, _)) in SESSIONS.iter().enumerate() {
        assert_eq!(report.arrival_logs[i + 1].len(), requests as usize);
    }
    let (replay_stats, replay_captured) = replay(&report);
    assert_eq!(
        replay_stats, report.stats,
        "replaying the recorded traces must reproduce the server run's \
         ServiceStats (incl. latency log + per-session split) bit for bit"
    );
    assert_eq!(replay_captured, report.captured, "served words must match");
}

#[test]
fn wall_clock_run_replays_deterministically() {
    // Wall-clock arrivals depend on host timing, so the original run is
    // not reproducible — but its recorded traces are: two replays agree
    // bit for bit and serve everything the load test offered.
    let report = recorded_run(Pacing::WallClock {
        cycles_per_ms: 2_000_000,
    });
    let total: usize = report.arrival_logs.iter().map(Vec::len).sum();
    assert_eq!(total as u64, report.stats.requests_offered);
    let (a_stats, a_captured) = replay(&report);
    let (b_stats, b_captured) = replay(&report);
    assert_eq!(a_stats, b_stats, "replay must be deterministic");
    assert_eq!(a_captured, b_captured);
    assert_eq!(a_stats.requests_completed, report.stats.requests_offered);
}
