//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no crates.io access, so this path dependency
//! provides `Criterion`, benchmark groups, `Bencher::iter`/`iter_batched`,
//! and the `criterion_group!`/`criterion_main!` macros with a simple
//! median-of-samples timer. Numbers are printed to stdout; there is no
//! statistical machinery, HTML report, or baseline comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (ignored by the shim's timer).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Fresh setup for every routine invocation.
    PerIteration,
    /// Small batches.
    SmallInput,
    /// Large batches.
    LargeInput,
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            throughput: None,
            sample_size: 20,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Sets the number of timed samples.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1);
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&self.name, id, self.throughput);
    }

    /// Ends the group (formatting no-op in the shim).
    pub fn finish(self) {}
}

/// Times benchmark routines.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and size the inner loop to ~1ms per sample.
        let start = Instant::now();
        let mut warmup_iters = 0u64;
        while start.elapsed() < Duration::from_millis(5) {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = Duration::from_millis(5)
            .checked_div(warmup_iters.max(1) as u32)
            .unwrap_or_default();
        let inner = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u64;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..inner {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed() / inner as u32);
        }
    }

    /// Times `routine` on inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&mut self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let ns = median.as_nanos().max(1);
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 * 1e9 / ns as f64;
                println!("{group}/{id}: {ns} ns/iter ({rate:.0} elem/s)");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 * 1e9 / ns as f64;
                println!("{group}/{id}: {ns} ns/iter ({rate:.0} B/s)");
            }
            None => println!("{group}/{id}: {ns} ns/iter"),
        }
    }
}

/// Bundles benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1));
        g.bench_function("nop", |b| b.iter(|| 1 + 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| 21, |x| x * 2, BatchSize::PerIteration)
        });
        g.finish();
    }
}
