//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so this path dependency
//! implements the `proptest!` macro and the strategies the test suites
//! need: integer/float ranges, `any::<T>()`, tuples, `collection::vec`,
//! and a lowercase-string generator for `"[a-z]{m,n}"`-style patterns.
//! Each property runs a fixed number of deterministic cases (seeded from
//! the test name), so failures are reproducible.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic case generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name.
    pub fn for_test(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty choice");
        self.next_u64() % n
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generates one case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Full-domain strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over the whole domain of `T` (`any::<u64>()`, `any::<bool>()`…).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// String patterns like `"[a-z]{1,12}"` are approximated by lowercase
/// ASCII strings whose length is drawn from the `{m,n}` repetition (or
/// 0..=16 when the pattern has no recognizable repetition suffix).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 16));
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect()
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    let body = pattern.get(open + 1..close)?;
    let (lo, hi) = match body.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    (lo <= hi).then_some((lo, hi))
}

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Acceptable size arguments for [`vec`]: an exact count or a range.
    pub trait IntoSize {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSize for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSize for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// Vector of values drawn from `element`, with length drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: IntoSize>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: IntoSize> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases each property runs.
pub const CASES: u32 = 64;

/// The property-test entry macro. Each embedded `#[test]` function runs
/// [`CASES`] deterministic cases of its strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::for_test(stringify!($name));
                for __case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under proptest's name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under proptest's name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The glob import test modules use.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vectors_respect_size(v in collection::vec(any::<u64>(), 2..5), exact in collection::vec(0u64..256, 8)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(exact.len(), 8);
        }

        #[test]
        fn string_pattern_lengths(s in "[a-z]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }

        #[test]
        fn tuples_compose(pair in (any::<u64>(), 1u32..=64)) {
            prop_assert!(pair.1 >= 1 && pair.1 <= 64);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
