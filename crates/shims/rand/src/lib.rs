//! Offline stand-in for the subset of the `rand` crate this workspace uses.
//!
//! The build environment has no crates.io access, so this path dependency
//! provides `SmallRng`, `SeedableRng`, and the `Rng` convenience methods
//! (`gen`, `gen_range`, `gen_bool`) with deterministic splitmix64 output.
//! It is a *simulation-seeding* RNG, not a cryptographic one — exactly the
//! role `rand::rngs::SmallRng` plays in the workloads/entropy substrate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples a value of `T` from its full/standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Item {
        range.sample_from(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Item;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Item;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Item = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Item = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Item = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u: $t = Standard::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Sequence-related helpers (`SliceRandom`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Picks a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic splitmix64 generator (stand-in for
    /// `rand::rngs::SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(1u32..=64);
            assert!((1..=64).contains(&z));
        }
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
