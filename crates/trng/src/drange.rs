//! D-RaNGe (Kim et al., HPCA 2019): timing-failure-based DRAM TRNG.
//!
//! D-RaNGe reads reserved rows with a strongly reduced tRCD; profiled RNG
//! cells in those rows then sample random values. One generation round on a
//! channel activates a reserved row in every bank (tRRD-pipelined), reads
//! the RNG cells, and precharges — yielding at least one random bit per
//! bank, i.e. 8 bits per round on the paper's 8-bank channels, in about
//! 40 DRAM cycles (the paper's Period Threshold is exactly the time for an
//! 8-bit round).
//!
//! Calibration (DESIGN.md §3): round = 8 bits / 40 cycles per channel gives
//! ≈ 0.61 Gb/s sustained on 4 channels (paper: ≈ 563 Mb/s); an on-demand
//! 64-bit generation using all 4 channels takes 2 rounds plus the
//! timing-reconfiguration cost of 40 cycles each way ≈ 160 cycles, ≈ 200
//! once the load-dependent bank-drain is added (paper: 198 cycles).

use crate::entropy::RngCellSource;
use crate::mechanism::{BatchCommands, TrngMechanism};

/// Default cells simulated per die region for the entropy source.
const DEFAULT_CELLS: usize = 32_768;
/// Profiling reads per cell (D-RaNGe uses 1000 in hardware; 128 keeps
/// construction fast while selecting the same band).
const PROFILE_READS: u32 = 128;

/// The D-RaNGe mechanism model.
///
/// # Examples
///
/// ```
/// use strange_trng::{DRange, TrngMechanism};
///
/// let mut d = DRange::new(42);
/// assert_eq!(d.batch_bits(), 8);
/// let gbps = d.sustained_throughput_gbps(4);
/// assert!(gbps > 0.5 && gbps < 0.7, "≈0.6 Gb/s on 4 channels: {gbps}");
/// let word = d.draw(64);
/// let _ = word;
/// ```
#[derive(Debug, Clone)]
pub struct DRange {
    source: RngCellSource,
    batch_bits: u32,
    batch_latency: u64,
    demand_switch: u64,
    fill_switch: u64,
}

impl DRange {
    /// Creates a D-RaNGe instance over a fresh simulated die (`seed`
    /// selects the process variation).
    pub fn new(seed: u64) -> Self {
        DRange {
            source: RngCellSource::new(DEFAULT_CELLS, seed, PROFILE_READS),
            batch_bits: 8,
            batch_latency: 40,
            demand_switch: 40,
            fill_switch: 2,
        }
    }

    /// Overrides the per-round bit yield (e.g. more RNG cells per row).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 64.
    pub fn with_batch_bits(mut self, bits: u32) -> Self {
        assert!((1..=64).contains(&bits), "bits must be 1..=64");
        self.batch_bits = bits;
        self
    }

    /// Overrides the demand-mode switch cost (ablation
    /// `ablation_mode_switch`).
    pub fn with_demand_switch_cycles(mut self, cycles: u64) -> Self {
        self.demand_switch = cycles;
        self
    }
}

impl TrngMechanism for DRange {
    fn name(&self) -> &'static str {
        "D-RaNGe"
    }

    fn batch_bits(&self) -> u32 {
        self.batch_bits
    }

    fn batch_latency(&self) -> u64 {
        self.batch_latency
    }

    fn demand_switch_cycles(&self) -> u64 {
        self.demand_switch
    }

    fn fill_switch_cycles(&self) -> u64 {
        self.fill_switch
    }

    fn batch_commands(&self) -> BatchCommands {
        // D-RaNGe harvests ~4 RNG cells per cache-line read (Kim et al.,
        // HPCA'19), so an 8-bit round is two reduced-tRCD ACT→RD→PRE
        // accesses, pipelined across banks.
        BatchCommands {
            acts: 2,
            reads: 2,
            pres: 2,
        }
    }

    fn draw(&mut self, count: u32) -> u64 {
        self.source.draw(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_calibration_throughput() {
        let d = DRange::new(1);
        let gbps = d.sustained_throughput_gbps(4);
        // Paper: ~563 Mb/s average for D-RaNGe on a 4-channel system.
        assert!((0.5..0.7).contains(&gbps), "got {gbps}");
    }

    #[test]
    fn paper_calibration_demand_latency() {
        let d = DRange::new(1);
        let lat = d.demand_latency_cycles(4);
        // Paper: 198 memory cycles average including drain; the fixed part
        // must sit slightly below that.
        assert!((140..=200).contains(&lat), "got {lat}");
    }

    #[test]
    fn eight_bits_per_round_matches_period_threshold() {
        let d = DRange::new(1);
        assert_eq!(d.batch_bits(), 8);
        assert_eq!(d.batch_latency(), 40);
    }

    #[test]
    fn draw_is_seeded_deterministic() {
        let mut a = DRange::new(9);
        let mut b = DRange::new(9);
        for _ in 0..10 {
            assert_eq!(a.draw(64), b.draw(64));
        }
    }

    #[test]
    fn builder_overrides() {
        let d = DRange::new(1)
            .with_batch_bits(16)
            .with_demand_switch_cycles(10);
        assert_eq!(d.batch_bits(), 16);
        assert_eq!(d.demand_switch_cycles(), 10);
    }
}
