//! The DRAM-cell entropy substrate.
//!
//! DRAM-based TRNGs like D-RaNGe exploit manufacturing process variation:
//! when the memory controller violates timing parameters (e.g. a strongly
//! reduced tRCD), most cells still read deterministically (they are either
//! comfortably fast or comfortably slow), but a small fraction sit right at
//! the sampling boundary and fail *randomly* — these are the RNG cells.
//!
//! [`CellArray`] models a region of DRAM cells, each with a Bernoulli
//! failure probability drawn from a process-variation mixture (mostly
//! deterministic cells plus a tail of boundary cells). [`CellArray::profile`]
//! reproduces D-RaNGe's profiling step: estimate each cell's failure
//! probability from repeated reduced-timing reads and keep cells whose
//! estimate falls in the RNG band around 0.5.
//!
//! This substitutes for real-hardware measurements (see DESIGN.md): it
//! exercises the same profiling/selection/sampling code paths and produces
//! bits with the same statistical character.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fraction of cells that are timing-boundary ("variable") cells.
const VARIABLE_CELL_FRACTION: f64 = 0.05;
/// Fraction of cells that always fail under reduced timing.
const ALWAYS_FAIL_FRACTION: f64 = 0.10;

/// The RNG-cell selection band: profile keeps cells with estimated failure
/// probability in `[0.5 - RNG_BAND, 0.5 + RNG_BAND]` (D-RaNGe's criterion).
pub const RNG_BAND: f64 = 0.1;

/// A simulated array of DRAM cells under reduced-timing access.
#[derive(Debug, Clone)]
pub struct CellArray {
    probs: Vec<f32>,
    rng: SmallRng,
}

impl CellArray {
    /// Creates an array of `cells` cells with process variation drawn from
    /// `seed`. The same seed reproduces the same die.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is zero.
    pub fn with_process_variation(cells: usize, seed: u64) -> Self {
        assert!(cells > 0, "cell array must be non-empty");
        let mut rng = SmallRng::seed_from_u64(seed);
        let probs = (0..cells)
            .map(|_| {
                let class: f64 = rng.gen();
                if class < VARIABLE_CELL_FRACTION {
                    // Boundary cells: anywhere in (0.05, 0.95).
                    rng.gen_range(0.05..0.95) as f32
                } else if class < VARIABLE_CELL_FRACTION + ALWAYS_FAIL_FRACTION {
                    // Far past the boundary: (almost) always fails.
                    rng.gen_range(0.985..1.0) as f32
                } else {
                    // Comfortably fast: (almost) never fails.
                    rng.gen_range(0.0..0.015) as f32
                }
            })
            .collect();
        CellArray {
            probs,
            rng: SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Number of cells in the array.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// Whether the array has no cells (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// One reduced-timing read of `cell`: true = the cell failed (sampled a
    /// random-looking value), false = read correctly.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is out of range.
    pub fn sample(&mut self, cell: usize) -> bool {
        let p = self.probs[cell];
        self.rng.gen::<f32>() < p
    }

    /// D-RaNGe-style profiling: read every cell `reads_per_cell` times under
    /// reduced timing and return the indices whose estimated failure
    /// probability lies within [`RNG_BAND`] of 0.5 — the RNG cells.
    ///
    /// # Panics
    ///
    /// Panics if `reads_per_cell` is zero.
    pub fn profile(&mut self, reads_per_cell: u32) -> Vec<usize> {
        assert!(reads_per_cell > 0, "profiling needs at least one read");
        let mut rng_cells = Vec::new();
        for cell in 0..self.probs.len() {
            let mut fails = 0u32;
            for _ in 0..reads_per_cell {
                fails += u32::from(self.sample(cell));
            }
            let p_hat = fails as f64 / reads_per_cell as f64;
            if (p_hat - 0.5).abs() <= RNG_BAND {
                rng_cells.push(cell);
            }
        }
        rng_cells
    }
}

/// A stream of true-random bits drawn from profiled RNG cells.
///
/// Wraps a [`CellArray`] plus the profiled RNG-cell list and round-robins
/// reads over the cells, the way D-RaNGe interleaves accesses over RNG cells
/// in different banks.
///
/// # Examples
///
/// ```
/// use strange_trng::RngCellSource;
///
/// let mut source = RngCellSource::new(4096, 7, 100);
/// let word = source.draw(64);
/// let _ = word; // 64 true-random bits
/// assert!(source.rng_cell_count() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct RngCellSource {
    cells: CellArray,
    rng_cells: Vec<usize>,
    cursor: usize,
}

impl RngCellSource {
    /// Builds a source over a fresh die of `cells` cells seeded by `seed`,
    /// profiling with `reads_per_cell` reads.
    ///
    /// # Panics
    ///
    /// Panics if profiling finds no RNG cells (arrays of a few thousand
    /// cells always contain some under the default process-variation model).
    pub fn new(cells: usize, seed: u64, reads_per_cell: u32) -> Self {
        let mut array = CellArray::with_process_variation(cells, seed);
        let rng_cells = array.profile(reads_per_cell);
        assert!(
            !rng_cells.is_empty(),
            "no RNG cells found; enlarge the array"
        );
        RngCellSource {
            cells: array,
            rng_cells,
            cursor: 0,
        }
    }

    /// Number of profiled RNG cells.
    pub fn rng_cell_count(&self) -> usize {
        self.rng_cells.len()
    }

    /// Draws `count` bits (1..=64) packed into the low bits of a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than 64.
    pub fn draw(&mut self, count: u32) -> u64 {
        assert!((1..=64).contains(&count), "count must be 1..=64");
        let mut word = 0u64;
        for _ in 0..count {
            let cell = self.rng_cells[self.cursor];
            self.cursor = (self.cursor + 1) % self.rng_cells.len();
            word = (word << 1) | u64::from(self.cells.sample(cell));
        }
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_variation_produces_three_populations() {
        let array = CellArray::with_process_variation(100_000, 1);
        let near_zero = array.probs.iter().filter(|&&p| p < 0.05).count();
        let near_one = array.probs.iter().filter(|&&p| p > 0.95).count();
        let middle = array.len() - near_zero - near_one;
        assert!(near_zero > 75_000, "most cells never fail: {near_zero}");
        assert!(near_one > 7_000, "a chunk always fail: {near_one}");
        assert!(middle > 2_000, "boundary cells exist: {middle}");
    }

    #[test]
    fn profiling_selects_cells_near_half() {
        let mut array = CellArray::with_process_variation(50_000, 2);
        let probs = array.probs.clone();
        let rng_cells = array.profile(200);
        assert!(!rng_cells.is_empty());
        for &c in &rng_cells {
            // True probability should be near the band (estimation noise
            // allows a small margin beyond it).
            assert!(
                (probs[c] as f64 - 0.5).abs() < RNG_BAND + 0.12,
                "cell {c} has p={}",
                probs[c]
            );
        }
    }

    #[test]
    fn same_seed_same_die() {
        let a = CellArray::with_process_variation(1000, 3);
        let b = CellArray::with_process_variation(1000, 3);
        assert_eq!(a.probs, b.probs);
    }

    #[test]
    fn different_seed_different_die() {
        let a = CellArray::with_process_variation(1000, 3);
        let b = CellArray::with_process_variation(1000, 4);
        assert_ne!(a.probs, b.probs);
    }

    #[test]
    fn draw_produces_balanced_bits() {
        let mut source = RngCellSource::new(20_000, 5, 200);
        let mut ones = 0u64;
        let n = 2_000u32;
        for _ in 0..n {
            ones += source.draw(64).count_ones() as u64;
        }
        let total = n as u64 * 64;
        let ratio = ones as f64 / total as f64;
        // RNG cells are within ±0.1 of p=0.5 by construction; the aggregate
        // over many cells lands well inside (0.42, 0.58).
        assert!((0.42..0.58).contains(&ratio), "ones ratio {ratio}");
    }

    #[test]
    fn draw_respects_bit_count() {
        let mut source = RngCellSource::new(8192, 6, 100);
        for count in [1u32, 7, 32, 63] {
            let word = source.draw(count);
            if count < 64 {
                assert_eq!(word >> count, 0, "bits above count must be zero");
            }
        }
    }

    #[test]
    #[should_panic(expected = "count must be 1..=64")]
    fn draw_rejects_zero() {
        RngCellSource::new(8192, 6, 50).draw(0);
    }

    #[test]
    #[should_panic(expected = "must be non-empty")]
    fn empty_array_rejected() {
        CellArray::with_process_variation(0, 1);
    }
}
