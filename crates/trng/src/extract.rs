//! Entropy extractors (post-processing for biased bit sources).
//!
//! D-RaNGe's RNG cells have failure probabilities within ±0.1 of 0.5, so a
//! raw stream carries residual per-cell bias. Real deployments optionally
//! post-process; the classic options are provided here:
//!
//! * [`VonNeumann`] — unbiased output from any i.i.d. Bernoulli source, at
//!   the cost of a variable (≈ 4× for p = 0.5) rate reduction.
//! * [`XorFold`] — XOR of `k` consecutive bits: bias shrinks exponentially
//!   (piling-up lemma) at a fixed k× rate cost.

/// Von Neumann extractor: consumes bit pairs, emits `0` for `01`, `1` for
/// `10`, nothing for `00`/`11`.
///
/// # Examples
///
/// ```
/// use strange_trng::VonNeumann;
///
/// let mut vn = VonNeumann::new();
/// assert_eq!(vn.push(false), None); // first half of a pair
/// assert_eq!(vn.push(true), Some(false)); // 01 → 0
/// assert_eq!(vn.push(true), None);
/// assert_eq!(vn.push(true), None); // 11 → discarded
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct VonNeumann {
    held: Option<bool>,
}

impl VonNeumann {
    /// Creates an extractor with no held bit.
    pub fn new() -> Self {
        VonNeumann::default()
    }

    /// Feeds one input bit; returns an output bit when a usable pair
    /// completes.
    pub fn push(&mut self, bit: bool) -> Option<bool> {
        match self.held.take() {
            None => {
                self.held = Some(bit);
                None
            }
            Some(first) => {
                if first != bit {
                    Some(first)
                } else {
                    None
                }
            }
        }
    }

    /// Extracts from a slice of bits, returning the unbiased output bits.
    pub fn extract(&mut self, bits: &[bool]) -> Vec<bool> {
        bits.iter().filter_map(|&b| self.push(b)).collect()
    }
}

/// XOR-fold extractor: XORs groups of `k` consecutive bits into one output
/// bit. By the piling-up lemma, an input bias of ε becomes `2^(k-1) · ε^k`.
///
/// # Examples
///
/// ```
/// use strange_trng::XorFold;
///
/// let mut x = XorFold::new(2);
/// assert_eq!(x.push(true), None);
/// assert_eq!(x.push(true), Some(false)); // 1 ⊕ 1 = 0
/// ```
#[derive(Debug, Clone, Copy)]
pub struct XorFold {
    k: u32,
    acc: bool,
    count: u32,
}

impl XorFold {
    /// Creates a fold of width `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: u32) -> Self {
        assert!(k > 0, "fold width must be nonzero");
        XorFold {
            k,
            acc: false,
            count: 0,
        }
    }

    /// Feeds one input bit; returns an output bit every `k` inputs.
    pub fn push(&mut self, bit: bool) -> Option<bool> {
        self.acc ^= bit;
        self.count += 1;
        if self.count == self.k {
            let out = self.acc;
            self.acc = false;
            self.count = 0;
            Some(out)
        } else {
            None
        }
    }

    /// Folds a `u64` of entropy into `64 / k` output bits (low bits first).
    pub fn fold_word(&mut self, word: u64) -> (u64, u32) {
        let mut out = 0u64;
        let mut n = 0u32;
        for i in 0..64 {
            if let Some(b) = self.push((word >> i) & 1 == 1) {
                out |= u64::from(b) << n;
                n += 1;
            }
        }
        (out, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn biased_bits(p: f64, n: usize, seed: u64) -> Vec<bool> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>() < p).collect()
    }

    fn bias(bits: &[bool]) -> f64 {
        let ones = bits.iter().filter(|&&b| b).count();
        (ones as f64 / bits.len() as f64 - 0.5).abs()
    }

    #[test]
    fn von_neumann_removes_bias() {
        let input = biased_bits(0.6, 200_000, 1);
        assert!(bias(&input) > 0.08);
        let out = VonNeumann::new().extract(&input);
        assert!(out.len() > 40_000, "rate: {}", out.len());
        assert!(bias(&out) < 0.01, "residual bias {}", bias(&out));
    }

    #[test]
    fn von_neumann_rate_quarter_for_fair_input() {
        let input = biased_bits(0.5, 100_000, 2);
        let out = VonNeumann::new().extract(&input);
        let rate = out.len() as f64 / input.len() as f64;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn xor_fold_shrinks_bias() {
        let input = biased_bits(0.6, 200_000, 3);
        let mut fold = XorFold::new(4);
        let out: Vec<bool> = input.iter().filter_map(|&b| fold.push(b)).collect();
        assert_eq!(out.len(), input.len() / 4);
        // ε = 0.1 → 2^3 · 0.1^4 = 0.0008 expected residual bias.
        assert!(bias(&out) < 0.01, "residual bias {}", bias(&out));
    }

    #[test]
    fn fold_word_counts_outputs() {
        let mut fold = XorFold::new(8);
        let (_, n) = fold.fold_word(0xDEAD_BEEF_DEAD_BEEF);
        assert_eq!(n, 8);
    }

    #[test]
    #[should_panic(expected = "width must be nonzero")]
    fn zero_fold_rejected() {
        XorFold::new(0);
    }
}
