//! Throughput-parameterized TRNG for the Figure 2 sweep.
//!
//! Section 3 (Figure 2) studies how the *provided TRNG throughput* — from
//! 200 Mb/s to 6.4 Gb/s — affects baseline slowdown and fairness, with all
//! designs assuming D-RaNGe-like latency characteristics (footnote 1).
//! [`ThroughputTrng`] synthesizes a mechanism whose sustained throughput
//! matches a requested target by searching for a (bits-per-round,
//! round-latency) pair, keeping the D-RaNGe switch costs.

use crate::entropy::RngCellSource;
use crate::mechanism::{BatchCommands, TrngMechanism};
use strange_dram::TCK_NS;

const DEFAULT_CELLS: usize = 32_768;
const PROFILE_READS: u32 = 128;
const FILL_SWITCH: u64 = 2;
const DEMAND_SWITCH: u64 = 40;

/// A synthetic TRNG mechanism calibrated to a target aggregate throughput.
///
/// # Examples
///
/// ```
/// use strange_trng::{ThroughputTrng, TrngMechanism};
///
/// let t = ThroughputTrng::new(1600, 4, 1); // 1.6 Gb/s over 4 channels
/// let got = t.sustained_throughput_gbps(4);
/// assert!((got - 1.6).abs() / 1.6 < 0.05, "within 5%: {got}");
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputTrng {
    source: RngCellSource,
    target_mbps: u32,
    batch_bits: u32,
    batch_latency: u64,
}

impl ThroughputTrng {
    /// Creates a mechanism targeting `target_mbps` megabits/second of
    /// sustained throughput aggregated over `channels` channels.
    ///
    /// # Panics
    ///
    /// Panics if `target_mbps` or `channels` is zero.
    pub fn new(target_mbps: u32, channels: u32, seed: u64) -> Self {
        assert!(target_mbps > 0, "target throughput must be nonzero");
        assert!(channels > 0, "channel count must be nonzero");
        let per_channel_bps = target_mbps as f64 * 1e6 / channels as f64;

        // Search for the (bits, latency) pair whose sustained rate is
        // closest to the target, preferring short rounds (D-RaNGe-like
        // latency per the paper's footnote).
        let mut best = (8u32, 40u64, f64::INFINITY);
        for latency in 4..=512u64 {
            let cycles_ns = (latency + FILL_SWITCH) as f64 * TCK_NS;
            let bits_exact = per_channel_bps * cycles_ns * 1e-9;
            for bits in [bits_exact.floor(), bits_exact.ceil()] {
                let bits = bits.clamp(1.0, 1024.0) as u32;
                let rate = bits as f64 / (cycles_ns * 1e-9);
                let err = (rate - per_channel_bps).abs() / per_channel_bps;
                // Tie-break toward shorter rounds for lower latency.
                if err + latency as f64 * 1e-9 < best.2 {
                    best = (bits, latency, err + latency as f64 * 1e-9);
                }
            }
        }
        ThroughputTrng {
            source: RngCellSource::new(DEFAULT_CELLS, seed, PROFILE_READS),
            target_mbps,
            batch_bits: best.0,
            batch_latency: best.1,
        }
    }

    /// The requested aggregate throughput in Mb/s.
    pub fn target_mbps(&self) -> u32 {
        self.target_mbps
    }
}

impl TrngMechanism for ThroughputTrng {
    fn name(&self) -> &'static str {
        "Throughput-TRNG"
    }

    fn batch_bits(&self) -> u32 {
        self.batch_bits
    }

    fn batch_latency(&self) -> u64 {
        self.batch_latency
    }

    fn demand_switch_cycles(&self) -> u64 {
        DEMAND_SWITCH
    }

    fn fill_switch_cycles(&self) -> u64 {
        FILL_SWITCH
    }

    fn batch_commands(&self) -> BatchCommands {
        // D-RaNGe-like rounds: ~4 random bits per reduced-tRCD access.
        BatchCommands {
            acts: (self.batch_bits / 4).max(1) as u64,
            reads: (self.batch_bits / 4).max(1) as u64,
            pres: (self.batch_bits / 4).max(1) as u64,
        }
    }

    fn draw(&mut self, count: u32) -> u64 {
        self.source.draw(count.min(64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_sweep_points_within_five_percent() {
        for mbps in [200u32, 400, 800, 1600, 3200, 6400] {
            let t = ThroughputTrng::new(mbps, 4, 1);
            let got = t.sustained_throughput_gbps(4) * 1000.0;
            let err = (got - mbps as f64).abs() / mbps as f64;
            assert!(err < 0.05, "{mbps} Mb/s target, got {got:.1} Mb/s");
        }
    }

    #[test]
    fn low_throughput_uses_long_or_thin_rounds() {
        let t = ThroughputTrng::new(200, 4, 1);
        let bits_per_cycle = t.batch_bits() as f64 / (t.batch_latency() + FILL_SWITCH) as f64;
        // 50 Mb/s per channel = 0.0625 bits per 1.25 ns cycle.
        assert!((bits_per_cycle - 0.0625).abs() < 0.01);
    }

    #[test]
    fn target_accessor_roundtrips() {
        assert_eq!(ThroughputTrng::new(800, 4, 2).target_mbps(), 800);
    }

    #[test]
    #[should_panic(expected = "throughput must be nonzero")]
    fn zero_target_rejected() {
        ThroughputTrng::new(0, 4, 1);
    }
}
