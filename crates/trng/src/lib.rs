//! DRAM-based true random number generator mechanism models for the
//! DR-STRaNGe reproduction.
//!
//! DR-STRaNGe is mechanism-independent (paper Section 5); this crate
//! provides the two state-of-the-art mechanisms the paper evaluates plus a
//! throughput-parameterized synthetic one for the Figure 2 sweep, all built
//! on a simulated process-variation entropy substrate:
//!
//! * [`CellArray`] / [`RngCellSource`] — DRAM cells with Bernoulli
//!   timing-failure probabilities and D-RaNGe-style profiling (the
//!   substitute for real-hardware entropy, see DESIGN.md).
//! * [`TrngMechanism`] — what the DR-STRaNGe engine needs from a mechanism:
//!   bits and cycles per generation round, mode-switch costs, commands (for
//!   energy), and the bits themselves.
//! * [`DRange`] — timing-failure TRNG, ≈ 0.6 Gb/s sustained on 4 channels,
//!   ≈ 160-cycle fixed 64-bit demand latency (≈ 198 with bank drain).
//! * [`QuacTrng`] — quadruple-activation TRNG, ≈ 3.44 Gb/s sustained,
//!   higher 64-bit latency (the Section 8.7 trade-off).
//! * [`ThroughputTrng`] — hits an arbitrary sustained-throughput target
//!   with D-RaNGe-like latency (Figure 2).
//! * [`monobit_test`], [`runs_test`], [`serial_two_bit_test`] — randomness
//!   quality tests; [`VonNeumann`] / [`XorFold`] — extractors.
//!
//! # Examples
//!
//! ```
//! use strange_trng::{DRange, TrngMechanism};
//!
//! let mut trng = DRange::new(0xD1E);
//! let key_material: Vec<u64> = (0..4).map(|_| trng.draw(64)).collect();
//! assert_eq!(key_material.len(), 4);
//! // One D-RaNGe round yields 8 bits in 40 DRAM cycles per channel.
//! assert_eq!(trng.batch_bits(), 8);
//! assert_eq!(trng.batch_latency(), 40);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod drange;
mod entropy;
mod extract;
mod generic;
mod mechanism;
mod quac;
mod quality;

pub use drange::DRange;
pub use entropy::{CellArray, RngCellSource, RNG_BAND};
pub use extract::{VonNeumann, XorFold};
pub use generic::ThroughputTrng;
pub use mechanism::{BatchCommands, TrngMechanism};
pub use quac::QuacTrng;
pub use quality::{
    all_tests_pass, monobit_test, runs_test, serial_two_bit_test, QualityReport, QualityWindow,
    TestResult,
};
