//! The TRNG mechanism abstraction.
//!
//! DR-STRaNGe is "independent of the DRAM-based TRNG mechanism used in the
//! system" (Section 5); the engine only needs to know, for a given
//! mechanism:
//!
//! * how many random bits one *generation round* on one channel yields and
//!   how long that round occupies the channel,
//! * the timing-parameter reconfiguration cost for entering/leaving RNG
//!   mode (large when regular traffic is in flight, small on an idle
//!   channel whose parameters can be staged ahead),
//! * which DRAM commands a round issues (for the energy model), and
//! * the actual random bits (from the entropy substrate).
//!
//! Implementations: [`crate::DRange`], [`crate::QuacTrng`],
//! [`crate::ThroughputTrng`].

use strange_dram::TCK_NS;

/// DRAM commands issued by one generation round (for energy accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchCommands {
    /// Activations (reduced-timing ACTs).
    pub acts: u64,
    /// Column reads.
    pub reads: u64,
    /// Precharges.
    pub pres: u64,
}

/// A DRAM-based TRNG mechanism model.
///
/// The object is stateful: `draw` consumes entropy from the mechanism's
/// simulated DRAM cells.
pub trait TrngMechanism: Send {
    /// Human-readable mechanism name (e.g. `"D-RaNGe"`).
    fn name(&self) -> &'static str;

    /// Random bits produced by one generation round on one channel.
    fn batch_bits(&self) -> u32;

    /// DRAM-bus cycles one round occupies a channel.
    fn batch_latency(&self) -> u64;

    /// Timing-reconfiguration cost (cycles, each way) when switching a
    /// loaded channel to RNG mode for an on-demand request.
    fn demand_switch_cycles(&self) -> u64;

    /// Timing-reconfiguration cost (cycles, each way) when an *idle*
    /// channel starts a buffer-fill round (parameters staged in advance).
    fn fill_switch_cycles(&self) -> u64;

    /// Commands issued per round (for the energy model).
    fn batch_commands(&self) -> BatchCommands;

    /// Draws `count` (1..=64) true-random bits from the entropy substrate.
    fn draw(&mut self, count: u32) -> u64;

    /// Sustained buffer-fill throughput in Gb/s when `channels` channels
    /// generate continuously (documentation/calibration helper).
    fn sustained_throughput_gbps(&self, channels: u32) -> f64 {
        let cycles = (self.batch_latency() + self.fill_switch_cycles()) as f64;
        let bits_per_ns = self.batch_bits() as f64 / (cycles * TCK_NS);
        bits_per_ns * channels as f64
    }

    /// End-to-end on-demand latency in DRAM cycles to produce one 64-bit
    /// value using `channels` channels in parallel, excluding the
    /// (load-dependent) bank-drain time.
    fn demand_latency_cycles(&self, channels: u32) -> u64 {
        let per_round = self.batch_bits() as u64 * channels as u64;
        let rounds = 64_u64.div_ceil(per_round);
        2 * self.demand_switch_cycles() + rounds * self.batch_latency()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A deterministic mechanism for engine tests.
    #[derive(Debug)]
    pub struct FixedMechanism {
        pub bits: u32,
        pub latency: u64,
        pub switch_demand: u64,
        pub switch_fill: u64,
        counter: u64,
    }

    impl FixedMechanism {
        pub fn new(bits: u32, latency: u64) -> Self {
            FixedMechanism {
                bits,
                latency,
                switch_demand: 10,
                switch_fill: 1,
                counter: 0,
            }
        }
    }

    impl TrngMechanism for FixedMechanism {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn batch_bits(&self) -> u32 {
            self.bits
        }
        fn batch_latency(&self) -> u64 {
            self.latency
        }
        fn demand_switch_cycles(&self) -> u64 {
            self.switch_demand
        }
        fn fill_switch_cycles(&self) -> u64 {
            self.switch_fill
        }
        fn batch_commands(&self) -> BatchCommands {
            BatchCommands {
                acts: 1,
                reads: 1,
                pres: 1,
            }
        }
        fn draw(&mut self, count: u32) -> u64 {
            self.counter = self.counter.wrapping_add(0x9e37_79b9_7f4a_7c15);
            if count == 64 {
                self.counter
            } else {
                self.counter & ((1u64 << count) - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::FixedMechanism;
    use super::*;

    #[test]
    fn demand_latency_rounds_up() {
        let m = FixedMechanism::new(8, 40);
        // 4 channels × 8 bits = 32/round → 2 rounds + 2×10 switch.
        assert_eq!(m.demand_latency_cycles(4), 2 * 10 + 2 * 40);
        // 1 channel × 8 bits → 8 rounds.
        assert_eq!(m.demand_latency_cycles(1), 2 * 10 + 8 * 40);
    }

    #[test]
    fn sustained_throughput_scales_with_channels() {
        let m = FixedMechanism::new(8, 40);
        let one = m.sustained_throughput_gbps(1);
        let four = m.sustained_throughput_gbps(4);
        assert!((four / one - 4.0).abs() < 1e-9);
        // 8 bits per 41 cycles × 1.25 ns ≈ 0.156 Gb/s per channel.
        assert!((one - 8.0 / (41.0 * 1.25)).abs() < 1e-9);
    }
}
