//! QUAC-TRNG (Olgun et al., ISCA 2021): quadruple-row-activation DRAM TRNG.
//!
//! QUAC-TRNG issues a carefully timed ACT-PRE-ACT command sequence that
//! activates four rows nearly simultaneously; the resulting charge sharing
//! makes a large fraction of sense amplifiers settle to random values. The
//! mechanism reads out a whole row segment and condenses it with SHA-256
//! post-processing. Compared to D-RaNGe it produces far more bits per
//! operation (higher throughput) but each operation — quadruple activation,
//! multi-column readout, and the hash pipeline — takes longer, so the
//! latency to the *first* 64 bits is higher (the trade-off Section 8.7
//! evaluates).
//!
//! Calibration (DESIGN.md §3): 256 post-processed bits per 236-cycle round
//! per channel ⇒ ≈ 3.44 Gb/s sustained on 4 channels (the paper's QUAC
//! number), with an on-demand 64-bit latency of ≈ 316 cycles (vs ≈ 160+ for
//! D-RaNGe).

use crate::entropy::RngCellSource;
use crate::mechanism::{BatchCommands, TrngMechanism};

const DEFAULT_CELLS: usize = 32_768;
const PROFILE_READS: u32 = 128;

/// The QUAC-TRNG mechanism model.
///
/// # Examples
///
/// ```
/// use strange_trng::{QuacTrng, TrngMechanism};
///
/// let q = QuacTrng::new(7);
/// let gbps = q.sustained_throughput_gbps(4);
/// assert!((3.2..3.7).contains(&gbps), "≈3.44 Gb/s: {gbps}");
/// // Higher 64-bit latency than D-RaNGe's ≈160 fixed cycles.
/// assert!(q.demand_latency_cycles(4) > 300);
/// ```
#[derive(Debug, Clone)]
pub struct QuacTrng {
    source: RngCellSource,
    mix_state: u64,
}

impl QuacTrng {
    /// Creates a QUAC-TRNG instance over a fresh simulated die.
    pub fn new(seed: u64) -> Self {
        QuacTrng {
            source: RngCellSource::new(DEFAULT_CELLS, seed, PROFILE_READS),
            mix_state: seed ^ 0x6a09_e667_f3bc_c908, // SHA-256 H0 constant
        }
    }
}

impl TrngMechanism for QuacTrng {
    fn name(&self) -> &'static str {
        "QUAC-TRNG"
    }

    fn batch_bits(&self) -> u32 {
        256
    }

    fn batch_latency(&self) -> u64 {
        236
    }

    fn demand_switch_cycles(&self) -> u64 {
        40
    }

    fn fill_switch_cycles(&self) -> u64 {
        2
    }

    fn batch_commands(&self) -> BatchCommands {
        // ACT-PRE-ACT sequence (2 ACTs, 1 PRE) + 16-column segment readout.
        BatchCommands {
            acts: 2,
            reads: 16,
            pres: 1,
        }
    }

    fn draw(&mut self, count: u32) -> u64 {
        // Raw sense-amp entropy, condensed by a hash-like mix standing in
        // for QUAC's SHA-256 post-processing stage.
        let raw = self.source.draw(count.min(64));
        self.mix_state = self
            .mix_state
            .rotate_left(13)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ raw;
        let mixed = self.mix_state ^ (self.mix_state >> 31);
        if count == 64 {
            mixed
        } else {
            mixed & ((1u64 << count) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DRange;

    #[test]
    fn quac_has_higher_throughput_than_drange() {
        let q = QuacTrng::new(1);
        let d = DRange::new(1);
        assert!(q.sustained_throughput_gbps(4) > 4.0 * d.sustained_throughput_gbps(4));
    }

    #[test]
    fn quac_has_higher_demand_latency_than_drange() {
        let q = QuacTrng::new(1);
        let d = DRange::new(1);
        assert!(q.demand_latency_cycles(4) > d.demand_latency_cycles(4));
    }

    #[test]
    fn calibrated_to_paper_throughput() {
        let q = QuacTrng::new(1);
        let gbps = q.sustained_throughput_gbps(4);
        assert!((gbps - 3.44).abs() < 0.25, "got {gbps}");
    }

    #[test]
    fn draw_masks_to_count() {
        let mut q = QuacTrng::new(3);
        for count in [1u32, 8, 33, 63] {
            let w = q.draw(count);
            assert_eq!(w >> count, 0);
        }
    }

    #[test]
    fn mixed_output_is_balanced() {
        let mut q = QuacTrng::new(11);
        let mut ones = 0u64;
        let n = 2000;
        for _ in 0..n {
            ones += q.draw(64).count_ones() as u64;
        }
        let ratio = ones as f64 / (n as f64 * 64.0);
        assert!((0.47..0.53).contains(&ratio), "ratio {ratio}");
    }
}
