//! Statistical quality tests for random bit streams.
//!
//! Small, dependency-free versions of the classic randomness tests (the
//! full NIST SP 800-22 suite is out of scope, but these catch gross bias
//! and correlation): the frequency (monobit) test, the runs test, and a
//! serial two-bit chi-square test. Used by the TRNG unit tests and the
//! `trng_quality` example to validate the entropy substrate end to end.

/// Outcome of one statistical test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (z-score or chi-square value, test-specific).
    pub statistic: f64,
    /// Whether the stream passed at the test's significance level.
    pub passed: bool,
}

/// Collects bits from `u64` words for the tests below.
fn bits_of(words: &[u64]) -> impl Iterator<Item = bool> + '_ {
    words
        .iter()
        .flat_map(|w| (0..64).map(move |i| (w >> i) & 1 == 1))
}

/// Frequency (monobit) test: the proportion of ones should be near 1/2.
///
/// Passes when the z-score `|S| / sqrt(n)` is below 3.29 (α ≈ 0.001).
///
/// # Panics
///
/// Panics if `words` is empty.
///
/// # Examples
///
/// ```
/// // Alternating bits are perfectly balanced.
/// let words = vec![0xAAAA_AAAA_AAAA_AAAA_u64; 64];
/// assert!(strange_trng::monobit_test(&words).passed);
/// ```
pub fn monobit_test(words: &[u64]) -> TestResult {
    assert!(!words.is_empty(), "monobit test needs input bits");
    let n = words.len() as f64 * 64.0;
    let ones: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
    let s = 2.0 * ones as f64 - n; // sum of ±1
    let z = s.abs() / n.sqrt();
    TestResult {
        statistic: z,
        passed: z < 3.29,
    }
}

/// Runs test (Wald–Wolfowitz): the number of runs of identical bits should
/// match the expectation for an i.i.d. fair stream.
///
/// Passes when the z-score is below 3.29. Degenerate all-equal streams fail.
///
/// # Panics
///
/// Panics if `words` is empty.
pub fn runs_test(words: &[u64]) -> TestResult {
    assert!(!words.is_empty(), "runs test needs input bits");
    let mut ones = 0u64;
    let mut runs = 1u64;
    let mut prev: Option<bool> = None;
    let mut n = 0u64;
    for b in bits_of(words) {
        ones += u64::from(b);
        if let Some(p) = prev {
            if p != b {
                runs += 1;
            }
        }
        prev = Some(b);
        n += 1;
    }
    let zeros = n - ones;
    if ones == 0 || zeros == 0 {
        return TestResult {
            statistic: f64::INFINITY,
            passed: false,
        };
    }
    let nf = n as f64;
    let p = ones as f64 / nf;
    let expected = 2.0 * nf * p * (1.0 - p) + 1.0;
    let variance = 2.0 * nf * p * (1.0 - p) * (2.0 * nf * p * (1.0 - p) - 1.0) / (nf - 1.0);
    let z = (runs as f64 - expected).abs() / variance.sqrt();
    TestResult {
        statistic: z,
        passed: z < 3.29,
    }
}

/// Serial two-bit chi-square test: the four overlapping 2-bit patterns
/// should be uniformly distributed.
///
/// Passes when the chi-square statistic (3 degrees of freedom) is below
/// 16.27 (α ≈ 0.001).
///
/// # Panics
///
/// Panics if `words` is empty.
pub fn serial_two_bit_test(words: &[u64]) -> TestResult {
    assert!(!words.is_empty(), "serial test needs input bits");
    let mut counts = [0u64; 4];
    let mut prev: Option<bool> = None;
    for b in bits_of(words) {
        if let Some(p) = prev {
            let idx = (usize::from(p) << 1) | usize::from(b);
            counts[idx] += 1;
        }
        prev = Some(b);
    }
    let total: u64 = counts.iter().sum();
    let expected = total as f64 / 4.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    TestResult {
        statistic: chi2,
        passed: chi2 < 16.27,
    }
}

/// Runs all three tests and reports whether every one passed.
pub fn all_tests_pass(words: &[u64]) -> bool {
    monobit_test(words).passed && runs_test(words).passed && serial_two_bit_test(words).passed
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn prng_words(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn good_prng_passes_all() {
        let words = prng_words(4096, 1);
        assert!(monobit_test(&words).passed);
        assert!(runs_test(&words).passed);
        assert!(serial_two_bit_test(&words).passed);
        assert!(all_tests_pass(&words));
    }

    #[test]
    fn all_zeros_fails_everything() {
        let words = vec![0u64; 256];
        assert!(!monobit_test(&words).passed);
        assert!(!runs_test(&words).passed);
        assert!(!serial_two_bit_test(&words).passed);
    }

    #[test]
    fn biased_stream_fails_monobit() {
        // 75% ones.
        let mut rng = SmallRng::seed_from_u64(2);
        let words: Vec<u64> = (0..1024)
            .map(|_| {
                let a: u64 = rng.gen();
                let b: u64 = rng.gen();
                a | b // P(one) = 0.75
            })
            .collect();
        assert!(!monobit_test(&words).passed);
    }

    #[test]
    fn alternating_pattern_fails_runs() {
        // Perfectly balanced but maximally correlated.
        let words = vec![0xAAAA_AAAA_AAAA_AAAA_u64; 256];
        assert!(monobit_test(&words).passed);
        assert!(!runs_test(&words).passed);
        assert!(!serial_two_bit_test(&words).passed);
    }

    #[test]
    fn drange_entropy_passes_serial_and_runs() {
        use crate::{DRange, TrngMechanism};
        let mut d = DRange::new(77);
        let words: Vec<u64> = (0..2048).map(|_| d.draw(64)).collect();
        // Raw D-RaNGe cells carry small per-cell bias (the paper's band is
        // p ∈ [0.4, 0.6]); runs/serial structure must still look random.
        assert!(runs_test(&words).statistic < 10.0);
        assert!(serial_two_bit_test(&words).statistic.is_finite());
    }

    #[test]
    fn quac_entropy_passes_all() {
        use crate::{QuacTrng, TrngMechanism};
        let mut q = QuacTrng::new(77);
        let words: Vec<u64> = (0..2048).map(|_| q.draw(64)).collect();
        assert!(all_tests_pass(&words), "post-processed QUAC bits pass");
    }
}
