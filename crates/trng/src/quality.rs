//! Statistical quality tests for random bit streams.
//!
//! Small, dependency-free versions of the classic randomness tests (the
//! full NIST SP 800-22 suite is out of scope, but these catch gross bias
//! and correlation): the frequency (monobit) test, the runs test, and a
//! serial two-bit chi-square test. Used by the TRNG unit tests and the
//! `trng_quality` example to validate the entropy substrate end to end.

/// Outcome of one statistical test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic (z-score or chi-square value, test-specific).
    pub statistic: f64,
    /// Whether the stream passed at the test's significance level.
    pub passed: bool,
}

/// Collects bits from `u64` words for the tests below.
fn bits_of(words: &[u64]) -> impl Iterator<Item = bool> + '_ {
    words
        .iter()
        .flat_map(|w| (0..64).map(move |i| (w >> i) & 1 == 1))
}

/// Frequency (monobit) test: the proportion of ones should be near 1/2.
///
/// Passes when the z-score `|S| / sqrt(n)` is below 3.29 (α ≈ 0.001).
///
/// # Panics
///
/// Panics if `words` is empty.
///
/// # Examples
///
/// ```
/// // Alternating bits are perfectly balanced.
/// let words = vec![0xAAAA_AAAA_AAAA_AAAA_u64; 64];
/// assert!(strange_trng::monobit_test(&words).passed);
/// ```
pub fn monobit_test(words: &[u64]) -> TestResult {
    assert!(!words.is_empty(), "monobit test needs input bits");
    let n = words.len() as f64 * 64.0;
    let ones: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
    let s = 2.0 * ones as f64 - n; // sum of ±1
    let z = s.abs() / n.sqrt();
    TestResult {
        statistic: z,
        passed: z < 3.29,
    }
}

/// Runs test (Wald–Wolfowitz): the number of runs of identical bits should
/// match the expectation for an i.i.d. fair stream.
///
/// Passes when the z-score is below 3.29. Degenerate all-equal streams fail.
///
/// # Panics
///
/// Panics if `words` is empty.
pub fn runs_test(words: &[u64]) -> TestResult {
    assert!(!words.is_empty(), "runs test needs input bits");
    let mut ones = 0u64;
    let mut runs = 1u64;
    let mut prev: Option<bool> = None;
    let mut n = 0u64;
    for b in bits_of(words) {
        ones += u64::from(b);
        if let Some(p) = prev {
            if p != b {
                runs += 1;
            }
        }
        prev = Some(b);
        n += 1;
    }
    let zeros = n - ones;
    if ones == 0 || zeros == 0 {
        return TestResult {
            statistic: f64::INFINITY,
            passed: false,
        };
    }
    let nf = n as f64;
    let p = ones as f64 / nf;
    let expected = 2.0 * nf * p * (1.0 - p) + 1.0;
    let variance = 2.0 * nf * p * (1.0 - p) * (2.0 * nf * p * (1.0 - p) - 1.0) / (nf - 1.0);
    let z = (runs as f64 - expected).abs() / variance.sqrt();
    TestResult {
        statistic: z,
        passed: z < 3.29,
    }
}

/// Serial two-bit chi-square test: the four overlapping 2-bit patterns
/// should be uniformly distributed.
///
/// Passes when the chi-square statistic (3 degrees of freedom) is below
/// 16.27 (α ≈ 0.001).
///
/// # Panics
///
/// Panics if `words` is empty.
pub fn serial_two_bit_test(words: &[u64]) -> TestResult {
    assert!(!words.is_empty(), "serial test needs input bits");
    let mut counts = [0u64; 4];
    let mut prev: Option<bool> = None;
    for b in bits_of(words) {
        if let Some(p) = prev {
            let idx = (usize::from(p) << 1) | usize::from(b);
            counts[idx] += 1;
        }
        prev = Some(b);
    }
    let total: u64 = counts.iter().sum();
    let expected = total as f64 / 4.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    TestResult {
        statistic: chi2,
        passed: chi2 < 16.27,
    }
}

/// Runs all three tests and reports whether every one passed.
pub fn all_tests_pass(words: &[u64]) -> bool {
    monobit_test(words).passed && runs_test(words).passed && serial_two_bit_test(words).passed
}

/// Results of all three quality tests over one window of words.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityReport {
    /// Frequency (monobit) test outcome.
    pub monobit: TestResult,
    /// Runs (Wald–Wolfowitz) test outcome.
    pub runs: TestResult,
    /// Serial two-bit chi-square test outcome.
    pub serial: TestResult,
}

impl QualityReport {
    /// Whether every test in the report passed.
    pub fn all_passed(&self) -> bool {
        self.monobit.passed && self.runs.passed && self.serial.passed
    }
}

/// Mask selecting the 63 intra-word adjacent bit pairs `(i, i+1)`.
const PAIR_MASK: u64 = (1u64 << 63) - 1;

/// Incremental sliding window over a `u64` word stream that maintains the
/// sufficient statistics for [`monobit_test`], [`runs_test`], and
/// [`serial_two_bit_test`] under push/evict, so a live sampler can test a
/// window in O(1) per word instead of rescanning `capacity × 64` bits.
///
/// The window is treated as one contiguous bit stream, low bit first within
/// each word (the same order `bits_of` uses), so for any window content the
/// results are bit-identical to running the batch functions on the same
/// slice of words — a property the proptest below pins down.
#[derive(Debug, Clone)]
pub struct QualityWindow {
    capacity: usize,
    words: std::collections::VecDeque<u64>,
    ones: u64,
    /// Number of adjacent bit pairs that differ (runs = flips + 1).
    flips: u64,
    /// Counts of the four overlapping 2-bit patterns `(prev << 1) | cur`.
    pairs: [u64; 4],
}

/// Per-word contribution of the 63 internal adjacent pairs.
fn word_pair_counts(w: u64) -> [u64; 4] {
    let hi = w >> 1; // bit i of `hi` is the *later* bit of pair i
    [
        (!w & !hi & PAIR_MASK).count_ones() as u64,
        (!w & hi & PAIR_MASK).count_ones() as u64,
        (w & !hi & PAIR_MASK).count_ones() as u64,
        (w & hi & PAIR_MASK).count_ones() as u64,
    ]
}

impl QualityWindow {
    /// Creates an empty window holding at most `capacity_words` words.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_words` is zero.
    pub fn new(capacity_words: usize) -> Self {
        assert!(capacity_words > 0, "quality window needs capacity");
        QualityWindow {
            capacity: capacity_words,
            words: std::collections::VecDeque::with_capacity(capacity_words),
            ones: 0,
            flips: 0,
            pairs: [0; 4],
        }
    }

    /// Maximum number of words the window holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of words currently in the window.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the window holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Whether the window is at capacity (a push will evict the oldest word).
    pub fn is_full(&self) -> bool {
        self.words.len() == self.capacity
    }

    /// Adds the boundary pair between adjacent words `prev` (earlier) and
    /// `cur` (later) to the statistics, or removes it with `sign = -1`.
    fn boundary(&mut self, prev: u64, cur: u64, add: bool) {
        let p = (prev >> 63) & 1;
        let c = cur & 1;
        let idx = ((p << 1) | c) as usize;
        if add {
            self.pairs[idx] += 1;
            self.flips += u64::from(p != c);
        } else {
            self.pairs[idx] -= 1;
            self.flips -= u64::from(p != c);
        }
    }

    /// Adds (or removes) one word's ones count and internal pairs.
    fn word_body(&mut self, w: u64, add: bool) {
        let pc = word_pair_counts(w);
        let internal_flips = pc[1] + pc[2]; // patterns 01 and 10 are flips
        if add {
            self.ones += w.count_ones() as u64;
            self.flips += internal_flips;
            for (slot, c) in self.pairs.iter_mut().zip(pc) {
                *slot += c;
            }
        } else {
            self.ones -= w.count_ones() as u64;
            self.flips -= internal_flips;
            for (slot, c) in self.pairs.iter_mut().zip(pc) {
                *slot -= c;
            }
        }
    }

    /// Pushes a word, evicting the oldest word first if the window is full.
    pub fn push(&mut self, word: u64) {
        if self.is_full() {
            self.evict();
        }
        if let Some(&back) = self.words.back() {
            self.boundary(back, word, true);
        }
        self.word_body(word, true);
        self.words.push_back(word);
    }

    /// Removes the oldest word and its statistics contribution.
    fn evict(&mut self) {
        let front = self.words.pop_front().expect("evict from non-empty window");
        self.word_body(front, false);
        if let Some(&next) = self.words.front() {
            self.boundary(front, next, false);
        }
    }

    /// Empties the window.
    pub fn clear(&mut self) {
        self.words.clear();
        self.ones = 0;
        self.flips = 0;
        self.pairs = [0; 4];
    }

    /// Frequency (monobit) test over the current window contents.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn monobit(&self) -> TestResult {
        assert!(!self.is_empty(), "monobit test needs input bits");
        let n = self.words.len() as f64 * 64.0;
        let s = 2.0 * self.ones as f64 - n;
        let z = s.abs() / n.sqrt();
        TestResult {
            statistic: z,
            passed: z < 3.29,
        }
    }

    /// Runs test (Wald–Wolfowitz) over the current window contents.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn runs(&self) -> TestResult {
        assert!(!self.is_empty(), "runs test needs input bits");
        let n = self.words.len() as u64 * 64;
        let runs = self.flips + 1;
        let ones = self.ones;
        let zeros = n - ones;
        if ones == 0 || zeros == 0 {
            return TestResult {
                statistic: f64::INFINITY,
                passed: false,
            };
        }
        let nf = n as f64;
        let p = ones as f64 / nf;
        let expected = 2.0 * nf * p * (1.0 - p) + 1.0;
        let variance = 2.0 * nf * p * (1.0 - p) * (2.0 * nf * p * (1.0 - p) - 1.0) / (nf - 1.0);
        let z = (runs as f64 - expected).abs() / variance.sqrt();
        TestResult {
            statistic: z,
            passed: z < 3.29,
        }
    }

    /// Serial two-bit chi-square test over the current window contents.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn serial_two_bit(&self) -> TestResult {
        assert!(!self.is_empty(), "serial test needs input bits");
        let total: u64 = self.pairs.iter().sum();
        let expected = total as f64 / 4.0;
        let chi2: f64 = self
            .pairs
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        TestResult {
            statistic: chi2,
            passed: chi2 < 16.27,
        }
    }

    /// Runs all three tests over the current window contents.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn report(&self) -> QualityReport {
        QualityReport {
            monobit: self.monobit(),
            runs: self.runs(),
            serial: self.serial_two_bit(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn prng_words(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn good_prng_passes_all() {
        let words = prng_words(4096, 1);
        assert!(monobit_test(&words).passed);
        assert!(runs_test(&words).passed);
        assert!(serial_two_bit_test(&words).passed);
        assert!(all_tests_pass(&words));
    }

    #[test]
    fn all_zeros_fails_everything() {
        let words = vec![0u64; 256];
        assert!(!monobit_test(&words).passed);
        assert!(!runs_test(&words).passed);
        assert!(!serial_two_bit_test(&words).passed);
    }

    #[test]
    fn biased_stream_fails_monobit() {
        // 75% ones.
        let mut rng = SmallRng::seed_from_u64(2);
        let words: Vec<u64> = (0..1024)
            .map(|_| {
                let a: u64 = rng.gen();
                let b: u64 = rng.gen();
                a | b // P(one) = 0.75
            })
            .collect();
        assert!(!monobit_test(&words).passed);
    }

    #[test]
    fn alternating_pattern_fails_runs() {
        // Perfectly balanced but maximally correlated.
        let words = vec![0xAAAA_AAAA_AAAA_AAAA_u64; 256];
        assert!(monobit_test(&words).passed);
        assert!(!runs_test(&words).passed);
        assert!(!serial_two_bit_test(&words).passed);
    }

    #[test]
    fn drange_entropy_passes_serial_and_runs() {
        use crate::{DRange, TrngMechanism};
        let mut d = DRange::new(77);
        let words: Vec<u64> = (0..2048).map(|_| d.draw(64)).collect();
        // Raw D-RaNGe cells carry small per-cell bias (the paper's band is
        // p ∈ [0.4, 0.6]); runs/serial structure must still look random.
        assert!(runs_test(&words).statistic < 10.0);
        assert!(serial_two_bit_test(&words).statistic.is_finite());
    }

    #[test]
    fn quac_entropy_passes_all() {
        use crate::{QuacTrng, TrngMechanism};
        let mut q = QuacTrng::new(77);
        let words: Vec<u64> = (0..2048).map(|_| q.draw(64)).collect();
        assert!(all_tests_pass(&words), "post-processed QUAC bits pass");
    }

    /// The incremental window must agree with the batch functions on the
    /// exact same word slice, including after evictions have cycled the
    /// window contents many times over.
    fn assert_window_matches_batch(window: &QualityWindow, expect: &[u64]) {
        assert_eq!(window.len(), expect.len());
        assert_eq!(window.monobit(), monobit_test(expect));
        assert_eq!(window.runs(), runs_test(expect));
        assert_eq!(window.serial_two_bit(), serial_two_bit_test(expect));
        assert_eq!(
            window.report().all_passed(),
            all_tests_pass(expect),
            "aggregate verdict must match the batch path"
        );
    }

    #[test]
    fn window_matches_batch_while_sliding() {
        let stream = prng_words(256, 9);
        let mut w = QualityWindow::new(32);
        for (i, &word) in stream.iter().enumerate() {
            w.push(word);
            let lo = (i + 1).saturating_sub(32);
            assert_window_matches_batch(&w, &stream[lo..=i]);
        }
    }

    #[test]
    fn window_handles_degenerate_streams() {
        let mut w = QualityWindow::new(4);
        for _ in 0..8 {
            w.push(0);
        }
        assert!(!w.monobit().passed);
        assert_eq!(w.runs().statistic, f64::INFINITY);
        assert!(!w.report().all_passed());

        w.clear();
        assert!(w.is_empty());
        for _ in 0..4 {
            w.push(0xAAAA_AAAA_AAAA_AAAA);
        }
        assert!(w.is_full());
        assert!(w.monobit().passed);
        assert!(!w.runs().passed, "alternating bits over-run");
    }

    #[test]
    #[should_panic(expected = "needs input bits")]
    fn empty_window_panics_like_batch() {
        QualityWindow::new(8).report();
    }

    mod incremental_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Satellite: incremental sliding-window statistics are
            /// bit-identical to recomputing the batch tests on the window's
            /// word slice, for arbitrary streams and window capacities.
            #[test]
            fn incremental_matches_batch(
                seed in 0u64..1_000_000,
                len in 1usize..96,
                cap in 1usize..24,
            ) {
                let stream = prng_words(len, seed);
                let mut w = QualityWindow::new(cap);
                for (i, &word) in stream.iter().enumerate() {
                    w.push(word);
                    let lo = (i + 1).saturating_sub(cap);
                    let expect = &stream[lo..=i];
                    prop_assert_eq!(w.len(), expect.len());
                    prop_assert_eq!(w.monobit(), monobit_test(expect));
                    prop_assert_eq!(w.runs(), runs_test(expect));
                    prop_assert_eq!(w.serial_two_bit(), serial_two_bit_test(expect));
                }
            }

            /// Pattern-skewed words (forced bias and correlation) stress the
            /// eviction bookkeeping for the boundary pairs between words.
            #[test]
            fn skewed_streams_match_too(
                seed in 0u64..1_000_000,
                mask in any::<u64>(),
                cap in 1usize..12,
            ) {
                let stream: Vec<u64> = prng_words(48, seed)
                    .into_iter()
                    .map(|w| w | mask)
                    .collect();
                let mut w = QualityWindow::new(cap);
                for (i, &word) in stream.iter().enumerate() {
                    w.push(word);
                    let lo = (i + 1).saturating_sub(cap);
                    let expect = &stream[lo..=i];
                    prop_assert_eq!(w.monobit(), monobit_test(expect));
                    prop_assert_eq!(w.runs(), runs_test(expect));
                    prop_assert_eq!(w.serial_two_bit(), serial_two_bit_test(expect));
                }
            }
        }
    }
}
