//! The application catalog.
//!
//! The paper evaluates 43 single-core applications from SPEC CPU2006, TPC,
//! STREAM, MediaBench, and YCSB (Section 7), grouped by last-level-cache
//! misses per kilo-instruction: L (MPKI < 1), M (1 ≤ MPKI < 10), and
//! H (MPKI ≥ 10). The original SimPoint traces are not redistributable, so
//! each application here is a *synthetic stand-in* parameterized by MPKI,
//! row-buffer locality, write fraction, and footprint (see DESIGN.md §2).
//!
//! The 23 medium/high-intensity applications appear in the paper's figures
//! in a fixed x-axis order (ycsb3 … h264d); [`figure_apps`] returns exactly
//! that order so the bench harness prints rows the way the paper plots
//! them. MPKI values ramp along that order; locality and write mix follow
//! each application's published character (e.g. `libq` streams with very
//! high row locality, `mcf` chases pointers with almost none).

/// Memory-intensity class (paper Section 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntensityClass {
    /// MPKI < 1.
    Low,
    /// 1 ≤ MPKI < 10.
    Medium,
    /// MPKI ≥ 10.
    High,
}

impl IntensityClass {
    /// One-letter label used in workload-group names (L/M/H).
    pub fn letter(&self) -> char {
        match self {
            IntensityClass::Low => 'L',
            IntensityClass::Medium => 'M',
            IntensityClass::High => 'H',
        }
    }

    /// Classifies an MPKI value.
    pub fn from_mpki(mpki: f64) -> Self {
        if mpki < 1.0 {
            IntensityClass::Low
        } else if mpki < 10.0 {
            IntensityClass::Medium
        } else {
            IntensityClass::High
        }
    }
}

/// Parameters of one synthetic application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSpec {
    /// Benchmark name (paper figure label).
    pub name: &'static str,
    /// Last-level-cache misses (demand loads to DRAM) per kilo-instruction.
    pub mpki: f64,
    /// Probability that the next access continues the current stream
    /// (sequential next line) instead of jumping — the row-buffer-locality
    /// dial.
    pub row_locality: f64,
    /// Fraction of memory events that are writebacks.
    pub write_fraction: f64,
    /// Working-set size in cache lines.
    pub footprint_lines: u64,
}

impl AppSpec {
    /// Memory-intensity class implied by the MPKI.
    pub fn class(&self) -> IntensityClass {
        IntensityClass::from_mpki(self.mpki)
    }

    /// Mean non-memory instructions between memory events.
    pub fn mean_gap(&self) -> f64 {
        (1000.0 / (self.mpki * (1.0 + self.write_fraction))).max(1.0)
    }
}

const KILO: u64 = 1024;
const MEGA: u64 = 1024 * 1024;

/// The 23 medium/high-intensity applications in the paper's figure x-axis
/// order (Figures 1, 5, 6, 9, 10, 11, 13, 15, 16, 17).
pub fn figure_apps() -> Vec<AppSpec> {
    vec![
        app("ycsb3", 1.2, 0.25, 0.25, 4 * MEGA),
        app("ycsb4", 1.5, 0.25, 0.25, 4 * MEGA),
        app("ycsb2", 1.8, 0.25, 0.25, 4 * MEGA),
        app("ycsb1", 2.2, 0.25, 0.25, 4 * MEGA),
        app("sphinx3", 2.7, 0.50, 0.10, 512 * KILO),
        app("ycsb0", 3.2, 0.25, 0.30, 4 * MEGA),
        app("jp2d", 3.8, 0.70, 0.25, 256 * KILO),
        app("tpcc64", 4.5, 0.20, 0.35, 8 * MEGA),
        app("jp2e", 5.2, 0.70, 0.30, 256 * KILO),
        app("wcount0", 6.0, 0.60, 0.30, 2 * MEGA),
        app("cactus", 7.0, 0.55, 0.30, MEGA),
        app("astar", 8.0, 0.30, 0.20, 2 * MEGA),
        app("tpch17", 9.5, 0.80, 0.10, 16 * MEGA),
        app("soplex", 11.0, 0.45, 0.20, 4 * MEGA),
        app("milc", 13.0, 0.60, 0.30, 8 * MEGA),
        app("gems", 15.0, 0.70, 0.30, 8 * MEGA),
        app("leslie3d", 17.0, 0.70, 0.30, 4 * MEGA),
        app("tpch2", 19.0, 0.80, 0.10, 16 * MEGA),
        app("zeusmp", 22.0, 0.65, 0.30, 4 * MEGA),
        app("lbm", 26.0, 0.85, 0.45, 8 * MEGA),
        app("mcf", 32.0, 0.10, 0.15, 24 * MEGA),
        app("libq", 38.0, 0.95, 0.05, 512 * KILO),
        app("h264d", 45.0, 0.55, 0.30, MEGA),
    ]
}

/// The 20 low-intensity applications completing the 43-app suite.
pub fn low_intensity_apps() -> Vec<AppSpec> {
    vec![
        app("perlbench", 0.30, 0.60, 0.25, 256 * KILO),
        app("bzip2", 0.90, 0.70, 0.30, 128 * KILO),
        app("gcc", 0.70, 0.50, 0.25, 512 * KILO),
        app("gobmk", 0.40, 0.45, 0.20, 128 * KILO),
        app("hmmer", 0.55, 0.60, 0.30, 64 * KILO),
        app("sjeng", 0.35, 0.40, 0.20, 256 * KILO),
        app("namd", 0.20, 0.60, 0.20, 128 * KILO),
        app("povray", 0.10, 0.50, 0.15, 64 * KILO),
        app("calculix", 0.45, 0.65, 0.25, 128 * KILO),
        app("tonto", 0.30, 0.55, 0.25, 128 * KILO),
        app("gamess", 0.15, 0.50, 0.20, 64 * KILO),
        app("gromacs", 0.60, 0.60, 0.25, 128 * KILO),
        app("dealII", 0.75, 0.60, 0.25, 256 * KILO),
        app("wrf", 0.90, 0.70, 0.30, 512 * KILO),
        app("h264ref", 0.50, 0.55, 0.30, 128 * KILO),
        app("mesa", 0.25, 0.60, 0.30, 128 * KILO),
        app("djpeg", 0.80, 0.70, 0.20, 64 * KILO),
        app("h263e", 0.60, 0.65, 0.30, 64 * KILO),
        app("adpcm", 0.15, 0.50, 0.15, 16 * KILO),
        app("epic", 0.45, 0.60, 0.25, 64 * KILO),
    ]
}

/// The full 43-application suite (figure apps followed by low-intensity
/// apps).
pub fn all_apps() -> Vec<AppSpec> {
    let mut v = figure_apps();
    v.extend(low_intensity_apps());
    v
}

/// Looks up an application by name.
pub fn app_by_name(name: &str) -> Option<AppSpec> {
    all_apps().into_iter().find(|a| a.name == name)
}

/// Applications of one intensity class.
pub fn apps_in_class(class: IntensityClass) -> Vec<AppSpec> {
    all_apps().into_iter().filter(|a| a.class() == class).collect()
}

fn app(
    name: &'static str,
    mpki: f64,
    row_locality: f64,
    write_fraction: f64,
    footprint_lines: u64,
) -> AppSpec {
    AppSpec {
        name,
        mpki,
        row_locality,
        write_fraction,
        footprint_lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_exactly_43_apps() {
        assert_eq!(all_apps().len(), 43);
        assert_eq!(figure_apps().len(), 23);
        assert_eq!(low_intensity_apps().len(), 20);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all_apps().iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 43);
    }

    #[test]
    fn figure_apps_are_medium_or_high() {
        for a in figure_apps() {
            assert_ne!(a.class(), IntensityClass::Low, "{} must be M/H", a.name);
        }
    }

    #[test]
    fn low_apps_are_low() {
        for a in low_intensity_apps() {
            assert_eq!(a.class(), IntensityClass::Low, "{}", a.name);
        }
    }

    #[test]
    fn figure_order_ramps_in_intensity() {
        let apps = figure_apps();
        for w in apps.windows(2) {
            assert!(w[0].mpki <= w[1].mpki, "{} > {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn class_boundaries() {
        assert_eq!(IntensityClass::from_mpki(0.99), IntensityClass::Low);
        assert_eq!(IntensityClass::from_mpki(1.0), IntensityClass::Medium);
        assert_eq!(IntensityClass::from_mpki(10.0), IntensityClass::High);
    }

    #[test]
    fn class_counts_allow_all_group_shapes() {
        // The 4-core groups sample up to 3 distinct apps per class; the
        // 8/16-core class groups sample with replacement.
        assert!(apps_in_class(IntensityClass::Low).len() >= 15);
        assert!(apps_in_class(IntensityClass::Medium).len() >= 10);
        assert!(apps_in_class(IntensityClass::High).len() >= 10);
    }

    #[test]
    fn lookup_by_name() {
        assert!(app_by_name("mcf").is_some());
        assert!(app_by_name("nonexistent").is_none());
    }

    #[test]
    fn mean_gap_reflects_mpki() {
        let mcf = app_by_name("mcf").unwrap();
        let povray = app_by_name("povray").unwrap();
        assert!(mcf.mean_gap() < povray.mean_gap());
    }
}
