//! Arrival-trace recording format for the `getrandom()` service layer.
//!
//! A trace is a text file with **one absolute CPU cycle per line** — the
//! arrival cycle of one `getrandom` request — in non-decreasing order
//! (duplicates allowed: several requests may arrive on the same cycle).
//! Blank lines and `#` comment lines are ignored. The format is the
//! on-disk twin of [`strange_core::ArrivalProcess::TraceReplay`]: record
//! a run with `ServiceConfig::record_arrivals`, emit each client's log
//! with [`emit_arrival_trace`], and replay it bit-identically with
//! [`trace_replay_service`].

use std::fmt;

use strange_core::{ClientSpec, ServiceConfig};

/// A parse failure in an arrival-trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArrivalTraceError {
    /// A line was neither a cycle count, a comment, nor blank.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content (trimmed).
        content: String,
    },
    /// Arrival cycles must be non-decreasing.
    NotSorted {
        /// 1-based line number of the out-of-order entry.
        line: usize,
    },
}

impl fmt::Display for ArrivalTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArrivalTraceError::BadLine { line, content } => {
                write!(f, "line {line}: expected an absolute cycle, got {content:?}")
            }
            ArrivalTraceError::NotSorted { line } => {
                write!(f, "line {line}: arrival cycles must be non-decreasing")
            }
        }
    }
}

impl std::error::Error for ArrivalTraceError {}

/// Parses an arrival trace: one absolute CPU cycle per line, `#`
/// comments and blank lines skipped.
///
/// # Errors
///
/// Returns [`ArrivalTraceError`] on a malformed line or an out-of-order
/// entry.
///
/// # Examples
///
/// ```
/// use strange_workloads::parse_arrival_trace;
///
/// let trace = "# two requests, one burst\n100\n100\n\n250\n";
/// assert_eq!(parse_arrival_trace(trace).unwrap(), vec![100, 100, 250]);
/// ```
pub fn parse_arrival_trace(text: &str) -> Result<Vec<u64>, ArrivalTraceError> {
    let mut arrivals = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cycle: u64 = line.parse().map_err(|_| ArrivalTraceError::BadLine {
            line: i + 1,
            content: line.to_string(),
        })?;
        if arrivals.last().is_some_and(|&prev| cycle < prev) {
            return Err(ArrivalTraceError::NotSorted { line: i + 1 });
        }
        arrivals.push(cycle);
    }
    Ok(arrivals)
}

/// Renders an arrival log in the trace format ([`parse_arrival_trace`]
/// round-trips it).
pub fn emit_arrival_trace(arrivals: &[u64]) -> String {
    let mut out = String::with_capacity(arrivals.len() * 8 + 32);
    out.push_str("# getrandom arrival trace: one absolute CPU cycle per line\n");
    for &cycle in arrivals {
        out.push_str(&cycle.to_string());
        out.push('\n');
    }
    out
}

/// A replay population: client *i* re-issues `bytes`-byte requests at the
/// absolute cycles of `schedules[i]` (e.g. the recorded
/// `RngService::arrival_log`s of a previous run).
pub fn trace_replay_service(schedules: Vec<Vec<u64>>, bytes: usize) -> ServiceConfig {
    ServiceConfig {
        clients: schedules
            .into_iter()
            .map(|schedule| ClientSpec::trace_replay(bytes, schedule))
            .collect(),
        ..ServiceConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let arrivals = vec![0, 0, 17, 512, 512, 512, 40_000_000_000];
        let text = emit_arrival_trace(&arrivals);
        assert_eq!(parse_arrival_trace(&text).unwrap(), arrivals);
    }

    #[test]
    fn empty_trace_round_trips() {
        assert_eq!(
            parse_arrival_trace(&emit_arrival_trace(&[])).unwrap(),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn comments_blanks_and_whitespace_are_skipped() {
        let text = "  # header\n\n 10 \n#inline\n20\n";
        assert_eq!(parse_arrival_trace(text).unwrap(), vec![10, 20]);
    }

    #[test]
    fn bad_line_is_reported_with_its_number() {
        let err = parse_arrival_trace("5\nnot-a-cycle\n9\n").unwrap_err();
        assert_eq!(
            err,
            ArrivalTraceError::BadLine {
                line: 2,
                content: "not-a-cycle".to_string()
            }
        );
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn out_of_order_entries_are_rejected() {
        let err = parse_arrival_trace("5\n9\n7\n").unwrap_err();
        assert_eq!(err, ArrivalTraceError::NotSorted { line: 3 });
    }

    #[test]
    fn replay_population_shape() {
        let cfg = trace_replay_service(vec![vec![1, 2, 3], vec![10]], 32);
        assert_eq!(cfg.clients.len(), 2);
        assert_eq!(cfg.clients[0].requests, 3);
        assert_eq!(cfg.clients[1].requests, 1);
        assert_eq!(cfg.clients[0].bytes, 32);
    }
}
